//! Property tests: batched (memoized/replayed) trials are byte-and-cycle
//! identical to unbatched (all-live) trials, serially and under the
//! thread pool at 1 and 8 workers (DESIGN.md §13).
//!
//! `TET_BATCH` is a process-wide switch, so the unbatched arm inside one
//! process is a hintless [`ProbeMemo`] — by construction it never skips,
//! which is exactly the `TET_BATCH=0` behaviour per probe. (The
//! cross-*process* check — diffing experiment stdout across
//! `TET_PREDECODE=0/1` × `TET_BATCH=0/1` — lives in CI.)
//!
//! "Byte-and-cycle identical" is asserted on the strongest observable
//! surface the machine exposes: every per-probe `(ToTE, cycles)` result,
//! plus the full [`tet_uarch::RunDelta`] over the sweep — run count,
//! cycle total, fast-forward stats, snapshot restores, DRAM-jitter draw
//! count/sum and all PMU lifetime counters.

use std::sync::{Arc, OnceLock};

use tet_uarch::{CpuConfig, Machine, RunDelta};
use whisper::batch::{batch_enabled, FixedRec, ProbeMemo, VERIFY_EVERY};
use whisper::gadget::{RsbGadget, TetGadget, TetGadgetSpec};
use whisper::scenario::{Scenario, ScenarioOptions, STACK_TOP};

/// What one probe reports: `Some((ToTE, cycles))`, `None` on a run
/// that did not complete.
type ProbeResult = Option<(u64, u64)>;

/// One trial's observable surface: every probe result plus the
/// machine's counter movement over the whole sweep.
type TrialOutcome = (Vec<ProbeResult>, RunDelta);

/// One full 0..=255 sweep (×`batches`) through a probe memo. Returns
/// every probe result, the machine's counter movement over the sweep,
/// how many probes ran live, and whether a fixed point was established.
fn sweep<F>(
    machine: &mut Machine,
    hint: Option<u64>,
    batches: u32,
    f: F,
) -> (Vec<ProbeResult>, RunDelta, u32, bool)
where
    F: Fn(&mut Machine, u64) -> ProbeResult,
{
    let marker = machine.delta_marker();
    let mut memo = ProbeMemo::new(machine, hint);
    let mut live = 0u32;
    let mut out = Vec::with_capacity(256 * batches as usize);
    for _ in 0..batches {
        for test in 0..=255u64 {
            out.push(memo.probe(machine, test, |m| {
                live += 1;
                f(m, test)
            }));
        }
    }
    let delta = machine.delta_since(&marker);
    let established = memo.fixed().is_some();
    (out, delta, live, established)
}

/// Runs the batched-vs-unbatched comparison for one gadget closure on
/// twin warmed machines. `hint` must be the gadget's match hint on the
/// (shared) warmed state.
fn assert_batched_equals_unbatched<F>(
    label: &str,
    batched_machine: &mut Machine,
    live_machine: &mut Machine,
    hint: Option<u64>,
    f: F,
) where
    F: Fn(&mut Machine, u64) -> Option<(u64, u64)>,
{
    assert!(hint.is_some(), "{label}: gadget must predict a match hint");
    let total = 2 * 256u32;
    let (fast, fast_delta, fast_live, established) = sweep(batched_machine, hint, 2, &f);
    let (slow, slow_delta, slow_live, _) = sweep(live_machine, None, 2, &f);
    assert_eq!(slow_live, total, "{label}: hintless memo must never skip");
    assert_eq!(fast, slow, "{label}: per-probe results must be identical");
    assert_eq!(
        fast_delta, slow_delta,
        "{label}: cycle/ff/jitter/PMU movement must be identical"
    );
    assert_eq!(
        batched_machine.stats(),
        live_machine.stats(),
        "{label}: lifetime machine stats must be identical"
    );
    assert_eq!(
        batched_machine.pmu_lifetime(),
        live_machine.pmu_lifetime(),
        "{label}: lifetime PMU counters must be identical"
    );
    if batch_enabled(batched_machine) {
        assert!(established, "{label}: fixed point must establish");
        assert!(
            fast_live < total / 2,
            "{label}: batching must actually skip — {fast_live}/{total} ran live"
        );
    }
}

/// Twin scenarios: identical config, options and seed, so the two
/// machines are bit-for-bit the same starting state.
fn twins(cfg: CpuConfig) -> (Scenario, Scenario) {
    let opts = ScenarioOptions::default();
    (Scenario::new(cfg.clone(), &opts), Scenario::new(cfg, &opts))
}

/// TET-MD shape: jitter-free fixed point (the probed line is cache
/// resident after warm-up, so non-matching probes replay verbatim).
#[test]
fn meltdown_sweep_batched_equals_unbatched() {
    for cfg in [
        CpuConfig::kaby_lake_i7_7700(),
        CpuConfig::raptor_lake_i9_13900k(),
    ] {
        let label = format!("md/{}", cfg.name);
        let (mut a, mut b) = twins(cfg.clone());
        let gadget = TetGadget::build(TetGadgetSpec::meltdown(a.kernel_secret_va, &cfg));
        for _ in 0..4 {
            gadget.measure(&mut a.machine, 0);
            gadget.measure(&mut b.machine, 0);
        }
        let hint = gadget.match_hint(&a.machine);
        assert_eq!(hint, gadget.match_hint(&b.machine), "{label}: twin hints");
        assert_batched_equals_unbatched(&label, &mut a.machine, &mut b.machine, hint, |m, t| {
            gadget.measure_detailed(m, t)
        });
    }
}

/// TET-RSB shape: the clflushed return slot costs one DRAM-jitter draw
/// per probe, so replays go through the jitter-normalised path (draw
/// from the live stream, shift every responsive counter) — the arm that
/// must still be cycle-exact against all-live simulation.
#[test]
fn rsb_sweep_batched_equals_unbatched() {
    for cfg in [
        CpuConfig::kaby_lake_i7_7700(),
        CpuConfig::raptor_lake_i9_13900k(),
    ] {
        let label = format!("rsb/{}", cfg.name);
        let (mut a, mut b) = twins(cfg);
        let gadget = RsbGadget::build(a.user_secret_va, STACK_TOP, 96);
        for _ in 0..4 {
            gadget.measure(&mut a.machine, 0);
            gadget.measure(&mut b.machine, 0);
        }
        let hint = gadget.match_hint(&a.machine);
        assert_eq!(hint, gadget.match_hint(&b.machine), "{label}: twin hints");
        assert_batched_equals_unbatched(&label, &mut a.machine, &mut b.machine, hint, |m, t| {
            gadget.measure_detailed(m, t)
        });
    }
}

/// The fan-out case: every (batched, threads) × (unbatched, threads)
/// combination at 1 and 8 workers produces identical per-trial results
/// and identical per-trial counter movement. Each trial restores one
/// shared warmed snapshot (the `transmit_chunked` decomposition), so
/// worker assignment must not matter either.
#[test]
fn batched_fanout_equals_unbatched_at_threads_1_and_8() {
    const TRIALS: usize = 6;
    let cfg = CpuConfig::kaby_lake_i7_7700();
    let sc = Scenario::new(cfg.clone(), &ScenarioOptions::default());
    let gadget = TetGadget::build(TetGadgetSpec::meltdown(sc.kernel_secret_va, &cfg));
    let mut warm = sc.machine.clone();
    for _ in 0..4 {
        gadget.measure(&mut warm, 0);
    }
    let hint = gadget.match_hint(&warm);
    assert!(hint.is_some(), "warmed gadget must predict a hint");
    let snap = warm.snapshot();

    let run = |threads: usize, batched: bool| -> Vec<TrialOutcome> {
        tet_par::run_indexed_with(
            threads,
            TRIALS,
            || Machine::from_snapshot(&snap),
            |m, _i| {
                m.restore(&snap);
                let (out, delta, live, _) =
                    sweep(m, if batched { hint } else { None }, 1, |m, t| {
                        gadget.measure_detailed(m, t)
                    });
                if !batched {
                    assert_eq!(live, 256, "hintless trial must run fully live");
                }
                (out, delta)
            },
        )
    };

    let reference = run(1, false);
    for (threads, batched) in [(1, true), (8, false), (8, true)] {
        let got = run(threads, batched);
        assert_eq!(
            got, reference,
            "threads={threads} batched={batched}: per-trial results and \
             counter movement must match the serial unbatched reference"
        );
    }
}

/// The seeded-sibling fan-out (the `transmit_from_snapshot`
/// decomposition): trials share one established `FixedRec` through an
/// `Arc<OnceLock<..>>` and seed their memos from it. The every-16th
/// live-verification counter ([`VERIFY_EVERY`]) is per-memo state — each
/// trial constructs its own [`ProbeMemo::seeded`] with `skips = 0` — so
/// the sampled-verification cadence must not depend on how `tet_par`
/// interleaves trials across workers. Pinned by byte-equality of every
/// per-probe result and every per-trial counter delta at threads 1 vs 8
/// against the all-live serial reference.
#[test]
fn seeded_sibling_fanout_equals_unbatched_at_threads_1_and_8() {
    const TRIALS: usize = 8;
    // 3 × 256 probes per trial: enough would-be skips that each trial
    // crosses several sampled-verification boundaries on its own.
    const BATCHES: u32 = 3;
    let cfg = CpuConfig::kaby_lake_i7_7700();
    let sc = Scenario::new(cfg.clone(), &ScenarioOptions::default());
    let gadget = TetGadget::build(TetGadgetSpec::meltdown(sc.kernel_secret_va, &cfg));
    let mut warm = sc.machine.clone();
    for _ in 0..4 {
        gadget.measure(&mut warm, 0);
    }
    let hint = gadget.match_hint(&warm);
    assert!(hint.is_some(), "warmed gadget must predict a hint");
    let snap = warm.snapshot();

    type SweepFixedRec = FixedRec<Option<(u64, u64)>>;
    let run_seeded = |threads: usize| -> Vec<TrialOutcome> {
        let fixed: Arc<OnceLock<SweepFixedRec>> = Arc::new(OnceLock::new());
        tet_par::run_indexed_with(
            threads,
            TRIALS,
            || (Machine::from_snapshot(&snap), Arc::clone(&fixed)),
            |(m, fixed), _i| {
                m.restore(&snap);
                let marker = m.delta_marker();
                let mut memo = ProbeMemo::seeded(m, hint, fixed.get().cloned());
                let mut out = Vec::with_capacity(256 * BATCHES as usize);
                let mut live = 0u32;
                for _ in 0..BATCHES {
                    for test in 0..=255u64 {
                        out.push(memo.probe(m, test, |m| {
                            live += 1;
                            gadget.measure_detailed(m, test)
                        }));
                    }
                }
                let delta = m.delta_since(&marker);
                if batch_enabled(m) {
                    let rec = memo.fixed().expect("sweep must establish a fixed point");
                    let _ = fixed.set(rec.clone());
                    // Sampled verifications still fire inside each trial:
                    // a seeded memo must not skip everything forever.
                    let total = 256 * BATCHES;
                    let floor = (total - 256) / VERIFY_EVERY;
                    assert!(
                        live < total && live >= floor.min(1),
                        "seeded trial live probes out of range: {live}/{total}"
                    );
                }
                (out, delta)
            },
        )
    };

    // Serial all-live reference (hintless memos never skip).
    let reference: Vec<TrialOutcome> = tet_par::run_indexed_with(
        1,
        TRIALS,
        || Machine::from_snapshot(&snap),
        |m, _i| {
            m.restore(&snap);
            let (out, delta, live, _) =
                sweep(m, None, BATCHES, |m, t| gadget.measure_detailed(m, t));
            assert_eq!(live, 256 * BATCHES, "hintless trial must run fully live");
            (out, delta)
        },
    );

    for threads in [1, 8] {
        let got = run_seeded(threads);
        assert_eq!(
            got, reference,
            "threads={threads}: seeded-sibling trials must be byte-and-cycle \
             identical to the all-live serial reference"
        );
    }
}

/// The `TET_DELTA` differential on the seeded-sibling fan-out: worker
/// machines restoring the shared snapshot through the journal-driven
/// delta path (DESIGN.md §16) must produce byte-and-cycle identical
/// per-probe results and counter movement to workers using the
/// exhaustive field-by-field restore, at 1 and 8 threads. Restores are
/// the hot edge of this decomposition — every trial forks from the
/// snapshot — so this is where a delta-restore state leak would show.
#[test]
fn seeded_sibling_fanout_is_delta_restore_invariant() {
    const TRIALS: usize = 8;
    const BATCHES: u32 = 2;
    let cfg = CpuConfig::kaby_lake_i7_7700();
    let sc = Scenario::new(cfg.clone(), &ScenarioOptions::default());
    let gadget = TetGadget::build(TetGadgetSpec::meltdown(sc.kernel_secret_va, &cfg));
    let mut warm = sc.machine.clone();
    for _ in 0..4 {
        gadget.measure(&mut warm, 0);
    }
    let hint = gadget.match_hint(&warm);
    assert!(hint.is_some(), "warmed gadget must predict a hint");
    let snap = warm.snapshot();

    type SweepFixedRec = FixedRec<Option<(u64, u64)>>;
    let run_seeded = |threads: usize, delta_on: bool| -> Vec<TrialOutcome> {
        let fixed: Arc<OnceLock<SweepFixedRec>> = Arc::new(OnceLock::new());
        tet_par::run_indexed_with(
            threads,
            TRIALS,
            || {
                let mut m = Machine::from_snapshot(&snap);
                m.set_delta_restore(delta_on);
                (m, Arc::clone(&fixed))
            },
            |(m, fixed), _i| {
                m.restore(&snap);
                let marker = m.delta_marker();
                let mut memo = ProbeMemo::seeded(m, hint, fixed.get().cloned());
                let mut out = Vec::with_capacity(256 * BATCHES as usize);
                for _ in 0..BATCHES {
                    for test in 0..=255u64 {
                        out.push(memo.probe(m, test, |m| gadget.measure_detailed(m, test)));
                    }
                }
                let delta = m.delta_since(&marker);
                if batch_enabled(m) {
                    if let Some(rec) = memo.fixed() {
                        let _ = fixed.set(rec.clone());
                    }
                }
                (out, delta)
            },
        )
    };

    let reference = run_seeded(1, false);
    for (threads, delta_on) in [(1, true), (8, false), (8, true)] {
        let got = run_seeded(threads, delta_on);
        assert_eq!(
            got, reference,
            "threads={threads} delta={delta_on}: delta and exhaustive \
             restores must be byte-and-cycle identical"
        );
    }
}
