//! Every attack, on every CPU preset, under the retirement oracle
//! (DESIGN.md §9).
//!
//! These are the Table 2 scenarios re-run with `Machine::set_check_mode`
//! on: a `tet-check` reference interpreter follows each run's retirement
//! stream and panics on the first architectural divergence. Passing here
//! means the simulator's transient machinery — faults, TSX aborts,
//! squashes, store forwarding — never corrupts architectural state in
//! any attack on any modelled CPU.
//!
//! The SMT Zombieload variant is exempt: dual-thread runs share one
//! memory system and are not oracle-checked (see `tet_uarch::smt`).
//! Randomized coverage of the same property lives in
//! `crates/tet-uarch/tests/fuzz_oracle.rs`, together with the shrunken
//! fixture programs the fuzzer's reducer emits.

use tet_uarch::CpuConfig;
use whisper::attacks::{TetKaslr, TetMeltdown, TetSpectreRsb, TetZombieload};
use whisper::channel::TetCovertChannel;
use whisper::scenario::{Scenario, ScenarioOptions};

/// A fresh scenario for `cfg` with the differential oracle armed.
fn checked_scenario(cfg: &CpuConfig, seed: u64) -> Scenario {
    let opts = ScenarioOptions {
        seed,
        ..ScenarioOptions::default()
    };
    let mut sc = Scenario::new(cfg.clone(), &opts);
    sc.machine.set_check_mode(true);
    sc
}

#[test]
fn covert_channel_verifies_on_every_preset() {
    for cfg in CpuConfig::table2_presets() {
        let mut sc = checked_scenario(&cfg, 3);
        sc.sender_write(0xa5);
        // Only the absence of an oracle panic matters here: the decode
        // may fail on noisy presets, but architectural state must not.
        let _ = TetCovertChannel::new(2).receive_byte(&mut sc);
    }
}

#[test]
fn meltdown_verifies_on_every_preset() {
    for cfg in CpuConfig::table2_presets() {
        let mut sc = checked_scenario(&cfg, 3);
        let va = sc.kernel_secret_va;
        let _ = TetMeltdown::default().leak(&mut sc.machine, va, 4);
    }
}

#[test]
fn zombieload_verifies_on_every_preset() {
    for cfg in CpuConfig::table2_presets() {
        let mut sc = checked_scenario(&cfg, 3);
        for (i, b) in b"LFB!".iter().enumerate() {
            sc.set_victim_byte(i as u64, *b);
        }
        let _ = TetZombieload::default().sample(&mut sc, 4);
    }
}

#[test]
fn spectre_rsb_verifies_on_every_preset() {
    for cfg in CpuConfig::table2_presets() {
        let mut sc = checked_scenario(&cfg, 3);
        let va = sc.user_secret_va;
        let _ = TetSpectreRsb::default().leak(&mut sc.machine, va, 2);
    }
}

#[test]
fn kaslr_verifies_on_every_preset() {
    for cfg in CpuConfig::table2_presets() {
        let mut sc = checked_scenario(&cfg, 3);
        let kernel = sc.kernel;
        let _ = TetKaslr::default().break_kaslr(&mut sc.machine, &kernel);
    }
}

#[test]
fn checked_run_still_reproduces_the_i7_7700_row() {
    // Check mode must be an observer: with the oracle live the flagship
    // preset still recovers every secret exactly as in `tests/table2.rs`.
    let cfg = CpuConfig::kaby_lake_i7_7700();

    let mut sc = checked_scenario(&cfg, 3);
    sc.sender_write(0xa5);
    let (got, _) = TetCovertChannel::new(2).receive_byte(&mut sc);
    assert_eq!(got, 0xa5, "TET-CC under check mode");

    let mut sc = checked_scenario(&cfg, 3);
    let va = sc.kernel_secret_va;
    let r = TetMeltdown::default().leak(&mut sc.machine, va, 4);
    assert_eq!(r.recovered, b"WHIS", "TET-MD under check mode");

    let mut sc = checked_scenario(&cfg, 3);
    let va = sc.user_secret_va;
    let r = TetSpectreRsb::default().leak(&mut sc.machine, va, 2);
    assert_eq!(r.recovered, b"rs", "TET-RSB under check mode");

    let mut sc = checked_scenario(&cfg, 3);
    let kernel = sc.kernel;
    let r = TetKaslr::default().break_kaslr(&mut sc.machine, &kernel);
    assert!(r.success, "TET-KASLR under check mode");
}
