//! Cross-crate end-to-end scenarios: complete attack chains through the
//! whole stack (ISA → pipeline → memory → OS model → attack → analysis).

use tet_os::ContainerEnv;
use tet_uarch::CpuConfig;
use whisper::attacks::{TetKaslr, TetMeltdown, TetSpectreRsb, TetZombieload};
use whisper::baseline::{CacheAttackDetector, FlushReloadMeltdown, PrefetchKaslr};
use whisper::channel::TetCovertChannel;
use whisper::scenario::{Scenario, ScenarioOptions};
use whisper::smt::SmtTetChannel;

#[test]
fn meltdown_leaks_a_full_message_under_noise() {
    let mut sc = Scenario::new(
        CpuConfig::kaby_lake_i7_7700(),
        &ScenarioOptions {
            kernel_secret: b"WHISPER!".to_vec(),
            interrupt_period: 9973,
            ..ScenarioOptions::default()
        },
    );
    let report = TetMeltdown::default().leak(&mut sc.machine, sc.kernel_secret_va, 8);
    assert_eq!(report.recovered, b"WHISPER!");
    assert!(report.bytes_per_sec > 0.0);
    assert!(report.seconds > 0.0);
}

#[test]
fn covert_channel_roundtrips_binary_data() {
    let mut sc = Scenario::new(CpuConfig::skylake_i7_6700(), &ScenarioOptions::default());
    let payload: Vec<u8> = (0..24).map(|i| (i * 37 + 11) as u8).collect();
    let report = TetCovertChannel::new(2).transmit(&mut sc, &payload);
    assert_eq!(report.received, payload);
    assert_eq!(report.error_rate, 0.0);
}

#[test]
fn zombieload_follows_the_victim_across_values() {
    let mut sc = Scenario::new(CpuConfig::skylake_i7_6700(), &ScenarioOptions::default());
    for (i, b) in [0x00u8, 0x7f, 0xff, 0x42].iter().enumerate() {
        sc.set_victim_byte(i as u64, *b);
    }
    let report = TetZombieload::default().sample(&mut sc, 4);
    assert_eq!(report.recovered, vec![0x00, 0x7f, 0xff, 0x42]);
}

#[test]
fn rsb_leaks_without_raising_any_fault() {
    let mut sc = Scenario::new(
        CpuConfig::raptor_lake_i9_13900k(),
        &ScenarioOptions {
            user_secret: b"spectre".to_vec(),
            ..ScenarioOptions::default()
        },
    );
    let before = sc.machine.cpu().pmu.snapshot();
    let report = TetSpectreRsb::default().leak(&mut sc.machine, sc.user_secret_va, 7);
    let delta = sc.machine.cpu().pmu.snapshot().delta(&before);
    assert_eq!(report.recovered, b"spectre");
    // No machine clears: the RSB attack never faults (pure mispredicts).
    assert_eq!(delta.count(tet_pmu::Event::MachineClearsCount), 0);
    assert!(delta.count(tet_pmu::Event::ClflushExecuted) > 0);
}

#[test]
fn kaslr_chain_kpti_flare_docker() {
    // The §4.5 gauntlet in one chain: KPTI + FLARE + Docker, and the
    // prefetch baseline failing where TET succeeds.
    let opts = ScenarioOptions {
        seed: 90210,
        kpti: true,
        flare: true,
        container: ContainerEnv::docker_24(),
        ..ScenarioOptions::default()
    };
    assert!(opts.container.supports_tet_probe());

    let mut sc = Scenario::new(CpuConfig::comet_lake_i9_10980xe(), &opts);
    let tet = TetKaslr {
        assume_kpti: true,
        ..TetKaslr::default()
    };
    let result = tet.break_kaslr(&mut sc.machine, &sc.kernel);
    assert!(
        result.success,
        "KPTI+FLARE+Docker must still fall to TET (found {:?}, true {:#x})",
        result.found_base, sc.kernel.base
    );

    let mut sc = Scenario::new(CpuConfig::comet_lake_i9_10980xe(), &opts);
    let baseline = PrefetchKaslr::default().break_kaslr(&mut sc.machine, &sc.kernel);
    assert!(
        !baseline.success,
        "the prefetch baseline must fail under FLARE"
    );
}

#[test]
fn detector_splits_baseline_from_tet_in_one_session() {
    let mut sc = Scenario::new(CpuConfig::kaby_lake_i7_7700(), &ScenarioOptions::default());
    FlushReloadMeltdown::prepare(&mut sc.machine);
    let detector = CacheAttackDetector::default();
    let secret = sc.kernel_secret_va;

    // Interleave both attacks; the detector must flag each FR window and
    // clear each TET window.
    for _ in 0..3 {
        let before = sc.machine.cpu().pmu.snapshot();
        let fr = FlushReloadMeltdown::default().leak_byte(&mut sc.machine, secret);
        let fr_delta = sc.machine.cpu().pmu.snapshot().delta(&before);
        assert_eq!(fr.value, b'W');
        assert!(detector.inspect(&fr_delta).flagged);

        let before = sc.machine.cpu().pmu.snapshot();
        let tet = TetMeltdown::default().leak_byte(&mut sc.machine, secret);
        let tet_delta = sc.machine.cpu().pmu.snapshot().delta(&before);
        assert_eq!(tet.value, b'W');
        assert!(!detector.inspect(&tet_delta).flagged);
    }
}

#[test]
fn smt_channel_transfers_a_byte_pattern() {
    let bits: Vec<u8> = (0..16).map(|i| (i / 2) % 2).collect();
    let report = SmtTetChannel::prototype().transmit(&CpuConfig::kaby_lake_i7_7700(), 12, &bits);
    assert_eq!(report.received, bits);
    assert!(report.bits_per_sec > 0.0);
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let mut sc = Scenario::new(
            CpuConfig::kaby_lake_i7_7700(),
            &ScenarioOptions {
                seed: 555,
                interrupt_period: 7919,
                ..ScenarioOptions::default()
            },
        );
        let md = TetMeltdown::default().leak(&mut sc.machine, sc.kernel_secret_va, 4);
        (md.recovered, md.cycles)
    };
    assert_eq!(run(), run());
}

#[test]
fn kpti_blocks_meltdown_but_not_the_kaslr_probe() {
    // With KPTI the kernel secret is simply unmapped in user tables:
    // TET-MD cannot leak it (the paper's §6.2 "KPTI is efficient
    // mitigation" for TET-MD), while TET-KASLR still works.
    let mut sc = Scenario::new(
        CpuConfig::skylake_i7_6700(),
        &ScenarioOptions {
            kpti: true,
            seed: 31337,
            ..ScenarioOptions::default()
        },
    );
    let md = TetMeltdown::default().leak(&mut sc.machine, sc.kernel_secret_va, 4);
    assert!(
        !md.succeeded(b"WHIS"),
        "KPTI must stop TET-MD, got {:?}",
        md.recovered
    );
    let kaslr = TetKaslr {
        assume_kpti: true,
        ..TetKaslr::default()
    };
    let r = kaslr.break_kaslr(&mut sc.machine, &sc.kernel);
    assert!(r.success, "KASLR still falls under KPTI");
}
