//! Integration coverage of the §6 defense models: what each mitigation
//! stops, what it does not, and what it costs.

use tet_os::fgkaslr::{FunctionLayout, WELL_KNOWN_FUNCTIONS};
use tet_uarch::CpuConfig;
use whisper::attacks::{TetKaslr, TetMeltdown, TetZombieload};
use whisper::scenario::{Scenario, ScenarioOptions};

#[test]
fn fgkaslr_breaks_offset_tables_without_hiding_the_base() {
    // The base still leaks through TET-KASLR...
    let mut sc = Scenario::new(
        CpuConfig::comet_lake_i9_10980xe(),
        &ScenarioOptions {
            seed: 4242,
            ..ScenarioOptions::default()
        },
    );
    let result = TetKaslr::default().break_kaslr(&mut sc.machine, &sc.kernel);
    assert!(result.success);
    let base = result.found_base.expect("found");

    // ...but code-reuse targeting via the public offset table fails on
    // almost every FGKASLR boot.
    let attacker_table = FunctionLayout::standard(WELL_KNOWN_FUNCTIONS);
    let mut resolved_correctly = 0;
    let boots = 24;
    for boot in 0..boots {
        let truth = FunctionLayout::fgkaslr(WELL_KNOWN_FUNCTIONS, boot);
        let guess = attacker_table.resolve(base, "commit_creds");
        let actual = truth.resolve(base, "commit_creds");
        if guess == actual {
            resolved_correctly += 1;
        }
    }
    assert!(
        resolved_correctly <= boots / 6,
        "the attacker's table must miss on most boots ({resolved_correctly}/{boots} hits)"
    );
}

#[test]
fn kpti_kills_tet_meltdown_against_kernel_data() {
    // §6.2: "For TET-MD and TET-ZBL, the KPTI and the microcode updates
    // released by Intel are efficient mitigation."
    let secret = b"KPTI".to_vec();
    let mut sc = Scenario::new(
        CpuConfig::kaby_lake_i7_7700(), // Meltdown-vulnerable silicon!
        &ScenarioOptions {
            kernel_secret: secret.clone(),
            kpti: true,
            ..ScenarioOptions::default()
        },
    );
    let report = TetMeltdown::default().leak(&mut sc.machine, sc.kernel_secret_va, 4);
    assert!(
        !report.succeeded(&secret),
        "with KPTI the kernel data has no user-side translation to leak \
         through, got {:?}",
        report.recovered
    );
}

#[test]
fn buffer_scrubbing_kills_zombieload_per_transition() {
    let mut sc = Scenario::new(CpuConfig::skylake_i7_6700(), &ScenarioOptions::default());
    sc.set_victim_byte(0, 0x77);

    // Unmitigated control.
    let clean = TetZombieload::default().sample_byte(&mut sc, 0);
    assert_eq!(clean.value, 0x77);

    // Mitigated: scrub between the victim's access and the attacker's
    // probe, as the deployed microcode does on privilege transitions.
    let mut sc = Scenario::new(CpuConfig::skylake_i7_6700(), &ScenarioOptions::default());
    sc.set_victim_byte(0, 0x77);
    use whisper::analysis::{ArgmaxDecoder, Polarity};
    use whisper::gadget::{TetGadget, TetGadgetSpec};
    let cfg = sc.machine.config().clone();
    let gadget = TetGadget::build(TetGadgetSpec::zombieload(0x7f00_dead_0000, &cfg));
    let out = ArgmaxDecoder::new(3, Polarity::MinWins).decode(|test, _| {
        sc.victim_touch(0);
        sc.machine.mem_mut().lfb_mut().clear(); // verw on the boundary
        gadget.measure(&mut sc.machine, test as u64)
    });
    assert_ne!(out.value, 0x77, "scrubbed fill buffers must not leak");
}

#[test]
fn secure_tlb_fix_restores_kaslr() {
    // §6.3: "TLB entries should only be created if the access permission
    // check is passed" — with the fix *and* no walk retries (a permission
    // check folded into the walk), the mapped/unmapped differential is
    // gone and TET-KASLR collapses.
    let mut cfg = CpuConfig::comet_lake_i9_10980xe();
    cfg.vuln.tlb_fill_on_fault = false;
    cfg.vuln.early_fault_abort = true; // fault detected during the walk
    let mut sc = Scenario::new(
        cfg,
        &ScenarioOptions {
            seed: 31,
            ..ScenarioOptions::default()
        },
    );
    let result = TetKaslr::default().break_kaslr(&mut sc.machine, &sc.kernel);
    assert!(
        !result.success,
        "the secure-TLB hardware fix must restore KASLR (found {:?})",
        result.found_base
    );
}

#[test]
fn no_defense_in_this_suite_stops_the_cc_channel() {
    // The core point of §6.1: channel-specific defenses leave the TET
    // mechanism itself intact — TET-CC still works under every software
    // mitigation combination above.
    for (kpti, flare) in [(false, true), (true, false), (true, true)] {
        let mut sc = Scenario::new(
            CpuConfig::kaby_lake_i7_7700(),
            &ScenarioOptions {
                kpti,
                flare,
                ..ScenarioOptions::default()
            },
        );
        sc.sender_write(0x99);
        let (got, _) = whisper::channel::TetCovertChannel::new(2).receive_byte(&mut sc);
        assert_eq!(got, 0x99, "TET-CC must survive kpti={kpti} flare={flare}");
    }
}
