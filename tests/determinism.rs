//! Cross-thread-count determinism: every `tet-par` fan-out must be
//! byte-identical to its serial run (DESIGN.md §8).
//!
//! These tests are valid on any host, including single-CPU machines —
//! with more threads than cores the OS still interleaves workers in a
//! schedule the result must not depend on.

use tet_obs::RunReport;
use tet_uarch::CpuConfig;
use whisper::channel::TetCovertChannel;
use whisper::eval::{run_table2_cell, run_table2_matrix, AttackStatus, TABLE2_ATTACKS};
use whisper::scenario::{Scenario, ScenarioOptions};

const SEEDS: [u64; 3] = [1, 42, 1337];

/// One preset's five Table 2 cells, fanned out on `threads` workers —
/// the per-cell unit `run_table2_matrix` is built from, cheap enough to
/// sweep across seeds in a debug-build test run.
fn row_cells(cfg: &CpuConfig, seed: u64, threads: usize) -> Vec<AttackStatus> {
    tet_par::run_indexed(threads, TABLE2_ATTACKS.len(), |k| {
        run_table2_cell(cfg, seed, k)
    })
}

#[test]
fn table2_cells_identical_at_threads_1_and_8_across_seeds() {
    let cfg = CpuConfig::kaby_lake_i7_7700();
    for seed in SEEDS {
        let serial = row_cells(&cfg, seed, 1);
        let parallel = row_cells(&cfg, seed, 8);
        assert_eq!(serial, parallel, "seed {seed}");
    }
}

#[test]
fn argmax_decode_identical_at_threads_1_and_8_across_seeds() {
    for seed in SEEDS {
        let sc = Scenario::new(
            CpuConfig::kaby_lake_i7_7700(),
            &ScenarioOptions {
                seed,
                ..ScenarioOptions::default()
            },
        );
        // Two chunks (CHUNK_BYTES = 32), decoded with the plain argmax.
        let payload: Vec<u8> = (0..33u8)
            .map(|i| i.wrapping_mul(31).wrapping_add(seed as u8))
            .collect();
        let ch = TetCovertChannel::new(1);
        let serial = ch.transmit_chunked(&sc, &payload, 1);
        assert_eq!(serial.received, payload, "noise-free decode (seed {seed})");
        let parallel = ch.transmit_chunked(&sc, &payload, 8);
        assert_eq!(serial, parallel, "seed {seed}");
    }
}

/// Builds the report a bench binary would write from one matrix result.
fn matrix_report(rows: &[whisper::eval::Table2Row], threads: usize) -> RunReport {
    let mut rep = RunReport::new("determinism_probe");
    for row in rows {
        let ok = row
            .cells()
            .iter()
            .filter(|s| matches!(s, AttackStatus::Success))
            .count();
        rep.counter(&format!("attacks_ok.{}", row.cpu), ok as u64);
        rep.scalar(
            &format!("matches_paper.{}", row.cpu),
            f64::from(row.matches_paper()),
        );
    }
    // Timing fields differ across runs/threads by construction.
    rep.set_throughput(
        std::time::Duration::from_millis(threads as u64),
        threads,
        None,
    );
    rep
}

#[test]
fn matrix_with_telemetry_identical_to_plain_serial_matrix() {
    use whisper::eval::{run_table2_matrix_detailed, run_table2_matrix_observed};
    // Telemetry off, serial — the reference leg.
    let (plain_rows, plain_stats) = run_table2_matrix_detailed(7, 1);
    // Telemetry fully on (host profiler + completion-order observer),
    // 8 threads — covers both "metrics on vs off" and "threads 1 vs 8"
    // in one comparison. The observer sees every cell exactly once.
    let prof = tet_metrics::HostProfiler::new(32);
    let seen = std::sync::atomic::AtomicU64::new(0);
    let (rows, stats) = run_table2_matrix_observed(7, 8, &prof.handle(), |_, cs| {
        seen.fetch_add(cs.runs, std::sync::atomic::Ordering::Relaxed);
    });
    assert_eq!(rows, plain_rows);
    assert_eq!(stats, plain_stats, "PMU-derived counters included");
    assert_eq!(
        seen.load(std::sync::atomic::Ordering::Relaxed),
        stats.runs,
        "observer saw every cell's trials exactly once"
    );
    // Divergence-aware batching replays proven-fixed trials instead of
    // simulating them, and replays are (by design) not host-timed — so
    // the profiler sees the live runs only: at least one, never more
    // than the run count the stats report (live + replayed).
    let run_hits = prof.hits(tet_metrics::Stage::Run);
    assert!(run_hits > 0, "profiler timed the live runs");
    assert!(
        run_hits <= stats.runs,
        "profiler cannot time more runs than the stats report ({run_hits} vs {})",
        stats.runs
    );
}

#[test]
fn full_matrix_and_report_identical_at_threads_1_and_8() {
    let serial = run_table2_matrix(42, 1);
    let parallel = run_table2_matrix(42, 8);
    assert_eq!(serial, parallel);

    let serial_rep = matrix_report(&serial, 1);
    let parallel_rep = matrix_report(&parallel, 8);
    // The timing fields legitimately differ...
    assert_ne!(serial_rep.host_threads, parallel_rep.host_threads);
    // ...and everything else must be byte-identical, down to the JSON.
    assert_eq!(serial_rep.without_timing(), parallel_rep.without_timing());
    assert_eq!(
        serial_rep.without_timing().to_json(),
        parallel_rep.without_timing().to_json()
    );
}
