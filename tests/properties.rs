//! Property-based tests over the full stack.
//!
//! The central property: the out-of-order, speculating pipeline must be
//! *architecturally equivalent* to a simple in-order reference
//! interpreter on arbitrary programs — speculation may only change
//! timing, never results. Plus distribution-level properties of the
//! decoder and the covert channel.

use proptest::prelude::*;
use tet_isa::inst::AluOp;
use tet_isa::{Asm, Cond, Flags, Reg};
use tet_uarch::{CpuConfig, Machine, RunConfig, RunExit};
use whisper::analysis::{ArgmaxDecoder, Polarity};

const DATA_PAGE: u64 = 0x33_0000;

/// One step of the straight-line reference semantics.
#[derive(Debug, Clone, Copy)]
enum Op {
    MovImm(usize, u64),
    MovReg(usize, usize),
    Alu(AluOp, usize, usize),
    AluImm(AluOp, usize, u64),
    Cmp(usize, u64),
    Store(usize, u64),
    Load(usize, u64),
    Nop,
    /// Conditional skip of the next `n` instructions (forward Jcc).
    SkipIf(Cond, usize),
}

/// The registers the generator uses (avoids rsp, which the stack engine
/// owns).
const GEN_REGS: [Reg; 6] = [Reg::Rax, Reg::Rbx, Reg::Rcx, Reg::Rdx, Reg::Rsi, Reg::Rdi];

fn op_strategy() -> impl Strategy<Value = Op> {
    let reg = 0..GEN_REGS.len();
    let alu = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
    ];
    prop_oneof![
        (reg.clone(), any::<u64>()).prop_map(|(r, v)| Op::MovImm(r, v)),
        (reg.clone(), 0..GEN_REGS.len()).prop_map(|(a, b)| Op::MovReg(a, b)),
        (alu.clone(), reg.clone(), 0..GEN_REGS.len()).prop_map(|(op, a, b)| Op::Alu(op, a, b)),
        (alu, reg.clone(), 0..64u64).prop_map(|(op, a, v)| Op::AluImm(op, a, v)),
        (reg.clone(), any::<u64>()).prop_map(|(a, v)| Op::Cmp(a, v)),
        (reg.clone(), 0..32u64).prop_map(|(r, o)| Op::Store(r, o * 8)),
        (reg.clone(), 0..32u64).prop_map(|(r, o)| Op::Load(r, o * 8)),
        Just(Op::Nop),
        (
            prop_oneof![
                Just(Cond::E),
                Just(Cond::Ne),
                Just(Cond::C),
                Just(Cond::S),
                Just(Cond::L),
                Just(Cond::A)
            ],
            1..4usize
        )
            .prop_map(|(c, n)| Op::SkipIf(c, n)),
    ]
}

/// In-order reference execution.
fn reference(ops: &[Op]) -> ([u64; 6], Vec<u64>) {
    let mut regs = [0u64; 6];
    let mut mem = vec![0u64; 32];
    let mut flags = Flags::default();
    let mut i = 0;
    while i < ops.len() {
        match ops[i] {
            Op::MovImm(r, v) => regs[r] = v,
            Op::MovReg(a, b) => regs[a] = regs[b],
            Op::Alu(op, a, b) => {
                let (x, y) = (regs[a], regs[b]);
                regs[a] = op.apply(x, y);
                flags = alu_flags(op, x, y);
            }
            Op::AluImm(op, a, v) => {
                let x = regs[a];
                regs[a] = op.apply(x, v);
                flags = alu_flags(op, x, v);
            }
            Op::Cmp(a, v) => flags = Flags::from_sub(regs[a], v),
            Op::Store(r, o) => mem[(o / 8) as usize] = regs[r],
            Op::Load(r, o) => regs[r] = mem[(o / 8) as usize],
            Op::Nop => {}
            Op::SkipIf(c, n) => {
                if c.eval(flags) {
                    i += n; // skip the next n ops
                }
            }
        }
        i += 1;
    }
    (regs, mem)
}

fn alu_flags(op: AluOp, a: u64, b: u64) -> Flags {
    match op {
        AluOp::Add => Flags::from_add(a, b),
        AluOp::Sub => Flags::from_sub(a, b),
        _ => Flags::from_logic(op.apply(a, b)),
    }
}

/// Assembles the op list for the simulator.
fn assemble(ops: &[Op]) -> tet_isa::Program {
    let mut a = Asm::new();
    // Pre-allocate one label per op position (for skip targets).
    let mut skip_targets: Vec<Option<tet_isa::Label>> = vec![None; ops.len() + 8];
    for (i, op) in ops.iter().enumerate() {
        if let Op::SkipIf(_, n) = op {
            let t = i + 1 + n;
            if skip_targets[t.min(ops.len())].is_none() {
                skip_targets[t.min(ops.len())] = Some(a.fresh_label());
            }
        }
    }
    for (i, op) in ops.iter().enumerate() {
        if let Some(l) = skip_targets[i] {
            a.bind(l);
        }
        match *op {
            Op::MovImm(r, v) => {
                a.mov_imm(GEN_REGS[r], v);
            }
            Op::MovReg(x, y) => {
                a.mov_reg(GEN_REGS[x], GEN_REGS[y]);
            }
            Op::Alu(op, x, y) => {
                a.raw(tet_isa::Inst::Alu {
                    op,
                    dst: GEN_REGS[x],
                    src: tet_isa::Src::Reg(GEN_REGS[y]),
                });
            }
            Op::AluImm(op, x, v) => {
                a.raw(tet_isa::Inst::Alu {
                    op,
                    dst: GEN_REGS[x],
                    src: tet_isa::Src::Imm(v),
                });
            }
            Op::Cmp(x, v) => {
                a.cmp_imm(GEN_REGS[x], v);
            }
            Op::Store(r, o) => {
                a.store_abs(GEN_REGS[r], DATA_PAGE + o);
            }
            Op::Load(r, o) => {
                a.load_abs(GEN_REGS[r], DATA_PAGE + o);
            }
            Op::Nop => {
                a.nop();
            }
            Op::SkipIf(c, n) => {
                let t = (i + 1 + n).min(ops.len());
                let l = skip_targets[t].expect("target label was allocated");
                a.jcc(c, l);
            }
        }
    }
    if let Some(l) = skip_targets[ops.len()] {
        a.bind(l);
    }
    a.halt();
    a.assemble().expect("generated program assembles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Speculation must never change architectural results.
    #[test]
    fn pipeline_matches_reference_semantics(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let prog = assemble(&ops);
        let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 1);
        m.map_user_page(DATA_PAGE);
        let r = m.run(&prog, &RunConfig::default());
        prop_assert_eq!(&r.exit, &RunExit::Halted);

        let (ref_regs, ref_mem) = reference(&ops);
        for (i, reg) in GEN_REGS.iter().enumerate() {
            prop_assert_eq!(
                r.regs.get(*reg),
                ref_regs[i],
                "register {} diverged on {:?}",
                reg,
                ops
            );
        }
        for (slot, expected) in ref_mem.iter().enumerate() {
            let pa = m.aspace().translate(DATA_PAGE + slot as u64 * 8).expect("mapped");
            prop_assert_eq!(m.phys().read_u64(pa), *expected, "mem[{}] diverged", slot);
        }
    }

    /// Identical seeds must give identical cycle counts (determinism).
    #[test]
    fn pipeline_timing_is_deterministic(ops in prop::collection::vec(op_strategy(), 1..24), seed in any::<u64>()) {
        let prog = assemble(&ops);
        let run = |seed| {
            let mut m = Machine::new(CpuConfig::skylake_i7_6700(), seed);
            m.map_user_page(DATA_PAGE);
            m.run(&prog, &RunConfig::default()).cycles
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// The decoder always finds a planted extreme under bounded additive noise.
    #[test]
    fn decoder_finds_planted_offset(
        secret in any::<u8>(),
        base in 50u64..500,
        offset in 12u64..100,
        noise in prop::collection::vec(0u64..10, 256),
    ) {
        let d = ArgmaxDecoder::new(3, Polarity::MaxWins);
        let out = d.decode(|test, batch| {
            let n = noise[(test as usize + batch as usize * 7) % 256];
            Some(base + n + if test == secret { offset } else { 0 })
        });
        prop_assert_eq!(out.value, secret);

        let d = ArgmaxDecoder::new(3, Polarity::MinWins);
        let out = d.decode(|test, batch| {
            let n = noise[(test as usize + batch as usize * 13) % 256];
            Some(base + n + if test == secret { 0 } else { offset })
        });
        prop_assert_eq!(out.value, secret);
    }
}
