//! The headline reproduction result: the full Table 2 attack matrix,
//! compared cell-by-cell against the paper (the paper's "?" cells are
//! skipped, as they were not verified there either).

use tet_uarch::CpuConfig;
use whisper::eval::{paper_table2_row, run_table2_row};

fn check(cfg: CpuConfig, seed: u64) {
    let row = run_table2_row(&cfg, seed);
    let paper = paper_table2_row(cfg.name);
    let labels = ["TET-CC", "TET-MD", "TET-ZBL", "TET-RSB", "TET-KASLR"];
    for ((ours, expected), label) in row.cells().iter().zip(paper).zip(labels) {
        if let Some(expected) = expected {
            assert_eq!(
                *ours, expected,
                "{} on {}: ours {:?}, paper {:?}",
                label, cfg.name, ours, expected
            );
        }
    }
}

#[test]
fn skylake_i7_6700_matches_paper() {
    check(CpuConfig::skylake_i7_6700(), 42);
}

#[test]
fn kaby_lake_i7_7700_matches_paper() {
    check(CpuConfig::kaby_lake_i7_7700(), 42);
}

#[test]
fn comet_lake_i9_10980xe_matches_paper() {
    check(CpuConfig::comet_lake_i9_10980xe(), 42);
}

#[test]
fn raptor_lake_i9_13900k_matches_paper() {
    check(CpuConfig::raptor_lake_i9_13900k(), 42);
}

#[test]
fn zen3_ryzen5_5600g_matches_paper() {
    check(CpuConfig::zen3_ryzen5_5600g(), 42);
}

#[test]
fn matrix_is_stable_across_kaslr_seeds() {
    // The ✓/✗ pattern must not depend on where KASLR landed.
    for seed in [7, 1000003] {
        check(CpuConfig::kaby_lake_i7_7700(), seed);
        check(CpuConfig::zen3_ryzen5_5600g(), seed);
    }
}
