//! Golden ToTE-curve regression for the Kaby Lake Table 2 preset.
//!
//! The hot-path data-structure work (indexed caches/TLBs, O(1) DSB/BTB,
//! waiter-based scheduling) is a *representation* change: every run must
//! stay cycle-accurate to the linear-scan implementations it replaced.
//! This test pins the full 256-point ToTE curve of the Figure 1a
//! covert-channel gadget — warm-up run plus one probe per test value,
//! exactly the §4.1 decode sweep — against a committed golden file
//! generated from the pre-refactor simulator. Any scheduling, cache
//! replacement, predictor or fault-timing deviation shows up as a
//! changed cycle count somewhere on the curve.
//!
//! Regenerate with `TET_REGEN_GOLDEN=1 cargo test --test golden_tote`
//! (only legitimate after an *intentional* model change).

use std::fmt::Write as _;
use std::path::Path;

use tet_uarch::CpuConfig;
use whisper::gadget::{TetGadget, TetGadgetSpec};
use whisper::scenario::{Scenario, ScenarioOptions};

// Relative to the whisper crate manifest (this test is wired into that
// crate; see `crates/whisper/Cargo.toml`).
const GOLDEN_PATH: &str = "../../tests/golden/tote_kaby_lake_i7_7700.txt";
const SENT_BYTE: u8 = 0xa5;

/// One line per probe: `test tote run_cycles`, preceded by the warm-up.
fn render_curve() -> String {
    let cfg = CpuConfig::kaby_lake_i7_7700();
    let mut sc = Scenario::new(cfg.clone(), &ScenarioOptions::default());
    sc.sender_write(SENT_BYTE);
    let gadget = TetGadget::build(TetGadgetSpec::covert_channel(sc.shared_page(), &cfg));

    let mut out = String::new();
    let (tote, cycles) = gadget
        .measure_detailed(&mut sc.machine, 0)
        .expect("warm-up run completes");
    writeln!(out, "warmup {tote} {cycles}").unwrap();
    for test in 0..=255u64 {
        let (tote, cycles) = gadget
            .measure_detailed(&mut sc.machine, test)
            .expect("probe run completes");
        writeln!(out, "{test} {tote} {cycles}").unwrap();
    }
    out
}

#[test]
fn tote_curve_matches_golden() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    let curve = render_curve();
    if std::env::var_os("TET_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &curve).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        curve, golden,
        "ToTE curve deviates from the golden Kaby Lake sweep — the \
         simulator's cycle behaviour changed"
    );
}
