//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the subset of proptest it uses: `Strategy` with
//! `prop_map`, `Just`, `any`, ranges and tuples as strategies,
//! `prop_oneof!` (weighted and unweighted), `prop::collection::vec`,
//! `prop::sample::select`, the `proptest!` test macro and the
//! `prop_assert*` macros.
//!
//! Semantics: random case generation only — **no shrinking**. A failing
//! case panics with the normal assertion message; the deterministic
//! per-test-name RNG makes every failure reproducible run-to-run.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod test_runner {
    //! The deterministic case generator behind `proptest!`.

    /// Splitmix64 RNG seeded from the test name — deterministic across
    /// runs so failures reproduce.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded by hashing `name`.
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

use test_runner::TestRng;

/// Per-test-block configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps the cycle-level pipeline
        // property tests fast while still exploring broadly.
        ProptestConfig { cases: 64 }
    }
}

/// A value generator (subset of `proptest::strategy::Strategy`).
///
/// Unlike real proptest there is no value tree and no shrinking — a
/// strategy just produces values from an RNG.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.new_value(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (subset of `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "strategy range is empty");
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi - lo) as u128 + 1;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A);
impl_strategy_for_tuple!(A, B);
impl_strategy_for_tuple!(A, B, C);
impl_strategy_for_tuple!(A, B, C, D);
impl_strategy_for_tuple!(A, B, C, D, E);

/// A weighted union of same-valued strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.new_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick is within the total")
    }
}

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A size specification: an exact length or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling strategies (subset of `proptest::sample`).

    use super::{Strategy, TestRng};

    /// The strategy returned by [`select`].
    #[derive(Clone)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.items[(rng.next_u64() % self.items.len() as u64) as usize].clone()
        }
    }

    /// A strategy choosing uniformly among `items`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select needs at least one item");
        Select { items }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// A union of strategies producing the same value type, optionally
/// weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@impl $cfg; $($rest)*}
    };
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@impl $crate::ProptestConfig::default(); $($rest)*}
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Pick {
        A,
        B(u64),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..=4, z in -8i64..8) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-8..8).contains(&z));
        }

        #[test]
        fn oneof_map_and_vec_compose(
            v in prop::collection::vec(
                prop_oneof![
                    3 => Just(Pick::A),
                    1 => (0u64..10).prop_map(Pick::B),
                ],
                1..20,
            )
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for p in v {
                match p {
                    Pick::A => {}
                    Pick::B(n) => prop_assert!(n < 10),
                }
            }
        }

        #[test]
        fn select_draws_members(r in prop::sample::select(vec![2u32, 4, 8])) {
            prop_assert!(r == 2 || r == 4 || r == 8);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
