//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the small API surface its benches use: `Criterion`,
//! `benchmark_group` / `bench_function`, `Bencher::iter`, `Throughput`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: a short warm-up, then timed batches until either
//! `sample_size` batches or the time budget elapse; reports the median
//! ns/iter to stdout. No plots, no statistics machinery — just a stable,
//! dependency-free way to keep `cargo bench` compiling and producing
//! comparable numbers.

use std::time::{Duration, Instant};

/// Throughput annotation (accepted and echoed, not analysed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Opaque-to-the-optimiser value sink.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The timing loop handed to bench closures.
pub struct Bencher {
    samples: Vec<f64>,
    budget: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting per-iteration samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-batch iteration calibration.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_batch = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000);

        let deadline = Instant::now() + self.budget;
        while self.samples.len() < self.sample_size && Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / per_batch as f64);
        }
    }

    fn median_ns(&mut self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        self.samples[self.samples.len() / 2]
    }
}

/// The bench driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            budget: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.budget,
            sample_size: self.sample_size,
        };
        f(&mut b);
        let ns = b.median_ns();
        println!(
            "bench: {name:<40} {:>12.0} ns/iter (median of {})",
            ns,
            b.samples.len()
        );
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timing samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(2);
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.parent.bench_function(&full, f);
        if let Some(t) = self.throughput {
            println!("bench: {full:<40}   throughput annotation: {t:?}");
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a bench group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion {
            sample_size: 3,
            budget: Duration::from_millis(50),
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_shape() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
