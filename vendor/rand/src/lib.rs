//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the *tiny* subset of the `rand` 0.8 API it actually
//! uses: `StdRng::seed_from_u64`, `Rng::gen`/`gen_range`, and
//! `SliceRandom::shuffle`. The generator is splitmix64 — deterministic
//! per seed, which is all the simulator needs (DRAM jitter streams,
//! KASLR slot draws, test data). It makes no cryptographic claims.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types a generator can produce uniformly (subset of `Standard`).
pub trait FromRandom {
    /// Derives a value of this type from one 64-bit draw.
    fn from_random(bits: u64) -> Self;
}

macro_rules! impl_from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            #[inline]
            fn from_random(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}
impl_from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for bool {
    #[inline]
    fn from_random(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// Ranges a generator can sample a `T` from (subset of `SampleRange<T>`).
///
/// Generic over the output type — like the real crate — so integer-literal
/// ranges (`0..=1`) infer their type from the call site.
pub trait SampleRange<T> {
    /// Draws one value using `next` as the entropy source.
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "gen_range on an empty range");
                let span = (hi - lo) as u128;
                (lo + (next() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "gen_range on an empty range");
                let span = (hi - lo) as u128 + 1;
                (lo + (next() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value of an inferred primitive type.
    #[inline]
    fn gen<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_random(self.next_u64())
    }

    /// A uniform value in `range` (`a..b` or `a..=b`).
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(&mut || self.next_u64())
    }

    /// True with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Slice helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// In-place slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = r.gen_range(0..=5);
            assert!(w <= 5);
            let s: i64 = r.gen_range(-16i64..16);
            assert!((-16..16).contains(&s));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should move something");
    }
}
