#!/usr/bin/env bash
# Core hot-path benchmark driver.
#
#   scripts/bench.sh           full run: criterion benches + BENCH_core.json
#   scripts/bench.sh --smoke   CI-sized run: BENCH_core.json only, few iters
#
# Extra args are forwarded to bench_core; in particular
# `--baseline PATH` fails the run when sim_cycles_per_sec drops below
# 70% of a previously committed report, or table2.ns_per_trial rises
# past 1/0.7x of it (CI regression gate).
#
# Writes BENCH_core.json at the repository root (schema-v2 RunReport JSON):
# fig1 gadget ns/iter, decode-sweep ns/iter, and Table 2 matrix wall time
# at --threads 1 vs 8 with the measured speedup.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=full
if [[ "${1:-}" == "--smoke" ]]; then
  MODE=smoke
  shift
fi

if [[ "$MODE" == full ]]; then
  cargo bench -p whisper-bench
  cargo run --release -p whisper-bench --bin bench_core -- "$@"
else
  cargo run --release -p whisper-bench --bin bench_core -- --smoke "$@"
fi

echo "bench done (mode: $MODE) -> BENCH_core.json"
