#!/usr/bin/env bash
# Regenerates every table and figure of the paper in sequence.
# Each binary asserts its own headline claim and exits non-zero on a
# reproduction failure, so this script doubles as a full repro check.
set -euo pipefail
cd "$(dirname "$0")/.."

BINS=(
    fig1_tote
    table1_stateless
    table2_matrix
    table3_pmu
    fig2_toolset
    fig3_resteer
    fig4_flow
    sec41_throughput
    sec44_smt
    sec45_kaslr
    ablation_noise
    ablation_mechanism
    ablation_jcc
    ablation_defenses
    ablation_sensitivity
)

for bin in "${BINS[@]}"; do
    echo "================================================================"
    echo ">>> $bin"
    echo "================================================================"
    cargo run --release -q -p whisper-bench --bin "$bin"
done

echo
echo "All ${#BINS[@]} experiments reproduced."
