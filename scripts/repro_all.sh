#!/usr/bin/env bash
# Regenerates every table and figure of the paper in sequence.
# Each binary asserts its own headline claim and exits non-zero on a
# reproduction failure, so this script doubles as a full repro check.
#
# With --json, the per-experiment console output is silenced and each
# binary's structured run report (see EXPERIMENTS.md) is collected into
# REPORT_DIR (default target/reports), with a one-line summary per bin.
set -euo pipefail
cd "$(dirname "$0")/.."

JSON=0
if [[ "${1:-}" == "--json" ]]; then
    JSON=1
    shift
fi

BINS=(
    fig1_tote
    table1_stateless
    table2_matrix
    table3_pmu
    fig2_toolset
    fig3_resteer
    fig4_flow
    sec41_throughput
    sec44_smt
    sec45_kaslr
    ablation_noise
    ablation_mechanism
    ablation_jcc
    ablation_defenses
    ablation_sensitivity
)

if [[ "$JSON" == 1 ]]; then
    REPORT_DIR="${TET_REPORT_DIR:-target/reports}"
    mkdir -p "$REPORT_DIR"
    for bin in "${BINS[@]}"; do
        if TET_QUIET=1 TET_REPORT_DIR="$REPORT_DIR" \
            cargo run --release -q -p whisper-bench --bin "$bin" >/dev/null 2>&1; then
            status=ok
        else
            status=FAILED
        fi
        report="$REPORT_DIR/$bin.json"
        if [[ -f "$report" ]]; then
            printf '%-22s %-7s %s\n' "$bin" "$status" "$report"
        else
            printf '%-22s %-7s %s\n' "$bin" "$status" "(no report written)"
        fi
        [[ "$status" == ok ]] || exit 1
    done
    echo
    echo "All ${#BINS[@]} experiments reproduced; reports in $REPORT_DIR/."
    exit 0
fi

for bin in "${BINS[@]}"; do
    echo "================================================================"
    echo ">>> $bin"
    echo "================================================================"
    cargo run --release -q -p whisper-bench --bin "$bin"
done

echo
echo "All ${#BINS[@]} experiments reproduced."
