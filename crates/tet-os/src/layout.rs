//! The kernel image region and its KASLR slots.
//!
//! Linux places the kernel image inside the fixed interval
//! `0xffffffff80000000 – 0xffffffffc0000000` (paper §4.5, citing the AVX
//! Timing work). KASLR chooses a 2 MiB-aligned base inside it, giving
//! 512 candidate slots — the number the paper traverses to break KASLR
//! under KPTI "within 1 s".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lowest possible kernel image base.
pub const KERNEL_REGION_START: u64 = 0xffff_ffff_8000_0000;

/// One-past-the-highest kernel image address.
pub const KERNEL_REGION_END: u64 = 0xffff_ffff_c000_0000;

/// KASLR slot granularity (2 MiB).
pub const SLOT_SIZE: u64 = 0x20_0000;

/// Number of candidate KASLR slots (512).
pub const NUM_SLOTS: u64 = (KERNEL_REGION_END - KERNEL_REGION_START) / SLOT_SIZE;

/// Fixed offset of the KPTI entry trampoline from the kernel base
/// (paper §4.5: "this remnant trampoline at fixed offset 0xe00000").
pub const KPTI_TRAMPOLINE_OFFSET: u64 = 0xe0_0000;

/// The base virtual address of KASLR slot `slot`.
///
/// # Panics
///
/// Panics if `slot >= NUM_SLOTS`.
///
/// # Examples
///
/// ```
/// use tet_os::layout::{slot_base, KERNEL_REGION_START, SLOT_SIZE};
/// assert_eq!(slot_base(0), KERNEL_REGION_START);
/// assert_eq!(slot_base(1), KERNEL_REGION_START + SLOT_SIZE);
/// ```
pub fn slot_base(slot: u64) -> u64 {
    assert!(slot < NUM_SLOTS, "slot {slot} out of range");
    KERNEL_REGION_START + slot * SLOT_SIZE
}

/// The KASLR slot containing `vaddr`, or `None` outside the region.
pub fn slot_of(vaddr: u64) -> Option<u64> {
    if (KERNEL_REGION_START..KERNEL_REGION_END).contains(&vaddr) {
        Some((vaddr - KERNEL_REGION_START) / SLOT_SIZE)
    } else {
        None
    }
}

/// A randomized KASLR placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KaslrSlot {
    /// Chosen slot index.
    pub slot: u64,
    /// Kernel image base address (`slot_base(slot)`).
    pub base: u64,
}

impl KaslrSlot {
    /// Draws a placement from a seeded RNG, leaving room for an image of
    /// `image_slots` slots at the top of the region.
    ///
    /// # Panics
    ///
    /// Panics if `image_slots` is zero or exceeds [`NUM_SLOTS`].
    pub fn randomize(seed: u64, image_slots: u64) -> KaslrSlot {
        assert!(
            image_slots > 0 && image_slots <= NUM_SLOTS,
            "image must fit the region"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let slot = rng.gen_range(0..=(NUM_SLOTS - image_slots));
        KaslrSlot {
            slot,
            base: slot_base(slot),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_has_512_slots() {
        assert_eq!(NUM_SLOTS, 512);
    }

    #[test]
    fn slot_base_round_trips_with_slot_of() {
        for slot in [0, 1, 17, 255, 511] {
            assert_eq!(slot_of(slot_base(slot)), Some(slot));
            assert_eq!(slot_of(slot_base(slot) + SLOT_SIZE - 1), Some(slot));
        }
        assert_eq!(slot_of(KERNEL_REGION_START - 1), None);
        assert_eq!(slot_of(KERNEL_REGION_END), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_base_rejects_out_of_range() {
        let _ = slot_base(NUM_SLOTS);
    }

    #[test]
    fn randomize_is_deterministic_and_in_range() {
        let a = KaslrSlot::randomize(7, 16);
        let b = KaslrSlot::randomize(7, 16);
        assert_eq!(a, b);
        assert!(a.slot <= NUM_SLOTS - 16);
        assert_eq!(a.base, slot_base(a.slot));
    }

    #[test]
    fn different_seeds_spread_across_slots() {
        let slots: std::collections::HashSet<u64> =
            (0..64).map(|s| KaslrSlot::randomize(s, 16).slot).collect();
        assert!(slots.len() > 16, "seeds should hit many distinct slots");
    }

    #[test]
    fn trampoline_offset_within_image_span() {
        // The trampoline offset (0xe00000) lies within an 8-slot image,
        // and is itself slot-aligned (the KPTI probe sweep relies on it).
        let offset_slots = KPTI_TRAMPOLINE_OFFSET / SLOT_SIZE;
        assert!(offset_slots < 8);
        assert_eq!(KPTI_TRAMPOLINE_OFFSET % SLOT_SIZE, 0);
        assert_eq!(
            slot_base(offset_slots) - KERNEL_REGION_START,
            KPTI_TRAMPOLINE_OFFSET
        );
    }
}
