//! Container (Docker) environments — §4.5's virtualization experiment.
//!
//! The paper demonstrates TET-KASLR inside Docker 24.0.1 (runc). A
//! container shares the host kernel, so the kernel image mappings visible
//! to a containerized process are identical to the host's; what changes
//! is which *auxiliary* probe primitives remain available. TET-KASLR
//! needs only faulting user loads and `rdtsc`, neither of which default
//! seccomp profiles block — which is why the attack carries over.

/// A container runtime environment description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerEnv {
    /// Runtime name, e.g. `"runc"`.
    pub runtime: &'static str,
    /// Engine version string.
    pub version: &'static str,
    /// Whether the seccomp profile permits `perf`-style PMU access
    /// (default Docker: no — attacks must not depend on the PMU).
    pub pmu_access: bool,
    /// Whether unprivileged `rdtsc` is available (x86 containers: yes).
    pub rdtsc_access: bool,
    /// Whether arbitrary faulting loads are possible (always: SIGSEGV
    /// handling is plain userspace).
    pub faulting_loads: bool,
}

impl ContainerEnv {
    /// The Docker environment evaluated in the paper
    /// (Docker 24.0.1, build 6802122, runc).
    pub fn docker_24() -> Self {
        ContainerEnv {
            runtime: "runc",
            version: "24.0.1",
            pmu_access: false,
            rdtsc_access: true,
            faulting_loads: true,
        }
    }

    /// Bare-metal (no container) — everything available.
    pub fn bare_metal() -> Self {
        ContainerEnv {
            runtime: "none",
            version: "-",
            pmu_access: true,
            rdtsc_access: true,
            faulting_loads: true,
        }
    }

    /// Whether the TET-KASLR probe sequence (faulting load + `rdtsc`)
    /// can run in this environment.
    pub fn supports_tet_probe(&self) -> bool {
        self.rdtsc_access && self.faulting_loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn docker_supports_tet_but_not_pmu() {
        let d = ContainerEnv::docker_24();
        assert!(d.supports_tet_probe());
        assert!(!d.pmu_access);
    }

    #[test]
    fn bare_metal_supports_everything() {
        let b = ContainerEnv::bare_metal();
        assert!(b.supports_tet_probe());
        assert!(b.pmu_access);
    }
}
