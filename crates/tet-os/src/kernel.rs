//! Building a randomized kernel image into an address space, with KPTI
//! and FLARE.

use tet_mem::{AddressSpace, FrameAlloc, Pte};

use crate::layout::{slot_base, KaslrSlot, KPTI_TRAMPOLINE_OFFSET, NUM_SLOTS, SLOT_SIZE};

/// Configuration for [`Kernel::install`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// KASLR seed.
    pub seed: u64,
    /// Image size in 2 MiB slots (Linux images span tens of MiB; the
    /// default of 16 slots = 32 MiB).
    pub image_slots: u64,
    /// Kernel page-table isolation: the user-visible tables retain only
    /// the entry trampoline at the fixed `+0xe00000` offset.
    pub kpti: bool,
    /// FLARE: dummy mappings across every unused slot so that
    /// presence-based probes (prefetch/EntryBleed-style) see uniform
    /// behaviour over the whole region.
    pub flare: bool,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            seed: 0,
            image_slots: 16,
            kpti: false,
            flare: false,
        }
    }
}

/// A kernel image installed into an attacker-visible address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Kernel {
    /// Randomized image base (the value KASLR hides).
    pub base: u64,
    /// The KASLR slot index of the base.
    pub slot: u64,
    /// Image size in slots.
    pub image_slots: u64,
    /// Virtual address of the KPTI entry trampoline
    /// (`base + 0xe00000`; note `0xe00000 == 7 * SLOT_SIZE`, so the
    /// trampoline is itself slot-aligned).
    pub trampoline: u64,
    /// Whether KPTI is active.
    pub kpti: bool,
    /// Whether FLARE is active.
    pub flare: bool,
    /// Virtual address of the page holding the simulated kernel secret
    /// (for TET-Meltdown) — the first image page.
    pub secret_va: u64,
}

impl Kernel {
    /// Randomizes a placement and installs the kernel mappings into the
    /// attacker-visible address space `aspace`.
    ///
    /// * Without KPTI: the base page of every image slot is mapped
    ///   supervisor-only (user access faults on permissions but the
    ///   *translation exists* — the TET-KASLR substrate).
    /// * With KPTI: only the trampoline page is mapped.
    /// * With FLARE: every unmapped slot base in the region receives a
    ///   reserved-bit dummy PTE.
    pub fn install(
        cfg: &KernelConfig,
        aspace: &mut AddressSpace,
        frames: &mut FrameAlloc,
    ) -> Kernel {
        assert!(
            cfg.image_slots > KPTI_TRAMPOLINE_OFFSET / SLOT_SIZE,
            "image must span past the trampoline offset"
        );
        let placement = KaslrSlot::randomize(cfg.seed, cfg.image_slots);
        let base = placement.base;
        let trampoline = base + KPTI_TRAMPOLINE_OFFSET;

        if cfg.kpti {
            // User-visible tables: only the trampoline survives.
            aspace.map_page(trampoline, Pte::kernel(frames.alloc()));
        } else {
            for s in 0..cfg.image_slots {
                aspace.map_page(base + s * SLOT_SIZE, Pte::kernel(frames.alloc()));
            }
        }

        if cfg.flare {
            for slot in 0..NUM_SLOTS {
                let va = slot_base(slot);
                if !aspace.walk(va).0.is_mapped() {
                    aspace.map_page(va, Pte::flare_dummy());
                }
            }
        }

        Kernel {
            base,
            slot: placement.slot,
            image_slots: cfg.image_slots,
            trampoline,
            kpti: cfg.kpti,
            flare: cfg.flare,
            secret_va: base,
        }
    }

    /// The virtual base address of image slot `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= image_slots`.
    pub fn image_slot_base(&self, i: u64) -> u64 {
        assert!(i < self.image_slots, "image slot out of range");
        self.base + i * SLOT_SIZE
    }

    /// Whether `vaddr` falls inside the image span.
    pub fn contains(&self, vaddr: u64) -> bool {
        (self.base..self.base + self.image_slots * SLOT_SIZE).contains(&vaddr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::KERNEL_REGION_START;
    use tet_mem::WalkOutcome;

    fn install(cfg: &KernelConfig) -> (Kernel, AddressSpace) {
        let mut aspace = AddressSpace::new();
        let mut frames = FrameAlloc::starting_at(0x500);
        let k = Kernel::install(cfg, &mut aspace, &mut frames);
        (k, aspace)
    }

    #[test]
    fn plain_kernel_maps_every_image_slot_supervisor() {
        let (k, aspace) = install(&KernelConfig {
            seed: 3,
            ..KernelConfig::default()
        });
        for s in 0..k.image_slots {
            match aspace.walk(k.image_slot_base(s)).0 {
                WalkOutcome::Mapped(pte) => {
                    assert!(!pte.user, "kernel pages are supervisor-only");
                    assert!(pte.global);
                }
                other => panic!("image slot {s} not mapped: {other:?}"),
            }
        }
        // A non-image slot is unmapped.
        let probe = if k.slot > 0 {
            slot_base(k.slot - 1)
        } else {
            slot_base(k.slot + k.image_slots)
        };
        assert!(!aspace.walk(probe).0.is_mapped());
    }

    #[test]
    fn kpti_exposes_only_the_trampoline() {
        let (k, aspace) = install(&KernelConfig {
            seed: 5,
            kpti: true,
            ..KernelConfig::default()
        });
        assert!(aspace.walk(k.trampoline).0.is_mapped());
        assert!(!aspace.walk(k.base).0.is_mapped());
        assert_eq!(aspace.mapped_pages(), 1);
        assert_eq!(k.trampoline, k.base + 0xe0_0000);
    }

    #[test]
    fn flare_covers_every_unused_slot_with_reserved_dummies() {
        let (k, aspace) = install(&KernelConfig {
            seed: 9,
            flare: true,
            ..KernelConfig::default()
        });
        let mut real = 0;
        let mut dummy = 0;
        for slot in 0..NUM_SLOTS {
            match aspace.walk(slot_base(slot)).0 {
                WalkOutcome::Mapped(_) => real += 1,
                WalkOutcome::ReservedBit => dummy += 1,
                WalkOutcome::NotPresent { .. } => panic!("slot {slot} left uncovered"),
            }
        }
        assert_eq!(real, k.image_slots);
        assert_eq!(dummy, NUM_SLOTS - k.image_slots);
    }

    #[test]
    fn kpti_plus_flare_hides_everything_but_the_trampoline() {
        let (k, aspace) = install(&KernelConfig {
            seed: 11,
            kpti: true,
            flare: true,
            ..KernelConfig::default()
        });
        let mapped: Vec<u64> = (0..NUM_SLOTS)
            .map(slot_base)
            .filter(|&va| aspace.walk(va).0.is_mapped())
            .collect();
        assert_eq!(mapped, vec![k.trampoline]);
    }

    #[test]
    fn placement_is_seed_deterministic() {
        let (a, _) = install(&KernelConfig {
            seed: 42,
            ..KernelConfig::default()
        });
        let (b, _) = install(&KernelConfig {
            seed: 42,
            ..KernelConfig::default()
        });
        assert_eq!(a.base, b.base);
        assert!(a.base >= KERNEL_REGION_START);
    }

    #[test]
    fn contains_spans_the_image() {
        let (k, _) = install(&KernelConfig {
            seed: 1,
            ..KernelConfig::default()
        });
        assert!(k.contains(k.base));
        assert!(k.contains(k.base + 16 * SLOT_SIZE - 1));
        assert!(!k.contains(k.base + 16 * SLOT_SIZE));
    }

    #[test]
    #[should_panic(expected = "trampoline offset")]
    fn tiny_image_rejected() {
        let mut aspace = AddressSpace::new();
        let mut frames = FrameAlloc::starting_at(1);
        let _ = Kernel::install(
            &KernelConfig {
                image_slots: 4,
                ..KernelConfig::default()
            },
            &mut aspace,
            &mut frames,
        );
    }
}
