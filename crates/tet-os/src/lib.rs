//! OS model for the Whisper (DAC 2024) reproduction.
//!
//! Models the pieces of Linux that TET-KASLR (paper §4.5) interacts with:
//!
//! * [`layout`] — the fixed kernel image region
//!   `0xffffffff80000000..0xffffffffc0000000` and its 512 possible
//!   2 MiB-aligned KASLR slots;
//! * [`kernel`] — building a randomized kernel image into an address
//!   space, with optional **KPTI** (user-visible tables retain only the
//!   entry trampoline at the fixed `+0xe00000` offset) and **FLARE**
//!   (dummy mappings covering the unused region so presence probes see
//!   uniform behaviour);
//! * [`container`] — the Docker-style environment of §4.5 (namespaced
//!   userland, same kernel mappings — which is exactly why TET-KASLR
//!   still works inside it).
//!
//! # Examples
//!
//! ```
//! use tet_mem::{AddressSpace, FrameAlloc};
//! use tet_os::{Kernel, KernelConfig};
//!
//! let mut aspace = AddressSpace::new();
//! let mut frames = FrameAlloc::starting_at(0x100);
//! let kernel = Kernel::install(
//!     &KernelConfig { seed: 42, ..KernelConfig::default() },
//!     &mut aspace,
//!     &mut frames,
//! );
//! assert!(kernel.base >= tet_os::layout::KERNEL_REGION_START);
//! assert!(aspace.walk(kernel.base).0.is_mapped());
//! ```

#![warn(missing_docs)]

pub mod container;
pub mod fgkaslr;
pub mod kernel;
pub mod layout;

pub use container::ContainerEnv;
pub use fgkaslr::{FunctionLayout, KernelFunction};
pub use kernel::{Kernel, KernelConfig};
pub use layout::{slot_base, slot_of, KaslrSlot, KERNEL_REGION_START, NUM_SLOTS, SLOT_SIZE};
