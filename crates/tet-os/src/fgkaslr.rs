//! Function-granular KASLR (FGKASLR) — the software mitigation the paper
//! recommends against TET-KASLR (§6.2).
//!
//! Plain KASLR randomizes one base; once TET-KASLR leaks it, every
//! kernel function sits at a known constant offset and code-reuse
//! attacks proceed. FGKASLR additionally shuffles the *order of
//! functions* inside the image at boot, so a leaked base no longer
//! resolves function addresses. The paper notes it "comes with high
//! performance overhead" — the shuffled layout destroys code locality,
//! which the `ablation_defenses` experiment measures on the simulator.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// One kernel function: name and size in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelFunction {
    /// Symbol name.
    pub name: &'static str,
    /// Function size in bytes.
    pub size: u64,
}

/// A representative set of exploit-relevant kernel symbols with
/// plausible sizes, used by tests and the defense experiments.
pub const WELL_KNOWN_FUNCTIONS: &[KernelFunction] = &[
    KernelFunction {
        name: "commit_creds",
        size: 0x180,
    },
    KernelFunction {
        name: "prepare_kernel_cred",
        size: 0x240,
    },
    KernelFunction {
        name: "native_write_cr4",
        size: 0x40,
    },
    KernelFunction {
        name: "do_syscall_64",
        size: 0x3c0,
    },
    KernelFunction {
        name: "copy_from_user",
        size: 0x200,
    },
    KernelFunction {
        name: "copy_to_user",
        size: 0x200,
    },
    KernelFunction {
        name: "kmalloc",
        size: 0x2c0,
    },
    KernelFunction {
        name: "kfree",
        size: 0x1c0,
    },
    KernelFunction {
        name: "msleep",
        size: 0x80,
    },
    KernelFunction {
        name: "panic",
        size: 0x300,
    },
    KernelFunction {
        name: "printk",
        size: 0x140,
    },
    KernelFunction {
        name: "schedule",
        size: 0x380,
    },
];

/// The function→offset map of one booted kernel image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionLayout {
    offsets: HashMap<&'static str, u64>,
    order: Vec<&'static str>,
    fgkaslr: bool,
}

impl FunctionLayout {
    fn build(functions: &[KernelFunction], order: Vec<usize>, fgkaslr: bool) -> FunctionLayout {
        let mut offsets = HashMap::with_capacity(functions.len());
        let mut names = Vec::with_capacity(functions.len());
        let mut cursor = 0u64;
        for idx in order {
            let f = functions[idx];
            offsets.insert(f.name, cursor);
            names.push(f.name);
            // 16-byte function alignment, like the linker's.
            cursor += (f.size + 15) & !15;
        }
        FunctionLayout {
            offsets,
            order: names,
            fgkaslr,
        }
    }

    /// The link-order layout every kernel build of a given version
    /// shares — what the attacker's offset table is derived from.
    pub fn standard(functions: &[KernelFunction]) -> FunctionLayout {
        Self::build(functions, (0..functions.len()).collect(), false)
    }

    /// An FGKASLR boot: the function order is shuffled per boot seed.
    pub fn fgkaslr(functions: &[KernelFunction], boot_seed: u64) -> FunctionLayout {
        let mut order: Vec<usize> = (0..functions.len()).collect();
        order.shuffle(&mut StdRng::seed_from_u64(boot_seed));
        Self::build(functions, order, true)
    }

    /// Whether this layout was produced by FGKASLR.
    pub fn is_fgkaslr(&self) -> bool {
        self.fgkaslr
    }

    /// The offset of `name` from the image base, if the symbol exists.
    pub fn offset_of(&self, name: &str) -> Option<u64> {
        self.offsets.get(name).copied()
    }

    /// The absolute address of `name` given the (possibly leaked) base.
    pub fn resolve(&self, base: u64, name: &str) -> Option<u64> {
        self.offset_of(name).map(|o| base + o)
    }

    /// Function names in layout order.
    pub fn order(&self) -> &[&'static str] {
        &self.order
    }

    /// Fraction of symbols whose address an attacker armed with the
    /// *standard* offset table and the true base would resolve correctly
    /// against this layout — 1.0 without FGKASLR, ~1/n! odds per symbol
    /// with it. This is the §6.2 claim quantified.
    pub fn attacker_hit_rate(&self, attacker_table: &FunctionLayout) -> f64 {
        if self.offsets.is_empty() {
            return 0.0;
        }
        let hits = self
            .offsets
            .iter()
            .filter(|(name, off)| attacker_table.offset_of(name) == Some(**off))
            .count();
        hits as f64 / self.offsets.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_layout_is_link_order_and_aligned() {
        let l = FunctionLayout::standard(WELL_KNOWN_FUNCTIONS);
        assert_eq!(l.offset_of("commit_creds"), Some(0));
        assert_eq!(
            l.offset_of("prepare_kernel_cred"),
            Some(0x180), // commit_creds is already 16-aligned
        );
        for name in l.order() {
            assert_eq!(l.offset_of(name).unwrap() % 16, 0);
        }
        assert!(!l.is_fgkaslr());
    }

    #[test]
    fn fgkaslr_shuffles_per_boot() {
        let a = FunctionLayout::fgkaslr(WELL_KNOWN_FUNCTIONS, 1);
        let b = FunctionLayout::fgkaslr(WELL_KNOWN_FUNCTIONS, 2);
        assert_ne!(a.order(), b.order(), "different boots must differ");
        let a2 = FunctionLayout::fgkaslr(WELL_KNOWN_FUNCTIONS, 1);
        assert_eq!(a, a2, "same boot seed must reproduce");
    }

    #[test]
    fn fgkaslr_defeats_the_standard_offset_table() {
        let attacker = FunctionLayout::standard(WELL_KNOWN_FUNCTIONS);
        let plain = FunctionLayout::standard(WELL_KNOWN_FUNCTIONS);
        assert_eq!(plain.attacker_hit_rate(&attacker), 1.0);

        let mut worst = 0.0f64;
        for boot in 0..16 {
            let defended = FunctionLayout::fgkaslr(WELL_KNOWN_FUNCTIONS, boot);
            worst = worst.max(defended.attacker_hit_rate(&attacker));
        }
        assert!(
            worst < 0.5,
            "FGKASLR must break most offset-table lookups (worst hit rate {worst})"
        );
    }

    #[test]
    fn resolve_adds_the_base() {
        let l = FunctionLayout::standard(WELL_KNOWN_FUNCTIONS);
        let base = 0xffff_ffff_9000_0000u64;
        assert_eq!(l.resolve(base, "commit_creds"), Some(base));
        assert_eq!(l.resolve(base, "not_a_symbol"), None);
    }

    #[test]
    fn every_function_gets_a_unique_offset() {
        let l = FunctionLayout::fgkaslr(WELL_KNOWN_FUNCTIONS, 9);
        let mut seen = std::collections::HashSet::new();
        for name in l.order() {
            assert!(seen.insert(l.offset_of(name).unwrap()));
        }
        assert_eq!(seen.len(), WELL_KNOWN_FUNCTIONS.len());
    }
}
