//! Model-based property tests: the set-associative cache and TLB are
//! checked against naive reference models over arbitrary operation
//! sequences, and the paging radix tree against a flat map.

use proptest::prelude::*;
use std::collections::HashMap;

use tet_mem::{AddressSpace, Cache, CacheConfig, Pte, Tlb, TlbConfig};

// ---------------------------------------------------------------------
// Cache vs a reference model (per-set LRU lists).
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum CacheOp {
    Lookup(u64),
    Fill(u64),
    FlushLine(u64),
    FlushAll,
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    let addr = (0u64..64).prop_map(|l| l * 64 + (l % 7));
    prop_oneof![
        4 => addr.clone().prop_map(CacheOp::Lookup),
        4 => addr.clone().prop_map(CacheOp::Fill),
        1 => addr.prop_map(CacheOp::FlushLine),
        1 => Just(CacheOp::FlushAll),
    ]
}

/// Reference: same semantics, written as the obvious per-set LRU lists.
#[derive(Debug, Default)]
struct RefCache {
    sets: Vec<Vec<u64>>,
    ways: usize,
}

impl RefCache {
    fn new(sets: usize, ways: usize) -> Self {
        RefCache {
            sets: vec![Vec::new(); sets],
            ways,
        }
    }
    fn idx(&self, addr: u64) -> usize {
        ((addr / 64) as usize) % self.sets.len()
    }
    fn lookup(&mut self, addr: u64) -> bool {
        let line = addr & !63;
        let i = self.idx(addr);
        if let Some(p) = self.sets[i].iter().position(|&l| l == line) {
            let l = self.sets[i].remove(p);
            self.sets[i].insert(0, l);
            true
        } else {
            false
        }
    }
    fn fill(&mut self, addr: u64) {
        let line = addr & !63;
        let i = self.idx(addr);
        if let Some(p) = self.sets[i].iter().position(|&l| l == line) {
            self.sets[i].remove(p);
        } else if self.sets[i].len() == self.ways {
            self.sets[i].pop();
        }
        self.sets[i].insert(0, line);
    }
}

proptest! {
    #[test]
    fn cache_matches_reference_model(ops in prop::collection::vec(cache_op(), 1..200)) {
        let cfg = CacheConfig::new(4, 2, 1);
        let mut dut = Cache::new(cfg);
        let mut reference = RefCache::new(4, 2);
        for op in &ops {
            match op {
                CacheOp::Lookup(a) => {
                    prop_assert_eq!(dut.lookup(*a), reference.lookup(*a), "lookup({:#x})", a);
                }
                CacheOp::Fill(a) => {
                    dut.fill(*a);
                    reference.fill(*a);
                }
                CacheOp::FlushLine(a) => {
                    dut.flush_line(*a);
                    let line = *a & !63;
                    let i = reference.idx(*a);
                    reference.sets[i].retain(|&l| l != line);
                }
                CacheOp::FlushAll => {
                    dut.flush_all();
                    for s in &mut reference.sets {
                        s.clear();
                    }
                }
            }
            // Invariants: capacity respected, fingerprint matches.
            prop_assert!(dut.resident_lines() <= 8);
            let mut expect: Vec<u64> = reference.sets.iter().flatten().copied().collect();
            expect.sort_unstable();
            prop_assert_eq!(dut.fingerprint(), expect);
        }
    }

    #[test]
    fn tlb_capacity_and_presence(pages in prop::collection::vec(0u64..32, 1..100)) {
        let mut tlb = Tlb::new(TlbConfig::new(2, 2));
        let mut last_fill: HashMap<u64, usize> = HashMap::new();
        for (i, p) in pages.iter().enumerate() {
            tlb.fill(p * 4096, Pte::user_data(*p));
            last_fill.insert(*p, i);
            prop_assert!(tlb.resident_entries() <= 4);
            // The just-filled page is always present (MRU).
            prop_assert!(tlb.probe(p * 4096));
        }
        // Every resident entry maps to the right frame.
        for p in 0..32u64 {
            if tlb.probe(p * 4096) {
                prop_assert_eq!(tlb.lookup(p * 4096).unwrap().pte.frame, p);
            }
        }
    }

    #[test]
    fn paging_matches_flat_map(
        ops in prop::collection::vec((0u64..64, any::<bool>()), 1..100)
    ) {
        // Random map/unmap of pages scattered across the radix levels.
        let mut aspace = AddressSpace::new();
        let mut flat: HashMap<u64, u64> = HashMap::new();
        for (i, (slot, map)) in ops.iter().enumerate() {
            // Spread slots across PML4/PDPT/PD/PT indices.
            let vaddr = (slot % 4) << 39 | (slot % 8) << 30 | (slot % 16) << 21 | slot << 12;
            if *map {
                aspace.map_page(vaddr, Pte::user_data(i as u64 + 1));
                flat.insert(vaddr >> 12, i as u64 + 1);
            } else {
                aspace.unmap_page(vaddr);
                flat.remove(&(vaddr >> 12));
            }
            prop_assert_eq!(aspace.mapped_pages(), flat.len());
        }
        for (vpn, frame) in &flat {
            prop_assert_eq!(aspace.translate(vpn << 12), Some(frame * 4096));
        }
    }

    #[test]
    fn walk_levels_bounded_and_consistent(slots in prop::collection::vec(0u64..64, 1..32)) {
        let mut aspace = AddressSpace::new();
        for s in &slots {
            aspace.map_page(0x4000_0000 + s * 4096, Pte::user_data(*s + 1));
        }
        for probe in 0..128u64 {
            let vaddr = 0x4000_0000 + probe * 4096;
            let (outcome, levels) = aspace.walk(vaddr);
            prop_assert!((1..=4).contains(&levels));
            prop_assert_eq!(outcome.is_mapped(), slots.contains(&probe));
            // A mapped walk always touches all four levels.
            if outcome.is_mapped() {
                prop_assert_eq!(levels, 4);
            }
        }
    }
}
