//! The hardware page-table walker and its timing model.
//!
//! Two policies here carry the whole TET-KASLR signal (paper §4.5 / §5.2.4):
//!
//! * **Retry on failure** (Intel): a walk that finds no translation is
//!   retried, so a probe of an *unmapped* address performs
//!   `1 + fail_retries` walks (Table 3 reports
//!   `DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK = 2`) and accumulates a long
//!   `WALK_ACTIVE` time, while a *mapped* address walks once.
//! * **Early abort** (the modelled AMD behaviour): failing walks stop at a
//!   fixed small cost without retries, which removes the timing
//!   differential and makes TET-KASLR fail on Zen 3 (Table 2).

use crate::paging::{AddressSpace, WalkOutcome};

/// Timing/policy knobs for the walker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkConfig {
    /// Cycles per page-table level touched (one cached PTE read each).
    pub level_cost: u64,
    /// Extra whole walks performed when a walk finds no translation
    /// (Intel cores retry; Table 3 shows two walks per unmapped probe).
    pub fail_retries: u32,
    /// If set, failing walks abort immediately at `abort_cost` instead of
    /// walking + retrying (the modelled AMD behaviour).
    pub abort_early_on_fail: bool,
    /// Cost of an early-aborted walk.
    pub abort_cost: u64,
}

impl WalkConfig {
    /// The Intel-like default used by the Core presets.
    pub fn intel() -> Self {
        WalkConfig {
            level_cost: 15,
            fail_retries: 1,
            abort_early_on_fail: false,
            abort_cost: 10,
        }
    }

    /// The AMD-like default used by the Zen 3 preset.
    pub fn amd() -> Self {
        WalkConfig {
            level_cost: 15,
            fail_retries: 0,
            abort_early_on_fail: true,
            abort_cost: 12,
        }
    }
}

/// The outcome of one walker invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkResult {
    /// What the tables said.
    pub outcome: WalkOutcome,
    /// Total cycles the walker was active (all retries included) —
    /// feeds `DTLB_LOAD_MISSES.WALK_ACTIVE` / `ITLB_MISSES.WALK_ACTIVE`.
    pub cycles: u64,
    /// Number of walks performed — feeds
    /// `DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK`.
    pub walks: u32,
    /// Page-table levels touched by the final walk.
    pub levels: u8,
}

/// The hardware page walker.
///
/// # Examples
///
/// ```
/// use tet_mem::{AddressSpace, PageWalker, Pte, WalkConfig};
///
/// let mut aspace = AddressSpace::new();
/// aspace.map_page(0xffff_ffff_8000_0000, Pte::kernel(9));
/// let walker = PageWalker::new(WalkConfig::intel());
///
/// let mapped = walker.walk(&aspace, 0xffff_ffff_8000_0000);
/// let unmapped = walker.walk(&aspace, 0xffff_ffff_9000_0000);
/// assert!(mapped.outcome.is_mapped());
/// // Unmapped probes walk twice and take longer — the TET-KASLR signal.
/// assert_eq!(unmapped.walks, 2);
/// assert!(unmapped.cycles > mapped.cycles);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageWalker {
    cfg: WalkConfig,
}

impl PageWalker {
    /// Creates a walker with the given policy.
    pub fn new(cfg: WalkConfig) -> Self {
        PageWalker { cfg }
    }

    /// The configured policy.
    pub fn config(&self) -> WalkConfig {
        self.cfg
    }

    /// Performs a walk (with retries per policy) for `vaddr`.
    pub fn walk(&self, aspace: &AddressSpace, vaddr: u64) -> WalkResult {
        let (outcome, levels) = aspace.walk(vaddr);
        let failed = !outcome.is_mapped();

        if failed && self.cfg.abort_early_on_fail {
            return WalkResult {
                outcome,
                cycles: self.cfg.abort_cost,
                walks: 1,
                levels,
            };
        }

        let single = levels as u64 * self.cfg.level_cost;
        let walks = if failed { 1 + self.cfg.fail_retries } else { 1 };
        WalkResult {
            outcome,
            cycles: single * walks as u64,
            walks,
            levels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paging::Pte;

    fn aspace_with_kernel() -> AddressSpace {
        let mut a = AddressSpace::new();
        a.map_page(0xffff_ffff_8000_0000, Pte::kernel(1));
        a.map_page(0xffff_ffff_9000_0000, Pte::flare_dummy());
        a
    }

    #[test]
    fn mapped_walk_single_pass_full_depth() {
        let w = PageWalker::new(WalkConfig::intel());
        let r = w.walk(&aspace_with_kernel(), 0xffff_ffff_8000_0000);
        assert!(r.outcome.is_mapped());
        assert_eq!(r.walks, 1);
        assert_eq!(r.levels, 4);
        assert_eq!(r.cycles, 4 * 15);
    }

    #[test]
    fn unmapped_walk_retries_and_costs_more() {
        let w = PageWalker::new(WalkConfig::intel());
        let a = aspace_with_kernel();
        let mapped = w.walk(&a, 0xffff_ffff_8000_0000);
        let unmapped = w.walk(&a, 0xffff_ffff_a000_0000);
        assert!(!unmapped.outcome.is_mapped());
        assert_eq!(unmapped.walks, 2);
        assert!(unmapped.cycles > mapped.cycles);
    }

    #[test]
    fn reserved_bit_counts_as_failure() {
        let w = PageWalker::new(WalkConfig::intel());
        let r = w.walk(&aspace_with_kernel(), 0xffff_ffff_9000_0000);
        assert_eq!(r.outcome, WalkOutcome::ReservedBit);
        assert_eq!(r.walks, 2, "reserved-bit walks are retried like unmapped");
    }

    #[test]
    fn amd_aborts_early_and_flattens_the_differential() {
        let w = PageWalker::new(WalkConfig::amd());
        let a = aspace_with_kernel();
        let unmapped = w.walk(&a, 0xffff_ffff_a000_0000);
        assert_eq!(unmapped.cycles, WalkConfig::amd().abort_cost);
        assert_eq!(unmapped.walks, 1);
        // Mapped still walks normally.
        let mapped = w.walk(&a, 0xffff_ffff_8000_0000);
        assert!(mapped.outcome.is_mapped());
        assert_eq!(mapped.cycles, 4 * 15);
    }

    #[test]
    fn shallow_failures_cost_less_than_deep_failures() {
        let w = PageWalker::new(WalkConfig::intel());
        let mut a = AddressSpace::new();
        a.map_page(0x1000, Pte::user_data(1));
        let shallow = w.walk(&a, 0xffff_ffff_8000_0000); // fails at PML4
        let deep = w.walk(&a, 0x2000); // fails at PT (same subtree)
        assert!(shallow.cycles < deep.cycles);
        assert_eq!(shallow.levels, 1);
        assert_eq!(deep.levels, 4);
    }
}
