//! Four-level page tables and virtual address spaces.
//!
//! The model follows x86-64's radix-512 layout: bits 47..39, 38..30,
//! 29..21 and 20..12 index the PML4, PDPT, PD and PT levels. Walks can
//! terminate early when an intermediate entry is absent, which is exactly
//! the property TET-KASLR exploits: an *unmapped* kernel probe address
//! fails its walk at a shallow level and gets retried, while a *mapped*
//! (but permission-protected) address completes the walk (paper §4.5,
//! Table 3).

use std::collections::HashMap;

use crate::PAGE_SIZE;

/// A leaf page-table entry.
///
/// `reserved` models a reserved-bit PTE. FLARE's dummy mappings are
/// modelled with this bit: the walk terminates with a reserved-bit fault
/// and — on the modelled Intel cores — does **not** install a TLB entry,
/// which is how TET-KASLR distinguishes FLARE dummies from the real
/// kernel image (see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pte {
    /// Physical frame number (physical address is `frame * 4096`).
    pub frame: u64,
    /// Present bit: translation exists.
    pub present: bool,
    /// Writable bit.
    pub writable: bool,
    /// User-accessible bit; kernel pages have it clear, and user-mode
    /// access to them raises a permission fault *after* the walk.
    pub user: bool,
    /// Global bit (survives address-space switches; kernel text uses it).
    pub global: bool,
    /// Reserved-bit set: the walk faults at the leaf without a TLB fill.
    pub reserved: bool,
    /// No-execute bit.
    pub nx: bool,
}

impl Pte {
    /// A present, writable, user-accessible data page.
    pub fn user_data(frame: u64) -> Pte {
        Pte {
            frame,
            present: true,
            writable: true,
            user: true,
            global: false,
            reserved: false,
            nx: false,
        }
    }

    /// A present kernel page (supervisor-only, global).
    pub fn kernel(frame: u64) -> Pte {
        Pte {
            frame,
            present: true,
            writable: true,
            user: false,
            global: true,
            reserved: false,
            nx: false,
        }
    }

    /// A FLARE-style dummy entry: present-looking but reserved-bit
    /// poisoned, backed by no real frame.
    pub fn flare_dummy() -> Pte {
        Pte {
            frame: 0,
            present: true,
            writable: false,
            user: false,
            global: false,
            reserved: true,
            nx: true,
        }
    }
}

/// How a page walk for a virtual address concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WalkOutcome {
    /// Translation found; the leaf PTE is returned. Permission checks
    /// against the access mode are the caller's job.
    Mapped(Pte),
    /// No translation: an entry was absent at `level` (4 = PML4 … 1 = PT).
    NotPresent {
        /// Level at which the walk stopped (4 is the root).
        level: u8,
    },
    /// A reserved-bit leaf terminated the walk (FLARE dummy pages).
    ReservedBit,
}

impl WalkOutcome {
    /// Whether the walk produced a usable translation.
    pub fn is_mapped(&self) -> bool {
        matches!(self, WalkOutcome::Mapped(_))
    }
}

#[derive(Debug, Clone, Default)]
struct Node {
    children: HashMap<u16, Node>,
    leaf: Option<Pte>,
}

/// A 4-level virtual address space.
///
/// # Examples
///
/// ```
/// use tet_mem::{AddressSpace, Pte, WalkOutcome};
///
/// let mut aspace = AddressSpace::new();
/// aspace.map_page(0x7fff_0000_0000, Pte::user_data(42));
/// assert!(aspace.walk(0x7fff_0000_0123).0.is_mapped());
/// assert_eq!(aspace.translate(0x7fff_0000_0010), Some(42 * 4096 + 0x10));
/// assert!(matches!(
///     aspace.walk(0x7fff_5555_0000).0,
///     WalkOutcome::NotPresent { .. }
/// ));
/// ```
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    root: Node,
    mapped_pages: usize,
}

/// Splits a canonical virtual address into its four 9-bit level indices,
/// root level first.
fn level_indices(vaddr: u64) -> [u16; 4] {
    [
        ((vaddr >> 39) & 0x1ff) as u16,
        ((vaddr >> 30) & 0x1ff) as u16,
        ((vaddr >> 21) & 0x1ff) as u16,
        ((vaddr >> 12) & 0x1ff) as u16,
    ]
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps the page containing `vaddr` with the given leaf PTE,
    /// creating intermediate tables as needed. Remapping replaces the
    /// previous leaf.
    pub fn map_page(&mut self, vaddr: u64, pte: Pte) {
        let idx = level_indices(vaddr);
        let mut node = &mut self.root;
        for i in idx.iter().take(3) {
            node = node.children.entry(*i).or_default();
        }
        let leaf_node = node.children.entry(idx[3]).or_default();
        if leaf_node.leaf.is_none() {
            self.mapped_pages += 1;
        }
        leaf_node.leaf = Some(pte);
    }

    /// Removes the mapping for the page containing `vaddr`, if any.
    /// Returns the removed PTE.
    pub fn unmap_page(&mut self, vaddr: u64) -> Option<Pte> {
        let idx = level_indices(vaddr);
        let mut node = &mut self.root;
        for i in idx.iter().take(3) {
            node = node.children.get_mut(i)?;
        }
        let leaf_node = node.children.get_mut(&idx[3])?;
        let removed = leaf_node.leaf.take();
        if removed.is_some() {
            self.mapped_pages -= 1;
        }
        removed
    }

    /// Walks the tables for `vaddr`. Returns the outcome and the number
    /// of levels the walker had to touch (1..=4); an early not-present
    /// stops the walk at that level.
    pub fn walk(&self, vaddr: u64) -> (WalkOutcome, u8) {
        let idx = level_indices(vaddr);
        let mut node = &self.root;
        for (depth, i) in idx.iter().enumerate() {
            match node.children.get(i) {
                Some(child) => node = child,
                None => {
                    let levels_touched = depth as u8 + 1;
                    return (
                        WalkOutcome::NotPresent {
                            level: 4 - depth as u8,
                        },
                        levels_touched,
                    );
                }
            }
        }
        match node.leaf {
            Some(pte) if pte.reserved => (WalkOutcome::ReservedBit, 4),
            Some(pte) if pte.present => (WalkOutcome::Mapped(pte), 4),
            _ => (WalkOutcome::NotPresent { level: 1 }, 4),
        }
    }

    /// Functional translation: virtual to physical address, ignoring
    /// permissions and timing. Returns `None` for unmapped or
    /// reserved-bit pages.
    pub fn translate(&self, vaddr: u64) -> Option<u64> {
        match self.walk(vaddr).0 {
            WalkOutcome::Mapped(pte) => Some(pte.frame * PAGE_SIZE + (vaddr % PAGE_SIZE)),
            _ => None,
        }
    }

    /// The leaf PTE for `vaddr`, if mapped (reserved-bit leaves are
    /// returned too, so defenses can be inspected).
    pub fn pte(&self, vaddr: u64) -> Option<Pte> {
        match self.walk(vaddr).0 {
            WalkOutcome::Mapped(pte) => Some(pte),
            WalkOutcome::ReservedBit => {
                // Re-walk to fetch the poisoned leaf.
                let idx = level_indices(vaddr);
                let mut node = &self.root;
                for i in &idx {
                    node = node.children.get(i)?;
                }
                node.leaf
            }
            WalkOutcome::NotPresent { .. } => None,
        }
    }

    /// Number of mapped leaf pages.
    pub fn mapped_pages(&self) -> usize {
        self.mapped_pages
    }
}

/// A bump allocator for physical frames.
///
/// # Examples
///
/// ```
/// use tet_mem::FrameAlloc;
///
/// let mut alloc = FrameAlloc::starting_at(0x100);
/// assert_eq!(alloc.alloc(), 0x100);
/// assert_eq!(alloc.alloc(), 0x101);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameAlloc {
    next: u64,
}

impl FrameAlloc {
    /// Allocator handing out frames from `first` upwards.
    pub fn starting_at(first: u64) -> Self {
        FrameAlloc { next: first }
    }

    /// Allocates the next frame number.
    pub fn alloc(&mut self) -> u64 {
        let f = self.next;
        self.next += 1;
        f
    }

    /// Allocates `n` consecutive frames, returning the first.
    pub fn alloc_contiguous(&mut self, n: u64) -> u64 {
        let f = self.next;
        self.next += n;
        f
    }
}

impl Default for FrameAlloc {
    fn default() -> Self {
        FrameAlloc::starting_at(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_walk_stops_at_root() {
        let aspace = AddressSpace::new();
        let (outcome, levels) = aspace.walk(0xffff_ffff_8000_0000);
        assert_eq!(outcome, WalkOutcome::NotPresent { level: 4 });
        assert_eq!(levels, 1);
    }

    #[test]
    fn sibling_page_fails_at_leaf_level() {
        let mut aspace = AddressSpace::new();
        aspace.map_page(0x1000, Pte::user_data(1));
        // Same PT, different leaf: walk touches all 4 levels.
        let (outcome, levels) = aspace.walk(0x2000);
        assert_eq!(outcome, WalkOutcome::NotPresent { level: 1 });
        assert_eq!(levels, 4);
    }

    #[test]
    fn mapped_walk_returns_pte() {
        let mut aspace = AddressSpace::new();
        aspace.map_page(0xffff_ffff_8000_0000, Pte::kernel(7));
        let (outcome, levels) = aspace.walk(0xffff_ffff_8000_0abc);
        assert_eq!(levels, 4);
        match outcome {
            WalkOutcome::Mapped(pte) => {
                assert_eq!(pte.frame, 7);
                assert!(!pte.user);
                assert!(pte.global);
            }
            other => panic!("expected mapped, got {other:?}"),
        }
    }

    #[test]
    fn reserved_bit_leaf_reports_reserved() {
        let mut aspace = AddressSpace::new();
        aspace.map_page(0xffff_ffff_9000_0000, Pte::flare_dummy());
        let (outcome, levels) = aspace.walk(0xffff_ffff_9000_0000);
        assert_eq!(outcome, WalkOutcome::ReservedBit);
        assert_eq!(levels, 4);
        assert!(aspace.translate(0xffff_ffff_9000_0000).is_none());
        assert!(aspace.pte(0xffff_ffff_9000_0000).unwrap().reserved);
    }

    #[test]
    fn translate_adds_page_offset() {
        let mut aspace = AddressSpace::new();
        aspace.map_page(0x5000, Pte::user_data(3));
        assert_eq!(aspace.translate(0x5123), Some(3 * 4096 + 0x123));
    }

    #[test]
    fn unmap_restores_not_present() {
        let mut aspace = AddressSpace::new();
        aspace.map_page(0x5000, Pte::user_data(3));
        assert_eq!(aspace.mapped_pages(), 1);
        let removed = aspace.unmap_page(0x5000).unwrap();
        assert_eq!(removed.frame, 3);
        assert_eq!(aspace.mapped_pages(), 0);
        assert!(aspace.translate(0x5000).is_none());
    }

    #[test]
    fn remap_replaces_leaf_without_double_count() {
        let mut aspace = AddressSpace::new();
        aspace.map_page(0x5000, Pte::user_data(3));
        aspace.map_page(0x5000, Pte::user_data(9));
        assert_eq!(aspace.mapped_pages(), 1);
        assert_eq!(aspace.translate(0x5000), Some(9 * 4096));
    }

    #[test]
    fn high_kernel_addresses_distinct_from_user() {
        let mut aspace = AddressSpace::new();
        aspace.map_page(0xffff_ffff_8000_0000, Pte::kernel(1));
        assert!(aspace.translate(0x0000_0000_8000_0000).is_none());
    }

    #[test]
    fn frame_alloc_contiguous() {
        let mut a = FrameAlloc::default();
        let first = a.alloc_contiguous(4);
        assert_eq!(first, 1);
        assert_eq!(a.alloc(), 5);
    }
}
