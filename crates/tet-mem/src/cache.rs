//! Set-associative caches with LRU replacement and `clflush` support.
//!
//! # Representation
//!
//! Each set is a fixed window of `ways` slots in two flat arrays (tags
//! and LRU age stamps) — one allocation per array for the whole cache,
//! instead of the original per-set `Vec` MRU lists. Recency is tracked
//! with a monotone per-cache tick: a touched way takes the next stamp,
//! the LRU victim is the minimum-stamp way, and stamp `0` marks an empty
//! slot. This is observationally identical to the MRU-first list (the
//! equivalence property test below drives both against random traces)
//! while making lookup a branch-light scan of `ways` contiguous tags, and
//! it removes the `sets`-sized allocation storm an LLC paid on every
//! `Machine` construction or scenario clone.
//!
//! A one-entry MRU filter (the last line that hit or filled) short-cuts
//! the repeated-line case that dominates warm gadget loops: the filter
//! line necessarily holds its set's maximum stamp, so re-touching it can
//! skip even the stamp update without reordering any set.

use crate::{line_addr, LINE_SIZE};

/// Geometry and latency of one cache level.
///
/// # Examples
///
/// ```
/// use tet_mem::CacheConfig;
///
/// let l1 = CacheConfig::new(64, 8, 4); // 32 KiB, 4-cycle
/// assert_eq!(l1.capacity_bytes(), 32 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Hit latency contribution in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or not a power of two, or `ways` is zero.
    pub fn new(sets: usize, ways: usize, latency: u64) -> Self {
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be non-zero");
        CacheConfig {
            sets,
            ways,
            latency,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * LINE_SIZE as usize
    }
}

/// One level of set-associative cache, tracking line presence (tags only —
/// data lives in [`PhysMem`](crate::PhysMem), which is always coherent in
/// this single-socket model).
///
/// `lookup` returns hit/miss and updates LRU; `fill` installs a line.
///
/// # Examples
///
/// ```
/// use tet_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new(2, 2, 4));
/// assert!(!c.lookup(0x40));
/// c.fill(0x40);
/// assert!(c.lookup(0x40));
/// c.flush_line(0x40);
/// assert!(!c.lookup(0x40));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// Resident line addresses, `ways` consecutive slots per set. Valid
    /// iff the matching stamp is non-zero (line address 0 is legal, so
    /// validity cannot live in the tag).
    tags: Vec<u64>,
    /// LRU age stamps, parallel to `tags`; larger = more recent, 0 = empty.
    stamps: Vec<u64>,
    /// Monotone recency clock (starts at 1 so 0 stays the empty marker).
    tick: u64,
    /// One-entry MRU filter: the last line that hit or filled.
    mru: Option<u64>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        Cache {
            tags: vec![0; cfg.sets * cfg.ways],
            stamps: vec![0; cfg.sets * cfg.ways],
            tick: 0,
            mru: None,
            cfg,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = ((line / LINE_SIZE) as usize) & (self.cfg.sets - 1);
        let start = set * self.cfg.ways;
        start..start + self.cfg.ways
    }

    #[inline]
    fn next_stamp(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up the line containing `addr`, updating LRU and hit/miss
    /// statistics. Returns `true` on hit.
    pub fn lookup(&mut self, addr: u64) -> bool {
        let line = line_addr(addr);
        // MRU fast path: this line already holds its set's max stamp, so
        // skipping the stamp refresh preserves every relative order.
        if self.mru == Some(line) {
            self.hits += 1;
            return true;
        }
        let range = self.set_range(line);
        for w in range {
            if self.stamps[w] != 0 && self.tags[w] == line {
                self.stamps[w] = self.next_stamp();
                self.mru = Some(line);
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Checks for presence without updating LRU or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let line = line_addr(addr);
        self.set_range(line)
            .any(|w| self.stamps[w] != 0 && self.tags[w] == line)
    }

    /// Installs the line containing `addr`, evicting the LRU way if the
    /// set is full. Returns the evicted line address, if any.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        let line = line_addr(addr);
        let range = self.set_range(line);
        // Present: refresh recency only.
        for w in range.clone() {
            if self.stamps[w] != 0 && self.tags[w] == line {
                self.stamps[w] = self.next_stamp();
                self.mru = Some(line);
                return None;
            }
        }
        // Reuse an empty way, else evict the minimum-stamp (LRU) way.
        let mut victim = range.start;
        let mut victim_stamp = u64::MAX;
        let mut evicted = None;
        for w in range {
            if self.stamps[w] == 0 {
                victim = w;
                evicted = None;
                break;
            }
            if self.stamps[w] < victim_stamp {
                victim_stamp = self.stamps[w];
                victim = w;
                evicted = Some(self.tags[w]);
            }
        }
        self.tags[victim] = line;
        self.stamps[victim] = self.next_stamp();
        self.mru = Some(line);
        evicted
    }

    /// Removes the line containing `addr` (the `clflush` primitive).
    /// Returns whether the line was present.
    pub fn flush_line(&mut self, addr: u64) -> bool {
        let line = line_addr(addr);
        if self.mru == Some(line) {
            self.mru = None;
        }
        for w in self.set_range(line) {
            if self.stamps[w] != 0 && self.tags[w] == line {
                self.stamps[w] = 0;
                return true;
            }
        }
        false
    }

    /// Empties the cache.
    pub fn flush_all(&mut self) {
        self.stamps.fill(0);
        self.mru = None;
    }

    /// Number of resident lines (stealth experiments diff this across an
    /// attack to show TET leaves no footprint — Table 1's *stateless*).
    pub fn resident_lines(&self) -> usize {
        self.stamps.iter().filter(|&&s| s != 0).count()
    }

    /// A stable fingerprint of cache contents: the sorted list of resident
    /// line addresses. Two fingerprints differ iff the cache state differs.
    pub fn fingerprint(&self) -> Vec<u64> {
        let mut lines: Vec<u64> = self
            .stamps
            .iter()
            .zip(&self.tags)
            .filter(|&(&s, _)| s != 0)
            .map(|(_, &t)| t)
            .collect();
        lines.sort_unstable();
        lines
    }

    /// Lifetime `(hits, misses)` counts.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Overwrites this cache with the state of `src`, reusing the flat
    /// tag/stamp allocations. Both caches must share a geometry (they do
    /// in the snapshot/restore use: restore targets a machine built from
    /// the same config the snapshot came from).
    pub fn restore_from(&mut self, src: &Cache) {
        debug_assert_eq!(self.cfg, src.cfg, "restore across cache geometries");
        let Cache {
            cfg,
            tags,
            stamps,
            tick,
            mru,
            hits,
            misses,
        } = src;
        self.cfg = *cfg;
        self.tags.clear();
        self.tags.extend_from_slice(tags);
        self.stamps.clear();
        self.stamps.extend_from_slice(stamps);
        self.tick = *tick;
        self.mru = *mru;
        self.hits = *hits;
        self.misses = *misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig::new(2, 2, 1))
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        let _ = CacheConfig::new(3, 2, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // All map to set 0 (multiples of 2 lines * 64B = 128).
        c.fill(0);
        c.fill(128);
        // Touch 0 so 128 becomes LRU.
        assert!(c.lookup(0));
        let evicted = c.fill(256);
        assert_eq!(evicted, Some(128));
        assert!(c.probe(0));
        assert!(!c.probe(128));
        assert!(c.probe(256));
    }

    #[test]
    fn refill_does_not_duplicate() {
        let mut c = tiny();
        c.fill(0);
        c.fill(0);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn sub_line_addresses_share_a_line() {
        let mut c = tiny();
        c.fill(0x47);
        assert!(c.probe(0x40));
        assert!(c.probe(0x7f));
        assert!(!c.probe(0x80));
    }

    #[test]
    fn flush_line_and_all() {
        let mut c = tiny();
        c.fill(0);
        c.fill(64);
        assert!(c.flush_line(0));
        assert!(!c.flush_line(0));
        c.flush_all();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = tiny();
        c.lookup(0);
        c.fill(0);
        c.lookup(0);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn probe_does_not_perturb_lru() {
        let mut c = tiny();
        c.fill(0);
        c.fill(128);
        // probe(0) must NOT move 0 to MRU.
        assert!(c.probe(0));
        let evicted = c.fill(256);
        assert_eq!(evicted, Some(0));
    }

    #[test]
    fn fingerprint_detects_state_change() {
        let mut c = tiny();
        c.fill(0);
        let f1 = c.fingerprint();
        c.fill(64);
        let f2 = c.fingerprint();
        assert_ne!(f1, f2);
        assert_eq!(f2, vec![0, 64]);
    }

    #[test]
    fn mru_filter_hit_counts_and_survives_flush() {
        let mut c = tiny();
        c.fill(0);
        assert!(c.lookup(0)); // slow-path hit arms the filter
        assert!(c.lookup(0)); // filter hit
        assert_eq!(c.stats(), (2, 0));
        assert!(c.flush_line(0)); // must disarm the filter
        assert!(!c.lookup(0));
    }

    /// The original per-set MRU-first `Vec` implementation, kept verbatim
    /// as the equivalence oracle for the flat stamp representation.
    struct RefCache {
        sets: Vec<Vec<u64>>,
        cfg: CacheConfig,
        hits: u64,
        misses: u64,
    }

    impl RefCache {
        fn new(cfg: CacheConfig) -> Self {
            RefCache {
                sets: vec![Vec::with_capacity(cfg.ways); cfg.sets],
                cfg,
                hits: 0,
                misses: 0,
            }
        }

        fn set_index(&self, addr: u64) -> usize {
            ((line_addr(addr) / LINE_SIZE) as usize) & (self.cfg.sets - 1)
        }

        fn lookup(&mut self, addr: u64) -> bool {
            let line = line_addr(addr);
            let idx = self.set_index(addr);
            let set = &mut self.sets[idx];
            if let Some(pos) = set.iter().position(|&l| l == line) {
                let l = set.remove(pos);
                set.insert(0, l);
                self.hits += 1;
                true
            } else {
                self.misses += 1;
                false
            }
        }

        fn fill(&mut self, addr: u64) -> Option<u64> {
            let line = line_addr(addr);
            let idx = self.set_index(addr);
            let set = &mut self.sets[idx];
            if let Some(pos) = set.iter().position(|&l| l == line) {
                let l = set.remove(pos);
                set.insert(0, l);
                return None;
            }
            let evicted = if set.len() == self.cfg.ways {
                set.pop()
            } else {
                None
            };
            set.insert(0, line);
            evicted
        }

        fn flush_line(&mut self, addr: u64) -> bool {
            let line = line_addr(addr);
            let idx = self.set_index(addr);
            let set = &mut self.sets[idx];
            if let Some(pos) = set.iter().position(|&l| l == line) {
                set.remove(pos);
                true
            } else {
                false
            }
        }

        fn fingerprint(&self) -> Vec<u64> {
            let mut lines: Vec<u64> = self.sets.iter().flatten().copied().collect();
            lines.sort_unstable();
            lines
        }
    }

    #[test]
    fn flat_stamp_representation_matches_linear_reference() {
        // xorshift-driven op mix over a small address space so every set
        // sees hits, evictions, flushes and full flushes many times.
        let mut state = 0x2545f4914f6cdd1du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (sets, ways) in [(1usize, 1usize), (2, 2), (4, 8), (8, 3)] {
            let cfg = CacheConfig::new(sets, ways, 1);
            let mut cache = Cache::new(cfg);
            let mut reference = RefCache::new(cfg);
            for step in 0..40_000 {
                let r = rng();
                let addr = (r >> 16) % (sets as u64 * ways as u64 * 2 * LINE_SIZE);
                match r % 16 {
                    0..=5 => assert_eq!(
                        cache.lookup(addr),
                        reference.lookup(addr),
                        "lookup step {step} ({sets}x{ways})"
                    ),
                    6..=10 => assert_eq!(
                        cache.fill(addr),
                        reference.fill(addr),
                        "fill step {step} ({sets}x{ways})"
                    ),
                    11..=12 => assert_eq!(
                        cache.probe(addr),
                        reference.sets[reference.set_index(addr)].contains(&line_addr(addr)),
                        "probe step {step} ({sets}x{ways})"
                    ),
                    13..=14 => assert_eq!(
                        cache.flush_line(addr),
                        reference.flush_line(addr),
                        "flush step {step} ({sets}x{ways})"
                    ),
                    _ => {
                        cache.flush_all();
                        for set in &mut reference.sets {
                            set.clear();
                        }
                    }
                }
                debug_assert_eq!(cache.fingerprint(), reference.fingerprint());
            }
            assert_eq!(cache.fingerprint(), reference.fingerprint());
            assert_eq!(cache.stats(), (reference.hits, reference.misses));
        }
    }
}
