//! Set-associative caches with LRU replacement and `clflush` support.
//!
//! # Representation
//!
//! Each set is a fixed window of `ways` slots in two flat arrays (tags
//! and LRU age stamps) — one allocation per array for the whole cache,
//! instead of the original per-set `Vec` MRU lists. Recency is tracked
//! with a monotone per-cache tick: a touched way takes the next stamp,
//! the LRU victim is the minimum-stamp way, and stamp `0` marks an empty
//! slot. This is observationally identical to the MRU-first list (the
//! equivalence property test below drives both against random traces)
//! while making lookup a branch-light scan of `ways` contiguous tags, and
//! it removes the `sets`-sized allocation storm an LLC paid on every
//! `Machine` construction or scenario clone.
//!
//! A one-entry MRU filter (the last line that hit or filled) short-cuts
//! the repeated-line case that dominates warm gadget loops: the filter
//! line necessarily holds its set's maximum stamp, so re-touching it can
//! skip even the stamp update without reordering any set.
//!
//! # Delta restore and O(1) flush (DESIGN.md §16)
//!
//! Snapshot restore used to memcpy every tag/stamp array (2 MiB for a
//! skylake-class LLC) per forked trial. [`Cache::seal`] starts a journal
//! epoch: every slot write records its index once per epoch (deduplicated
//! by a per-slot journal stamp), so [`Cache::restore_delta`] repairs only
//! the slots touched since the seal. A slot is *valid* iff its LRU stamp
//! is non-zero **and** its validity epoch matches the cache-wide flush
//! epoch, which turns [`Cache::flush_all`] into a single counter bump with
//! lazy revalidation on next access instead of an O(slots) `fill(0)`.

use std::sync::Arc;

use crate::{line_addr, LINE_SIZE};

/// Geometry and latency of one cache level.
///
/// # Examples
///
/// ```
/// use tet_mem::CacheConfig;
///
/// let l1 = CacheConfig::new(64, 8, 4); // 32 KiB, 4-cycle
/// assert_eq!(l1.capacity_bytes(), 32 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Hit latency contribution in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or not a power of two, or `ways` is zero.
    pub fn new(sets: usize, ways: usize, latency: u64) -> Self {
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be non-zero");
        CacheConfig {
            sets,
            ways,
            latency,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * LINE_SIZE as usize
    }
}

/// One level of set-associative cache, tracking line presence (tags only —
/// data lives in [`PhysMem`](crate::PhysMem), which is always coherent in
/// this single-socket model).
///
/// `lookup` returns hit/miss and updates LRU; `fill` installs a line.
///
/// # Examples
///
/// ```
/// use tet_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new(2, 2, 4));
/// assert!(!c.lookup(0x40));
/// c.fill(0x40);
/// assert!(c.lookup(0x40));
/// c.flush_line(0x40);
/// assert!(!c.lookup(0x40));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// Resident line addresses, `ways` consecutive slots per set. Valid
    /// iff the matching stamp is non-zero (line address 0 is legal, so
    /// validity cannot live in the tag).
    tags: Vec<u64>,
    /// LRU age stamps, parallel to `tags`; larger = more recent, 0 = empty.
    stamps: Vec<u64>,
    /// Monotone recency clock (starts at 1 so 0 stays the empty marker).
    tick: u64,
    /// One-entry MRU filter: the last line that hit or filled.
    mru: Option<u64>,
    hits: u64,
    misses: u64,
    /// Per-slot validity epoch: a slot is live iff `stamps[w] != 0` and
    /// `vepoch[w] == flush_epoch`. `flush_all` bumps `flush_epoch`, lazily
    /// invalidating every slot in O(1).
    vepoch: Vec<u32>,
    flush_epoch: u32,
    /// Identity of the seal this cache (and any clone of it) derives
    /// from; `restore_delta` only trusts journals across a shared seal.
    seal: Option<Arc<()>>,
    /// Journal epoch: 0 = journaling off (never sealed). A slot is
    /// already journaled this epoch iff `jepoch[w] == epoch`.
    epoch: u32,
    /// Per-slot journal stamps, deduplicating `journal`.
    jepoch: Vec<u32>,
    /// Slots written since the last seal/restore.
    journal: Vec<u32>,
    /// Set when a rare event (epoch counter wrap) mutated slots without
    /// journaling; forces the next restore down the exhaustive path.
    full_dirty: bool,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        Cache {
            tags: vec![0; cfg.sets * cfg.ways],
            stamps: vec![0; cfg.sets * cfg.ways],
            tick: 0,
            mru: None,
            hits: 0,
            misses: 0,
            vepoch: vec![0; cfg.sets * cfg.ways],
            flush_epoch: 0,
            seal: None,
            epoch: 0,
            jepoch: vec![0; cfg.sets * cfg.ways],
            journal: Vec::new(),
            full_dirty: false,
            cfg,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = ((line / LINE_SIZE) as usize) & (self.cfg.sets - 1);
        let start = set * self.cfg.ways;
        start..start + self.cfg.ways
    }

    #[inline]
    fn next_stamp(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Whether slot `w` holds a live line (non-empty and not lazily
    /// invalidated by a later `flush_all`).
    #[inline]
    fn valid(&self, w: usize) -> bool {
        self.stamps[w] != 0 && self.vepoch[w] == self.flush_epoch
    }

    /// Records slot `w` in the journal (once per epoch) ahead of a write.
    #[inline]
    fn touch(&mut self, w: usize) {
        if self.epoch != 0 && self.jepoch[w] != self.epoch {
            self.jepoch[w] = self.epoch;
            self.journal.push(w as u32);
        }
    }

    /// Starts a new journal epoch; wraps reset the per-slot stamps so a
    /// recycled epoch value can never alias a stale journal mark.
    fn bump_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.jepoch.fill(0);
            self.epoch = 1;
        }
    }

    /// Looks up the line containing `addr`, updating LRU and hit/miss
    /// statistics. Returns `true` on hit.
    pub fn lookup(&mut self, addr: u64) -> bool {
        let line = line_addr(addr);
        // MRU fast path: this line already holds its set's max stamp, so
        // skipping the stamp refresh preserves every relative order.
        if self.mru == Some(line) {
            self.hits += 1;
            return true;
        }
        let range = self.set_range(line);
        for w in range {
            if self.valid(w) && self.tags[w] == line {
                self.touch(w);
                self.stamps[w] = self.next_stamp();
                self.mru = Some(line);
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Checks for presence without updating LRU or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let line = line_addr(addr);
        self.set_range(line)
            .any(|w| self.valid(w) && self.tags[w] == line)
    }

    /// Installs the line containing `addr`, evicting the LRU way if the
    /// set is full. Returns the evicted line address, if any.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        let line = line_addr(addr);
        let range = self.set_range(line);
        // Present: refresh recency only.
        for w in range.clone() {
            if self.valid(w) && self.tags[w] == line {
                self.touch(w);
                self.stamps[w] = self.next_stamp();
                self.mru = Some(line);
                return None;
            }
        }
        // Reuse an empty way, else evict the minimum-stamp (LRU) way.
        let mut victim = range.start;
        let mut victim_stamp = u64::MAX;
        let mut evicted = None;
        for w in range {
            if !self.valid(w) {
                victim = w;
                evicted = None;
                break;
            }
            if self.stamps[w] < victim_stamp {
                victim_stamp = self.stamps[w];
                victim = w;
                evicted = Some(self.tags[w]);
            }
        }
        self.touch(victim);
        self.tags[victim] = line;
        self.stamps[victim] = self.next_stamp();
        self.vepoch[victim] = self.flush_epoch;
        self.mru = Some(line);
        evicted
    }

    /// Removes the line containing `addr` (the `clflush` primitive).
    /// Returns whether the line was present.
    pub fn flush_line(&mut self, addr: u64) -> bool {
        let line = line_addr(addr);
        if self.mru == Some(line) {
            self.mru = None;
        }
        for w in self.set_range(line) {
            if self.valid(w) && self.tags[w] == line {
                self.touch(w);
                self.stamps[w] = 0;
                return true;
            }
        }
        false
    }

    /// Empties the cache: a single flush-epoch bump — every slot's
    /// validity epoch goes stale and the slot reads as empty until the
    /// next fill revalidates it (DESIGN.md §16).
    pub fn flush_all(&mut self) {
        self.mru = None;
        self.flush_epoch = self.flush_epoch.wrapping_add(1);
        if self.flush_epoch == 0 {
            // Counter wrap (once per 2^32 flushes): materialize emptiness
            // eagerly; the unjournaled bulk write forces a full restore.
            self.stamps.fill(0);
            self.vepoch.fill(0);
            self.full_dirty = true;
        }
    }

    /// Number of resident lines (stealth experiments diff this across an
    /// attack to show TET leaves no footprint — Table 1's *stateless*).
    pub fn resident_lines(&self) -> usize {
        (0..self.stamps.len()).filter(|&w| self.valid(w)).count()
    }

    /// A stable fingerprint of cache contents: the sorted list of resident
    /// line addresses. Two fingerprints differ iff the cache state differs.
    pub fn fingerprint(&self) -> Vec<u64> {
        let mut lines: Vec<u64> = (0..self.tags.len())
            .filter(|&w| self.valid(w))
            .map(|w| self.tags[w])
            .collect();
        lines.sort_unstable();
        lines
    }

    /// Lifetime `(hits, misses)` counts.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of slots journaled since the last seal/restore.
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// Marks the current state as a snapshot point: clones taken now
    /// share this seal, and every later slot write journals itself so
    /// [`Cache::restore_delta`] can repair in O(slots touched).
    pub fn seal(&mut self) {
        self.seal = Some(Arc::new(()));
        self.journal.clear();
        self.full_dirty = false;
        self.bump_epoch();
    }

    /// Rolls back to the sealed state shared with `src`, repairing only
    /// journaled slots. Returns `false` (self untouched) when the two
    /// sides do not share a seal — the caller falls back to
    /// [`Cache::restore_from`].
    pub fn restore_delta(&mut self, src: &Cache) -> bool {
        let shared = match (&self.seal, &src.seal) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        if !shared || self.full_dirty {
            return false;
        }
        debug_assert!(
            src.journal.is_empty() && !src.full_dirty,
            "restore source must be a sealed, unmutated snapshot"
        );
        for i in 0..self.journal.len() {
            let w = self.journal[i] as usize;
            self.tags[w] = src.tags[w];
            self.stamps[w] = src.stamps[w];
            self.vepoch[w] = src.vepoch[w];
        }
        self.journal.clear();
        self.bump_epoch();
        self.tick = src.tick;
        self.mru = src.mru;
        self.hits = src.hits;
        self.misses = src.misses;
        self.flush_epoch = src.flush_epoch;
        true
    }

    /// Overwrites this cache with the state of `src`, reusing the flat
    /// tag/stamp allocations. Both caches must share a geometry (they do
    /// in the snapshot/restore use: restore targets a machine built from
    /// the same config the snapshot came from). Adopts the source's seal,
    /// so subsequent [`Cache::restore_delta`] calls succeed.
    pub fn restore_from(&mut self, src: &Cache) {
        debug_assert_eq!(self.cfg, src.cfg, "restore across cache geometries");
        self.cfg = src.cfg;
        self.tags.clear();
        self.tags.extend_from_slice(&src.tags);
        self.stamps.clear();
        self.stamps.extend_from_slice(&src.stamps);
        self.vepoch.clear();
        self.vepoch.extend_from_slice(&src.vepoch);
        self.flush_epoch = src.flush_epoch;
        self.tick = src.tick;
        self.mru = src.mru;
        self.hits = src.hits;
        self.misses = src.misses;
        // Now byte-identical to the sealed source: adopt its seal and
        // restart journaling so the next restore can go delta.
        self.seal.clone_from(&src.seal);
        self.journal.clear();
        self.full_dirty = false;
        self.bump_epoch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig::new(2, 2, 1))
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        let _ = CacheConfig::new(3, 2, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // All map to set 0 (multiples of 2 lines * 64B = 128).
        c.fill(0);
        c.fill(128);
        // Touch 0 so 128 becomes LRU.
        assert!(c.lookup(0));
        let evicted = c.fill(256);
        assert_eq!(evicted, Some(128));
        assert!(c.probe(0));
        assert!(!c.probe(128));
        assert!(c.probe(256));
    }

    #[test]
    fn refill_does_not_duplicate() {
        let mut c = tiny();
        c.fill(0);
        c.fill(0);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn sub_line_addresses_share_a_line() {
        let mut c = tiny();
        c.fill(0x47);
        assert!(c.probe(0x40));
        assert!(c.probe(0x7f));
        assert!(!c.probe(0x80));
    }

    #[test]
    fn flush_line_and_all() {
        let mut c = tiny();
        c.fill(0);
        c.fill(64);
        assert!(c.flush_line(0));
        assert!(!c.flush_line(0));
        c.flush_all();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = tiny();
        c.lookup(0);
        c.fill(0);
        c.lookup(0);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn probe_does_not_perturb_lru() {
        let mut c = tiny();
        c.fill(0);
        c.fill(128);
        // probe(0) must NOT move 0 to MRU.
        assert!(c.probe(0));
        let evicted = c.fill(256);
        assert_eq!(evicted, Some(0));
    }

    #[test]
    fn fingerprint_detects_state_change() {
        let mut c = tiny();
        c.fill(0);
        let f1 = c.fingerprint();
        c.fill(64);
        let f2 = c.fingerprint();
        assert_ne!(f1, f2);
        assert_eq!(f2, vec![0, 64]);
    }

    #[test]
    fn mru_filter_hit_counts_and_survives_flush() {
        let mut c = tiny();
        c.fill(0);
        assert!(c.lookup(0)); // slow-path hit arms the filter
        assert!(c.lookup(0)); // filter hit
        assert_eq!(c.stats(), (2, 0));
        assert!(c.flush_line(0)); // must disarm the filter
        assert!(!c.lookup(0));
    }

    /// The original per-set MRU-first `Vec` implementation, kept verbatim
    /// as the equivalence oracle for the flat stamp representation.
    struct RefCache {
        sets: Vec<Vec<u64>>,
        cfg: CacheConfig,
        hits: u64,
        misses: u64,
    }

    impl RefCache {
        fn new(cfg: CacheConfig) -> Self {
            RefCache {
                sets: vec![Vec::with_capacity(cfg.ways); cfg.sets],
                cfg,
                hits: 0,
                misses: 0,
            }
        }

        fn set_index(&self, addr: u64) -> usize {
            ((line_addr(addr) / LINE_SIZE) as usize) & (self.cfg.sets - 1)
        }

        fn lookup(&mut self, addr: u64) -> bool {
            let line = line_addr(addr);
            let idx = self.set_index(addr);
            let set = &mut self.sets[idx];
            if let Some(pos) = set.iter().position(|&l| l == line) {
                let l = set.remove(pos);
                set.insert(0, l);
                self.hits += 1;
                true
            } else {
                self.misses += 1;
                false
            }
        }

        fn fill(&mut self, addr: u64) -> Option<u64> {
            let line = line_addr(addr);
            let idx = self.set_index(addr);
            let set = &mut self.sets[idx];
            if let Some(pos) = set.iter().position(|&l| l == line) {
                let l = set.remove(pos);
                set.insert(0, l);
                return None;
            }
            let evicted = if set.len() == self.cfg.ways {
                set.pop()
            } else {
                None
            };
            set.insert(0, line);
            evicted
        }

        fn flush_line(&mut self, addr: u64) -> bool {
            let line = line_addr(addr);
            let idx = self.set_index(addr);
            let set = &mut self.sets[idx];
            if let Some(pos) = set.iter().position(|&l| l == line) {
                set.remove(pos);
                true
            } else {
                false
            }
        }

        fn fingerprint(&self) -> Vec<u64> {
            let mut lines: Vec<u64> = self.sets.iter().flatten().copied().collect();
            lines.sort_unstable();
            lines
        }
    }

    #[test]
    fn flat_stamp_representation_matches_linear_reference() {
        // xorshift-driven op mix over a small address space so every set
        // sees hits, evictions, flushes and full flushes many times.
        let mut state = 0x2545f4914f6cdd1du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (sets, ways) in [(1usize, 1usize), (2, 2), (4, 8), (8, 3)] {
            let cfg = CacheConfig::new(sets, ways, 1);
            let mut cache = Cache::new(cfg);
            let mut reference = RefCache::new(cfg);
            for step in 0..40_000 {
                let r = rng();
                let addr = (r >> 16) % (sets as u64 * ways as u64 * 2 * LINE_SIZE);
                match r % 16 {
                    0..=5 => assert_eq!(
                        cache.lookup(addr),
                        reference.lookup(addr),
                        "lookup step {step} ({sets}x{ways})"
                    ),
                    6..=10 => assert_eq!(
                        cache.fill(addr),
                        reference.fill(addr),
                        "fill step {step} ({sets}x{ways})"
                    ),
                    11..=12 => assert_eq!(
                        cache.probe(addr),
                        reference.sets[reference.set_index(addr)].contains(&line_addr(addr)),
                        "probe step {step} ({sets}x{ways})"
                    ),
                    13..=14 => assert_eq!(
                        cache.flush_line(addr),
                        reference.flush_line(addr),
                        "flush step {step} ({sets}x{ways})"
                    ),
                    _ => {
                        cache.flush_all();
                        for set in &mut reference.sets {
                            set.clear();
                        }
                    }
                }
                debug_assert_eq!(cache.fingerprint(), reference.fingerprint());
            }
            assert_eq!(cache.fingerprint(), reference.fingerprint());
            assert_eq!(cache.stats(), (reference.hits, reference.misses));
        }
    }

    /// Delta restore must leave the cache indistinguishable from an
    /// exhaustive restore: same fingerprint, stats, and future behavior.
    #[test]
    fn delta_restore_matches_exhaustive_restore() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (sets, ways) in [(2usize, 2usize), (8, 4), (16, 16)] {
            let cfg = CacheConfig::new(sets, ways, 1);
            let mut warm = Cache::new(cfg);
            for _ in 0..500 {
                let r = rng();
                let addr = (r >> 16) % (sets as u64 * ways as u64 * 2 * LINE_SIZE);
                if r % 2 == 0 {
                    warm.fill(addr);
                } else {
                    warm.lookup(addr);
                }
            }
            warm.seal();
            let snap = warm.clone();
            let mut delta = warm.clone();
            let mut full = warm;
            // Identical churn on both, including whole-cache flushes.
            for step in 0..2_000 {
                let r = rng();
                let addr = (r >> 16) % (sets as u64 * ways as u64 * 2 * LINE_SIZE);
                match r % 8 {
                    0..=3 => {
                        assert_eq!(delta.fill(addr), full.fill(addr), "step {step}");
                    }
                    4..=5 => {
                        assert_eq!(delta.lookup(addr), full.lookup(addr), "step {step}");
                    }
                    6 => {
                        assert_eq!(delta.flush_line(addr), full.flush_line(addr));
                    }
                    _ => {
                        delta.flush_all();
                        full.flush_all();
                    }
                }
            }
            assert_eq!(delta.fingerprint(), full.fingerprint());
            assert!(delta.restore_delta(&snap), "shared seal must go delta");
            full.restore_from(&snap);
            assert_eq!(delta.fingerprint(), full.fingerprint(), "{sets}x{ways}");
            assert_eq!(delta.fingerprint(), snap.fingerprint());
            assert_eq!(delta.stats(), full.stats());
            assert_eq!(delta.tick, full.tick);
            // Future behavior must also agree (LRU order fully restored).
            for step in 0..500 {
                let r = rng();
                let addr = (r >> 16) % (sets as u64 * ways as u64 * 2 * LINE_SIZE);
                assert_eq!(delta.fill(addr), full.fill(addr), "post step {step}");
                assert_eq!(delta.lookup(addr), full.lookup(addr), "post step {step}");
            }
        }
    }

    #[test]
    fn flush_all_is_an_epoch_bump_and_stays_journal_bounded() {
        let mut c = Cache::new(CacheConfig::new(64, 8, 1));
        for i in 0..512u64 {
            c.fill(i * LINE_SIZE);
        }
        c.seal();
        let snap = c.clone();
        let journaled_before = c.journal_len();
        c.flush_all();
        assert_eq!(c.resident_lines(), 0, "flush must read as empty");
        assert_eq!(
            c.journal_len(),
            journaled_before,
            "flush_all must not journal any slot"
        );
        c.fill(3 * LINE_SIZE);
        assert_eq!(c.resident_lines(), 1);
        assert!(c.journal_len() <= 2);
        assert!(c.restore_delta(&snap));
        assert_eq!(c.fingerprint(), snap.fingerprint());
        assert_eq!(c.resident_lines(), 512);
    }

    #[test]
    fn delta_restore_refuses_foreign_seals() {
        let cfg = CacheConfig::new(2, 2, 1);
        let mut a = Cache::new(cfg);
        a.fill(0);
        a.seal();
        let mut b = Cache::new(cfg);
        b.fill(64);
        b.seal();
        let before = a.fingerprint();
        assert!(!a.restore_delta(&b), "foreign seal must be refused");
        assert_eq!(a.fingerprint(), before, "failed delta must not mutate");
        a.restore_from(&b);
        a.fill(128);
        assert!(a.restore_delta(&b), "full restore adopts the seal");
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
