//! Set-associative caches with LRU replacement and `clflush` support.

use crate::{line_addr, LINE_SIZE};

/// Geometry and latency of one cache level.
///
/// # Examples
///
/// ```
/// use tet_mem::CacheConfig;
///
/// let l1 = CacheConfig::new(64, 8, 4); // 32 KiB, 4-cycle
/// assert_eq!(l1.capacity_bytes(), 32 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Hit latency contribution in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or not a power of two, or `ways` is zero.
    pub fn new(sets: usize, ways: usize, latency: u64) -> Self {
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be non-zero");
        CacheConfig {
            sets,
            ways,
            latency,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * LINE_SIZE as usize
    }
}

/// One level of set-associative cache, tracking line presence (tags only —
/// data lives in [`PhysMem`](crate::PhysMem), which is always coherent in
/// this single-socket model).
///
/// `lookup` returns hit/miss and updates LRU; `fill` installs a line.
///
/// # Examples
///
/// ```
/// use tet_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new(2, 2, 4));
/// assert!(!c.lookup(0x40));
/// c.fill(0x40);
/// assert!(c.lookup(0x40));
/// c.flush_line(0x40);
/// assert!(!c.lookup(0x40));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// Per-set MRU-first list of resident line addresses.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        Cache {
            sets: vec![Vec::with_capacity(cfg.ways); cfg.sets],
            cfg,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    #[inline]
    fn set_index(&self, addr: u64) -> usize {
        ((line_addr(addr) / LINE_SIZE) as usize) & (self.cfg.sets - 1)
    }

    /// Looks up the line containing `addr`, updating LRU and hit/miss
    /// statistics. Returns `true` on hit.
    pub fn lookup(&mut self, addr: u64) -> bool {
        let line = line_addr(addr);
        let idx = self.set_index(addr);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            let l = set.remove(pos);
            set.insert(0, l);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Checks for presence without updating LRU or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let line = line_addr(addr);
        self.sets[self.set_index(addr)].contains(&line)
    }

    /// Installs the line containing `addr`, evicting the LRU way if the
    /// set is full. Returns the evicted line address, if any.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        let line = line_addr(addr);
        let idx = self.set_index(addr);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            let l = set.remove(pos);
            set.insert(0, l);
            return None;
        }
        let evicted = if set.len() == self.cfg.ways {
            set.pop()
        } else {
            None
        };
        set.insert(0, line);
        evicted
    }

    /// Removes the line containing `addr` (the `clflush` primitive).
    /// Returns whether the line was present.
    pub fn flush_line(&mut self, addr: u64) -> bool {
        let line = line_addr(addr);
        let idx = self.set_index(addr);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            true
        } else {
            false
        }
    }

    /// Empties the cache.
    pub fn flush_all(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Number of resident lines (stealth experiments diff this across an
    /// attack to show TET leaves no footprint — Table 1's *stateless*).
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// A stable fingerprint of cache contents: the sorted list of resident
    /// line addresses. Two fingerprints differ iff the cache state differs.
    pub fn fingerprint(&self) -> Vec<u64> {
        let mut lines: Vec<u64> = self.sets.iter().flatten().copied().collect();
        lines.sort_unstable();
        lines
    }

    /// Lifetime `(hits, misses)` counts.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig::new(2, 2, 1))
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        let _ = CacheConfig::new(3, 2, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // All map to set 0 (multiples of 2 lines * 64B = 128).
        c.fill(0);
        c.fill(128);
        // Touch 0 so 128 becomes LRU.
        assert!(c.lookup(0));
        let evicted = c.fill(256);
        assert_eq!(evicted, Some(128));
        assert!(c.probe(0));
        assert!(!c.probe(128));
        assert!(c.probe(256));
    }

    #[test]
    fn refill_does_not_duplicate() {
        let mut c = tiny();
        c.fill(0);
        c.fill(0);
        assert_eq!(c.resident_lines(), 1);
    }

    #[test]
    fn sub_line_addresses_share_a_line() {
        let mut c = tiny();
        c.fill(0x47);
        assert!(c.probe(0x40));
        assert!(c.probe(0x7f));
        assert!(!c.probe(0x80));
    }

    #[test]
    fn flush_line_and_all() {
        let mut c = tiny();
        c.fill(0);
        c.fill(64);
        assert!(c.flush_line(0));
        assert!(!c.flush_line(0));
        c.flush_all();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = tiny();
        c.lookup(0);
        c.fill(0);
        c.lookup(0);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn probe_does_not_perturb_lru() {
        let mut c = tiny();
        c.fill(0);
        c.fill(128);
        // probe(0) must NOT move 0 to MRU.
        assert!(c.probe(0));
        let evicted = c.fill(256);
        assert_eq!(evicted, Some(0));
    }

    #[test]
    fn fingerprint_detects_state_change() {
        let mut c = tiny();
        c.fill(0);
        let f1 = c.fingerprint();
        c.fill(64);
        let f2 = c.fingerprint();
        assert_ne!(f1, f2);
        assert_eq!(f2, vec![0, 64]);
    }
}
