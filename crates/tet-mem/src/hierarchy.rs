//! The assembled cache hierarchy with latency accounting and DRAM jitter.
//!
//! Each level carries its own one-entry MRU filter (inside [`Cache`]):
//! the warm-loop case where consecutive accesses touch the same line —
//! the common shape of every gadget's probe loop — resolves each level's
//! `lookup` with a single compare instead of a set scan, without
//! perturbing LRU order (the filter line already holds its set's maximum
//! age stamp).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tet_obs::{EventKind, MemLevel, SinkHandle};

use crate::cache::{Cache, CacheConfig};
use crate::lfb::LineFillBuffer;
use crate::phys::PhysMem;
use crate::{line_addr, LINE_SIZE};

/// Which level served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HitLevel {
    /// Served by the first-level cache.
    L1,
    /// Served by the unified second-level cache.
    L2,
    /// Served by the last-level cache.
    Llc,
    /// Served by DRAM.
    Dram,
}

impl HitLevel {
    /// The observability-crate spelling of this level.
    pub fn to_obs(self) -> MemLevel {
        match self {
            HitLevel::L1 => MemLevel::L1,
            HitLevel::L2 => MemLevel::L2,
            HitLevel::Llc => MemLevel::Llc,
            HitLevel::Dram => MemLevel::Dram,
        }
    }
}

/// The result of a timed data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataAccess {
    /// Total access latency in cycles.
    pub latency: u64,
    /// The level that served the access.
    pub level: HitLevel,
}

/// Geometry and latency of the full hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryConfig {
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Last-level cache.
    pub llc: CacheConfig,
    /// DRAM base latency in cycles.
    pub dram_latency: u64,
    /// Uniform DRAM jitter amplitude in cycles (`0` = fully deterministic).
    pub dram_jitter: u64,
    /// Line fill buffer entries.
    pub lfb_entries: usize,
}

impl MemoryConfig {
    /// A Skylake-class hierarchy: 32 KiB/8-way L1, 256 KiB/8-way L2,
    /// 8 MiB/16-way LLC, ~200-cycle DRAM, 10 fill buffers.
    pub fn skylake_class() -> Self {
        MemoryConfig {
            l1d: CacheConfig::new(64, 8, 4),
            l1i: CacheConfig::new(64, 8, 4),
            l2: CacheConfig::new(512, 8, 12),
            llc: CacheConfig::new(8192, 16, 40),
            dram_latency: 200,
            dram_jitter: 12,
            lfb_entries: 10,
        }
    }
}

/// The complete memory hierarchy of one physical core (both SMT threads
/// share it, which is what makes the LFB a cross-thread leak).
///
/// Data *contents* live in [`PhysMem`]; the hierarchy tracks presence and
/// charges latency.
///
/// # Examples
///
/// ```
/// use tet_mem::{HitLevel, MemoryConfig, MemorySystem, PhysMem};
///
/// let mut phys = PhysMem::new();
/// phys.write_u64(0x1000, 7);
/// let mut mem = MemorySystem::new(MemoryConfig::skylake_class(), 42);
///
/// let cold = mem.data_load(0x1000, &phys);
/// let warm = mem.data_load(0x1000, &phys);
/// assert_eq!(cold.level, HitLevel::Dram);
/// assert_eq!(warm.level, HitLevel::L1);
/// assert!(cold.latency > warm.latency);
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: MemoryConfig,
    l1d: Cache,
    l1i: Cache,
    l2: Cache,
    llc: Cache,
    lfb: LineFillBuffer,
    rng: StdRng,
    sink: SinkHandle,
    /// Lifetime count of DRAM-jitter RNG draws. Monotonic: snapshot
    /// restores roll the *stream position* back but not this counter,
    /// so deltas of it measure how many draws a span consumed.
    jitter_draws: u64,
    /// Lifetime sum of all jitter cycles drawn (same monotonicity).
    jitter_sum: u64,
}

impl MemorySystem {
    /// Creates a hierarchy; `seed` drives the DRAM jitter stream.
    pub fn new(cfg: MemoryConfig, seed: u64) -> Self {
        MemorySystem {
            l1d: Cache::new(cfg.l1d),
            l1i: Cache::new(cfg.l1i),
            l2: Cache::new(cfg.l2),
            llc: Cache::new(cfg.llc),
            lfb: LineFillBuffer::new(cfg.lfb_entries),
            rng: StdRng::seed_from_u64(seed),
            cfg,
            sink: SinkHandle::disabled(),
            jitter_draws: 0,
            jitter_sum: 0,
        }
    }

    /// Attaches (or detaches, with a disabled handle) the trace sink.
    /// Timestamps come from the handle's shared clock, which the owning
    /// core advances each cycle.
    pub fn set_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> MemoryConfig {
        self.cfg
    }

    fn dram(&mut self) -> u64 {
        if self.cfg.dram_jitter == 0 {
            self.cfg.dram_latency
        } else {
            let j = self.rng.gen_range(0..=self.cfg.dram_jitter);
            self.jitter_draws += 1;
            self.jitter_sum += j;
            self.cfg.dram_latency + j
        }
    }

    /// Lifetime `(draws, summed cycles)` of the DRAM jitter stream —
    /// monotonic across snapshot restores, so span deltas of it tell a
    /// trial batcher exactly how many draws (and how much jitter) a
    /// probe consumed.
    pub fn jitter_stats(&self) -> (u64, u64) {
        (self.jitter_draws, self.jitter_sum)
    }

    /// Advances the jitter stream by `draws` draws without simulating
    /// the DRAM accesses that would have consumed them, returning the
    /// summed jitter. This is the replay path of divergence-aware trial
    /// batching: a skipped probe must leave the RNG at exactly the
    /// position the live run would have left it.
    pub fn replay_jitter(&mut self, draws: u64) -> u64 {
        if self.cfg.dram_jitter == 0 {
            return 0;
        }
        let mut sum = 0u64;
        for _ in 0..draws {
            sum += self.rng.gen_range(0..=self.cfg.dram_jitter);
        }
        self.jitter_draws += draws;
        self.jitter_sum += sum;
        sum
    }

    /// Stamps the access result and reports it to the trace sink.
    fn finish(&self, pa: u64, level: HitLevel, latency: u64, fetch: bool) -> DataAccess {
        self.sink.emit(EventKind::CacheAccess {
            pa,
            level: level.to_obs(),
            latency,
            fetch,
        });
        DataAccess { latency, level }
    }

    fn line_data(pa: u64, phys: &PhysMem) -> [u8; LINE_SIZE as usize] {
        let base = line_addr(pa);
        let mut data = [0u8; LINE_SIZE as usize];
        for (i, b) in data.iter_mut().enumerate() {
            *b = phys.read_u8(base + i as u64);
        }
        data
    }

    /// A timed demand data load of physical address `pa`. Fills all levels
    /// on the way in; fills beyond L1 pass through (and are recorded in)
    /// the line fill buffer.
    pub fn data_load(&mut self, pa: u64, phys: &PhysMem) -> DataAccess {
        let l1_lat = self.cfg.l1d.latency;
        if self.l1d.lookup(pa) {
            return self.finish(pa, HitLevel::L1, l1_lat, false);
        }
        // Every fill into L1 passes through a fill buffer.
        self.lfb.record_fill(pa, Self::line_data(pa, phys));
        self.sink.emit(EventKind::LfbFill { pa });
        if self.l2.lookup(pa) {
            self.l1d.fill(pa);
            return self.finish(pa, HitLevel::L2, l1_lat + self.cfg.l2.latency, false);
        }
        if self.llc.lookup(pa) {
            self.l2.fill(pa);
            self.l1d.fill(pa);
            return self.finish(
                pa,
                HitLevel::Llc,
                l1_lat + self.cfg.l2.latency + self.cfg.llc.latency,
                false,
            );
        }
        let lat = l1_lat + self.cfg.l2.latency + self.cfg.llc.latency + self.dram();
        self.llc.fill(pa);
        self.l2.fill(pa);
        self.l1d.fill(pa);
        self.finish(pa, HitLevel::Dram, lat, false)
    }

    /// A timed store (write-allocate: same fill path as a load).
    pub fn data_store(&mut self, pa: u64, phys: &PhysMem) -> DataAccess {
        self.data_load(pa, phys)
    }

    /// A timed instruction fetch through L1I/L2/LLC.
    pub fn inst_fetch(&mut self, pa: u64, phys: &PhysMem) -> DataAccess {
        let l1_lat = self.cfg.l1i.latency;
        if self.l1i.lookup(pa) {
            return self.finish(pa, HitLevel::L1, l1_lat, true);
        }
        self.lfb.record_fill(pa, Self::line_data(pa, phys));
        self.sink.emit(EventKind::LfbFill { pa });
        if self.l2.lookup(pa) {
            self.l1i.fill(pa);
            return self.finish(pa, HitLevel::L2, l1_lat + self.cfg.l2.latency, true);
        }
        if self.llc.lookup(pa) {
            self.l2.fill(pa);
            self.l1i.fill(pa);
            return self.finish(
                pa,
                HitLevel::Llc,
                l1_lat + self.cfg.l2.latency + self.cfg.llc.latency,
                true,
            );
        }
        let lat = l1_lat + self.cfg.l2.latency + self.cfg.llc.latency + self.dram();
        self.llc.fill(pa);
        self.l2.fill(pa);
        self.l1i.fill(pa);
        self.finish(pa, HitLevel::Dram, lat, true)
    }

    /// Flushes the line containing `pa` from every level (`clflush`).
    pub fn clflush(&mut self, pa: u64) {
        self.l1d.flush_line(pa);
        self.l1i.flush_line(pa);
        self.l2.flush_line(pa);
        self.llc.flush_line(pa);
        self.sink.emit(EventKind::CacheFlush { pa });
    }

    /// Probes whether the line containing `pa` is in the L1 data cache,
    /// without perturbing any state (used by stealth measurements).
    pub fn probe_l1d(&self, pa: u64) -> bool {
        self.l1d.probe(pa)
    }

    /// Non-perturbing presence probe across the whole hierarchy —
    /// returns the closest level holding the line, if any. Used by the
    /// Meltdown forwarding model: real silicon only forwards data that
    /// is already resident.
    pub fn probe_level(&self, pa: u64) -> Option<HitLevel> {
        if self.l1d.probe(pa) {
            Some(HitLevel::L1)
        } else if self.l2.probe(pa) {
            Some(HitLevel::L2)
        } else if self.llc.probe(pa) {
            Some(HitLevel::Llc)
        } else {
            None
        }
    }

    /// Direct access to the line fill buffer (the Zombieload substrate).
    pub fn lfb(&self) -> &LineFillBuffer {
        &self.lfb
    }

    /// Mutable access to the line fill buffer (mitigations clear it).
    pub fn lfb_mut(&mut self) -> &mut LineFillBuffer {
        &mut self.lfb
    }

    /// A combined fingerprint of all cache levels, for Table 1's
    /// stateless-channel evidence: equal fingerprints ⇒ no persistent
    /// cache footprint.
    pub fn cache_fingerprint(&self) -> Vec<Vec<u64>> {
        vec![
            self.l1d.fingerprint(),
            self.l1i.fingerprint(),
            self.l2.fingerprint(),
            self.llc.fingerprint(),
        ]
    }

    /// `(hits, misses)` of the L1 data cache.
    pub fn l1d_stats(&self) -> (u64, u64) {
        self.l1d.stats()
    }

    /// Seals every cache level for delta restore (DESIGN.md §16): later
    /// slot writes journal themselves so [`MemorySystem::restore_delta`]
    /// against a clone of this seal repairs only touched slots.
    pub fn seal(&mut self) {
        self.l1d.seal();
        self.l1i.seal();
        self.l2.seal();
        self.llc.seal();
    }

    /// Journal-driven rollback to the sealed state shared with `src`.
    /// Cache levels repair O(slots touched); the LFB (10 entries), RNG
    /// stream position and sink are small and restored eagerly. Falls
    /// back per level when a seal is not shared, so this never fails —
    /// it is only ever slower.
    pub fn restore_delta(&mut self, src: &MemorySystem) {
        debug_assert_eq!(self.cfg, src.cfg, "restore across memory configs");
        self.cfg = src.cfg;
        if !self.l1d.restore_delta(&src.l1d) {
            self.l1d.restore_from(&src.l1d);
        }
        if !self.l1i.restore_delta(&src.l1i) {
            self.l1i.restore_from(&src.l1i);
        }
        if !self.l2.restore_delta(&src.l2) {
            self.l2.restore_from(&src.l2);
        }
        if !self.llc.restore_delta(&src.llc) {
            self.llc.restore_from(&src.llc);
        }
        self.lfb.restore_from(&src.lfb);
        self.rng = src.rng.clone();
        self.sink = src.sink.clone();
    }

    /// Overwrites this hierarchy with the state of `src` — tags, stamps,
    /// fill buffers and the DRAM jitter stream position — reusing every
    /// flat allocation (snapshot restore). The trace sink is taken from
    /// `src` too; [`Machine::run`](../tet-uarch) re-attaches its own per-run
    /// sink anyway.
    pub fn restore_from(&mut self, src: &MemorySystem) {
        let MemorySystem {
            cfg,
            l1d,
            l1i,
            l2,
            llc,
            lfb,
            rng,
            sink,
            // Lifetime draw counters stay monotonic across restores (the
            // stream *position* rolls back, the bookkeeping does not).
            jitter_draws: _,
            jitter_sum: _,
        } = src;
        self.cfg = *cfg;
        self.l1d.restore_from(l1d);
        self.l1i.restore_from(l1i);
        self.l2.restore_from(l2);
        self.llc.restore_from(llc);
        self.lfb.restore_from(lfb);
        self.rng = rng.clone();
        self.sink = sink.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> (MemorySystem, PhysMem) {
        let mut cfg = MemoryConfig::skylake_class();
        cfg.dram_jitter = 0;
        (MemorySystem::new(cfg, 1), PhysMem::new())
    }

    #[test]
    fn levels_fill_inwards() {
        let (mut m, phys) = mem();
        assert_eq!(m.data_load(0x1000, &phys).level, HitLevel::Dram);
        assert_eq!(m.data_load(0x1000, &phys).level, HitLevel::L1);
        m.l1d.flush_line(0x1000);
        assert_eq!(m.data_load(0x1000, &phys).level, HitLevel::L2);
    }

    #[test]
    fn latencies_are_monotonic_in_depth() {
        let (mut m, phys) = mem();
        let dram = m.data_load(0x2000, &phys).latency;
        let l1 = m.data_load(0x2000, &phys).latency;
        m.l1d.flush_line(0x2000);
        let l2 = m.data_load(0x2000, &phys).latency;
        assert!(l1 < l2 && l2 < dram, "{l1} < {l2} < {dram}");
    }

    #[test]
    fn clflush_evicts_everywhere() {
        let (mut m, phys) = mem();
        m.data_load(0x3000, &phys);
        m.clflush(0x3000);
        assert_eq!(m.data_load(0x3000, &phys).level, HitLevel::Dram);
    }

    #[test]
    fn fills_record_stale_data_in_lfb() {
        let (mut m, mut phys) = mem();
        phys.write_u8(0x4002, b'Z');
        m.data_load(0x4000, &phys);
        assert_eq!(m.lfb().stale_byte(2), Some(b'Z'));
    }

    #[test]
    fn l1_hits_do_not_touch_the_lfb() {
        let (mut m, phys) = mem();
        m.data_load(0x5000, &phys);
        let len = m.lfb().len();
        m.data_load(0x5000, &phys);
        assert_eq!(m.lfb().len(), len);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let cfg = MemoryConfig::skylake_class();
        let phys = PhysMem::new();
        let mut a = MemorySystem::new(cfg, 7);
        let mut b = MemorySystem::new(cfg, 7);
        for i in 0..32 {
            assert_eq!(
                a.data_load(i * 64, &phys).latency,
                b.data_load(i * 64, &phys).latency
            );
        }
    }

    #[test]
    fn jitter_varies_within_bounds() {
        let cfg = MemoryConfig::skylake_class();
        let phys = PhysMem::new();
        let mut m = MemorySystem::new(cfg, 7);
        let base = cfg.l1d.latency + cfg.l2.latency + cfg.llc.latency + cfg.dram_latency;
        let mut distinct = std::collections::HashSet::new();
        for i in 0..64 {
            let lat = m.data_load(i * 4096, &phys).latency;
            assert!(lat >= base && lat <= base + cfg.dram_jitter);
            distinct.insert(lat);
        }
        assert!(distinct.len() > 1, "jitter should actually vary");
    }

    #[test]
    fn inst_fetch_uses_l1i_not_l1d() {
        let (mut m, phys) = mem();
        m.inst_fetch(0x6000, &phys);
        assert_eq!(m.inst_fetch(0x6000, &phys).level, HitLevel::L1);
        // The data side is still cold (L2 now holds it though).
        assert_eq!(m.data_load(0x6000, &phys).level, HitLevel::L2);
    }

    #[test]
    fn sink_sees_cache_traffic() {
        use tet_obs::MemorySink;
        let (mut m, phys) = mem();
        let sink = std::sync::Arc::new(MemorySink::new());
        let handle = SinkHandle::attached(sink.clone());
        handle.tick(99);
        m.set_sink(handle);
        m.data_load(0x1000, &phys); // DRAM miss → access + LFB fill
        m.data_load(0x1000, &phys); // L1 hit → access only
        m.clflush(0x1000);
        let evs = sink.drain();
        let kinds: Vec<&str> = evs.iter().map(|e| e.kind.label()).collect();
        assert_eq!(
            kinds,
            ["lfb_fill", "cache_access", "cache_access", "cache_flush"]
        );
        assert!(
            evs.iter().all(|e| e.cycle == 99),
            "stamped from shared clock"
        );
        assert!(matches!(
            evs[2].kind,
            EventKind::CacheAccess {
                level: MemLevel::L1,
                fetch: false,
                ..
            }
        ));
    }

    #[test]
    fn cache_fingerprint_reflects_state() {
        let (mut m, phys) = mem();
        let f0 = m.cache_fingerprint();
        m.data_load(0x7000, &phys);
        let f1 = m.cache_fingerprint();
        assert_ne!(f0, f1);
    }
}
