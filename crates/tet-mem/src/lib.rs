//! Memory subsystem model for the Whisper (DAC 2024) reproduction.
//!
//! The TET-KASLR attack and the Zombieload variant live or die on memory
//! subsystem details, so this crate models them explicitly:
//!
//! * [`phys`] — sparse simulated physical memory.
//! * [`cache`] — set-associative, LRU caches (L1D/L1I/L2/LLC) with
//!   `clflush` support.
//! * [`lfb`] — line fill buffers that retain *stale data* from recent
//!   fills, the substrate Zombieload samples.
//! * [`paging`] — 4-level page tables, PTE permission bits (present /
//!   user / writable / global / **reserved**, the last used by the FLARE
//!   dummy mappings).
//! * [`tlb`] — set-associative translation lookaside buffers. Whether a
//!   TLB entry is installed by a *faulting* access is the root cause of
//!   TET-KASLR (paper §5.2.4) and is decided by the CPU model, not here.
//! * [`walker`] — the hardware page walker with per-level costs; walks
//!   that fail (not-present / reserved-bit) report where they stopped so
//!   the core can model Intel's walk-retry behaviour
//!   (`DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK = 2` in Table 3).
//! * [`hierarchy`] — the assembled [`MemorySystem`] with latency
//!   accounting and a seeded DRAM jitter model (the noise the paper's
//!   argmax analysis has to average away).
//!
//! Everything is deterministic given a seed; the only randomness is the
//! explicitly seeded DRAM jitter.

#![warn(missing_docs)]

pub mod cache;
pub mod hierarchy;
pub mod lfb;
pub mod paging;
pub mod phys;
pub mod tlb;
pub mod walker;

pub use cache::{Cache, CacheConfig};
pub use hierarchy::{DataAccess, HitLevel, MemoryConfig, MemorySystem};
pub use lfb::LineFillBuffer;
pub use paging::{AddressSpace, FrameAlloc, Pte, WalkOutcome};
pub use phys::PhysMem;
pub use tlb::{Tlb, TlbConfig, TlbEntry};
pub use walker::{PageWalker, WalkConfig, WalkResult};

/// Bytes per page (4 KiB, the paper's probing granularity).
pub const PAGE_SIZE: u64 = 4096;

/// Bytes per cache line.
pub const LINE_SIZE: u64 = 64;

/// Returns the virtual page number of an address.
#[inline]
pub fn vpn(vaddr: u64) -> u64 {
    vaddr >> 12
}

/// Returns the cache-line address (line-aligned) of an address.
#[inline]
pub fn line_addr(addr: u64) -> u64 {
    addr & !(LINE_SIZE - 1)
}
