//! Line fill buffers — the stale-data substrate of Zombieload.
//!
//! On real Intel cores every cache-line fill passes through one of a
//! small number of line fill buffers (LFBs). The buffers are not cleared
//! between uses, and a faulting or microcode-assisted load can transiently
//! receive *stale* data from a buffer filled by an unrelated earlier
//! access — including one by the sibling SMT thread. That aggressive
//! forwarding is the Zombieload leak (paper §4.3.2); the TET-ZBL attack
//! transmits the stale value through the Whisper timing channel instead of
//! Flush+Reload.

use std::collections::VecDeque;

use crate::{line_addr, LINE_SIZE};

/// One line fill buffer entry: the line address and its 64 data bytes as
/// they passed through on the fill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LfbEntry {
    /// Line-aligned physical address of the fill.
    pub line: u64,
    /// The 64 bytes of the fill.
    pub data: [u8; LINE_SIZE as usize],
}

/// A small FIFO of recent fills whose data persists until overwritten.
///
/// # Examples
///
/// ```
/// use tet_mem::LineFillBuffer;
///
/// let mut lfb = LineFillBuffer::new(10);
/// let mut line = [0u8; 64];
/// line[3] = b'K';
/// lfb.record_fill(0x1000, line);
/// // A later faulting load transiently observes the stale byte:
/// assert_eq!(lfb.stale_byte(3), Some(b'K'));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LineFillBuffer {
    entries: VecDeque<LfbEntry>,
    capacity: usize,
}

impl LineFillBuffer {
    /// Creates an LFB with `capacity` entries (10–12 on the modelled
    /// cores).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LFB needs at least one entry");
        LineFillBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Records a fill of `line` (any address within the line) carrying
    /// `data`, evicting the oldest entry when full.
    pub fn record_fill(&mut self, addr: u64, data: [u8; LINE_SIZE as usize]) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(LfbEntry {
            line: line_addr(addr),
            data,
        });
    }

    /// The stale byte at `offset` within the most recently filled line —
    /// what a microcode-assisted load transiently forwards on an
    /// MDS-vulnerable core.
    pub fn stale_byte(&self, offset: usize) -> Option<u8> {
        self.entries
            .back()
            .map(|e| e.data[offset % LINE_SIZE as usize])
    }

    /// The stale 8-byte value at `offset` (wrapping within the line).
    pub fn stale_u64(&self, offset: usize) -> Option<u64> {
        self.entries.back().map(|e| {
            let mut bytes = [0u8; 8];
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = e.data[(offset + i) % LINE_SIZE as usize];
            }
            u64::from_le_bytes(bytes)
        })
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no fill has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all entries (used by `verw`-style mitigations and by tests).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// All entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &LfbEntry> {
        self.entries.iter()
    }

    /// Overwrites this buffer with the state of `src`, reusing the ring
    /// allocation (snapshot restore).
    pub fn restore_from(&mut self, src: &LineFillBuffer) {
        let LineFillBuffer { entries, capacity } = src;
        self.capacity = *capacity;
        self.entries.clone_from(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_with(off: usize, v: u8) -> [u8; 64] {
        let mut l = [0u8; 64];
        l[off] = v;
        l
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = LineFillBuffer::new(0);
    }

    #[test]
    fn empty_lfb_has_no_stale_data() {
        let lfb = LineFillBuffer::new(4);
        assert_eq!(lfb.stale_byte(0), None);
        assert_eq!(lfb.stale_u64(0), None);
    }

    #[test]
    fn most_recent_fill_wins() {
        let mut lfb = LineFillBuffer::new(4);
        lfb.record_fill(0x1000, line_with(0, b'A'));
        lfb.record_fill(0x2000, line_with(0, b'B'));
        assert_eq!(lfb.stale_byte(0), Some(b'B'));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut lfb = LineFillBuffer::new(2);
        lfb.record_fill(0x1000, line_with(0, 1));
        lfb.record_fill(0x2000, line_with(0, 2));
        lfb.record_fill(0x3000, line_with(0, 3));
        assert_eq!(lfb.len(), 2);
        let lines: Vec<u64> = lfb.entries().map(|e| e.line).collect();
        assert_eq!(lines, vec![0x2000, 0x3000]);
    }

    #[test]
    fn stale_u64_wraps_within_line() {
        let mut lfb = LineFillBuffer::new(2);
        let mut data = [0u8; 64];
        data[63] = 0xAA;
        data[0] = 0xBB;
        lfb.record_fill(0, data);
        let v = lfb.stale_u64(63).unwrap();
        assert_eq!(v & 0xff, 0xAA);
        assert_eq!((v >> 8) & 0xff, 0xBB);
    }

    #[test]
    fn clear_removes_everything() {
        let mut lfb = LineFillBuffer::new(2);
        lfb.record_fill(0x1000, line_with(1, 9));
        lfb.clear();
        assert!(lfb.is_empty());
        assert_eq!(lfb.stale_byte(1), None);
    }
}
