//! Sparse simulated physical memory with copy-on-write snapshot forks.

use std::collections::HashMap;
use std::sync::Arc;

use crate::PAGE_SIZE;

/// One 4 KiB physical page.
pub type Page = [u8; PAGE_SIZE as usize];

/// A resident page: either shared with the sealed snapshot image
/// (clean) or privately owned (dirtied since the seal).
#[derive(Debug, Clone)]
enum PageSlot {
    /// Clean — still the snapshot's copy. Any write COW-forks it.
    Shared(Arc<Page>),
    /// Dirtied (or allocated) since the last seal.
    Owned(Box<Page>),
}

impl PageSlot {
    fn bytes(&self) -> &Page {
        match self {
            PageSlot::Shared(p) => p,
            PageSlot::Owned(p) => p,
        }
    }
}

/// Sparse physical memory, allocated page-by-page on first write.
///
/// Reads of never-written memory return zero, like freshly-zeroed DRAM.
///
/// Snapshot forks are O(touched): [`PhysMem::seal`] freezes the current
/// contents into an `Arc`-shared base image, after which every resident
/// page is [`PageSlot::Shared`] and writes COW-fork individual pages
/// into the `dirty` journal. [`PhysMem::restore_delta`] walks only that
/// journal, re-pointing dirtied pages at the base image and dropping
/// pages allocated since the seal.
///
/// # Examples
///
/// ```
/// use tet_mem::PhysMem;
///
/// let mut m = PhysMem::new();
/// m.write_u64(0x1000, 0xdead_beef);
/// assert_eq!(m.read_u64(0x1000), 0xdead_beef);
/// assert_eq!(m.read_u8(0x9_0000), 0);
/// ```
#[derive(Debug, Default)]
pub struct PhysMem {
    pages: HashMap<u64, PageSlot>,
    /// The sealed snapshot image this memory forked from, if any.
    base: Option<Arc<HashMap<u64, Arc<Page>>>>,
    /// Page numbers touched since the last seal/restore. Deduplicated by
    /// construction: a page COW-forks (or is inserted) at most once per
    /// epoch, exactly when it journals itself.
    dirty: Vec<u64>,
    /// Recycled page boxes, so the restore → re-dirty cycle of a trial
    /// loop does not hit the allocator. Not cloned.
    spare: Vec<Box<Page>>,
}

impl Clone for PhysMem {
    fn clone(&self) -> Self {
        PhysMem {
            pages: self.pages.clone(),
            base: self.base.clone(),
            dirty: self.dirty.clone(),
            spare: Vec::new(),
        }
    }
}

/// Cap on recycled page boxes kept across restores.
const SPARE_PAGES: usize = 64;

impl PhysMem {
    /// Creates empty (all-zero) physical memory.
    pub fn new() -> Self {
        Self::default()
    }

    fn page(&self, pa: u64) -> Option<&Page> {
        self.pages.get(&(pa / PAGE_SIZE)).map(PageSlot::bytes)
    }

    fn blank_page(&mut self) -> Box<Page> {
        match self.spare.pop() {
            Some(mut p) => {
                p.fill(0);
                p
            }
            None => Box::new([0; PAGE_SIZE as usize]),
        }
    }

    fn page_mut(&mut self, pa: u64) -> &mut Page {
        let vpn = pa / PAGE_SIZE;
        if !matches!(self.pages.get(&vpn), Some(PageSlot::Owned(_))) {
            let slot = match self.pages.remove(&vpn) {
                // COW fork: first write to a clean page this epoch.
                Some(PageSlot::Shared(arc)) => {
                    let mut owned = match self.spare.pop() {
                        Some(p) => p,
                        None => Box::new([0; PAGE_SIZE as usize]),
                    };
                    owned.copy_from_slice(&arc[..]);
                    PageSlot::Owned(owned)
                }
                Some(owned @ PageSlot::Owned(_)) => owned,
                // Fresh allocation.
                None => PageSlot::Owned(self.blank_page()),
            };
            if self.base.is_some() {
                self.dirty.push(vpn);
            }
            self.pages.insert(vpn, slot);
        }
        match self.pages.get_mut(&vpn) {
            Some(PageSlot::Owned(p)) => p,
            _ => unreachable!("page was just made Owned"),
        }
    }

    /// Reads one byte.
    pub fn read_u8(&self, pa: u64) -> u8 {
        self.page(pa)
            .map(|p| p[(pa % PAGE_SIZE) as usize])
            .unwrap_or(0)
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, pa: u64, v: u8) {
        let off = (pa % PAGE_SIZE) as usize;
        self.page_mut(pa)[off] = v;
    }

    /// Reads an 8-byte little-endian value (may cross a page boundary).
    pub fn read_u64(&self, pa: u64) -> u64 {
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(pa + i as u64);
        }
        u64::from_le_bytes(bytes)
    }

    /// Writes an 8-byte little-endian value (may cross a page boundary).
    pub fn write_u64(&mut self, pa: u64, v: u64) {
        for (i, b) in v.to_le_bytes().iter().enumerate() {
            self.write_u8(pa + i as u64, *b);
        }
    }

    /// Copies a byte slice into memory starting at `pa`.
    pub fn write_bytes(&mut self, pa: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(pa + i as u64, *b);
        }
    }

    /// Reads `len` bytes starting at `pa`.
    pub fn read_bytes(&self, pa: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(pa + i as u64)).collect()
    }

    /// Number of physical pages that have been touched by a write.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of pages dirtied (written or allocated) since the last
    /// seal or delta restore. Zero for never-sealed memory.
    pub fn dirty_pages(&self) -> usize {
        self.dirty.len()
    }

    /// Freezes the current contents into an `Arc`-shared base image.
    /// Clones of a sealed `PhysMem` share every page; their writes
    /// COW-fork pages individually, and [`PhysMem::restore_delta`]
    /// against a clone of the same seal is O(pages dirtied).
    pub fn seal(&mut self) {
        let pages = std::mem::take(&mut self.pages);
        let mut base = HashMap::with_capacity(pages.len());
        self.pages.reserve(pages.len());
        for (vpn, slot) in pages {
            let arc = match slot {
                PageSlot::Shared(arc) => arc,
                PageSlot::Owned(owned) => Arc::from(owned),
            };
            base.insert(vpn, Arc::clone(&arc));
            self.pages.insert(vpn, PageSlot::Shared(arc));
        }
        self.base = Some(Arc::new(base));
        self.dirty.clear();
    }

    /// Rolls back to the sealed image shared with `src`, touching only
    /// pages dirtied since the seal. Returns `false` (self unchanged)
    /// when the two sides do not share a base image, in which case the
    /// caller must fall back to [`PhysMem::restore_from`].
    pub fn restore_delta(&mut self, src: &PhysMem) -> bool {
        let shared = match (&self.base, &src.base) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        if !shared {
            return false;
        }
        debug_assert!(
            src.dirty.is_empty(),
            "restore source must be a sealed, unmutated snapshot"
        );
        let base = self.base.clone().expect("checked above");
        for i in 0..self.dirty.len() {
            let vpn = self.dirty[i];
            let old = match base.get(&vpn) {
                Some(arc) => self.pages.insert(vpn, PageSlot::Shared(Arc::clone(arc))),
                None => self.pages.remove(&vpn),
            };
            if let Some(PageSlot::Owned(p)) = old {
                if self.spare.len() < SPARE_PAGES {
                    self.spare.push(p);
                }
            }
        }
        self.dirty.clear();
        true
    }

    /// Overwrites this memory with the contents of `src`, reusing the
    /// source's shared pages where it is sealed (an `Arc` bump per page)
    /// and deep-copying otherwise. Also adopts the source's base image
    /// so subsequent [`PhysMem::restore_delta`] calls succeed.
    pub fn restore_from(&mut self, src: &PhysMem) {
        self.pages.clear();
        for (k, slot) in &src.pages {
            self.pages.insert(*k, slot.clone());
        }
        self.base.clone_from(&src.base);
        self.dirty.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = PhysMem::new();
        assert_eq!(m.read_u8(12345), 0);
        assert_eq!(m.read_u64(0xffff_0000), 0);
    }

    #[test]
    fn u64_round_trip_little_endian() {
        let mut m = PhysMem::new();
        m.write_u64(0x2000, 0x0102_0304_0506_0708);
        assert_eq!(m.read_u8(0x2000), 0x08);
        assert_eq!(m.read_u8(0x2007), 0x01);
        assert_eq!(m.read_u64(0x2000), 0x0102_0304_0506_0708);
    }

    #[test]
    fn cross_page_u64_access() {
        let mut m = PhysMem::new();
        m.write_u64(0x1ffc, u64::MAX);
        assert_eq!(m.read_u64(0x1ffc), u64::MAX);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn write_bytes_round_trip() {
        let mut m = PhysMem::new();
        m.write_bytes(0x3000, b"whisper");
        assert_eq!(m.read_bytes(0x3000, 7), b"whisper");
    }

    #[test]
    fn delta_restore_walks_only_the_dirty_set() {
        let mut m = PhysMem::new();
        m.write_u64(0x1000, 0x1111);
        m.write_u64(0x5000, 0x5555);
        m.seal();
        let snap = m.clone();
        assert_eq!(m.dirty_pages(), 0);

        // Dirty one existing page, allocate one new page.
        m.write_u8(0x1004, 0xff);
        m.write_u8(0x9000, 0xee);
        assert_eq!(m.dirty_pages(), 2);
        assert_eq!(m.resident_pages(), 3);

        assert!(m.restore_delta(&snap));
        assert_eq!(m.dirty_pages(), 0);
        assert_eq!(m.resident_pages(), 2);
        assert_eq!(m.read_u64(0x1000), 0x1111);
        assert_eq!(m.read_u8(0x9000), 0);
        assert_eq!(m.read_u64(0x5000), 0x5555);
    }

    #[test]
    fn delta_restore_refuses_mismatched_seals() {
        let mut a = PhysMem::new();
        a.write_u8(0x1000, 1);
        a.seal();
        let mut b = PhysMem::new();
        b.write_u8(0x1000, 2);
        b.seal();
        assert!(!a.restore_delta(&b));
        assert_eq!(a.read_u8(0x1000), 1, "failed delta must not mutate");
        a.restore_from(&b);
        assert_eq!(a.read_u8(0x1000), 2);
        a.write_u8(0x1000, 9);
        assert!(a.restore_delta(&b), "full restore adopts the seal");
        assert_eq!(a.read_u8(0x1000), 2);
    }

    #[test]
    fn restore_matches_exhaustive_copy_after_random_churn() {
        let mut m = PhysMem::new();
        for i in 0..16u64 {
            m.write_u64(0x1000 * i, i * 0x0101);
        }
        m.seal();
        let snap = m.clone();
        let mut full = m.clone();
        for i in 0..32u64 {
            m.write_u8(0x800 * i + 7, i as u8);
            full.write_u8(0x800 * i + 7, i as u8);
        }
        assert!(m.restore_delta(&snap));
        full.restore_from(&snap);
        assert_eq!(m.resident_pages(), full.resident_pages());
        for i in 0..32u64 {
            let pa = 0x800 * i + 7;
            assert_eq!(m.read_u8(pa), full.read_u8(pa), "pa {pa:#x}");
        }
    }
}
