//! Sparse simulated physical memory.

use std::collections::HashMap;

use crate::PAGE_SIZE;

/// Sparse physical memory, allocated page-by-page on first write.
///
/// Reads of never-written memory return zero, like freshly-zeroed DRAM.
///
/// # Examples
///
/// ```
/// use tet_mem::PhysMem;
///
/// let mut m = PhysMem::new();
/// m.write_u64(0x1000, 0xdead_beef);
/// assert_eq!(m.read_u64(0x1000), 0xdead_beef);
/// assert_eq!(m.read_u8(0x9_0000), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhysMem {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl PhysMem {
    /// Creates empty (all-zero) physical memory.
    pub fn new() -> Self {
        Self::default()
    }

    fn page(&self, pa: u64) -> Option<&[u8; PAGE_SIZE as usize]> {
        self.pages.get(&(pa / PAGE_SIZE)).map(|b| &**b)
    }

    fn page_mut(&mut self, pa: u64) -> &mut [u8; PAGE_SIZE as usize] {
        self.pages
            .entry(pa / PAGE_SIZE)
            .or_insert_with(|| Box::new([0; PAGE_SIZE as usize]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, pa: u64) -> u8 {
        self.page(pa)
            .map(|p| p[(pa % PAGE_SIZE) as usize])
            .unwrap_or(0)
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, pa: u64, v: u8) {
        let off = (pa % PAGE_SIZE) as usize;
        self.page_mut(pa)[off] = v;
    }

    /// Reads an 8-byte little-endian value (may cross a page boundary).
    pub fn read_u64(&self, pa: u64) -> u64 {
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(pa + i as u64);
        }
        u64::from_le_bytes(bytes)
    }

    /// Writes an 8-byte little-endian value (may cross a page boundary).
    pub fn write_u64(&mut self, pa: u64, v: u64) {
        for (i, b) in v.to_le_bytes().iter().enumerate() {
            self.write_u8(pa + i as u64, *b);
        }
    }

    /// Copies a byte slice into memory starting at `pa`.
    pub fn write_bytes(&mut self, pa: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(pa + i as u64, *b);
        }
    }

    /// Reads `len` bytes starting at `pa`.
    pub fn read_bytes(&self, pa: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(pa + i as u64)).collect()
    }

    /// Number of physical pages that have been touched by a write.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Overwrites this memory with the contents of `src`, reusing page
    /// allocations already present on both sides (snapshot restore).
    /// Pages only the destination holds are dropped; pages only the
    /// source holds are cloned in; shared pages are copied in place.
    pub fn restore_from(&mut self, src: &PhysMem) {
        self.pages.retain(|k, _| src.pages.contains_key(k));
        for (k, page) in &src.pages {
            match self.pages.entry(*k) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().copy_from_slice(&page[..]);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(page.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = PhysMem::new();
        assert_eq!(m.read_u8(12345), 0);
        assert_eq!(m.read_u64(0xffff_0000), 0);
    }

    #[test]
    fn u64_round_trip_little_endian() {
        let mut m = PhysMem::new();
        m.write_u64(0x2000, 0x0102_0304_0506_0708);
        assert_eq!(m.read_u8(0x2000), 0x08);
        assert_eq!(m.read_u8(0x2007), 0x01);
        assert_eq!(m.read_u64(0x2000), 0x0102_0304_0506_0708);
    }

    #[test]
    fn cross_page_u64_access() {
        let mut m = PhysMem::new();
        m.write_u64(0x1ffc, u64::MAX);
        assert_eq!(m.read_u64(0x1ffc), u64::MAX);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn write_bytes_round_trip() {
        let mut m = PhysMem::new();
        m.write_bytes(0x3000, b"whisper");
        assert_eq!(m.read_bytes(0x3000, 7), b"whisper");
    }
}
