//! Translation lookaside buffers.
//!
//! Whether a *faulting* access installs a TLB entry is the root cause of
//! TET-KASLR: the paper observes (§4.5, Table 3) that Intel cores load
//! TLB entries for mapped kernel addresses even when the access lacks
//! permission, while unmapped addresses obviously cannot fill the TLB.
//! The fill policy lives in the CPU model; this module only provides the
//! structure.

use crate::{vpn, Pte};

/// TLB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Ways per set.
    pub ways: usize,
}

impl TlbConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or not a power of two, or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be non-zero");
        TlbConfig { sets, ways }
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }
}

/// One cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page number.
    pub vpn: u64,
    /// The cached leaf PTE (permissions are re-checked on every use).
    pub pte: Pte,
}

/// A set-associative TLB with LRU replacement.
///
/// # Examples
///
/// ```
/// use tet_mem::{Pte, Tlb, TlbConfig};
///
/// let mut tlb = Tlb::new(TlbConfig::new(16, 4));
/// assert!(tlb.lookup(0xffff_ffff_8000_0000).is_none());
/// tlb.fill(0xffff_ffff_8000_0000, Pte::kernel(7));
/// assert!(tlb.lookup(0xffff_ffff_8000_0abc).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    /// Per-set MRU-first entries.
    sets: Vec<Vec<TlbEntry>>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(cfg: TlbConfig) -> Self {
        Tlb {
            sets: vec![Vec::with_capacity(cfg.ways); cfg.sets],
            cfg,
            hits: 0,
            misses: 0,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> TlbConfig {
        self.cfg
    }

    #[inline]
    fn set_index(&self, page: u64) -> usize {
        (page as usize) & (self.cfg.sets - 1)
    }

    /// Looks up the translation for `vaddr`, updating LRU and statistics.
    pub fn lookup(&mut self, vaddr: u64) -> Option<TlbEntry> {
        let page = vpn(vaddr);
        let idx = self.set_index(page);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|e| e.vpn == page) {
            let e = set.remove(pos);
            set.insert(0, e);
            self.hits += 1;
            Some(e)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Checks for presence without updating LRU or statistics.
    pub fn probe(&self, vaddr: u64) -> bool {
        let page = vpn(vaddr);
        self.sets[self.set_index(page)]
            .iter()
            .any(|e| e.vpn == page)
    }

    /// Installs a translation, evicting the set's LRU entry when full.
    pub fn fill(&mut self, vaddr: u64, pte: Pte) {
        let page = vpn(vaddr);
        let idx = self.set_index(page);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|e| e.vpn == page) {
            set.remove(pos);
        } else if set.len() == self.cfg.ways {
            set.pop();
        }
        set.insert(0, TlbEntry { vpn: page, pte });
    }

    /// Invalidates the entry for `vaddr` (the `invlpg` primitive).
    pub fn flush_page(&mut self, vaddr: u64) -> bool {
        let page = vpn(vaddr);
        let idx = self.set_index(page);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|e| e.vpn == page) {
            set.remove(pos);
            true
        } else {
            false
        }
    }

    /// Full flush, optionally preserving global (kernel) entries — the
    /// semantics of a CR3 write without/with PCID-style global protection.
    pub fn flush_all(&mut self, keep_global: bool) {
        for set in &mut self.sets {
            if keep_global {
                set.retain(|e| e.pte.global);
            } else {
                set.clear();
            }
        }
    }

    /// Number of live entries.
    pub fn resident_entries(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Sorted VPNs of live entries (stealth fingerprinting).
    pub fn fingerprint(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.sets.iter().flatten().map(|e| e.vpn).collect();
        v.sort_unstable();
        v
    }

    /// Lifetime `(hits, misses)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb4() -> Tlb {
        Tlb::new(TlbConfig::new(1, 4))
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut t = tlb4();
        assert!(t.lookup(0x1000).is_none());
        t.fill(0x1000, Pte::user_data(1));
        assert_eq!(t.lookup(0x1fff).unwrap().pte.frame, 1);
        assert_eq!(t.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction() {
        let mut t = tlb4();
        for p in 0..4u64 {
            t.fill(p * 4096, Pte::user_data(p));
        }
        // Touch page 0 → page 1 is now LRU.
        t.lookup(0);
        t.fill(4 * 4096, Pte::user_data(4));
        assert!(t.probe(0));
        assert!(!t.probe(4096));
    }

    #[test]
    fn refill_updates_pte() {
        let mut t = tlb4();
        t.fill(0x1000, Pte::user_data(1));
        t.fill(0x1000, Pte::user_data(2));
        assert_eq!(t.resident_entries(), 1);
        assert_eq!(t.lookup(0x1000).unwrap().pte.frame, 2);
    }

    #[test]
    fn flush_page_only_hits_target() {
        let mut t = tlb4();
        t.fill(0x1000, Pte::user_data(1));
        t.fill(0x2000, Pte::user_data(2));
        assert!(t.flush_page(0x1000));
        assert!(!t.flush_page(0x1000));
        assert!(t.probe(0x2000));
    }

    #[test]
    fn flush_all_keep_global_retains_kernel_entries() {
        let mut t = tlb4();
        t.fill(0x1000, Pte::user_data(1));
        t.fill(0xffff_ffff_8000_0000, Pte::kernel(2));
        t.flush_all(true);
        assert!(!t.probe(0x1000));
        assert!(t.probe(0xffff_ffff_8000_0000));
        t.flush_all(false);
        assert_eq!(t.resident_entries(), 0);
    }

    #[test]
    fn sets_partition_pages() {
        let mut t = Tlb::new(TlbConfig::new(2, 1));
        t.fill(0x0000, Pte::user_data(0)); // even page → set 0
        t.fill(0x1000, Pte::user_data(1)); // odd page → set 1
        assert_eq!(t.resident_entries(), 2);
        // A second even page evicts only the set-0 entry.
        t.fill(0x2000, Pte::user_data(2));
        assert!(!t.probe(0x0000));
        assert!(t.probe(0x1000));
    }

    #[test]
    fn fingerprint_sorted() {
        let mut t = tlb4();
        t.fill(0x3000, Pte::user_data(3));
        t.fill(0x1000, Pte::user_data(1));
        assert_eq!(t.fingerprint(), vec![1, 3]);
    }
}
