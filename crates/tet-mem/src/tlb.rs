//! Translation lookaside buffers.
//!
//! Whether a *faulting* access installs a TLB entry is the root cause of
//! TET-KASLR: the paper observes (§4.5, Table 3) that Intel cores load
//! TLB entries for mapped kernel addresses even when the access lacks
//! permission, while unmapped addresses obviously cannot fill the TLB.
//! The fill policy lives in the CPU model; this module only provides the
//! structure.
//!
//! Like [`Cache`](crate::Cache), each set is a fixed `ways`-slot window
//! of flat entry/stamp arrays with a monotone recency tick (stamp 0 =
//! empty), plus a one-entry MRU filter for the repeated-page case — the
//! DTLB is consulted on every demand access and the same page dominates
//! warm loops. Observationally identical to the original per-set
//! MRU-first `Vec` lists (see the equivalence property test).
//!
//! Snapshot restore and `flush_all(false)` use the same journal/epoch
//! layer as [`Cache`](crate::Cache) (DESIGN.md §16): slot writes journal
//! themselves once per epoch, restore repairs O(slots touched), and a
//! full non-global flush is a single flush-epoch bump. The
//! `keep_global` flush stays an eager (journaled) scan — it must read
//! every entry's global bit, and TLBs are small.

use std::sync::Arc;

use crate::{vpn, Pte};

/// TLB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Ways per set.
    pub ways: usize,
}

impl TlbConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or not a power of two, or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be non-zero");
        TlbConfig { sets, ways }
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }
}

/// One cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page number.
    pub vpn: u64,
    /// The cached leaf PTE (permissions are re-checked on every use).
    pub pte: Pte,
}

/// A set-associative TLB with LRU replacement.
///
/// # Examples
///
/// ```
/// use tet_mem::{Pte, Tlb, TlbConfig};
///
/// let mut tlb = Tlb::new(TlbConfig::new(16, 4));
/// assert!(tlb.lookup(0xffff_ffff_8000_0000).is_none());
/// tlb.fill(0xffff_ffff_8000_0000, Pte::kernel(7));
/// assert!(tlb.lookup(0xffff_ffff_8000_0abc).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    /// Cached translations, `ways` consecutive slots per set; a slot is
    /// live iff its stamp is non-zero (VPN 0 is a legal page).
    entries: Vec<TlbEntry>,
    /// LRU age stamps, parallel to `entries`; larger = more recent.
    stamps: Vec<u64>,
    /// Monotone recency clock.
    tick: u64,
    /// One-entry MRU filter: `(vpn, slot)` of the last hit/filled page.
    mru: Option<(u64, usize)>,
    hits: u64,
    misses: u64,
    /// Per-slot validity epoch: live iff `stamps[w] != 0` and
    /// `vepoch[w] == flush_epoch` (see [`Cache`](crate::Cache)).
    vepoch: Vec<u32>,
    flush_epoch: u32,
    /// Seal identity shared with clones; journals are only trusted
    /// across a shared seal.
    seal: Option<Arc<()>>,
    /// Journal epoch (0 = journaling off until first seal).
    epoch: u32,
    /// Per-slot journal stamps, deduplicating `journal`.
    jepoch: Vec<u32>,
    /// Slots written since the last seal/restore.
    journal: Vec<u32>,
    /// Rare-event escape hatch (epoch wrap): forces a full restore.
    full_dirty: bool,
}

const EMPTY: TlbEntry = TlbEntry {
    vpn: 0,
    pte: Pte {
        frame: 0,
        present: false,
        writable: false,
        user: false,
        global: false,
        reserved: false,
        nx: false,
    },
};

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(cfg: TlbConfig) -> Self {
        Tlb {
            entries: vec![EMPTY; cfg.entries()],
            stamps: vec![0; cfg.entries()],
            tick: 0,
            mru: None,
            hits: 0,
            misses: 0,
            vepoch: vec![0; cfg.entries()],
            flush_epoch: 0,
            seal: None,
            epoch: 0,
            jepoch: vec![0; cfg.entries()],
            journal: Vec::new(),
            full_dirty: false,
            cfg,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> TlbConfig {
        self.cfg
    }

    #[inline]
    fn set_range(&self, page: u64) -> std::ops::Range<usize> {
        let set = (page as usize) & (self.cfg.sets - 1);
        let start = set * self.cfg.ways;
        start..start + self.cfg.ways
    }

    #[inline]
    fn next_stamp(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Whether slot `w` holds a live entry (non-empty and not lazily
    /// invalidated by a later full flush).
    #[inline]
    fn valid(&self, w: usize) -> bool {
        self.stamps[w] != 0 && self.vepoch[w] == self.flush_epoch
    }

    /// Records slot `w` in the journal (once per epoch) ahead of a write.
    #[inline]
    fn touch(&mut self, w: usize) {
        if self.epoch != 0 && self.jepoch[w] != self.epoch {
            self.jepoch[w] = self.epoch;
            self.journal.push(w as u32);
        }
    }

    /// Starts a new journal epoch (wrap-safe, as in `Cache`).
    fn bump_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.jepoch.fill(0);
            self.epoch = 1;
        }
    }

    /// Looks up the translation for `vaddr`, updating LRU and statistics.
    pub fn lookup(&mut self, vaddr: u64) -> Option<TlbEntry> {
        let page = vpn(vaddr);
        // MRU fast path: the filter entry holds its set's max stamp, so
        // the recency refresh can be skipped without reordering anything.
        if let Some((mru_vpn, slot)) = self.mru {
            if mru_vpn == page {
                self.hits += 1;
                return Some(self.entries[slot]);
            }
        }
        let range = self.set_range(page);
        for w in range {
            if self.valid(w) && self.entries[w].vpn == page {
                self.touch(w);
                self.stamps[w] = self.next_stamp();
                self.mru = Some((page, w));
                self.hits += 1;
                return Some(self.entries[w]);
            }
        }
        self.misses += 1;
        None
    }

    /// Checks for presence without updating LRU or statistics.
    pub fn probe(&self, vaddr: u64) -> bool {
        let page = vpn(vaddr);
        self.set_range(page)
            .any(|w| self.valid(w) && self.entries[w].vpn == page)
    }

    /// Installs a translation, evicting the set's LRU entry when full.
    pub fn fill(&mut self, vaddr: u64, pte: Pte) {
        let page = vpn(vaddr);
        let range = self.set_range(page);
        // Present: refresh the PTE and the recency in place.
        for w in range.clone() {
            if self.valid(w) && self.entries[w].vpn == page {
                self.touch(w);
                self.entries[w].pte = pte;
                self.stamps[w] = self.next_stamp();
                self.mru = Some((page, w));
                return;
            }
        }
        // Reuse an empty way, else overwrite the minimum-stamp (LRU) way.
        let mut victim = range.start;
        let mut victim_stamp = u64::MAX;
        for w in range {
            if !self.valid(w) {
                victim = w;
                break;
            }
            if self.stamps[w] < victim_stamp {
                victim_stamp = self.stamps[w];
                victim = w;
            }
        }
        // The victim may be the filter entry; re-arming on the filled
        // page covers both cases.
        self.touch(victim);
        self.entries[victim] = TlbEntry { vpn: page, pte };
        self.stamps[victim] = self.next_stamp();
        self.vepoch[victim] = self.flush_epoch;
        self.mru = Some((page, victim));
    }

    /// Invalidates the entry for `vaddr` (the `invlpg` primitive).
    pub fn flush_page(&mut self, vaddr: u64) -> bool {
        let page = vpn(vaddr);
        if matches!(self.mru, Some((p, _)) if p == page) {
            self.mru = None;
        }
        for w in self.set_range(page) {
            if self.valid(w) && self.entries[w].vpn == page {
                self.touch(w);
                self.stamps[w] = 0;
                return true;
            }
        }
        false
    }

    /// Full flush, optionally preserving global (kernel) entries — the
    /// semantics of a CR3 write without/with PCID-style global protection.
    pub fn flush_all(&mut self, keep_global: bool) {
        self.mru = None;
        if keep_global {
            // Must inspect every entry's global bit: stays an eager
            // (journaled) scan. TLBs are tens of entries, not thousands.
            for w in 0..self.stamps.len() {
                if self.valid(w) && !self.entries[w].pte.global {
                    self.touch(w);
                    self.stamps[w] = 0;
                }
            }
        } else {
            // O(1) lazy invalidation, as in `Cache::flush_all`.
            self.flush_epoch = self.flush_epoch.wrapping_add(1);
            if self.flush_epoch == 0 {
                self.stamps.fill(0);
                self.vepoch.fill(0);
                self.full_dirty = true;
            }
        }
    }

    /// Number of live entries.
    pub fn resident_entries(&self) -> usize {
        (0..self.stamps.len()).filter(|&w| self.valid(w)).count()
    }

    /// Sorted VPNs of live entries (stealth fingerprinting).
    pub fn fingerprint(&self) -> Vec<u64> {
        let mut v: Vec<u64> = (0..self.entries.len())
            .filter(|&w| self.valid(w))
            .map(|w| self.entries[w].vpn)
            .collect();
        v.sort_unstable();
        v
    }

    /// Lifetime `(hits, misses)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of slots journaled since the last seal/restore.
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// Marks the current state as a snapshot point (see
    /// [`Cache::seal`](crate::Cache::seal)).
    pub fn seal(&mut self) {
        self.seal = Some(Arc::new(()));
        self.journal.clear();
        self.full_dirty = false;
        self.bump_epoch();
    }

    /// Rolls back to the sealed state shared with `src`, repairing only
    /// journaled slots. Returns `false` (self untouched) when the two
    /// sides do not share a seal.
    pub fn restore_delta(&mut self, src: &Tlb) -> bool {
        let shared = match (&self.seal, &src.seal) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        if !shared || self.full_dirty {
            return false;
        }
        debug_assert!(
            src.journal.is_empty() && !src.full_dirty,
            "restore source must be a sealed, unmutated snapshot"
        );
        for i in 0..self.journal.len() {
            let w = self.journal[i] as usize;
            self.entries[w] = src.entries[w];
            self.stamps[w] = src.stamps[w];
            self.vepoch[w] = src.vepoch[w];
        }
        self.journal.clear();
        self.bump_epoch();
        self.tick = src.tick;
        self.mru = src.mru;
        self.hits = src.hits;
        self.misses = src.misses;
        self.flush_epoch = src.flush_epoch;
        true
    }

    /// Overwrites this TLB with the state of `src`, reusing the flat
    /// entry/stamp allocations (same-geometry restore, as with
    /// [`Cache::restore_from`](crate::Cache::restore_from)). Adopts the
    /// source's seal, so subsequent [`Tlb::restore_delta`] calls succeed.
    pub fn restore_from(&mut self, src: &Tlb) {
        debug_assert_eq!(self.cfg, src.cfg, "restore across TLB geometries");
        self.cfg = src.cfg;
        self.entries.clear();
        self.entries.extend_from_slice(&src.entries);
        self.stamps.clear();
        self.stamps.extend_from_slice(&src.stamps);
        self.vepoch.clear();
        self.vepoch.extend_from_slice(&src.vepoch);
        self.flush_epoch = src.flush_epoch;
        self.tick = src.tick;
        self.mru = src.mru;
        self.hits = src.hits;
        self.misses = src.misses;
        self.seal.clone_from(&src.seal);
        self.journal.clear();
        self.full_dirty = false;
        self.bump_epoch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb4() -> Tlb {
        Tlb::new(TlbConfig::new(1, 4))
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut t = tlb4();
        assert!(t.lookup(0x1000).is_none());
        t.fill(0x1000, Pte::user_data(1));
        assert_eq!(t.lookup(0x1fff).unwrap().pte.frame, 1);
        assert_eq!(t.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction() {
        let mut t = tlb4();
        for p in 0..4u64 {
            t.fill(p * 4096, Pte::user_data(p));
        }
        // Touch page 0 → page 1 is now LRU.
        t.lookup(0);
        t.fill(4 * 4096, Pte::user_data(4));
        assert!(t.probe(0));
        assert!(!t.probe(4096));
    }

    #[test]
    fn refill_updates_pte() {
        let mut t = tlb4();
        t.fill(0x1000, Pte::user_data(1));
        t.fill(0x1000, Pte::user_data(2));
        assert_eq!(t.resident_entries(), 1);
        assert_eq!(t.lookup(0x1000).unwrap().pte.frame, 2);
    }

    #[test]
    fn flush_page_only_hits_target() {
        let mut t = tlb4();
        t.fill(0x1000, Pte::user_data(1));
        t.fill(0x2000, Pte::user_data(2));
        assert!(t.flush_page(0x1000));
        assert!(!t.flush_page(0x1000));
        assert!(t.probe(0x2000));
    }

    #[test]
    fn flush_all_keep_global_retains_kernel_entries() {
        let mut t = tlb4();
        t.fill(0x1000, Pte::user_data(1));
        t.fill(0xffff_ffff_8000_0000, Pte::kernel(2));
        t.flush_all(true);
        assert!(!t.probe(0x1000));
        assert!(t.probe(0xffff_ffff_8000_0000));
        t.flush_all(false);
        assert_eq!(t.resident_entries(), 0);
    }

    #[test]
    fn sets_partition_pages() {
        let mut t = Tlb::new(TlbConfig::new(2, 1));
        t.fill(0x0000, Pte::user_data(0)); // even page → set 0
        t.fill(0x1000, Pte::user_data(1)); // odd page → set 1
        assert_eq!(t.resident_entries(), 2);
        // A second even page evicts only the set-0 entry.
        t.fill(0x2000, Pte::user_data(2));
        assert!(!t.probe(0x0000));
        assert!(t.probe(0x1000));
    }

    #[test]
    fn fingerprint_sorted() {
        let mut t = tlb4();
        t.fill(0x3000, Pte::user_data(3));
        t.fill(0x1000, Pte::user_data(1));
        assert_eq!(t.fingerprint(), vec![1, 3]);
    }

    #[test]
    fn mru_filter_returns_refreshed_pte_and_respects_flush() {
        let mut t = tlb4();
        t.fill(0x1000, Pte::user_data(1));
        assert_eq!(t.lookup(0x1000).unwrap().pte.frame, 1);
        // A refill through the slow path must update what the filter
        // returns on the next fast-path hit.
        t.fill(0x1000, Pte::user_data(9));
        assert_eq!(t.lookup(0x1234).unwrap().pte.frame, 9);
        assert!(t.flush_page(0x1000));
        assert!(t.lookup(0x1000).is_none());
    }

    /// The original per-set MRU-first `Vec` implementation, kept verbatim
    /// as the equivalence oracle for the flat stamp representation.
    struct RefTlb {
        sets: Vec<Vec<TlbEntry>>,
        cfg: TlbConfig,
        hits: u64,
        misses: u64,
    }

    impl RefTlb {
        fn new(cfg: TlbConfig) -> Self {
            RefTlb {
                sets: vec![Vec::with_capacity(cfg.ways); cfg.sets],
                cfg,
                hits: 0,
                misses: 0,
            }
        }

        fn set_index(&self, page: u64) -> usize {
            (page as usize) & (self.cfg.sets - 1)
        }

        fn lookup(&mut self, vaddr: u64) -> Option<TlbEntry> {
            let page = vpn(vaddr);
            let idx = self.set_index(page);
            let set = &mut self.sets[idx];
            if let Some(pos) = set.iter().position(|e| e.vpn == page) {
                let e = set.remove(pos);
                set.insert(0, e);
                self.hits += 1;
                Some(e)
            } else {
                self.misses += 1;
                None
            }
        }

        fn fill(&mut self, vaddr: u64, pte: Pte) {
            let page = vpn(vaddr);
            let idx = self.set_index(page);
            let set = &mut self.sets[idx];
            if let Some(pos) = set.iter().position(|e| e.vpn == page) {
                set.remove(pos);
            } else if set.len() == self.cfg.ways {
                set.pop();
            }
            set.insert(0, TlbEntry { vpn: page, pte });
        }

        fn flush_page(&mut self, vaddr: u64) -> bool {
            let page = vpn(vaddr);
            let idx = self.set_index(page);
            let set = &mut self.sets[idx];
            if let Some(pos) = set.iter().position(|e| e.vpn == page) {
                set.remove(pos);
                true
            } else {
                false
            }
        }

        fn flush_all(&mut self, keep_global: bool) {
            for set in &mut self.sets {
                if keep_global {
                    set.retain(|e| e.pte.global);
                } else {
                    set.clear();
                }
            }
        }

        fn fingerprint(&self) -> Vec<u64> {
            let mut v: Vec<u64> = self.sets.iter().flatten().map(|e| e.vpn).collect();
            v.sort_unstable();
            v
        }
    }

    #[test]
    fn flat_stamp_representation_matches_linear_reference() {
        let mut state = 0x853c49e6748fea9bu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (sets, ways) in [(1usize, 1usize), (1, 4), (2, 2), (4, 3)] {
            let cfg = TlbConfig::new(sets, ways);
            let mut tlb = Tlb::new(cfg);
            let mut reference = RefTlb::new(cfg);
            let pages = (cfg.entries() * 2) as u64;
            for step in 0..40_000 {
                let r = rng();
                let vaddr = ((r >> 16) % pages) * 4096 + (r & 0xfff);
                match r % 16 {
                    0..=5 => {
                        assert_eq!(
                            tlb.lookup(vaddr),
                            reference.lookup(vaddr),
                            "lookup step {step} ({sets}x{ways})"
                        );
                    }
                    6..=10 => {
                        // Vary PTE contents (incl. the global bit) so
                        // keep_global flushes discriminate.
                        let mut pte = Pte::user_data(r >> 32);
                        pte.global = r & 0x1000 != 0;
                        tlb.fill(vaddr, pte);
                        reference.fill(vaddr, pte);
                    }
                    11..=12 => assert_eq!(
                        tlb.probe(vaddr),
                        reference.sets[reference.set_index(vpn(vaddr))]
                            .iter()
                            .any(|e| e.vpn == vpn(vaddr)),
                        "probe step {step}"
                    ),
                    13 => assert_eq!(
                        tlb.flush_page(vaddr),
                        reference.flush_page(vaddr),
                        "flush step {step}"
                    ),
                    _ => {
                        let keep = r & 1 == 0;
                        tlb.flush_all(keep);
                        reference.flush_all(keep);
                    }
                }
            }
            assert_eq!(tlb.fingerprint(), reference.fingerprint());
            assert_eq!(tlb.stats(), (reference.hits, reference.misses));
        }
    }

    /// Delta restore must be indistinguishable from an exhaustive
    /// restore, including across keep-global and full flushes.
    #[test]
    fn delta_restore_matches_exhaustive_restore() {
        let mut state = 0xd1b54a32d192ed03u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (sets, ways) in [(1usize, 4usize), (4, 4), (16, 4)] {
            let cfg = TlbConfig::new(sets, ways);
            let mut warm = Tlb::new(cfg);
            let pages = (cfg.entries() * 2) as u64;
            for _ in 0..500 {
                let r = rng();
                let vaddr = ((r >> 16) % pages) * 4096;
                let mut pte = Pte::user_data(r >> 32);
                pte.global = r & 0x1000 != 0;
                warm.fill(vaddr, pte);
            }
            warm.seal();
            let snap = warm.clone();
            let mut delta = warm.clone();
            let mut full = warm;
            for step in 0..2_000 {
                let r = rng();
                let vaddr = ((r >> 16) % pages) * 4096 + (r & 0xfff);
                match r % 8 {
                    0..=3 => {
                        let mut pte = Pte::user_data(r >> 32);
                        pte.global = r & 0x1000 != 0;
                        delta.fill(vaddr, pte);
                        full.fill(vaddr, pte);
                    }
                    4..=5 => {
                        assert_eq!(delta.lookup(vaddr), full.lookup(vaddr), "step {step}");
                    }
                    6 => {
                        assert_eq!(delta.flush_page(vaddr), full.flush_page(vaddr));
                    }
                    _ => {
                        let keep = r & 1 == 0;
                        delta.flush_all(keep);
                        full.flush_all(keep);
                    }
                }
            }
            assert!(delta.restore_delta(&snap), "shared seal must go delta");
            full.restore_from(&snap);
            assert_eq!(delta.fingerprint(), full.fingerprint(), "{sets}x{ways}");
            assert_eq!(delta.fingerprint(), snap.fingerprint());
            assert_eq!(delta.stats(), full.stats());
            for step in 0..500 {
                let r = rng();
                let vaddr = ((r >> 16) % pages) * 4096 + (r & 0xfff);
                assert_eq!(delta.lookup(vaddr), full.lookup(vaddr), "post step {step}");
                let pte = Pte::user_data(r >> 32);
                delta.fill(vaddr, pte);
                full.fill(vaddr, pte);
            }
            assert_eq!(delta.fingerprint(), full.fingerprint());
        }
    }

    #[test]
    fn delta_restore_refuses_foreign_seals() {
        let cfg = TlbConfig::new(1, 4);
        let mut a = Tlb::new(cfg);
        a.fill(0x1000, Pte::user_data(1));
        a.seal();
        let mut b = Tlb::new(cfg);
        b.fill(0x2000, Pte::user_data(2));
        b.seal();
        let before = a.fingerprint();
        assert!(!a.restore_delta(&b));
        assert_eq!(a.fingerprint(), before);
        a.restore_from(&b);
        a.fill(0x3000, Pte::user_data(3));
        assert!(a.restore_delta(&b), "full restore adopts the seal");
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
