//! Correctness layer for the out-of-order core (DESIGN.md §9).
//!
//! The whole value of the reproduction rests on the OoO core computing
//! the *architecturally correct* result while leaking only through
//! transient timing. This crate provides the independent ground truth:
//!
//! * [`RefInterp`] — a tiny in-order interpreter over `tet-isa` that
//!   executes a program purely architecturally (registers, flat memory,
//!   fault semantics; no caches, no speculation, no timing).
//! * [`Oracle`] — a retirement differential oracle. The machine drives
//!   the interpreter in lockstep with its own retirement stream and the
//!   oracle panics with a readable diff on the first divergence.
//! * [`gen`] — a random gadget-program generator and shrinker used by
//!   the fuzz harness in `tet-uarch/tests/`.
//!
//! # Enabling the checks
//!
//! Check mode is off by default (a run pays one branch per retired µop).
//! Turn it on either per process — `TET_CHECK=1 cargo test` — or
//! programmatically via [`enable`] (the `--check` flag of the
//! `whisper-bench` binaries does this). Individual machines can also opt
//! in with `Machine::set_check_mode` in `tet-uarch`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

pub mod gen;
pub mod interp;
pub mod oracle;

pub use interp::{ArchFault, ArchFaultKind, InterpConfig, InterpState, MemWrite, RefInterp};
pub use oracle::{CommittedStore, DeliveredFault, Divergence, ExitClass, Oracle, RetiredUop};

/// Process-wide programmatic override (the `--check` CLI flag).
static FORCED: AtomicBool = AtomicBool::new(false);

/// Cached result of reading the `TET_CHECK` environment variable.
static FROM_ENV: OnceLock<bool> = OnceLock::new();

/// Turns check mode on for the whole process, as if `TET_CHECK=1` had
/// been set in the environment. Used by the `--check` benchmark flag.
pub fn enable() {
    FORCED.store(true, Ordering::Relaxed);
}

/// Whether check mode is on for this process: [`enable`] was called or
/// the `TET_CHECK` environment variable is enabled (anything but
/// `0`/`false`/`off`/empty; see [`tet_obs::env_flag`]).
pub fn enabled() -> bool {
    FORCED.load(Ordering::Relaxed)
        || *FROM_ENV.get_or_init(|| tet_obs::env_flag("TET_CHECK", false))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_forces_checks_on() {
        // Note: process-wide; harmless for the other tests in this crate
        // (none assert `enabled()` is false).
        enable();
        assert!(enabled());
    }
}
