//! The in-order architectural reference interpreter.
//!
//! [`RefInterp`] executes a [`Program`] one instruction at a time with
//! nothing but registers, flags, flat physical memory and fault
//! semantics — no caches, no TLBs, no speculation, no cycle counts. It
//! is the ground truth the retirement oracle compares the out-of-order
//! core against (DESIGN.md §9).
//!
//! Memory is modelled as a byte-granular *overlay* keyed by physical
//! address on top of a read-through view of the machine's [`PhysMem`]:
//! the interpreter never mutates the machine's memory, and both sides
//! agree byte-for-byte because [`PhysMem`] itself is byte-wise
//! little-endian. Multi-byte accesses are contiguous in physical
//! address space from the translation of the *base* virtual address,
//! exactly like the core's `do_load`/commit paths.
//!
//! Known modelling limits (documented, asserted nowhere):
//!
//! * Translations always walk the *current* page tables. A machine run
//!   that relies on a stale TLB entry after remapping a page without a
//!   TLB flush would diverge from this reference — no scenario in this
//!   repository does that.
//! * `Rdtsc` has no architectural definition of "time"; the oracle
//!   feeds the machine's own committed value in as `tsc` (value
//!   adoption), so timing never diverges the state compare.

use std::collections::HashMap;

use tet_isa::reg::RegFile;
use tet_isa::{inst::AluOp, Flags, Inst, Program, Reg};
use tet_mem::{AddressSpace, PhysMem, WalkOutcome, PAGE_SIZE};

/// Architectural fault classes, mirroring `tet_uarch::FaultKind`
/// (re-declared here so `tet-check` depends only on `tet-isa`/`tet-mem`
/// and `tet-uarch` can depend on it without a cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchFaultKind {
    /// User-mode access to a supervisor page.
    Permission,
    /// No translation for the address.
    NotPresent,
    /// A reserved-bit PTE terminated the walk.
    ReservedBit,
}

/// An architectural fault: class plus faulting virtual address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchFault {
    /// The fault class.
    pub kind: ArchFaultKind,
    /// Faulting virtual address.
    pub vaddr: u64,
}

/// Static per-run configuration of the interpreter.
#[derive(Debug, Clone, Default)]
pub struct InterpConfig {
    /// Instruction index control transfers to on a fault outside any
    /// transaction (`None`: faults terminate the run).
    pub handler_pc: Option<usize>,
    /// Whether `xbegin`/`xend` open real transactions (the CPU model's
    /// `has_tsx`); when false they are architectural no-ops.
    pub has_tsx: bool,
}

/// Where an interpreter run currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpState {
    /// More instructions may execute.
    Running,
    /// A `Halt` executed.
    Halted,
    /// A fault hit with no handler and no transaction.
    UnhandledFault(ArchFault),
}

/// One architectural memory write (the visible effect of a committed
/// store).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemWrite {
    /// Virtual address of the store.
    pub vaddr: u64,
    /// Physical address the base virtual address translates to.
    pub pa: u64,
    /// Full register value supplied to the store (byte stores write its
    /// low byte, matching the core's `StoreInfo::value`).
    pub value: u64,
    /// Whether this is a 1-byte store.
    pub byte: bool,
}

/// The visible effects of one successfully executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepEffect {
    /// Instruction index that executed.
    pub pc: usize,
    /// Memory write performed, if any.
    pub store: Option<MemWrite>,
    /// Instruction index execution continues at.
    pub next_pc: usize,
}

/// The visible effects of one faulting instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEffect {
    /// Instruction index that faulted.
    pub pc: usize,
    /// The fault.
    pub fault: ArchFault,
    /// Where execution resumes (`None`: the run terminated). A fault
    /// inside a transaction resumes at the innermost abort target after
    /// rolling state back to the outermost checkpoint; otherwise at the
    /// signal handler.
    pub resume: Option<usize>,
}

/// What one [`RefInterp::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The instruction executed and its effects applied.
    Retired(StepEffect),
    /// The instruction faulted; no effects applied, state possibly
    /// rolled back (transaction abort).
    Faulted(FaultEffect),
    /// The program counter is past the end of the program (nothing ran).
    OffEnd,
    /// The run had already ended (`Halt` or unhandled fault).
    Ended,
}

/// The in-order architectural reference interpreter.
#[derive(Debug, Clone)]
pub struct RefInterp {
    /// Shared with the caller: check mode re-runs the same program many
    /// times (once per attack iteration), so the oracle holds a
    /// reference instead of cloning the instruction stream per run.
    program: std::sync::Arc<Program>,
    cfg: InterpConfig,
    pc: usize,
    regs: RegFile,
    flags: Flags,
    state: InterpState,
    /// Byte-granular physical-memory overlay over the machine's
    /// [`PhysMem`]; holds every byte this run has stored.
    overlay: HashMap<u64, u8>,
    /// Abort targets of open transactions, innermost last.
    txn_stack: Vec<usize>,
    /// Register/flag state at the outermost `xbegin`.
    txn_checkpoint: Option<(RegFile, Flags)>,
    /// Overlay undo log (`(pa, previous overlay entry)`), applied in
    /// reverse on abort. `None` restores read-through to [`PhysMem`].
    txn_undo: Vec<(u64, Option<u8>)>,
}

impl RefInterp {
    /// Creates an interpreter at instruction 0 with the given initial
    /// registers. Accepts an owned [`Program`] or a shared
    /// `Arc<Program>`; passing the `Arc` avoids cloning the instruction
    /// stream on every checked run.
    pub fn new(
        program: impl Into<std::sync::Arc<Program>>,
        cfg: InterpConfig,
        init_regs: &[(Reg, u64)],
    ) -> Self {
        let mut regs = RegFile::new();
        for &(r, v) in init_regs {
            regs.set(r, v);
        }
        RefInterp {
            program: program.into(),
            cfg,
            pc: 0,
            regs,
            flags: Flags::default(),
            state: InterpState::Running,
            overlay: HashMap::new(),
            txn_stack: Vec::new(),
            txn_checkpoint: None,
            txn_undo: Vec::new(),
        }
    }

    /// The program being interpreted.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Current instruction index.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Current architectural registers.
    pub fn regs(&self) -> &RegFile {
        &self.regs
    }

    /// Current architectural flags.
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// Current run state.
    pub fn state(&self) -> InterpState {
        self.state
    }

    /// Reads one byte of architectural memory (overlay over phys).
    pub fn read_u8(&self, phys: &PhysMem, pa: u64) -> u8 {
        self.overlay
            .get(&pa)
            .copied()
            .unwrap_or_else(|| phys.read_u8(pa))
    }

    /// Reads eight little-endian bytes, contiguous in physical address
    /// space (mirrors `PhysMem::read_u64`, which may cross page frames).
    pub fn read_u64(&self, phys: &PhysMem, pa: u64) -> u64 {
        let mut v = 0u64;
        for i in 0..8 {
            v |= (self.read_u8(phys, pa + i) as u64) << (8 * i);
        }
        v
    }

    fn write_u8(&mut self, pa: u64, b: u8) {
        let old = self.overlay.insert(pa, b);
        if self.txn_checkpoint.is_some() {
            self.txn_undo.push((pa, old));
        }
    }

    fn write_u64(&mut self, pa: u64, v: u64) {
        for (i, b) in v.to_le_bytes().iter().enumerate() {
            self.write_u8(pa + i as u64, *b);
        }
    }

    /// Architectural translation: a fresh walk of the current page
    /// tables, with user-mode permission checking.
    pub fn translate(aspace: &AddressSpace, vaddr: u64) -> Result<u64, ArchFault> {
        match aspace.walk(vaddr).0 {
            WalkOutcome::Mapped(pte) if pte.user => Ok(pte.frame * PAGE_SIZE + (vaddr % PAGE_SIZE)),
            WalkOutcome::Mapped(_) => Err(ArchFault {
                kind: ArchFaultKind::Permission,
                vaddr,
            }),
            WalkOutcome::NotPresent { .. } => Err(ArchFault {
                kind: ArchFaultKind::NotPresent,
                vaddr,
            }),
            WalkOutcome::ReservedBit => Err(ArchFault {
                kind: ArchFaultKind::ReservedBit,
                vaddr,
            }),
        }
    }

    fn eff_addr(&self, addr: &tet_isa::Addr) -> u64 {
        let mut a = addr.disp as u64;
        if let Some(b) = addr.base {
            a = a.wrapping_add(self.regs.get(b));
        }
        if let Some((idx, scale)) = addr.index {
            a = a.wrapping_add(self.regs.get(idx).wrapping_mul(scale as u64));
        }
        a
    }

    fn src_value(&self, s: &tet_isa::Src) -> u64 {
        match s {
            tet_isa::Src::Reg(r) => self.regs.get(*r),
            tet_isa::Src::Imm(v) => *v,
        }
    }

    /// Delivers a fault at the current pc: transaction abort (roll back
    /// to the outermost checkpoint, resume at the *innermost* abort
    /// target — the core does the same), else the signal handler, else
    /// the run terminates. Returns the resume pc, if any.
    fn deliver_fault(&mut self, fault: ArchFault) -> Option<usize> {
        if let Some(&target) = self.txn_stack.last() {
            if let Some((regs, flags)) = self.txn_checkpoint.take() {
                self.regs = regs;
                self.flags = flags;
                for (pa, old) in self.txn_undo.drain(..).rev() {
                    match old {
                        Some(b) => {
                            self.overlay.insert(pa, b);
                        }
                        None => {
                            self.overlay.remove(&pa);
                        }
                    }
                }
            }
            self.txn_stack.clear();
            self.pc = target;
            return Some(target);
        }
        if let Some(h) = self.cfg.handler_pc {
            self.pc = h;
            return Some(h);
        }
        self.state = InterpState::UnhandledFault(fault);
        None
    }

    /// Executes one instruction. `tsc` is the value `rdtsc` writes to
    /// `rax` (adopted from the machine — time is not architectural).
    ///
    /// A faulting instruction applies *no* effects before the fault is
    /// delivered; fault delivery may roll state back (transactions).
    pub fn step(&mut self, aspace: &AddressSpace, phys: &PhysMem, tsc: u64) -> StepOutcome {
        if self.state != InterpState::Running {
            return StepOutcome::Ended;
        }
        let pc = self.pc;
        let Some(inst) = self.program.fetch(pc) else {
            return StepOutcome::OffEnd;
        };

        let mut store: Option<MemWrite> = None;
        let mut next_pc = pc + 1;

        // Every fault exit goes through this macro: deliver, report.
        macro_rules! fault {
            ($f:expr) => {{
                let f = $f;
                let resume = self.deliver_fault(f);
                return StepOutcome::Faulted(FaultEffect {
                    pc,
                    fault: f,
                    resume,
                });
            }};
        }
        macro_rules! translate {
            ($vaddr:expr) => {
                match Self::translate(aspace, $vaddr) {
                    Ok(pa) => pa,
                    Err(f) => fault!(f),
                }
            };
        }

        match inst {
            Inst::Nop
            | Inst::Lfence
            | Inst::Mfence
            | Inst::Sfence
            | Inst::Syscall
            | Inst::Clflush { .. }
            | Inst::Prefetch { .. } => {}
            Inst::Halt => {
                self.state = InterpState::Halted;
            }
            Inst::MovImm { dst, imm } => self.regs.set(dst, imm),
            Inst::MovReg { dst, src } => {
                let v = self.regs.get(src);
                self.regs.set(dst, v);
            }
            Inst::Lea { dst, addr } => {
                let v = self.eff_addr(&addr);
                self.regs.set(dst, v);
            }
            Inst::Alu { op, dst, src } => {
                let a = self.regs.get(dst);
                let b = self.src_value(&src);
                let r = op.apply(a, b);
                self.regs.set(dst, r);
                self.flags = match op {
                    AluOp::Add => Flags::from_add(a, b),
                    AluOp::Sub => Flags::from_sub(a, b),
                    _ => Flags::from_logic(r),
                };
            }
            Inst::Cmp { a, b } => {
                self.flags = Flags::from_sub(self.regs.get(a), self.src_value(&b));
            }
            Inst::Test { a, b } => {
                self.flags = Flags::from_and(self.regs.get(a), self.src_value(&b));
            }
            Inst::Rdtsc => self.regs.set(Reg::Rax, tsc),
            Inst::Load { dst, addr } | Inst::LoadByte { dst, addr } => {
                let byte = matches!(inst, Inst::LoadByte { .. });
                let vaddr = self.eff_addr(&addr);
                let pa = translate!(vaddr);
                let v = if byte {
                    self.read_u8(phys, pa) as u64
                } else {
                    self.read_u64(phys, pa)
                };
                self.regs.set(dst, v);
            }
            Inst::Store { src, addr } | Inst::StoreByte { src, addr } => {
                let byte = matches!(inst, Inst::StoreByte { .. });
                let vaddr = self.eff_addr(&addr);
                let value = self.regs.get(src);
                let pa = translate!(vaddr);
                if byte {
                    self.write_u8(pa, value as u8);
                } else {
                    self.write_u64(pa, value);
                }
                store = Some(MemWrite {
                    vaddr,
                    pa,
                    value,
                    byte,
                });
            }
            Inst::Push { src } => {
                // The pushed value is read *before* the decrement, so
                // `push rsp` stores the old stack pointer.
                let value = self.regs.get(src);
                let rsp = self.regs.get(Reg::Rsp).wrapping_sub(8);
                let pa = translate!(rsp);
                self.regs.set(Reg::Rsp, rsp);
                self.write_u64(pa, value);
                store = Some(MemWrite {
                    vaddr: rsp,
                    pa,
                    value,
                    byte: false,
                });
            }
            Inst::Pop { dst } => {
                let rsp = self.regs.get(Reg::Rsp);
                let pa = translate!(rsp);
                let v = self.read_u64(phys, pa);
                // Destination first, then rsp — so `pop rsp` ends with
                // the incremented pointer, like the core's result order.
                self.regs.set(dst, v);
                self.regs.set(Reg::Rsp, rsp.wrapping_add(8));
            }
            Inst::Call { target } => {
                let rsp = self.regs.get(Reg::Rsp).wrapping_sub(8);
                let value = (pc + 1) as u64;
                let pa = translate!(rsp);
                self.regs.set(Reg::Rsp, rsp);
                self.write_u64(pa, value);
                store = Some(MemWrite {
                    vaddr: rsp,
                    pa,
                    value,
                    byte: false,
                });
                next_pc = target;
            }
            Inst::Ret => {
                let rsp = self.regs.get(Reg::Rsp);
                let pa = translate!(rsp);
                let v = self.read_u64(phys, pa);
                self.regs.set(Reg::Rsp, rsp.wrapping_add(8));
                next_pc = v as usize;
            }
            Inst::Jmp { target } => next_pc = target,
            Inst::JmpReg { reg } => next_pc = self.regs.get(reg) as usize,
            Inst::Jcc { cond, target } => {
                if cond.eval(self.flags) {
                    next_pc = target;
                }
            }
            Inst::XBegin { abort_target } => {
                if self.cfg.has_tsx {
                    if self.txn_stack.is_empty() {
                        self.txn_checkpoint = Some((self.regs, self.flags));
                        self.txn_undo.clear();
                    }
                    self.txn_stack.push(abort_target);
                }
            }
            Inst::XEnd => {
                self.txn_stack.pop();
                if self.txn_stack.is_empty() {
                    self.txn_checkpoint = None;
                    self.txn_undo.clear();
                }
            }
        }

        self.pc = next_pc;
        StepOutcome::Retired(StepEffect { pc, store, next_pc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tet_isa::{Asm, Cond};
    use tet_mem::Pte;

    fn space_with_page(vaddr: u64, frame: u64) -> AddressSpace {
        let mut a = AddressSpace::new();
        a.map_page(vaddr, Pte::user_data(frame));
        a
    }

    #[test]
    fn arithmetic_and_branches() {
        let mut a = Asm::new();
        let top = a.fresh_label();
        a.mov_imm(Reg::Rcx, 4).mov_imm(Reg::Rax, 0);
        a.bind(top)
            .add(Reg::Rax, 5u64)
            .sub(Reg::Rcx, 1u64)
            .jcc(Cond::Ne, top)
            .halt();
        let mut it = RefInterp::new(a.assemble().unwrap(), InterpConfig::default(), &[]);
        let aspace = AddressSpace::new();
        let phys = PhysMem::new();
        while matches!(it.state(), InterpState::Running) {
            assert!(matches!(
                it.step(&aspace, &phys, 0),
                StepOutcome::Retired(_)
            ));
        }
        assert_eq!(it.state(), InterpState::Halted);
        assert_eq!(it.regs().get(Reg::Rax), 20);
        assert_eq!(it.regs().get(Reg::Rcx), 0);
    }

    #[test]
    fn stores_hit_the_overlay_not_phys() {
        let mut a = Asm::new();
        a.mov_imm(Reg::Rax, 0xfeed)
            .store_abs(Reg::Rax, 0x20_0008)
            .load_abs(Reg::Rbx, 0x20_0008)
            .halt();
        let aspace = space_with_page(0x20_0000, 5);
        let phys = PhysMem::new();
        let mut it = RefInterp::new(a.assemble().unwrap(), InterpConfig::default(), &[]);
        while matches!(it.state(), InterpState::Running) {
            it.step(&aspace, &phys, 0);
        }
        assert_eq!(it.regs().get(Reg::Rbx), 0xfeed);
        // The machine's physical memory is untouched.
        assert_eq!(phys.read_u64(5 * PAGE_SIZE + 8), 0);
    }

    #[test]
    fn fault_without_handler_terminates() {
        let mut a = Asm::new();
        a.load_abs(Reg::Rax, 0xdead_0000).halt();
        let aspace = AddressSpace::new();
        let phys = PhysMem::new();
        let mut it = RefInterp::new(a.assemble().unwrap(), InterpConfig::default(), &[]);
        let out = it.step(&aspace, &phys, 0);
        match out {
            StepOutcome::Faulted(f) => {
                assert_eq!(f.fault.kind, ArchFaultKind::NotPresent);
                assert_eq!(f.resume, None);
            }
            other => panic!("expected fault, got {other:?}"),
        }
        assert!(matches!(it.state(), InterpState::UnhandledFault(_)));
    }

    #[test]
    fn fault_with_handler_resumes_without_side_effects() {
        let mut a = Asm::new();
        a.load_abs(Reg::Rax, 0xdead_0000)
            .mov_imm(Reg::Rbx, 1)
            .mov_imm(Reg::Rcx, 7)
            .halt();
        let aspace = AddressSpace::new();
        let phys = PhysMem::new();
        let cfg = InterpConfig {
            handler_pc: Some(2),
            has_tsx: false,
        };
        let mut it = RefInterp::new(a.assemble().unwrap(), cfg, &[]);
        match it.step(&aspace, &phys, 0) {
            StepOutcome::Faulted(f) => assert_eq!(f.resume, Some(2)),
            other => panic!("expected fault, got {other:?}"),
        }
        while matches!(it.state(), InterpState::Running) {
            it.step(&aspace, &phys, 0);
        }
        assert_eq!(it.regs().get(Reg::Rax), 0, "faulting load commits nothing");
        assert_eq!(it.regs().get(Reg::Rbx), 0, "skipped by the handler");
        assert_eq!(it.regs().get(Reg::Rcx), 7);
    }

    #[test]
    fn txn_abort_rolls_back_regs_and_stores() {
        let mut a = Asm::new();
        let abort = a.fresh_label();
        a.mov_imm(Reg::Rax, 1)
            .mov_imm(Reg::Rdx, 0x33)
            .store_byte_abs(Reg::Rdx, 0x20_0000) // pre-txn store survives
            .xbegin(abort)
            .mov_imm(Reg::Rax, 2)
            .store_byte_abs(Reg::Rax, 0x20_0000) // rolled back
            .load_abs(Reg::Rbx, 0xffff_ffff_8000_0000) // kernel → abort
            .xend()
            .halt();
        a.bind(abort).mov_imm(Reg::Rcx, 9).halt();
        let mut aspace = space_with_page(0x20_0000, 5);
        aspace.map_page(0xffff_ffff_8000_0000, Pte::kernel(9));
        let phys = PhysMem::new();
        let cfg = InterpConfig {
            handler_pc: None,
            has_tsx: true,
        };
        let mut it = RefInterp::new(a.assemble().unwrap(), cfg, &[]);
        while matches!(it.state(), InterpState::Running) {
            it.step(&aspace, &phys, 0);
        }
        assert_eq!(it.state(), InterpState::Halted);
        assert_eq!(it.regs().get(Reg::Rax), 1, "register rolled back");
        assert_eq!(it.regs().get(Reg::Rcx), 9, "abort path ran");
        assert_eq!(
            it.read_u8(&phys, 5 * PAGE_SIZE),
            0x33,
            "in-txn store rolled back to the pre-txn value"
        );
    }

    #[test]
    fn pop_into_rsp_keeps_the_incremented_pointer_semantics() {
        // Mirrors the core's result ordering: `pop rsp` writes the
        // loaded value first, then rsp+8 — the increment wins.
        let mut a = Asm::new();
        a.mov_imm(Reg::Rax, 0x1234)
            .push(Reg::Rax)
            .pop(Reg::Rsp)
            .halt();
        let aspace = space_with_page(0x30_0000, 6);
        let phys = PhysMem::new();
        let mut it = RefInterp::new(
            a.assemble().unwrap(),
            InterpConfig::default(),
            &[(Reg::Rsp, 0x30_0800)],
        );
        while matches!(it.state(), InterpState::Running) {
            it.step(&aspace, &phys, 0);
        }
        assert_eq!(it.regs().get(Reg::Rsp), 0x30_0800);
    }
}
