//! The retirement differential oracle.
//!
//! The out-of-order core drives an [`Oracle`] in lockstep with its own
//! retirement stream: one [`Oracle::on_retire`] per committed µop, one
//! [`Oracle::on_fault`] per delivered fault, one [`Oracle::on_run_end`]
//! when the run exits. The oracle steps the in-order [`RefInterp`] the
//! same distance and compares the *complete* architectural state —
//! program counter, all sixteen registers, flags, memory effects and
//! fault identity — panicking with a readable diff on the first
//! divergence (the `try_*` variants return it instead, for tests that
//! assert a divergence *is* caught).

use tet_isa::reg::RegFile;
use tet_isa::{Flags, Inst, Program, Reg};
use tet_mem::{AddressSpace, PhysMem};

use crate::interp::{ArchFault, ArchFaultKind, InterpConfig, InterpState, RefInterp, StepOutcome};

/// What the machine reports for one committed µop.
#[derive(Debug, Clone, Copy)]
pub struct RetiredUop<'a> {
    /// Instruction index of the retired µop.
    pub pc: usize,
    /// The machine's committed registers *after* this commit (but before
    /// its store reaches memory — the oracle is called in between).
    pub regs: &'a RegFile,
    /// The machine's committed flags after this commit.
    pub flags: Flags,
    /// The store this µop performs at commit, if any.
    pub store: Option<CommittedStore>,
}

/// A store as the machine commits it (`tet_uarch::StoreInfo` shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommittedStore {
    /// Virtual address.
    pub vaddr: u64,
    /// Translated physical address (`None` never reaches commit).
    pub pa: Option<u64>,
    /// Full register value (byte stores write its low byte).
    pub value: u64,
    /// Whether this is a 1-byte store.
    pub byte: bool,
}

/// What the machine reports for one delivered fault.
#[derive(Debug, Clone, Copy)]
pub struct DeliveredFault<'a> {
    /// Instruction index of the faulting µop.
    pub pc: usize,
    /// Faulting virtual address.
    pub vaddr: u64,
    /// Fault class.
    pub kind: ArchFaultKind,
    /// Where execution resumes (`None`: the run terminates). Reported
    /// *after* any transaction rollback.
    pub resume: Option<usize>,
    /// Committed registers after delivery (post-rollback for aborts).
    pub regs: &'a RegFile,
    /// Committed flags after delivery.
    pub flags: Flags,
}

/// How the machine says the run ended (mirror of `tet_uarch::RunExit`
/// without the record payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitClass {
    /// A `Halt` retired.
    Halted,
    /// The cycle budget ran out mid-program (no final-state check — the
    /// per-retire checks already covered everything that committed).
    CycleLimit,
    /// A fault with no handler and no transaction.
    UnhandledFault {
        /// Faulting instruction index.
        pc: usize,
        /// Faulting virtual address.
        vaddr: u64,
        /// Fault class.
        kind: ArchFaultKind,
    },
    /// Control flow ran past the last instruction.
    RanOffEnd,
}

/// A divergence between the machine and the reference interpreter.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Instruction index the machine reported.
    pub pc: usize,
    /// Retired µops successfully checked before this one.
    pub checked: u64,
    /// Human-readable diff.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "retirement oracle divergence at pc {} (after {} verified retirements):\n{}",
            self.pc, self.checked, self.detail
        )
    }
}

impl std::error::Error for Divergence {}

/// The retirement differential oracle (see module docs).
#[derive(Debug, Clone)]
pub struct Oracle {
    interp: RefInterp,
    checked: u64,
}

/// Diffs the full register/flag state between machine and reference;
/// `None` means they agree.
fn state_diff(m_regs: &RegFile, m_flags: Flags, r: &RefInterp) -> Option<String> {
    let mut out = String::new();
    for &reg in Reg::ALL {
        let (mv, rv) = (m_regs.get(reg), r.regs().get(reg));
        if mv != rv {
            out.push_str(&format!(
                "  {reg:?}: machine {mv:#x} != reference {rv:#x}\n"
            ));
        }
    }
    if m_flags != r.flags() {
        out.push_str(&format!(
            "  flags: machine {:?} != reference {:?}\n",
            m_flags,
            r.flags()
        ));
    }
    (!out.is_empty()).then_some(out)
}

impl Oracle {
    /// Creates an oracle for one run of `program`. Accepts an owned
    /// [`Program`] or a shared `Arc<Program>`; check-mode callers that
    /// re-run the same program pass the `Arc` to avoid a per-run clone.
    pub fn new(
        program: impl Into<std::sync::Arc<Program>>,
        cfg: InterpConfig,
        init_regs: &[(Reg, u64)],
    ) -> Self {
        Oracle {
            interp: RefInterp::new(program, cfg, init_regs),
            checked: 0,
        }
    }

    /// Retired µops verified so far.
    pub fn checked_uops(&self) -> u64 {
        self.checked
    }

    /// The reference interpreter (for post-run inspection in tests).
    pub fn interp(&self) -> &RefInterp {
        &self.interp
    }

    fn diverge(&self, pc: usize, detail: String) -> Divergence {
        Divergence {
            pc,
            checked: self.checked,
            detail,
        }
    }

    /// Checks one committed µop; returns the divergence instead of
    /// panicking.
    pub fn try_retire(
        &mut self,
        u: &RetiredUop<'_>,
        aspace: &AddressSpace,
        phys: &PhysMem,
    ) -> Result<(), Divergence> {
        if self.interp.state() != InterpState::Running {
            return Err(self.diverge(
                u.pc,
                format!(
                    "machine retired pc {} but the reference already ended: {:?}\n",
                    u.pc,
                    self.interp.state()
                ),
            ));
        }
        let exp_pc = self.interp.pc();
        if u.pc != exp_pc {
            return Err(self.diverge(
                u.pc,
                format!(
                    "machine retired pc {}, reference expects pc {exp_pc}\n",
                    u.pc
                ),
            ));
        }
        let inst = self.interp.program().fetch(exp_pc);
        // `rdtsc` value adoption: time is not architectural, so the
        // reference takes the machine's committed rax as the tsc.
        let tsc = u.regs.get(Reg::Rax);
        match self.interp.step(aspace, phys, tsc) {
            StepOutcome::Retired(eff) => {
                let ref_store = eff.store.map(|w| CommittedStore {
                    vaddr: w.vaddr,
                    pa: Some(w.pa),
                    value: w.value,
                    byte: w.byte,
                });
                if u.store != ref_store {
                    return Err(self.diverge(
                        u.pc,
                        format!(
                            "store effect mismatch at pc {} ({inst:?}):\n  machine   {:?}\n  reference {:?}\n",
                            u.pc, u.store, ref_store
                        ),
                    ));
                }
                if let Some(diff) = state_diff(u.regs, u.flags, &self.interp) {
                    return Err(self.diverge(
                        u.pc,
                        format!("state mismatch after pc {} ({inst:?}):\n{diff}", u.pc),
                    ));
                }
            }
            StepOutcome::Faulted(f) => {
                return Err(self.diverge(
                    u.pc,
                    format!(
                        "machine retired pc {} ({inst:?}) but the reference faults there: {:?}\n",
                        u.pc, f.fault
                    ),
                ));
            }
            StepOutcome::OffEnd | StepOutcome::Ended => {
                return Err(self.diverge(
                    u.pc,
                    format!(
                        "machine retired pc {} past the reference program end\n",
                        u.pc
                    ),
                ));
            }
        }
        self.checked += 1;
        Ok(())
    }

    /// Checks one committed µop, panicking with a diff on divergence.
    ///
    /// # Panics
    ///
    /// Panics if the machine's commit diverges from the reference.
    pub fn on_retire(&mut self, u: &RetiredUop<'_>, aspace: &AddressSpace, phys: &PhysMem) {
        if let Err(d) = self.try_retire(u, aspace, phys) {
            panic!("{d}");
        }
    }

    /// Checks one delivered fault; returns the divergence instead of
    /// panicking.
    pub fn try_fault(
        &mut self,
        f: &DeliveredFault<'_>,
        aspace: &AddressSpace,
        phys: &PhysMem,
    ) -> Result<(), Divergence> {
        if self.interp.state() != InterpState::Running {
            return Err(self.diverge(
                f.pc,
                format!(
                    "machine delivered a fault at pc {} but the reference already ended: {:?}\n",
                    f.pc,
                    self.interp.state()
                ),
            ));
        }
        let exp_pc = self.interp.pc();
        if f.pc != exp_pc {
            return Err(self.diverge(
                f.pc,
                format!(
                    "machine faulted at pc {}, reference expects pc {exp_pc}\n",
                    f.pc
                ),
            ));
        }
        match self.interp.step(aspace, phys, 0) {
            StepOutcome::Faulted(rf) => {
                let machine_fault = ArchFault {
                    kind: f.kind,
                    vaddr: f.vaddr,
                };
                if machine_fault != rf.fault {
                    return Err(self.diverge(
                        f.pc,
                        format!(
                            "fault identity mismatch at pc {}:\n  machine   {machine_fault:?}\n  reference {:?}\n",
                            f.pc, rf.fault
                        ),
                    ));
                }
                if f.resume != rf.resume {
                    return Err(self.diverge(
                        f.pc,
                        format!(
                            "fault resume mismatch at pc {}: machine {:?}, reference {:?}\n",
                            f.pc, f.resume, rf.resume
                        ),
                    ));
                }
                if let Some(diff) = state_diff(f.regs, f.flags, &self.interp) {
                    return Err(self.diverge(
                        f.pc,
                        format!(
                            "state mismatch after fault delivery at pc {}:\n{diff}",
                            f.pc
                        ),
                    ));
                }
            }
            StepOutcome::Retired(_) => {
                return Err(self.diverge(
                    f.pc,
                    format!(
                        "machine faulted at pc {} but the reference retires that instruction\n",
                        f.pc
                    ),
                ));
            }
            StepOutcome::OffEnd | StepOutcome::Ended => {
                return Err(self.diverge(
                    f.pc,
                    format!(
                        "machine faulted at pc {} past the reference program end\n",
                        f.pc
                    ),
                ));
            }
        }
        self.checked += 1;
        Ok(())
    }

    /// Checks one delivered fault, panicking with a diff on divergence.
    ///
    /// # Panics
    ///
    /// Panics if the machine's fault delivery diverges from the
    /// reference.
    pub fn on_fault(&mut self, f: &DeliveredFault<'_>, aspace: &AddressSpace, phys: &PhysMem) {
        if let Err(d) = self.try_fault(f, aspace, phys) {
            panic!("{d}");
        }
    }

    /// Checks the run exit; returns the divergence instead of panicking.
    pub fn try_run_end(
        &mut self,
        exit: ExitClass,
        regs: &RegFile,
        flags: Flags,
    ) -> Result<(), Divergence> {
        let pc = self.interp.pc();
        match exit {
            // A cycle-limited run stops mid-program; every retirement up
            // to the cut was already checked individually.
            ExitClass::CycleLimit => return Ok(()),
            ExitClass::Halted => {
                if self.interp.state() != InterpState::Halted {
                    return Err(self.diverge(
                        pc,
                        format!(
                            "machine halted but the reference is {:?} at pc {pc}\n",
                            self.interp.state()
                        ),
                    ));
                }
            }
            ExitClass::UnhandledFault {
                pc: fpc,
                vaddr,
                kind,
            } => {
                let expect = InterpState::UnhandledFault(ArchFault { kind, vaddr });
                if self.interp.state() != expect {
                    return Err(self.diverge(
                        fpc,
                        format!(
                            "machine exited on an unhandled fault {kind:?}@{vaddr:#x} (pc {fpc}) but the reference is {:?}\n",
                            self.interp.state()
                        ),
                    ));
                }
            }
            ExitClass::RanOffEnd => {
                let off_end = self.interp.state() == InterpState::Running
                    && self.interp.program().fetch(pc).is_none();
                if !off_end {
                    return Err(self.diverge(
                        pc,
                        format!(
                            "machine ran off the program end but the reference is {:?} at pc {pc}\n",
                            self.interp.state()
                        ),
                    ));
                }
            }
        }
        if let Some(diff) = state_diff(regs, flags, &self.interp) {
            return Err(self.diverge(pc, format!("final state mismatch ({exit:?}):\n{diff}")));
        }
        Ok(())
    }

    /// Checks the run exit, panicking with a diff on divergence.
    ///
    /// # Panics
    ///
    /// Panics if the machine's exit state diverges from the reference.
    pub fn on_run_end(&mut self, exit: ExitClass, regs: &RegFile, flags: Flags) {
        if let Err(d) = self.try_run_end(exit, regs, flags) {
            panic!("{d}");
        }
    }
}

/// Convenience used by diagnostics: disassembles one instruction if in
/// range.
pub fn inst_at(program: &Program, pc: usize) -> Option<Inst> {
    program.fetch(pc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tet_isa::Asm;

    #[test]
    fn oracle_accepts_a_matching_retirement_stream() {
        let mut a = Asm::new();
        a.mov_imm(Reg::Rax, 7).add(Reg::Rax, 1u64).halt();
        let program = a.assemble().unwrap();
        let aspace = AddressSpace::new();
        let phys = PhysMem::new();
        let mut oracle = Oracle::new(program, InterpConfig::default(), &[]);

        // Simulate the machine's commit stream by hand.
        let mut regs = RegFile::new();
        let mut flags = Flags::default();
        regs.set(Reg::Rax, 7);
        oracle.on_retire(
            &RetiredUop {
                pc: 0,
                regs: &regs,
                flags,
                store: None,
            },
            &aspace,
            &phys,
        );
        regs.set(Reg::Rax, 8);
        flags = Flags::from_add(7, 1);
        oracle.on_retire(
            &RetiredUop {
                pc: 1,
                regs: &regs,
                flags,
                store: None,
            },
            &aspace,
            &phys,
        );
        oracle.on_retire(
            &RetiredUop {
                pc: 2,
                regs: &regs,
                flags,
                store: None,
            },
            &aspace,
            &phys,
        );
        oracle.on_run_end(ExitClass::Halted, &regs, flags);
        assert_eq!(oracle.checked_uops(), 3);
    }

    #[test]
    fn oracle_flags_a_wrong_register_value() {
        let mut a = Asm::new();
        a.mov_imm(Reg::Rax, 7).halt();
        let program = a.assemble().unwrap();
        let aspace = AddressSpace::new();
        let phys = PhysMem::new();
        let mut oracle = Oracle::new(program, InterpConfig::default(), &[]);
        let mut regs = RegFile::new();
        regs.set(Reg::Rax, 8); // wrong: should be 7
        let err = oracle
            .try_retire(
                &RetiredUop {
                    pc: 0,
                    regs: &regs,
                    flags: Flags::default(),
                    store: None,
                },
                &aspace,
                &phys,
            )
            .unwrap_err();
        assert!(err.detail.contains("Rax"), "diff names the register: {err}");
    }

    #[test]
    fn oracle_flags_a_skipped_instruction() {
        let mut a = Asm::new();
        a.mov_imm(Reg::Rax, 7).mov_imm(Reg::Rbx, 8).halt();
        let program = a.assemble().unwrap();
        let aspace = AddressSpace::new();
        let phys = PhysMem::new();
        let mut oracle = Oracle::new(program, InterpConfig::default(), &[]);
        let regs = RegFile::new();
        let err = oracle
            .try_retire(
                &RetiredUop {
                    pc: 1, // skipped pc 0
                    regs: &regs,
                    flags: Flags::default(),
                    store: None,
                },
                &aspace,
                &phys,
            )
            .unwrap_err();
        assert!(err.detail.contains("expects pc 0"), "{err}");
    }
}
