//! Random gadget-program generation and shrinking for the fuzz harness.
//!
//! [`gen_program`] produces short, termination-biased programs shaped
//! like the paper's gadgets: register arithmetic, loads/stores into a
//! mapped data page, stack traffic, forward branches, occasional
//! faulting accesses (kernel / unmapped / reserved pages), fences,
//! `rdtsc`, TSX regions and `syscall`. Control flow only ever jumps
//! *forward* (plus `call`/`ret` pairs), so programs terminate unless a
//! corrupted return address loops them — the cycle budget of the
//! harness bounds those.
//!
//! [`shrink`] minimizes a failing program by repeatedly deleting
//! instructions (re-targeting branches across the gap) while the
//! caller-supplied predicate still fails, to a fixpoint. The survivors
//! are committed as regression fixtures in `tet-uarch/tests/`.

use proptest::test_runner::TestRng;
use tet_isa::{Addr, Asm, Cond, Inst, Program, Reg, Src};

/// Layout constants shared between the generator and the fuzz harness
/// (the harness maps these pages before running).
pub mod layout {
    /// User-mapped data page.
    pub const DATA_PAGE: u64 = 0x20_0000;
    /// User-mapped stack page.
    pub const STACK_PAGE: u64 = 0x30_0000;
    /// Initial stack pointer (mid-page: room to push and to pop).
    pub const STACK_TOP: u64 = 0x30_0800;
    /// Kernel-mapped page: user access raises a permission fault.
    pub const KERNEL_PAGE: u64 = 0xffff_ffff_8000_0000;
    /// Never mapped: access raises a not-present fault.
    pub const UNMAPPED: u64 = 0xdead_0000;
}

/// Tuning knobs for [`gen_program`].
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of body instructions (a terminal `halt` is appended).
    pub max_insts: usize,
    /// Per-mille probability that a memory operand targets a faulting
    /// address (kernel or unmapped) instead of the data page.
    pub fault_per_mille: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_insts: 24,
            fault_per_mille: 120,
        }
    }
}

const GP_REGS: [Reg; 8] = [
    Reg::Rax,
    Reg::Rbx,
    Reg::Rcx,
    Reg::Rdx,
    Reg::Rsi,
    Reg::Rdi,
    Reg::R8,
    Reg::R9,
];

fn pick<T: Copy>(rng: &mut TestRng, items: &[T]) -> T {
    items[(rng.next_u64() % items.len() as u64) as usize]
}

fn reg(rng: &mut TestRng) -> Reg {
    pick(rng, &GP_REGS)
}

/// A random memory operand: usually safely inside the data page,
/// occasionally a faulting address (kernel / unmapped).
fn mem_addr(rng: &mut TestRng, cfg: &GenConfig) -> Addr {
    let roll = rng.next_u64() % 1000;
    if roll < cfg.fault_per_mille {
        let bad = if rng.next_u64().is_multiple_of(2) {
            layout::KERNEL_PAGE
        } else {
            layout::UNMAPPED
        };
        Addr::abs(bad + (rng.next_u64() % 64) * 8)
    } else {
        // Keep 8-byte accesses inside the page.
        Addr::abs(layout::DATA_PAGE + (rng.next_u64() % 500) * 8)
    }
}

/// Generates one random program as raw instructions with absolute branch
/// targets (the final instruction is always `Halt`).
pub fn gen_program(rng: &mut TestRng, cfg: &GenConfig) -> Vec<Inst> {
    let n = cfg.max_insts.max(1);
    let mut insts = Vec::with_capacity(n + 1);
    for i in 0..n {
        // Forward target somewhere in (i, n] — the appended halt sits at
        // index n, so every target is in range.
        let fwd = |rng: &mut TestRng| i + 1 + (rng.next_u64() as usize % (n - i));
        let inst = match rng.next_u64() % 100 {
            0..=14 => Inst::MovImm {
                dst: reg(rng),
                imm: rng.next_u64() % 1024,
            },
            15..=22 => Inst::MovReg {
                dst: reg(rng),
                src: reg(rng),
            },
            23..=37 => {
                let ops = [
                    tet_isa::inst::AluOp::Add,
                    tet_isa::inst::AluOp::Sub,
                    tet_isa::inst::AluOp::And,
                    tet_isa::inst::AluOp::Or,
                    tet_isa::inst::AluOp::Xor,
                    tet_isa::inst::AluOp::Shl,
                ];
                let src = if rng.next_u64().is_multiple_of(2) {
                    Src::Reg(reg(rng))
                } else {
                    Src::Imm(rng.next_u64() % 64)
                };
                Inst::Alu {
                    op: pick(rng, &ops),
                    dst: reg(rng),
                    src,
                }
            }
            38..=44 => {
                let b = if rng.next_u64().is_multiple_of(2) {
                    Src::Reg(reg(rng))
                } else {
                    Src::Imm(rng.next_u64() % 16)
                };
                if rng.next_u64().is_multiple_of(2) {
                    Inst::Cmp { a: reg(rng), b }
                } else {
                    Inst::Test { a: reg(rng), b }
                }
            }
            45..=56 => {
                let addr = mem_addr(rng, cfg);
                if rng.next_u64().is_multiple_of(2) {
                    Inst::Load {
                        dst: reg(rng),
                        addr,
                    }
                } else {
                    Inst::LoadByte {
                        dst: reg(rng),
                        addr,
                    }
                }
            }
            57..=66 => {
                let addr = mem_addr(rng, cfg);
                if rng.next_u64().is_multiple_of(2) {
                    Inst::Store {
                        src: reg(rng),
                        addr,
                    }
                } else {
                    Inst::StoreByte {
                        src: reg(rng),
                        addr,
                    }
                }
            }
            67..=74 => Inst::Jcc {
                cond: pick(rng, Cond::ALL),
                target: fwd(rng),
            },
            75..=77 => Inst::Jmp { target: fwd(rng) },
            78..=82 => {
                if rng.next_u64().is_multiple_of(2) {
                    Inst::Push { src: reg(rng) }
                } else {
                    Inst::Pop { dst: reg(rng) }
                }
            }
            83..=85 => Inst::Call { target: fwd(rng) },
            86..=87 => Inst::Ret,
            88..=89 => Inst::XBegin {
                abort_target: fwd(rng),
            },
            90..=91 => Inst::XEnd,
            92..=93 => Inst::Clflush {
                addr: mem_addr(rng, cfg),
            },
            94 => Inst::Prefetch {
                addr: mem_addr(rng, cfg),
            },
            95 => Inst::Lfence,
            96 => Inst::Mfence,
            97 => Inst::Rdtsc,
            98 => Inst::Syscall,
            _ => Inst::Nop,
        };
        insts.push(inst);
    }
    insts.push(Inst::Halt);
    insts
}

/// Assembles raw instructions (absolute targets) into a [`Program`].
pub fn to_program(insts: &[Inst]) -> Program {
    let mut a = Asm::new();
    for &i in insts {
        a.raw(i);
    }
    a.assemble()
        .expect("raw instructions have no unbound labels")
}

/// Rewrites one branch target after deleting instruction `removed`.
fn fix_target(t: usize, removed: usize) -> usize {
    if t > removed {
        t - 1
    } else {
        t
    }
}

fn without(insts: &[Inst], k: usize) -> Vec<Inst> {
    let mut out = Vec::with_capacity(insts.len() - 1);
    for (i, &inst) in insts.iter().enumerate() {
        if i == k {
            continue;
        }
        out.push(match inst {
            Inst::Jcc { cond, target } => Inst::Jcc {
                cond,
                target: fix_target(target, k),
            },
            Inst::Jmp { target } => Inst::Jmp {
                target: fix_target(target, k),
            },
            Inst::Call { target } => Inst::Call {
                target: fix_target(target, k),
            },
            Inst::XBegin { abort_target } => Inst::XBegin {
                abort_target: fix_target(abort_target, k),
            },
            other => other,
        });
    }
    out
}

/// Greedy delta-debugging shrink: repeatedly drops single instructions
/// (keeping the terminal `halt`) while `fails` still returns true, to a
/// fixpoint. The result is the minimal failing program this reduction
/// order finds.
pub fn shrink(mut insts: Vec<Inst>, mut fails: impl FnMut(&[Inst]) -> bool) -> Vec<Inst> {
    let mut progress = true;
    while progress {
        progress = false;
        let mut k = 0;
        // The last instruction is the terminal halt; never drop it.
        while k + 1 < insts.len() {
            let candidate = without(&insts, k);
            if fails(&candidate) {
                insts = candidate;
                progress = true;
            } else {
                k += 1;
            }
        }
    }
    insts
}

/// Renders a program as `Inst` debug lines — the exact shape pasted into
/// a regression fixture.
pub fn render(insts: &[Inst]) -> String {
    let mut out = String::new();
    for (i, inst) in insts.iter().enumerate() {
        out.push_str(&format!("    /* {i:2} */ Inst::{inst:?},\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_terminated() {
        let cfg = GenConfig::default();
        let a = gen_program(&mut TestRng::deterministic("gen"), &cfg);
        let b = gen_program(&mut TestRng::deterministic("gen"), &cfg);
        assert_eq!(a, b, "same seed, same program");
        assert_eq!(*a.last().unwrap(), Inst::Halt);
        assert_eq!(a.len(), cfg.max_insts + 1);
        // Every branch target is in range and strictly forward.
        for (i, inst) in a.iter().enumerate() {
            let t = match *inst {
                Inst::Jcc { target, .. }
                | Inst::Jmp { target }
                | Inst::Call { target }
                | Inst::XBegin {
                    abort_target: target,
                } => target,
                _ => continue,
            };
            assert!(t > i && t < a.len(), "target {t} from {i} out of range");
        }
    }

    #[test]
    fn shrink_reaches_a_local_minimum() {
        let mut rng = TestRng::deterministic("shrink");
        let insts = gen_program(&mut rng, &GenConfig::default());
        // Predicate: program still contains a Load. Shrinking must strip
        // everything else (the loads and the terminal halt survive).
        let has_load = |p: &[Inst]| p.iter().any(|i| matches!(i, Inst::Load { .. }));
        if !has_load(&insts) {
            return; // seed produced no load; nothing to shrink against
        }
        let min = shrink(insts, has_load);
        assert!(has_load(&min));
        assert_eq!(*min.last().unwrap(), Inst::Halt);
        // Minimal: exactly one load plus the halt.
        assert_eq!(min.len(), 2, "got {}", render(&min));
    }

    #[test]
    fn shrink_retargets_branches_across_deleted_instructions() {
        let insts = vec![
            Inst::Nop,
            Inst::Jmp { target: 3 },
            Inst::Nop,
            Inst::Rdtsc,
            Inst::Halt,
        ];
        let min = shrink(insts, |p| {
            p.iter().any(|i| matches!(i, Inst::Jmp { .. }))
                && p.iter().any(|i| matches!(i, Inst::Rdtsc))
        });
        // Nops removed; the jump now targets the rdtsc directly.
        assert_eq!(min, vec![Inst::Jmp { target: 1 }, Inst::Rdtsc, Inst::Halt]);
    }

    #[test]
    fn to_program_round_trips() {
        let insts = gen_program(&mut TestRng::deterministic("rt"), &GenConfig::default());
        let p = to_program(&insts);
        assert_eq!(p.len(), insts.len());
        for (i, inst) in insts.iter().enumerate() {
            assert_eq!(p.fetch(i), Some(*inst));
        }
    }
}
