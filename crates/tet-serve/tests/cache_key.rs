//! Cache-key correctness: the content address must be insensitive to
//! everything that does not change the campaign (field order, spelled-
//! out defaults, preset spelling) and sensitive to everything that does
//! (seed, preset, attack, trial count, scenario knobs, kind).

use tet_serve::spec::MAX_TRIALS;
use tet_serve::{CampaignKind, CampaignSpec};

fn key(body: &str) -> String {
    CampaignSpec::from_json(body)
        .unwrap_or_else(|e| panic!("spec {body:?} must parse: {e}"))
        .cache_key()
}

#[test]
fn field_order_does_not_change_the_key() {
    let a = key(
        "{\"kind\": \"table2_cell\", \"preset\": \"intel-core-i7-7700\", \
                  \"attack\": \"md\", \"seed\": 42, \"trials\": 3}",
    );
    let b = key("{\"trials\": 3, \"seed\": 42, \"attack\": \"md\", \
                  \"preset\": \"intel-core-i7-7700\", \"kind\": \"table2_cell\"}");
    assert_eq!(a, b);
}

#[test]
fn spelled_out_defaults_hash_like_omitted_defaults() {
    // kpti/flare/interrupt_period default to false/false/0; kind
    // defaults to table2_cell; seed to 1; trials to 1.
    let omitted = key("{\"preset\": \"intel-core-i7-7700\", \"attack\": \"cc\"}");
    let spelled = key(
        "{\"kind\": \"table2_cell\", \"preset\": \"intel-core-i7-7700\", \
                        \"attack\": \"cc\", \"seed\": 1, \"trials\": 1, \"kpti\": false, \
                        \"flare\": false, \"interrupt_period\": 0}",
    );
    assert_eq!(omitted, spelled);
}

#[test]
fn preset_spellings_normalize() {
    let slug = key("{\"preset\": \"intel-core-i7-7700\", \"attack\": \"cc\"}");
    let name = key("{\"preset\": \"Intel Core i7-7700\", \"attack\": \"cc\"}");
    assert_eq!(slug, name);
}

#[test]
fn every_semantic_field_changes_the_key() {
    let base = "{\"kind\": \"table2_cell\", \"preset\": \"intel-core-i7-7700\", \
                 \"attack\": \"cc\", \"seed\": 1, \"trials\": 2}";
    let variants = [
        // seed
        "{\"kind\": \"table2_cell\", \"preset\": \"intel-core-i7-7700\", \
          \"attack\": \"cc\", \"seed\": 2, \"trials\": 2}",
        // trials
        "{\"kind\": \"table2_cell\", \"preset\": \"intel-core-i7-7700\", \
          \"attack\": \"cc\", \"seed\": 1, \"trials\": 3}",
        // preset
        "{\"kind\": \"table2_cell\", \"preset\": \"amd-ryzen-5-5600g\", \
          \"attack\": \"cc\", \"seed\": 1, \"trials\": 2}",
        // attack
        "{\"kind\": \"table2_cell\", \"preset\": \"intel-core-i7-7700\", \
          \"attack\": \"md\", \"seed\": 1, \"trials\": 2}",
        // scenario knobs
        "{\"kind\": \"table2_cell\", \"preset\": \"intel-core-i7-7700\", \
          \"attack\": \"cc\", \"seed\": 1, \"trials\": 2, \"kpti\": true}",
        "{\"kind\": \"table2_cell\", \"preset\": \"intel-core-i7-7700\", \
          \"attack\": \"cc\", \"seed\": 1, \"trials\": 2, \"flare\": true}",
        "{\"kind\": \"table2_cell\", \"preset\": \"intel-core-i7-7700\", \
          \"attack\": \"cc\", \"seed\": 1, \"trials\": 2, \"interrupt_period\": 5000}",
        // kind
        "{\"kind\": \"table2_matrix\", \"seed\": 1}",
    ];
    let base_key = key(base);
    let mut seen = std::collections::HashSet::new();
    seen.insert(base_key.clone());
    for v in variants {
        let k = key(v);
        assert_ne!(k, base_key, "variant must rekey: {v}");
        assert!(seen.insert(k), "two distinct variants collided: {v}");
    }
}

#[test]
fn matrix_ignores_cell_only_fields() {
    // A matrix does not read preset/attack/trials/kpti/flare/
    // interrupt_period, so they must not split the cache.
    let plain = key("{\"kind\": \"table2_matrix\", \"seed\": 9}");
    let noisy = key("{\"kind\": \"table2_matrix\", \"seed\": 9, \
                      \"preset\": \"amd-ryzen-5-5600g\", \"attack\": \"md\", \
                      \"trials\": 7, \"kpti\": true}");
    assert_eq!(plain, noisy);
}

#[test]
fn keys_are_hex_sha256() {
    let k = CampaignSpec::default().cache_key();
    assert_eq!(k.len(), 64);
    assert!(k.bytes().all(|b| b.is_ascii_hexdigit()));
}

#[test]
fn rejects_malformed_requests() {
    for bad in [
        "not json",
        "[1, 2]",
        "{\"sead\": 1}",                                // typo'd field
        "{\"kind\": \"table3\"}",                       // unknown kind
        "{\"preset\": \"pentium-iii\"}",                // unknown preset
        "{\"attack\": \"rowhammer\"}",                  // unknown attack
        "{\"trials\": 0}",                              // zero trials
        &format!("{{\"trials\": {}}}", MAX_TRIALS + 1), // over the cap
        "{\"seed\": \"one\"}",                          // wrong type
        "{\"kpti\": 1}",                                // wrong type
    ] {
        assert!(CampaignSpec::from_json(bad).is_err(), "must reject: {bad}");
    }
}

#[test]
fn defaults_round_trip() {
    let spec = CampaignSpec::from_json("{}").unwrap();
    assert_eq!(spec, CampaignSpec::default());
    assert_eq!(spec.kind, CampaignKind::Table2Cell);
    // The canonical form itself re-parses to the same spec and key.
    let reparsed = CampaignSpec::from_json(&spec.canonical_json()).unwrap();
    assert_eq!(reparsed.cache_key(), spec.cache_key());
}
