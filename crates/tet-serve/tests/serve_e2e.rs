//! End-to-end: a real server on an ephemeral port, driven over real
//! sockets by the blocking client — cold run, cache hit byte-identity,
//! single-flight dedup, status/report/error surfaces, keep-alive
//! reuse/pipelining edge cases, and disk-cache eviction.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use tet_obs::RunReport;
use tet_serve::{Client, ServerConfig};

/// Starts a server with an isolated cache dir; returns (handle, client,
/// cache dir for cleanup).
fn start_server(tag: &str) -> (tet_serve::ServerHandle, Client, PathBuf) {
    start_server_with(tag, |_| {})
}

/// Same, with a config hook (budget/idle-timeout overrides).
fn start_server_with(
    tag: &str,
    tweak: impl FnOnce(&mut ServerConfig),
) -> (tet_serve::ServerHandle, Client, PathBuf) {
    let cache_dir =
        std::env::temp_dir().join(format!("tet_serve_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        threads: 2,
        cache_dir: cache_dir.clone(),
        // Explicit, so ambient TET_SERVE_CACHE_BYTES cannot skew tests.
        cache_bytes: 0,
        hot_bytes: 1 << 20,
        idle_timeout_ms: 5_000,
    };
    tweak(&mut cfg);
    let handle = tet_serve::start(cfg).expect("server must start");
    let client = Client::new(&handle.addr().to_string());
    (handle, client, cache_dir)
}

const SPEC: &str = "{\"kind\": \"table2_cell\", \"preset\": \"intel-core-i7-7700\", \
                    \"attack\": \"cc\", \"seed\": 5, \"trials\": 2}";

/// Reads one HTTP response off a raw socket reader. Returns
/// `None` on immediate EOF (connection closed), otherwise
/// `(status, body, connection_close)`.
fn read_raw_response(reader: &mut BufReader<TcpStream>) -> Option<(u16, String, bool)> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line).ok()? == 0 {
        return None;
    }
    let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    let mut closes = false;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).ok()?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().ok()?;
        }
        if line.eq_ignore_ascii_case("connection: close") {
            closes = true;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some((status, String::from_utf8(body).ok()?, closes))
}

#[test]
fn cold_then_cached_round_trip() {
    let (handle, client, dir) = start_server("round_trip");

    let health = client.health().unwrap();
    assert_eq!(health.get("ok").and_then(|v| v.as_bool()), Some(true));

    // Cold: miss, runs through the scheduler.
    let (cold, was_cached) = client.run_to_report(SPEC).unwrap();
    assert!(!was_cached, "first submit must miss");
    let report = RunReport::from_json(&cold).expect("report must parse");
    assert_eq!(report.counters["trials"], 2);
    assert!(
        report.wall_time_ms.is_none(),
        "served reports must carry no host timing"
    );

    // Warm: hit, byte-identical body (the hot-cache zero-copy path).
    let (warm, was_cached) = client.run_to_report(SPEC).unwrap();
    assert!(was_cached, "second submit must hit");
    assert_eq!(cold, warm, "cached report must be byte-identical");

    // Same campaign spelled differently (field order + spelled-out
    // defaults): still a hit.
    let reordered = "{\"trials\": 2, \"attack\": \"cc\", \"seed\": 5, \"kpti\": false, \
                     \"preset\": \"Intel Core i7-7700\", \"kind\": \"table2_cell\"}";
    let (again, was_cached) = client.run_to_report(reordered).unwrap();
    assert!(was_cached, "reordered spelling must hit the same key");
    assert_eq!(cold, again);

    // A connection-per-request client sees the same bytes as the
    // keep-alive client — the wire format does not depend on the path.
    let one_shot = Client::new(&handle.addr().to_string()).with_keep_alive(false);
    let (plain, was_cached) = one_shot.run_to_report(SPEC).unwrap();
    assert!(was_cached);
    assert_eq!(cold, plain, "keep-alive and close responses must match");

    let stats = client.cache_stats().unwrap();
    assert_eq!(stats.get("misses").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(stats.get("hits").and_then(|v| v.as_u64()), Some(3));
    assert_eq!(stats.get("entries").and_then(|v| v.as_u64()), Some(1));
    assert!(
        stats.get("hot_hits").and_then(|v| v.as_u64()).unwrap_or(0) >= 2,
        "warm traffic must be served from the hot tier: {stats:?}"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_survives_server_restart() {
    let (handle, client, dir) = start_server("restart");
    let (cold, _) = client.run_to_report(SPEC).unwrap();
    handle.shutdown();

    // A new server over the same cache dir serves the old result —
    // through a cold hot-cache, so this also covers the disk→hot
    // promotion path.
    let handle = tet_serve::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        threads: 1,
        cache_dir: dir.clone(),
        cache_bytes: 0,
        hot_bytes: 1 << 20,
        idle_timeout_ms: 5_000,
    })
    .unwrap();
    let client = Client::new(&handle.addr().to_string());
    let (warm, was_cached) = client.run_to_report(SPEC).unwrap();
    assert!(was_cached, "restarted server must hit the disk cache");
    assert_eq!(cold, warm);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn one_round_trip_report_endpoint() {
    let (handle, client, dir) = start_server("reports_fast_path");

    // A probe miss is a 404 that creates no job and counts no miss —
    // the submit that follows records the one logical miss.
    let probe = client.request("POST", "/v1/reports", SPEC).unwrap();
    assert_eq!(probe.status, 404, "{}", probe.body);
    let stats = client.cache_stats().unwrap();
    assert_eq!(stats.get("misses").and_then(|v| v.as_u64()), Some(0));
    let resp = client.request("GET", "/v1/jobs/1", "").unwrap();
    assert_eq!(resp.status, 404, "a probe must not create a job");

    // Invalid specs are rejected like submits, wrong methods refused.
    let resp = client
        .request("POST", "/v1/reports", "{\"sead\": 3}")
        .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    let resp = client.request("GET", "/v1/reports", "").unwrap();
    assert_eq!(resp.status, 405, "{}", resp.body);

    // Compute through the submit flow; the fast path then serves the
    // identical bytes in a single round trip and counts the hit.
    let (cold, was_cached) = client.run_to_report(SPEC).unwrap();
    assert!(!was_cached);
    let fast = client.request("POST", "/v1/reports", SPEC).unwrap();
    assert_eq!(fast.status, 200);
    assert_eq!(fast.body, cold, "fast-path report must be byte-identical");
    let stats = client.cache_stats().unwrap();
    assert_eq!(stats.get("misses").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(stats.get("hits").and_then(|v| v.as_u64()), Some(1));

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_requests_get_400_not_a_wedged_job() {
    let (handle, client, dir) = start_server("bad_req");
    for bad in ["not json", "{\"attack\": \"rowhammer\"}", "{\"sead\": 3}"] {
        let resp = client.request("POST", "/v1/jobs", bad).unwrap();
        assert_eq!(resp.status, 400, "{bad}: {}", resp.body);
        assert!(resp.body.contains("error"), "{}", resp.body);
    }
    let resp = client.request("GET", "/v1/jobs/999", "").unwrap();
    assert_eq!(resp.status, 404);
    let resp = client.request("GET", "/v1/nope", "").unwrap();
    assert_eq!(resp.status, 404);
    let resp = client.request("PUT", "/v1/jobs", "").unwrap();
    assert_eq!(resp.status, 405);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn status_and_events_follow_a_job() {
    let (handle, client, dir) = start_server("status");
    let sub = client.submit(SPEC).unwrap();
    let job = sub.get("job").and_then(|v| v.as_u64()).unwrap();
    let st = client.wait(job).unwrap();
    assert_eq!(st.get("state").and_then(|v| v.as_str()), Some("done"));
    assert_eq!(st.get("done").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(st.get("total").and_then(|v| v.as_u64()), Some(2));

    // The events stream of a finished job: one final status line.
    let resp = client
        .request("GET", &format!("/v1/jobs/{job}/events"), "")
        .unwrap();
    assert_eq!(resp.status, 200);
    let last = resp.body.lines().last().unwrap();
    assert!(last.contains("\"state\":\"done\""), "{last}");
    // The stream ended the connection; the next request transparently
    // reconnects.
    assert!(client.health().is_ok());
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn matrix_campaign_runs_as_a_service() {
    let (handle, client, dir) = start_server("matrix");
    let spec = "{\"kind\": \"table2_matrix\", \"seed\": 42}";
    let (body, was_cached) = client.run_to_report(spec).unwrap();
    assert!(!was_cached);
    let report = RunReport::from_json(&body).unwrap();
    assert_eq!(report.counters["rows"], 5);
    assert_eq!(
        report.counters["all_match"], 1,
        "the served matrix must reproduce Table 2"
    );
    assert!(report.meta.contains_key("row.intel-core-i7-7700"));
    // Served again: identical bytes.
    let (again, was_cached) = client.run_to_report(spec).unwrap();
    assert!(was_cached);
    assert_eq!(body, again);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipelined_requests_are_answered_in_order_on_one_connection() {
    let (handle, _, dir) = start_server("pipeline");
    let mut conn = TcpStream::connect(handle.addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // Three back-to-back requests in one write, no reads in between.
    conn.write_all(
        b"GET /v1/health HTTP/1.1\r\n\r\n\
          GET /v1/cache/stats HTTP/1.1\r\n\r\n\
          GET /v1/health HTTP/1.1\r\n\r\n",
    )
    .unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let (s1, b1, c1) = read_raw_response(&mut reader).expect("first response");
    let (s2, b2, c2) = read_raw_response(&mut reader).expect("second response");
    let (s3, b3, _) = read_raw_response(&mut reader).expect("third response");
    assert_eq!((s1, s2, s3), (200, 200, 200));
    assert!(b1.contains("\"ok\""), "{b1}");
    assert!(b2.contains("\"hot_hits\""), "{b2}");
    assert!(b3.contains("\"ok\""), "{b3}");
    assert!(!c1 && !c2, "keep-alive responses must not claim close");
    // The connection is still usable afterwards.
    conn.write_all(b"GET /v1/health HTTP/1.1\r\n\r\n").unwrap();
    assert!(read_raw_response(&mut reader).is_some());
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn connection_close_mid_pipeline_stops_after_that_response() {
    let (handle, _, dir) = start_server("close_mid");
    let mut conn = TcpStream::connect(handle.addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // The second request asks to close; a pipelined third must never be
    // answered (and must not corrupt anything).
    conn.write_all(
        b"GET /v1/health HTTP/1.1\r\n\r\n\
          GET /v1/health HTTP/1.1\r\nConnection: close\r\n\r\n\
          GET /v1/cache/stats HTTP/1.1\r\n\r\n",
    )
    .unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let (s1, _, c1) = read_raw_response(&mut reader).expect("first response");
    let (s2, _, c2) = read_raw_response(&mut reader).expect("second response");
    assert_eq!((s1, s2), (200, 200));
    assert!(!c1, "first response keeps the connection");
    assert!(
        c2,
        "the close request's response must say connection: close"
    );
    assert!(
        read_raw_response(&mut reader).is_none(),
        "no response after Connection: close — the server closed"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn idle_timeout_closes_between_requests_not_mid_exchange() {
    let (handle, _, dir) = start_server_with("idle", |cfg| {
        cfg.idle_timeout_ms = 150;
    });
    let mut conn = TcpStream::connect(handle.addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    conn.write_all(b"GET /v1/health HTTP/1.1\r\n\r\n").unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let (s1, _, _) = read_raw_response(&mut reader).expect("prompt request is served");
    assert_eq!(s1, 200);
    // Sit idle past the timeout: the server closes cleanly (EOF), it
    // does not write a spurious response.
    std::thread::sleep(Duration::from_millis(600));
    assert!(
        read_raw_response(&mut reader).is_none(),
        "idle connection must be closed by the server"
    );
    // The blocking client rides this out transparently: its first
    // request builds a connection, the wait exceeds the idle timeout,
    // and the retry path reconnects.
    let client = Client::new(&handle.addr().to_string());
    assert!(client.health().is_ok());
    std::thread::sleep(Duration::from_millis(600));
    assert!(
        client.health().is_ok(),
        "client must survive an idle-timeout close via its retry"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_request_on_a_reused_connection_gets_400_then_close() {
    let (handle, _, dir) = start_server("truncated");
    let mut conn = TcpStream::connect(handle.addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // A healthy exchange first, so the truncation happens on a *reused*
    // connection.
    conn.write_all(b"GET /v1/health HTTP/1.1\r\n\r\n").unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    assert_eq!(read_raw_response(&mut reader).unwrap().0, 200);
    // A request promising 64 body bytes but delivering 9, then EOF on
    // the write half.
    conn.write_all(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 64\r\n\r\n{\"kind\": ")
        .unwrap();
    conn.shutdown(std::net::Shutdown::Write).unwrap();
    let (status, body, closes) =
        read_raw_response(&mut reader).expect("a 400, not silence or garbage");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("error"), "{body}");
    assert!(closes, "a truncated request must end the connection");
    assert!(
        read_raw_response(&mut reader).is_none(),
        "nothing may follow the 400"
    );
    // The half request must not have become a job.
    let client = Client::new(&handle.addr().to_string());
    let stats = client.cache_stats().unwrap();
    assert_eq!(stats.get("misses").and_then(|v| v.as_u64()), Some(0));
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_budget_evicts_and_stats_stay_consistent() {
    // Three distinct small campaigns against a budget sized for roughly
    // one report, so eviction must fire.
    let (handle, client, dir) = start_server_with("evict", |cfg| {
        cfg.cache_bytes = 2_000;
        // Hot tier off-pattern too, so re-submits truly consult disk.
        cfg.hot_bytes = 1;
    });
    let spec_n = |seed: u32| {
        format!(
            "{{\"kind\": \"table2_cell\", \"preset\": \"intel-core-i7-7700\", \
              \"attack\": \"cc\", \"seed\": {seed}, \"trials\": 2}}"
        )
    };
    for seed in [1, 2, 3] {
        let (_, was_cached) = client.run_to_report(&spec_n(seed)).unwrap();
        assert!(!was_cached, "distinct seeds must be distinct cache keys");
    }
    let stats = client.cache_stats().unwrap();
    let get = |k: &str| stats.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
    assert!(
        get("evictions") > 0,
        "budget must force evictions: {stats:?}"
    );
    assert!(
        get("bytes") <= 2_000 || get("entries") == 1,
        "stored bytes must respect the budget (one oversized entry may stay): {stats:?}"
    );
    assert!(get("entries") >= 1);
    assert_eq!(get("max_bytes"), 2_000);
    assert!(get("evicted_bytes") > 0);
    // A displaced campaign is served again — from a re-run or the
    // still-warm hot tier — and stays byte-stable either way.
    let (rerun_a, _) = client.run_to_report(&spec_n(1)).unwrap();
    let (rerun_b, was_cached) = client.run_to_report(&spec_n(1)).unwrap();
    assert!(was_cached, "the re-run must be cached again");
    assert_eq!(rerun_a, rerun_b);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_endpoint_serves_valid_prometheus() {
    let (handle, client, dir) = start_server("prom");
    let (_, _) = client.run_to_report(SPEC).unwrap();
    let (_, was_cached) = client.run_to_report(SPEC).unwrap();
    assert!(was_cached);
    let text = client.metrics().unwrap();
    let samples = tet_metrics::parse_prometheus(&text).expect("well-formed exposition");
    let find = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing {name} in:\n{text}"))
            .value
    };
    assert!(find("serve_requests") >= 4.0);
    assert!(find("serve_cached_request_us_count") >= 1.0);
    assert!(find("serve_cold_request_us_count") >= 1.0);
    assert_eq!(find("serve_cache_misses"), 1.0);
    assert!(
        samples
            .iter()
            .any(|s| s.name == "serve_cached_request_us" && s.labels.contains("0.999")),
        "summaries must carry the p999 quantile:\n{text}"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
