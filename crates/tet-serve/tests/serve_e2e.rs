//! End-to-end: a real server on an ephemeral port, driven over real
//! sockets by the blocking client — cold run, cache hit byte-identity,
//! single-flight dedup, status/report/error surfaces.

use std::path::PathBuf;

use tet_obs::RunReport;
use tet_serve::{Client, ServerConfig};

/// Starts a server with an isolated cache dir; returns (handle, client,
/// cache dir for cleanup).
fn start_server(tag: &str) -> (tet_serve::ServerHandle, Client, PathBuf) {
    let cache_dir =
        std::env::temp_dir().join(format!("tet_serve_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let handle = tet_serve::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        threads: 2,
        cache_dir: cache_dir.clone(),
    })
    .expect("server must start");
    let client = Client::new(&handle.addr().to_string());
    (handle, client, cache_dir)
}

const SPEC: &str = "{\"kind\": \"table2_cell\", \"preset\": \"intel-core-i7-7700\", \
                    \"attack\": \"cc\", \"seed\": 5, \"trials\": 2}";

#[test]
fn cold_then_cached_round_trip() {
    let (handle, client, dir) = start_server("round_trip");

    let health = client.health().unwrap();
    assert_eq!(health.get("ok").and_then(|v| v.as_bool()), Some(true));

    // Cold: miss, runs through the scheduler.
    let (cold, was_cached) = client.run_to_report(SPEC).unwrap();
    assert!(!was_cached, "first submit must miss");
    let report = RunReport::from_json(&cold).expect("report must parse");
    assert_eq!(report.counters["trials"], 2);
    assert!(
        report.wall_time_ms.is_none(),
        "served reports must carry no host timing"
    );

    // Warm: hit, byte-identical body.
    let (warm, was_cached) = client.run_to_report(SPEC).unwrap();
    assert!(was_cached, "second submit must hit");
    assert_eq!(cold, warm, "cached report must be byte-identical");

    // Same campaign spelled differently (field order + spelled-out
    // defaults): still a hit.
    let reordered = "{\"trials\": 2, \"attack\": \"cc\", \"seed\": 5, \"kpti\": false, \
                     \"preset\": \"Intel Core i7-7700\", \"kind\": \"table2_cell\"}";
    let (again, was_cached) = client.run_to_report(reordered).unwrap();
    assert!(was_cached, "reordered spelling must hit the same key");
    assert_eq!(cold, again);

    let stats = client.cache_stats().unwrap();
    assert_eq!(stats.get("misses").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(stats.get("hits").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(stats.get("entries").and_then(|v| v.as_u64()), Some(1));

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_survives_server_restart() {
    let (handle, client, dir) = start_server("restart");
    let (cold, _) = client.run_to_report(SPEC).unwrap();
    handle.shutdown();

    // A new server over the same cache dir serves the old result.
    let handle = tet_serve::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        threads: 1,
        cache_dir: dir.clone(),
    })
    .unwrap();
    let client = Client::new(&handle.addr().to_string());
    let (warm, was_cached) = client.run_to_report(SPEC).unwrap();
    assert!(was_cached, "restarted server must hit the disk cache");
    assert_eq!(cold, warm);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_requests_get_400_not_a_wedged_job() {
    let (handle, client, dir) = start_server("bad_req");
    for bad in ["not json", "{\"attack\": \"rowhammer\"}", "{\"sead\": 3}"] {
        let resp = client.request("POST", "/v1/jobs", bad).unwrap();
        assert_eq!(resp.status, 400, "{bad}: {}", resp.body);
        assert!(resp.body.contains("error"), "{}", resp.body);
    }
    let resp = client.request("GET", "/v1/jobs/999", "").unwrap();
    assert_eq!(resp.status, 404);
    let resp = client.request("GET", "/v1/nope", "").unwrap();
    assert_eq!(resp.status, 404);
    let resp = client.request("PUT", "/v1/jobs", "").unwrap();
    assert_eq!(resp.status, 405);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn status_and_events_follow_a_job() {
    let (handle, client, dir) = start_server("status");
    let sub = client.submit(SPEC).unwrap();
    let job = sub.get("job").and_then(|v| v.as_u64()).unwrap();
    let st = client.wait(job).unwrap();
    assert_eq!(st.get("state").and_then(|v| v.as_str()), Some("done"));
    assert_eq!(st.get("done").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(st.get("total").and_then(|v| v.as_u64()), Some(2));

    // The events stream of a finished job: one final status line.
    let resp = client
        .request("GET", &format!("/v1/jobs/{job}/events"), "")
        .unwrap();
    assert_eq!(resp.status, 200);
    let last = resp.body.lines().last().unwrap();
    assert!(last.contains("\"state\":\"done\""), "{last}");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn matrix_campaign_runs_as_a_service() {
    let (handle, client, dir) = start_server("matrix");
    let spec = "{\"kind\": \"table2_matrix\", \"seed\": 42}";
    let (body, was_cached) = client.run_to_report(spec).unwrap();
    assert!(!was_cached);
    let report = RunReport::from_json(&body).unwrap();
    assert_eq!(report.counters["rows"], 5);
    assert_eq!(
        report.counters["all_match"], 1,
        "the served matrix must reproduce Table 2"
    );
    assert!(report.meta.contains_key("row.intel-core-i7-7700"));
    // Served again: identical bytes.
    let (again, was_cached) = client.run_to_report(spec).unwrap();
    assert!(was_cached);
    assert_eq!(body, again);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
