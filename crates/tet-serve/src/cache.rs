//! Disk-backed, content-addressed RunReport cache with size-capped
//! stamp-LRU eviction.
//!
//! One file per cache key under `target/serve-cache/` (overridable with
//! `TET_SERVE_CACHE`), named `<hex-sha256>.json`, holding the serialized
//! [`tet_obs::RunReport`] exactly as it is served — a hit returns the
//! stored bytes untouched, so a cached response is byte-identical to the
//! cold response that populated it. An in-memory index (key → size +
//! recency stamp) avoids touching the filesystem to answer "is this
//! cached?"; bodies stay on disk so a long-lived server's memory does
//! not grow with its history.
//!
//! Eviction: an optional byte budget (`TET_SERVE_CACHE_BYTES`, or
//! [`ResultCache::open_capped`]) bounds the store. Every entry carries a
//! monotonic logical-clock stamp refreshed on each hit — the same
//! stamp-LRU idiom tet-mem's replacement arrays use — and inserts that
//! push the store over budget evict minimum-stamp entries (file deleted,
//! index dropped, counters bumped) until it fits. The entry just written
//! is never its own victim, so one oversized report is stored rather
//! than thrashed.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Cache hit/miss/size/eviction counters, served by `GET /v1/cache/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (disk reads plus hot-cache hits
    /// recorded via [`ResultCache::record_external_hit`]).
    pub hits: u64,
    /// Lookups that missed and went to the scheduler.
    pub misses: u64,
    /// Entries currently indexed.
    pub entries: u64,
    /// Total stored bytes across entries.
    pub bytes: u64,
    /// Byte budget (0 = unlimited).
    pub max_bytes: u64,
    /// Entries evicted to stay under the budget.
    pub evictions: u64,
    /// Bytes released by eviction.
    pub evicted_bytes: u64,
}

/// The content-addressed result store.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    /// Byte budget; 0 = unlimited.
    max_bytes: u64,
    inner: Mutex<CacheInner>,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    size: u64,
    /// Logical-clock stamp of the most recent touch.
    stamp: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    index: HashMap<String, Entry>,
    /// Sum of indexed entry sizes (kept incrementally).
    bytes: u64,
    /// Monotonic logical clock feeding the LRU stamps.
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    evicted_bytes: u64,
}

impl CacheInner {
    fn touch(&mut self, key: &str) {
        self.clock += 1;
        let stamp = self.clock;
        if let Some(e) = self.index.get_mut(key) {
            e.stamp = stamp;
        }
    }
}

/// The default cache directory, honoring `TET_SERVE_CACHE`.
pub fn default_dir() -> PathBuf {
    std::env::var_os("TET_SERVE_CACHE")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/serve-cache"))
}

/// The default byte budget, honoring `TET_SERVE_CACHE_BYTES`
/// (0 or unset = unlimited; unparsable values are refused loudly).
pub fn default_max_bytes() -> Result<u64, String> {
    match std::env::var("TET_SERVE_CACHE_BYTES") {
        Ok(v) if !v.trim().is_empty() => v
            .trim()
            .parse::<u64>()
            .map_err(|e| format!("TET_SERVE_CACHE_BYTES={v:?}: {e}")),
        _ => Ok(0),
    }
}

impl ResultCache {
    /// Opens (and creates if needed) an *unlimited* cache at `dir` —
    /// see [`ResultCache::open_capped`] for the budgeted form.
    pub fn open(dir: &Path) -> Result<ResultCache, String> {
        ResultCache::open_capped(dir, 0)
    }

    /// Opens (and creates if needed) the cache at `dir`, indexing any
    /// entries a previous server left behind and evicting immediately
    /// if they already exceed `max_bytes` (0 = unlimited). Errors are
    /// one-line diagnostics naming the offending path.
    pub fn open_capped(dir: &Path, max_bytes: u64) -> Result<ResultCache, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("create cache dir {}: {e}", dir.display()))?;
        let mut inner = CacheInner::default();
        let entries =
            std::fs::read_dir(dir).map_err(|e| format!("read cache dir {}: {e}", dir.display()))?;
        // Re-index leftovers in (name, mtime) order so their stamps
        // approximate last-use recency across a restart.
        let mut found: Vec<(String, u64, std::time::SystemTime)> = Vec::new();
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            if path.extension().is_none_or(|x| x != "json") {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            // Only well-formed keys (64 hex chars) are re-indexed;
            // anything else in the directory is ignored, not trusted.
            if stem.len() == 64 && stem.bytes().all(|b| b.is_ascii_hexdigit()) {
                let meta = entry.metadata().ok();
                let size = meta.as_ref().map(|m| m.len()).unwrap_or(0);
                let mtime = meta
                    .and_then(|m| m.modified().ok())
                    .unwrap_or(std::time::UNIX_EPOCH);
                found.push((stem.to_string(), size, mtime));
            }
        }
        found.sort_by(|a, b| (a.2, &a.0).cmp(&(b.2, &b.0)));
        for (key, size, _) in found {
            inner.clock += 1;
            let stamp = inner.clock;
            inner.bytes += size;
            inner.index.insert(key, Entry { size, stamp });
        }
        let cache = ResultCache {
            dir: dir.to_path_buf(),
            max_bytes,
            inner: Mutex::new(inner),
        };
        // A shrunken budget applies to leftovers too.
        cache.enforce_budget(&mut cache.inner.lock().unwrap(), None);
        Ok(cache)
    }

    /// The file path of a key's entry.
    fn path_of(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Evicts minimum-stamp entries (skipping `keep`) until the store
    /// fits the budget. Call with the lock held.
    fn enforce_budget(&self, inner: &mut CacheInner, keep: Option<&str>) {
        while self.max_bytes != 0 && inner.bytes > self.max_bytes && inner.index.len() > 1 {
            let victim = inner
                .index
                .iter()
                .filter(|(k, _)| Some(k.as_str()) != keep)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(entry) = inner.index.remove(&victim) {
                inner.bytes -= entry.size;
                inner.evictions += 1;
                inner.evicted_bytes += entry.size;
            }
            if let Err(e) = std::fs::remove_file(self.path_of(&victim)) {
                eprintln!(
                    "warning: evicting cache entry {}: {e}",
                    self.path_of(&victim).display()
                );
            }
        }
    }

    /// Looks `key` up, counting a hit or miss and refreshing its LRU
    /// stamp. A hit returns the stored bytes exactly as written.
    pub fn get(&self, key: &str) -> Option<String> {
        let indexed = {
            let mut inner = self.inner.lock().unwrap();
            let indexed = inner.index.contains_key(key);
            if indexed {
                inner.hits += 1;
                inner.touch(key);
            } else {
                inner.misses += 1;
            }
            indexed
        };
        if !indexed {
            return None;
        }
        match std::fs::read_to_string(self.path_of(key)) {
            Ok(body) => Some(body),
            Err(e) => {
                // Index said yes but the file is gone (external cleanup):
                // heal the index and treat as a miss.
                eprintln!(
                    "warning: cache entry {} unreadable: {e} (dropping from index)",
                    self.path_of(key).display()
                );
                let mut inner = self.inner.lock().unwrap();
                if let Some(entry) = inner.index.remove(key) {
                    inner.bytes -= entry.size;
                }
                inner.hits -= 1;
                inner.misses += 1;
                None
            }
        }
    }

    /// Counts a hit that was answered upstream (the in-memory hot
    /// cache) without reading the disk copy, and refreshes the entry's
    /// LRU stamp so eviction sees hot keys as recently used. The hot
    /// entry may legitimately outlive an evicted disk entry — keys are
    /// content-addressed, so the bytes are still correct — in which
    /// case only the counter moves.
    pub fn record_external_hit(&self, key: &str) {
        let mut inner = self.inner.lock().unwrap();
        inner.hits += 1;
        inner.touch(key);
    }

    /// Whether `key` is cached, without counting a lookup.
    pub fn contains(&self, key: &str) -> bool {
        self.inner.lock().unwrap().index.contains_key(key)
    }

    /// Reads `key`'s entry without counting a hit or miss — for report
    /// fetches of an already-resolved job, where the cache decision was
    /// made (and counted) at submit time. Still refreshes the LRU stamp:
    /// a fetched report is a used report.
    pub fn peek(&self, key: &str) -> Option<String> {
        {
            let mut inner = self.inner.lock().unwrap();
            if !inner.index.contains_key(key) {
                return None;
            }
            inner.touch(key);
        }
        std::fs::read_to_string(self.path_of(key)).ok()
    }

    /// Stores `body` under `key` (write-to-temp + rename, so a reader
    /// never sees a half-written entry), indexes it, and evicts LRU
    /// entries if the budget is now exceeded.
    pub fn put(&self, key: &str, body: &str) -> Result<(), String> {
        let path = self.path_of(key);
        let tmp = self.dir.join(format!("{key}.tmp"));
        std::fs::write(&tmp, body).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))?;
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let stamp = inner.clock;
        let size = body.len() as u64;
        if let Some(old) = inner.index.insert(key.to_string(), Entry { size, stamp }) {
            inner.bytes -= old.size;
        }
        inner.bytes += size;
        self.enforce_budget(&mut inner, Some(key));
        Ok(())
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.index.len() as u64,
            bytes: inner.bytes,
            max_bytes: self.max_bytes,
            evictions: inner.evictions,
            evicted_bytes: inner.evicted_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tet_serve_cache_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    const KEY: &str = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef";

    /// Distinct well-formed keys for eviction tests.
    fn key_n(n: u8) -> String {
        format!("{:064x}", n as u128 + 1)
    }

    #[test]
    fn round_trips_and_counts() {
        let dir = tmpdir("rt");
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.get(KEY), None);
        cache.put(KEY, "{\"x\":1}").unwrap();
        assert_eq!(cache.get(KEY).as_deref(), Some("{\"x\":1}"));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.bytes, 7);
        assert_eq!(stats.max_bytes, 0);
        assert_eq!(stats.evictions, 0);

        // A fresh instance over the same directory re-indexes the entry.
        let reopened = ResultCache::open(&dir).unwrap();
        assert!(reopened.contains(KEY));
        assert_eq!(reopened.get(KEY).as_deref(), Some("{\"x\":1}"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn junk_files_are_not_indexed() {
        let dir = tmpdir("junk");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("notakey.json"), "{}").unwrap();
        std::fs::write(dir.join("README.txt"), "hi").unwrap();
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.stats().entries, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_heals_the_index() {
        let dir = tmpdir("heal");
        let cache = ResultCache::open(&dir).unwrap();
        cache.put(KEY, "{}").unwrap();
        std::fs::remove_file(dir.join(format!("{KEY}.json"))).unwrap();
        assert_eq!(cache.get(KEY), None);
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_reports_unusable_dir() {
        // A file where the directory should be.
        let path = std::env::temp_dir().join(format!("tet_serve_notadir_{}", std::process::id()));
        std::fs::write(&path, "x").unwrap();
        let err = ResultCache::open(&path).unwrap_err();
        assert!(err.contains("cache dir"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn budget_evicts_the_least_recently_used_entry() {
        let dir = tmpdir("evict");
        // Budget fits two 8-byte bodies, not three.
        let cache = ResultCache::open_capped(&dir, 20).unwrap();
        cache.put(&key_n(1), "{\"n\": 1}").unwrap();
        cache.put(&key_n(2), "{\"n\": 2}").unwrap();
        // Touch entry 1 so entry 2 is the LRU victim.
        assert!(cache.get(&key_n(1)).is_some());
        cache.put(&key_n(3), "{\"n\": 3}").unwrap();

        assert!(cache.contains(&key_n(1)), "recently used entry survives");
        assert!(!cache.contains(&key_n(2)), "LRU entry evicted");
        assert!(cache.contains(&key_n(3)), "new entry kept");
        assert!(
            !dir.join(format!("{}.json", key_n(2))).exists(),
            "eviction deletes the file"
        );
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.evicted_bytes, 8);
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes <= 20);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn external_hits_refresh_recency() {
        let dir = tmpdir("exthit");
        let cache = ResultCache::open_capped(&dir, 20).unwrap();
        cache.put(&key_n(1), "{\"n\": 1}").unwrap();
        cache.put(&key_n(2), "{\"n\": 2}").unwrap();
        // A hot-cache hit on entry 1 must protect it from eviction.
        cache.record_external_hit(&key_n(1));
        cache.put(&key_n(3), "{\"n\": 3}").unwrap();
        assert!(cache.contains(&key_n(1)));
        assert!(!cache.contains(&key_n(2)));
        assert_eq!(cache.stats().hits, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn an_oversized_entry_is_stored_not_thrashed() {
        let dir = tmpdir("oversize");
        let cache = ResultCache::open_capped(&dir, 4).unwrap();
        cache.put(&key_n(1), "{\"big\": \"entry\"}").unwrap();
        assert!(cache.contains(&key_n(1)));
        assert_eq!(cache.stats().evictions, 0);
        // The next put displaces it: now there is a newer entry to keep.
        cache.put(&key_n(2), "{\"n\": 2}").unwrap();
        assert!(!cache.contains(&key_n(1)));
        assert!(cache.contains(&key_n(2)));
        assert_eq!(cache.stats().evictions, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopening_under_a_smaller_budget_trims_leftovers() {
        let dir = tmpdir("reopen_trim");
        {
            let cache = ResultCache::open(&dir).unwrap();
            cache.put(&key_n(1), "{\"n\": 1}").unwrap();
            cache.put(&key_n(2), "{\"n\": 2}").unwrap();
            cache.put(&key_n(3), "{\"n\": 3}").unwrap();
        }
        let cache = ResultCache::open_capped(&dir, 20).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes <= 20);
        assert_eq!(stats.evictions, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_max_bytes_parses_the_env_contract() {
        // Only the unset path is asserted (the set path would race other
        // tests through the process-global environment).
        if std::env::var_os("TET_SERVE_CACHE_BYTES").is_none() {
            assert_eq!(default_max_bytes().unwrap(), 0);
        }
    }
}
