//! Disk-backed, content-addressed RunReport cache.
//!
//! One file per cache key under `target/serve-cache/` (overridable with
//! `TET_SERVE_CACHE`), named `<hex-sha256>.json`, holding the serialized
//! [`tet_obs::RunReport`] exactly as it is served — a hit returns the
//! stored bytes untouched, so a cached response is byte-identical to the
//! cold response that populated it. An in-memory index (key → size)
//! avoids touching the filesystem to answer "is this cached?"; bodies
//! stay on disk so a long-lived server's memory does not grow with its
//! history.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Cache hit/miss/size counters, served by `GET /v1/cache/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed and went to the scheduler.
    pub misses: u64,
    /// Entries currently indexed.
    pub entries: u64,
    /// Total stored bytes across entries.
    pub bytes: u64,
}

/// The content-addressed result store.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    inner: Mutex<CacheInner>,
}

#[derive(Debug, Default)]
struct CacheInner {
    /// key → stored size in bytes.
    index: HashMap<String, u64>,
    hits: u64,
    misses: u64,
}

/// The default cache directory, honoring `TET_SERVE_CACHE`.
pub fn default_dir() -> PathBuf {
    std::env::var_os("TET_SERVE_CACHE")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/serve-cache"))
}

impl ResultCache {
    /// Opens (and creates if needed) the cache at `dir`, indexing any
    /// entries a previous server left behind. Errors are one-line
    /// diagnostics naming the offending path.
    pub fn open(dir: &Path) -> Result<ResultCache, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("create cache dir {}: {e}", dir.display()))?;
        let mut index = HashMap::new();
        let entries =
            std::fs::read_dir(dir).map_err(|e| format!("read cache dir {}: {e}", dir.display()))?;
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            if path.extension().is_none_or(|x| x != "json") {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            // Only well-formed keys (64 hex chars) are re-indexed;
            // anything else in the directory is ignored, not trusted.
            if stem.len() == 64 && stem.bytes().all(|b| b.is_ascii_hexdigit()) {
                let size = entry.metadata().map(|m| m.len()).unwrap_or(0);
                index.insert(stem.to_string(), size);
            }
        }
        Ok(ResultCache {
            dir: dir.to_path_buf(),
            inner: Mutex::new(CacheInner {
                index,
                ..CacheInner::default()
            }),
        })
    }

    /// The file path of a key's entry.
    fn path_of(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Looks `key` up, counting a hit or miss. A hit returns the stored
    /// bytes exactly as written.
    pub fn get(&self, key: &str) -> Option<String> {
        let indexed = {
            let mut inner = self.inner.lock().unwrap();
            let indexed = inner.index.contains_key(key);
            if indexed {
                inner.hits += 1;
            } else {
                inner.misses += 1;
            }
            indexed
        };
        if !indexed {
            return None;
        }
        match std::fs::read_to_string(self.path_of(key)) {
            Ok(body) => Some(body),
            Err(e) => {
                // Index said yes but the file is gone (external cleanup):
                // heal the index and treat as a miss.
                eprintln!(
                    "warning: cache entry {} unreadable: {e} (dropping from index)",
                    self.path_of(key).display()
                );
                let mut inner = self.inner.lock().unwrap();
                inner.index.remove(key);
                inner.hits -= 1;
                inner.misses += 1;
                None
            }
        }
    }

    /// Whether `key` is cached, without counting a lookup.
    pub fn contains(&self, key: &str) -> bool {
        self.inner.lock().unwrap().index.contains_key(key)
    }

    /// Reads `key`'s entry without counting a hit or miss — for report
    /// fetches of an already-resolved job, where the cache decision was
    /// made (and counted) at submit time.
    pub fn peek(&self, key: &str) -> Option<String> {
        if !self.contains(key) {
            return None;
        }
        std::fs::read_to_string(self.path_of(key)).ok()
    }

    /// Stores `body` under `key` (write-to-temp + rename, so a reader
    /// never sees a half-written entry) and indexes it.
    pub fn put(&self, key: &str, body: &str) -> Result<(), String> {
        let path = self.path_of(key);
        let tmp = self.dir.join(format!("{key}.tmp"));
        std::fs::write(&tmp, body).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))?;
        let mut inner = self.inner.lock().unwrap();
        inner.index.insert(key.to_string(), body.len() as u64);
        Ok(())
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.index.len() as u64,
            bytes: inner.index.values().sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tet_serve_cache_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    const KEY: &str = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef";

    #[test]
    fn round_trips_and_counts() {
        let dir = tmpdir("rt");
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.get(KEY), None);
        cache.put(KEY, "{\"x\":1}").unwrap();
        assert_eq!(cache.get(KEY).as_deref(), Some("{\"x\":1}"));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.bytes, 7);

        // A fresh instance over the same directory re-indexes the entry.
        let reopened = ResultCache::open(&dir).unwrap();
        assert!(reopened.contains(KEY));
        assert_eq!(reopened.get(KEY).as_deref(), Some("{\"x\":1}"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn junk_files_are_not_indexed() {
        let dir = tmpdir("junk");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("notakey.json"), "{}").unwrap();
        std::fs::write(dir.join("README.txt"), "hi").unwrap();
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.stats().entries, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_heals_the_index() {
        let dir = tmpdir("heal");
        let cache = ResultCache::open(&dir).unwrap();
        cache.put(KEY, "{}").unwrap();
        std::fs::remove_file(dir.join(format!("{KEY}.json"))).unwrap();
        assert_eq!(cache.get(KEY), None);
        assert_eq!(cache.stats().entries, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_reports_unusable_dir() {
        // A file where the directory should be.
        let path = std::env::temp_dir().join(format!("tet_serve_notadir_{}", std::process::id()));
        std::fs::write(&path, "x").unwrap();
        let err = ResultCache::open(&path).unwrap_err();
        assert!(err.contains("cache dir"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
