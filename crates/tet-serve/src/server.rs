//! The campaign server: job store, worker pool, HTTP endpoint routing.
//!
//! Life of a request: `POST /v1/jobs` parses the body into a
//! [`CampaignSpec`], canonicalizes it into a content-addressed cache
//! key, and either answers from the [`ResultCache`] (hit: the job is
//! born `done`, its report the stored bytes), joins an in-flight job
//! computing the same key (single-flight dedup — two clients asking for
//! the same campaign cost one simulation), or enqueues a new job for
//! the worker pool. Workers fan each campaign's trials out via
//! `tet_par` (byte-identical results at any thread count) and stream
//! per-unit progress through a shared [`FlightRecorder`], which the
//! status and events endpoints read.
//!
//! | Endpoint                  | Method | Purpose                          |
//! |---------------------------|--------|----------------------------------|
//! | `/v1/health`              | GET    | liveness + version               |
//! | `/v1/jobs`                | POST   | submit a campaign spec           |
//! | `/v1/jobs/<id>`           | GET    | job status + progress            |
//! | `/v1/jobs/<id>/report`    | GET    | the RunReport (when done)        |
//! | `/v1/jobs/<id>/events`    | GET    | JSONL flight samples until done  |
//! | `/v1/cache/stats`         | GET    | cache hit/miss/size counters     |
//! | `/v1/shutdown`            | POST   | graceful stop                    |

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use tet_metrics::FlightRecorder;
use tet_obs::json::Value;
use tet_obs::Progress;

use crate::cache::ResultCache;
use crate::http::{self, Request};
use crate::scheduler;
use crate::spec::{CampaignSpec, KEY_FORMAT};

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (tests, CI).
    pub addr: String,
    /// Campaign worker threads: how many jobs run concurrently.
    pub workers: usize,
    /// Simulator threads per campaign (`tet_par` fan-out width).
    pub threads: usize,
    /// Result-cache directory.
    pub cache_dir: PathBuf,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            threads: tet_par::default_threads(),
            cache_dir: crate::cache::default_dir(),
        }
    }
}

/// A job's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
}

impl JobState {
    fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// Progress shared between the running worker and the status/events
/// endpoints, without touching the job-store lock per trial.
struct JobProgress {
    done: AtomicUsize,
    total: usize,
    flight: FlightRecorder,
}

/// One job entry in the store.
struct JobEntry {
    id: u64,
    key: String,
    label: String,
    state: JobState,
    /// Whether the submit was answered from the cache.
    cached: bool,
    error: Option<String>,
    spec: CampaignSpec,
    progress: Arc<JobProgress>,
}

#[derive(Default)]
struct Jobs {
    entries: HashMap<u64, JobEntry>,
    queue: VecDeque<u64>,
    /// key → job id currently computing it (single-flight dedup).
    inflight: HashMap<String, u64>,
    next_id: u64,
}

/// Shared server state.
struct Inner {
    jobs: Mutex<Jobs>,
    work_ready: Condvar,
    cache: ResultCache,
    threads: usize,
    shutdown: AtomicBool,
    progress: Progress,
}

/// A started server: its bound address plus the thread handles needed
/// to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port `0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the workers, and joins all threads.
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.work_ready.notify_all();
        // Poke the blocking accept loop awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Blocks until the server stops on its own (`POST /v1/shutdown`).
    pub fn wait(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Binds, spawns the worker pool and the accept loop, and returns.
pub fn start(cfg: ServerConfig) -> Result<ServerHandle, String> {
    let cache = ResultCache::open(&cfg.cache_dir)?;
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    let inner = Arc::new(Inner {
        jobs: Mutex::new(Jobs::default()),
        work_ready: Condvar::new(),
        cache,
        threads: cfg.threads.max(1),
        shutdown: AtomicBool::new(false),
        progress: Progress::new("whisper-serve"),
    });
    inner.progress.note(&format!(
        "listening on {addr} ({} workers × {} sim threads, cache {})",
        cfg.workers.max(1),
        inner.threads,
        cfg.cache_dir.display()
    ));

    let workers = (0..cfg.workers.max(1))
        .map(|_| {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || worker_loop(&inner))
        })
        .collect();

    let acceptor = {
        let inner = Arc::clone(&inner);
        std::thread::spawn(move || accept_loop(&listener, &inner))
    };

    Ok(ServerHandle {
        addr,
        inner,
        acceptor: Some(acceptor),
        workers,
    })
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    loop {
        let conn = listener.accept();
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok((stream, _)) => {
                let inner = Arc::clone(inner);
                std::thread::spawn(move || handle_connection(stream, &inner));
            }
            Err(e) => {
                eprintln!("warning: accept: {e}");
            }
        }
    }
    // Unblock any workers still waiting for jobs.
    inner.work_ready.notify_all();
}

/// The campaign worker: pop a queued job, run it, cache the report.
fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let job_id = {
            let mut jobs = inner.jobs.lock().unwrap();
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = jobs.queue.pop_front() {
                    break id;
                }
                let (guard, _) = inner
                    .work_ready
                    .wait_timeout(jobs, Duration::from_millis(200))
                    .unwrap();
                jobs = guard;
            }
        };
        run_job(inner, job_id);
    }
}

fn run_job(inner: &Arc<Inner>, job_id: u64) {
    let (spec, progress, label) = {
        let mut jobs = inner.jobs.lock().unwrap();
        let Some(entry) = jobs.entries.get_mut(&job_id) else {
            return;
        };
        entry.state = JobState::Running;
        (
            entry.spec.clone(),
            Arc::clone(&entry.progress),
            entry.label.clone(),
        )
    };
    inner
        .progress
        .note(&format!("job {job_id}: running {label}"));

    let result = scheduler::run_campaign(&spec, inner.threads, |done| {
        progress.done.store(done, Ordering::Relaxed);
        progress.flight.record_work(1, 0, 0);
        progress.flight.maybe_sample();
    });

    let mut jobs = inner.jobs.lock().unwrap();
    let jobs = &mut *jobs; // one deref, so field borrows can split
    let Some(entry) = jobs.entries.get_mut(&job_id) else {
        return;
    };
    match result {
        Ok(report) => {
            let body = report.to_json();
            if let Err(e) = inner.cache.put(&entry.key, &body) {
                // The result is still served from the job entry's key
                // lookup failing softly; losing the disk copy only
                // costs a future re-run.
                eprintln!("warning: job {job_id}: {e}");
            }
            entry.state = JobState::Done;
            inner
                .progress
                .note(&format!("job {job_id}: done ({label})"));
        }
        Err(e) => {
            entry.state = JobState::Failed;
            entry.error = Some(e.clone());
            inner.progress.note(&format!("job {job_id}: FAILED: {e}"));
        }
    }
    jobs.inflight.remove(&entry.key);
    progress.flight.finish();
}

fn handle_connection(mut stream: TcpStream, inner: &Arc<Inner>) {
    let req = match Request::read_from(&mut stream) {
        Ok(req) => req,
        Err(e) => {
            http::respond_json(&mut stream, 400, &error_body(&e));
            return;
        }
    };
    route(&mut stream, &req, inner);
}

fn error_body(msg: &str) -> String {
    let mut v = Value::obj();
    v.set("error", msg.into());
    v.to_json()
}

fn route(stream: &mut TcpStream, req: &Request, inner: &Arc<Inner>) {
    let path = req.path.as_str();
    match (req.method.as_str(), path) {
        ("GET", "/v1/health") => {
            let mut v = Value::obj();
            v.set("ok", true.into());
            v.set("version", KEY_FORMAT.into());
            http::respond_json(stream, 200, &v.to_json());
        }
        ("POST", "/v1/jobs") => submit(stream, req, inner),
        ("GET", "/v1/cache/stats") => {
            let s = inner.cache.stats();
            let mut v = Value::obj();
            v.set("hits", s.hits.into());
            v.set("misses", s.misses.into());
            v.set("entries", s.entries.into());
            v.set("bytes", s.bytes.into());
            http::respond_json(stream, 200, &v.to_json());
        }
        ("POST", "/v1/shutdown") => {
            http::respond_json(stream, 200, "{\"ok\": true}");
            inner.shutdown.store(true, Ordering::SeqCst);
            inner.work_ready.notify_all();
            // Poke the accept loop so it observes the flag.
            if let Ok(addr) = stream.local_addr() {
                let _ = TcpStream::connect(addr);
            }
        }
        ("GET", _) if path.starts_with("/v1/jobs/") => job_endpoints(stream, path, inner),
        (_, "/v1/jobs") | (_, "/v1/health") | (_, "/v1/cache/stats") | (_, "/v1/shutdown") => {
            http::respond_json(stream, 405, &error_body("method not allowed"));
        }
        _ => http::respond_json(stream, 404, &error_body("no such endpoint")),
    }
}

/// `POST /v1/jobs`: cache hit → born-done job; in-flight twin → join
/// it; otherwise enqueue.
fn submit(stream: &mut TcpStream, req: &Request, inner: &Arc<Inner>) {
    let spec = match CampaignSpec::from_json(&req.body) {
        Ok(spec) => spec,
        Err(e) => {
            http::respond_json(stream, 400, &error_body(&e));
            return;
        }
    };
    let key = spec.cache_key();
    let cached = inner.cache.get(&key).is_some();
    let total = spec.total_units();

    let mut jobs = inner.jobs.lock().unwrap();
    if !cached {
        if let Some(&twin) = jobs.inflight.get(&key) {
            let entry = &jobs.entries[&twin];
            let body = submit_body(entry, true);
            drop(jobs);
            http::respond_json(stream, 202, &body);
            return;
        }
    }
    let id = jobs.next_id;
    jobs.next_id += 1;
    let entry = JobEntry {
        id,
        key: key.clone(),
        label: spec.label(),
        state: if cached {
            JobState::Done
        } else {
            JobState::Queued
        },
        cached,
        error: None,
        spec,
        progress: Arc::new(JobProgress {
            done: AtomicUsize::new(if cached { total } else { 0 }),
            total,
            flight: FlightRecorder::new(total as u64),
        }),
    };
    let body = submit_body(&entry, false);
    jobs.entries.insert(id, entry);
    if !cached {
        jobs.inflight.insert(key, id);
        jobs.queue.push_back(id);
        inner.work_ready.notify_one();
    }
    drop(jobs);
    http::respond_json(stream, if cached { 200 } else { 202 }, &body);
}

fn submit_body(entry: &JobEntry, deduped: bool) -> String {
    let mut v = Value::obj();
    v.set("job", entry.id.into());
    v.set("key", entry.key.as_str().into());
    v.set("state", entry.state.name().into());
    v.set("cached", entry.cached.into());
    v.set("deduped", deduped.into());
    v.to_json()
}

fn status_body(entry: &JobEntry) -> String {
    let done = entry.progress.done.load(Ordering::Relaxed);
    let mut v = Value::obj();
    v.set("job", entry.id.into());
    v.set("key", entry.key.as_str().into());
    v.set("label", entry.label.as_str().into());
    v.set("state", entry.state.name().into());
    v.set("cached", entry.cached.into());
    v.set("done", done.into());
    v.set("total", entry.progress.total.into());
    if entry.state == JobState::Running {
        let sample = entry.progress.flight.sample_now();
        v.set("trials_per_sec", sample.trials_per_sec.into());
        v.set("eta_s", sample.eta_s.into());
    }
    if let Some(e) = &entry.error {
        v.set("error", e.as_str().into());
    }
    v.to_json()
}

/// `GET /v1/jobs/<id>[/report|/events]`.
fn job_endpoints(stream: &mut TcpStream, path: &str, inner: &Arc<Inner>) {
    let rest = &path["/v1/jobs/".len()..];
    let (id_str, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, Some(tail)),
        None => (rest, None),
    };
    let Ok(id) = id_str.parse::<u64>() else {
        http::respond_json(stream, 400, &error_body("job id must be an integer"));
        return;
    };
    match tail {
        None => {
            let jobs = inner.jobs.lock().unwrap();
            match jobs.entries.get(&id) {
                Some(entry) => {
                    let body = status_body(entry);
                    drop(jobs);
                    http::respond_json(stream, 200, &body);
                }
                None => http::respond_json(stream, 404, &error_body("no such job")),
            }
        }
        Some("report") => {
            let (state, key, error) = {
                let jobs = inner.jobs.lock().unwrap();
                match jobs.entries.get(&id) {
                    Some(e) => (e.state, e.key.clone(), e.error.clone()),
                    None => {
                        http::respond_json(stream, 404, &error_body("no such job"));
                        return;
                    }
                }
            };
            match state {
                JobState::Done => match inner.cache.peek(&key) {
                    Some(body) => http::respond_json(stream, 200, &body),
                    None => http::respond_json(
                        stream,
                        500,
                        &error_body("report missing from cache (evicted externally?)"),
                    ),
                },
                JobState::Failed => http::respond_json(
                    stream,
                    500,
                    &error_body(&error.unwrap_or_else(|| "job failed".to_string())),
                ),
                _ => http::respond_json(stream, 404, &error_body("job not finished")),
            }
        }
        Some("events") => stream_events(stream, id, inner),
        Some(_) => http::respond_json(stream, 404, &error_body("no such endpoint")),
    }
}

/// `GET /v1/jobs/<id>/events`: JSONL flight samples every poll tick
/// until the job leaves the running/queued states, then one final
/// status line. EOF-delimited (the connection closes at the end).
fn stream_events(stream: &mut TcpStream, id: u64, inner: &Arc<Inner>) {
    use std::io::Write;
    let exists = inner.jobs.lock().unwrap().entries.contains_key(&id);
    if !exists {
        http::respond_json(stream, 404, &error_body("no such job"));
        return;
    }
    if !http::start_stream(stream, "application/jsonl") {
        return;
    }
    loop {
        let (running, line) = {
            let jobs = inner.jobs.lock().unwrap();
            let Some(entry) = jobs.entries.get(&id) else {
                return;
            };
            let running = matches!(entry.state, JobState::Queued | JobState::Running);
            let line = if running {
                entry.progress.flight.sample_now().to_jsonl()
            } else {
                status_body(entry)
            };
            (running, line)
        };
        if stream.write_all(line.as_bytes()).is_err()
            || stream.write_all(b"\n").is_err()
            || stream.flush().is_err()
        {
            return; // client went away
        }
        if !running {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}
