//! The campaign server: job store, worker pool, HTTP endpoint routing.
//!
//! Life of a request: `POST /v1/jobs` parses the body into a
//! [`CampaignSpec`], canonicalizes it into a content-addressed cache
//! key, and either answers from the cache (hit: the job is born `done`,
//! its report the stored bytes), joins an in-flight job computing the
//! same key (single-flight dedup — two clients asking for the same
//! campaign cost one simulation), or enqueues a new job for the worker
//! pool. Workers fan each campaign's trials out via `tet_par`
//! (byte-identical results at any thread count) and stream per-unit
//! progress through a shared [`FlightRecorder`], which the status and
//! events endpoints read.
//!
//! The serve fast path is two-tier: a sharded in-memory [`HotCache`] of
//! fully rendered responses (a hit is two `write_all`s of prebuilt
//! bytes) in front of the disk [`ResultCache`] (source of truth,
//! size-capped stamp-LRU, survives restarts). Connections are
//! persistent — HTTP/1.1 keep-alive with pipelining, an idle timeout,
//! and `Connection: close` honored per request — and every request's
//! service time lands in a cold/cached latency histogram exported at
//! `/v1/metrics`.
//!
//! | Endpoint                  | Method | Purpose                          |
//! |---------------------------|--------|----------------------------------|
//! | `/v1/health`              | GET    | liveness + version               |
//! | `/v1/jobs`                | POST   | submit a campaign spec           |
//! | `/v1/reports`             | POST   | one-round-trip cached report     |
//! | `/v1/jobs/<id>`           | GET    | job status + progress            |
//! | `/v1/jobs/<id>/report`    | GET    | the RunReport (when done)        |
//! | `/v1/jobs/<id>/events`    | GET    | JSONL flight samples until done  |
//! | `/v1/cache/stats`         | GET    | cache + hot-cache counters       |
//! | `/v1/metrics`             | GET    | Prometheus text exposition       |
//! | `/v1/shutdown`            | POST   | graceful stop                    |

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tet_metrics::{FlightRecorder, MetricsHandle, Registry};
use tet_obs::json::Value;
use tet_obs::Progress;

use crate::cache::ResultCache;
use crate::hotcache::{HotCache, HotEntry};
use crate::http::{self, ReadOutcome, Request};
use crate::scheduler;
use crate::spec::{CampaignSpec, KEY_FORMAT};

/// Default in-memory hot-cache budget: 64 MiB of rendered responses.
const DEFAULT_HOT_BYTES: u64 = 1 << 26;

/// Default keep-alive idle timeout between requests.
const DEFAULT_IDLE_TIMEOUT_MS: u64 = 5_000;

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (tests, CI).
    pub addr: String,
    /// Campaign worker threads: how many jobs run concurrently.
    pub workers: usize,
    /// Simulator threads per campaign (`tet_par` fan-out width).
    pub threads: usize,
    /// Result-cache directory.
    pub cache_dir: PathBuf,
    /// Disk-cache byte budget (0 = unlimited; default honors
    /// `TET_SERVE_CACHE_BYTES`).
    pub cache_bytes: u64,
    /// In-memory hot-cache byte budget (0 = unlimited; default honors
    /// `TET_SERVE_HOT_BYTES`, falling back to 64 MiB).
    pub hot_bytes: u64,
    /// Keep-alive idle timeout: how long a connection may sit between
    /// requests before the server closes it.
    pub idle_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            threads: tet_par::default_threads(),
            cache_dir: crate::cache::default_dir(),
            cache_bytes: crate::cache::default_max_bytes().unwrap_or_else(|e| {
                eprintln!("warning: {e} (treating as unlimited)");
                0
            }),
            hot_bytes: std::env::var("TET_SERVE_HOT_BYTES")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(DEFAULT_HOT_BYTES),
            idle_timeout_ms: DEFAULT_IDLE_TIMEOUT_MS,
        }
    }
}

/// A job's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
}

impl JobState {
    fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// Progress shared between the running worker and the status/events
/// endpoints, without touching the job-store lock per trial.
struct JobProgress {
    done: AtomicUsize,
    total: usize,
    flight: FlightRecorder,
}

/// One job entry in the store.
struct JobEntry {
    id: u64,
    key: String,
    label: String,
    state: JobState,
    /// Whether the submit was answered from the cache.
    cached: bool,
    error: Option<String>,
    spec: CampaignSpec,
    progress: Arc<JobProgress>,
}

#[derive(Default)]
struct Jobs {
    entries: HashMap<u64, JobEntry>,
    queue: VecDeque<u64>,
    /// key → job id currently computing it (single-flight dedup).
    inflight: HashMap<String, u64>,
    next_id: u64,
}

/// Shared server state.
struct Inner {
    jobs: Mutex<Jobs>,
    work_ready: Condvar,
    cache: ResultCache,
    hot: HotCache,
    threads: usize,
    idle_timeout: Duration,
    shutdown: AtomicBool,
    progress: Progress,
    /// Host-metrics registry behind `/v1/metrics` …
    registry: Registry,
    /// … and the one shard all connection threads share (the shard has
    /// its own mutex; sharing it keeps the registry from growing a
    /// shard per connection in connection-per-request workloads).
    metrics: MetricsHandle,
}

/// How a served request counts toward the latency histograms.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ServeClass {
    /// Answered from the hot or disk cache (submit hit, report fetch).
    Cached,
    /// Needed the scheduler (submit miss or dedup-join).
    Cold,
    /// Control-plane traffic (health, status, stats) — not timed.
    Untimed,
}

/// A started server: its bound address plus the thread handles needed
/// to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port `0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the workers, and joins all threads.
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.work_ready.notify_all();
        // Poke the blocking accept loop awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Blocks until the server stops on its own (`POST /v1/shutdown`).
    pub fn wait(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Binds, spawns the worker pool and the accept loop, and returns.
pub fn start(cfg: ServerConfig) -> Result<ServerHandle, String> {
    let cache = ResultCache::open_capped(&cfg.cache_dir, cfg.cache_bytes)?;
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    let registry = Registry::new();
    let metrics = registry.handle();
    let inner = Arc::new(Inner {
        jobs: Mutex::new(Jobs::default()),
        work_ready: Condvar::new(),
        cache,
        hot: HotCache::new(cfg.hot_bytes),
        threads: cfg.threads.max(1),
        idle_timeout: Duration::from_millis(cfg.idle_timeout_ms.max(1)),
        shutdown: AtomicBool::new(false),
        progress: Progress::new("whisper-serve"),
        registry,
        metrics,
    });
    inner.progress.note(&format!(
        "listening on {addr} ({} workers × {} sim threads, cache {}, budget {} B, hot {} B)",
        cfg.workers.max(1),
        inner.threads,
        cfg.cache_dir.display(),
        cfg.cache_bytes,
        cfg.hot_bytes,
    ));

    let workers = (0..cfg.workers.max(1))
        .map(|_| {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || worker_loop(&inner))
        })
        .collect();

    let acceptor = {
        let inner = Arc::clone(&inner);
        std::thread::spawn(move || accept_loop(&listener, &inner))
    };

    Ok(ServerHandle {
        addr,
        inner,
        acceptor: Some(acceptor),
        workers,
    })
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    loop {
        let conn = listener.accept();
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok((stream, _)) => {
                let inner = Arc::clone(inner);
                std::thread::spawn(move || handle_connection(stream, &inner));
            }
            Err(e) => {
                eprintln!("warning: accept: {e}");
            }
        }
    }
    // Unblock any workers still waiting for jobs.
    inner.work_ready.notify_all();
}

/// The campaign worker: pop a queued job, run it, cache the report.
fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let job_id = {
            let mut jobs = inner.jobs.lock().unwrap();
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = jobs.queue.pop_front() {
                    break id;
                }
                let (guard, _) = inner
                    .work_ready
                    .wait_timeout(jobs, Duration::from_millis(200))
                    .unwrap();
                jobs = guard;
            }
        };
        run_job(inner, job_id);
    }
}

fn run_job(inner: &Arc<Inner>, job_id: u64) {
    let (spec, progress, label) = {
        let mut jobs = inner.jobs.lock().unwrap();
        let Some(entry) = jobs.entries.get_mut(&job_id) else {
            return;
        };
        entry.state = JobState::Running;
        (
            entry.spec.clone(),
            Arc::clone(&entry.progress),
            entry.label.clone(),
        )
    };
    inner
        .progress
        .note(&format!("job {job_id}: running {label}"));

    let result = scheduler::run_campaign(&spec, inner.threads, |done| {
        progress.done.store(done, Ordering::Relaxed);
        progress.flight.record_work(1, 0, 0);
        progress.flight.maybe_sample();
    });

    let mut jobs = inner.jobs.lock().unwrap();
    let jobs = &mut *jobs; // one deref, so field borrows can split
    let Some(entry) = jobs.entries.get_mut(&job_id) else {
        return;
    };
    match result {
        Ok(report) => {
            let body = report.to_json();
            if let Err(e) = inner.cache.put(&entry.key, &body) {
                // The result is still served from the job entry's key
                // lookup failing softly; losing the disk copy only
                // costs a future re-run.
                eprintln!("warning: job {job_id}: {e}");
            }
            // Render the response once, while the bytes are in hand:
            // the first report fetch is already a hot hit.
            inner.hot.insert(&entry.key, HotEntry::json(&body));
            entry.state = JobState::Done;
            inner
                .progress
                .note(&format!("job {job_id}: done ({label})"));
        }
        Err(e) => {
            entry.state = JobState::Failed;
            entry.error = Some(e.clone());
            inner.progress.note(&format!("job {job_id}: FAILED: {e}"));
        }
    }
    jobs.inflight.remove(&entry.key);
    progress.flight.finish();
}

/// One connection's lifetime: read requests off a shared buffer (so
/// pipelined requests parse back to back), answer each in order, and
/// close on `Connection: close`, idle timeout, clean EOF, protocol
/// error, or a streaming/shutdown response.
fn handle_connection(stream: TcpStream, inner: &Arc<Inner>) {
    inner.metrics.counter_add("serve.connections", 1);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(inner.idle_timeout));
    let local = stream.local_addr().ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        match Request::read_from(&mut reader) {
            Ok(ReadOutcome::Request(req)) => {
                inner.metrics.counter_add("serve.requests", 1);
                let close = req.wants_close() || inner.shutdown.load(Ordering::SeqCst);
                let keep = route(&mut writer, &req, inner, close, local);
                if close || !keep {
                    return;
                }
            }
            // A finished client or an idle keep-alive connection: just
            // close, nothing to answer.
            Ok(ReadOutcome::Closed) | Ok(ReadOutcome::IdleTimeout) => return,
            // Truncated or malformed request: answer 400 and close —
            // never try to serve a response for bytes we cannot trust.
            Err(e) => {
                inner.metrics.counter_add("serve.bad_requests", 1);
                http::respond_json(&mut writer, 400, &error_body(&e), true);
                return;
            }
        }
    }
}

fn error_body(msg: &str) -> String {
    let mut v = Value::obj();
    v.set("error", msg.into());
    v.to_json()
}

/// Routes one request. `close` is the Connection header every response
/// must carry; the return value says whether the connection can serve
/// another request (streaming and shutdown responses end it regardless).
fn route(
    w: &mut impl Write,
    req: &Request,
    inner: &Arc<Inner>,
    close: bool,
    local: Option<SocketAddr>,
) -> bool {
    let t0 = Instant::now();
    let path = req.path.as_str();
    let mut class = ServeClass::Untimed;
    let keep = match (req.method.as_str(), path) {
        ("GET", "/v1/health") => {
            let mut v = Value::obj();
            v.set("ok", true.into());
            v.set("version", KEY_FORMAT.into());
            http::respond_json(w, 200, &v.to_json(), close);
            true
        }
        ("POST", "/v1/jobs") => submit(w, req, inner, close, &mut class),
        ("POST", "/v1/reports") => cached_report(w, req, inner, close, &mut class),
        ("GET", "/v1/cache/stats") => {
            http::respond_json(w, 200, &cache_stats_body(inner), close);
            true
        }
        ("GET", "/v1/metrics") => {
            let text = tet_metrics::to_prometheus(&metrics_section(inner));
            http::respond(w, 200, "text/plain; version=0.0.4", &text, close);
            true
        }
        ("POST", "/v1/shutdown") => {
            http::respond_json(w, 200, "{\"ok\": true}", true);
            inner.shutdown.store(true, Ordering::SeqCst);
            inner.work_ready.notify_all();
            // Poke the accept loop so it observes the flag.
            if let Some(addr) = local {
                let _ = TcpStream::connect(addr);
            }
            true
        }
        ("GET", _) if path.starts_with("/v1/jobs/") => {
            job_endpoints(w, path, inner, close, &mut class)
        }
        (_, "/v1/jobs")
        | (_, "/v1/reports")
        | (_, "/v1/health")
        | (_, "/v1/cache/stats")
        | (_, "/v1/metrics")
        | (_, "/v1/shutdown") => {
            http::respond_json(w, 405, &error_body("method not allowed"), close);
            true
        }
        _ => {
            http::respond_json(w, 404, &error_body("no such endpoint"), close);
            true
        }
    };
    let metric = match class {
        ServeClass::Cached => Some("serve.cached_request_us"),
        ServeClass::Cold => Some("serve.cold_request_us"),
        ServeClass::Untimed => None,
    };
    if let Some(metric) = metric {
        inner
            .metrics
            .observe(metric, t0.elapsed().as_micros() as u64);
    }
    // A shutdown response ends the connection (and the server).
    keep && !(req.method == "POST" && path == "/v1/shutdown")
}

/// `/v1/cache/stats`: disk-store counters plus the hot tier's, `hot_`
/// prefixed.
fn cache_stats_body(inner: &Arc<Inner>) -> String {
    let s = inner.cache.stats();
    let h = inner.hot.stats();
    let mut v = Value::obj();
    v.set("hits", s.hits.into());
    v.set("misses", s.misses.into());
    v.set("entries", s.entries.into());
    v.set("bytes", s.bytes.into());
    v.set("max_bytes", s.max_bytes.into());
    v.set("evictions", s.evictions.into());
    v.set("evicted_bytes", s.evicted_bytes.into());
    v.set("hot_hits", h.hits.into());
    v.set("hot_misses", h.misses.into());
    v.set("hot_entries", h.entries.into());
    v.set("hot_bytes", h.bytes.into());
    v.set("hot_insertions", h.insertions.into());
    v.set("hot_evictions", h.evictions.into());
    v.set("hot_evicted_bytes", h.evicted_bytes.into());
    v.to_json()
}

/// The `/v1/metrics` section: request counters + latency histograms
/// from the registry, cache counters folded in as gauges at scrape
/// time (they live in the cache structs, not the registry).
fn metrics_section(inner: &Arc<Inner>) -> tet_obs::MetricsSection {
    let mut section = inner.registry.snapshot();
    let s = inner.cache.stats();
    let h = inner.hot.stats();
    let mut set = |k: &str, v: u64| {
        section.gauges.insert(k.to_string(), v as f64);
    };
    set("serve.cache.hits", s.hits);
    set("serve.cache.misses", s.misses);
    set("serve.cache.entries", s.entries);
    set("serve.cache.bytes", s.bytes);
    set("serve.cache.max_bytes", s.max_bytes);
    set("serve.cache.evictions", s.evictions);
    set("serve.cache.evicted_bytes", s.evicted_bytes);
    set("serve.hot.hits", h.hits);
    set("serve.hot.misses", h.misses);
    set("serve.hot.entries", h.entries);
    set("serve.hot.bytes", h.bytes);
    set("serve.hot.insertions", h.insertions);
    set("serve.hot.evictions", h.evictions);
    set("serve.hot.evicted_bytes", h.evicted_bytes);
    section
}

/// Submit-time cache probe: the hot tier first (no disk, no parse),
/// then the disk store (whose hit is promoted so the report fetch that
/// follows is already hot).
fn probe_cached(inner: &Arc<Inner>, key: &str) -> bool {
    if inner.hot.get(key).is_some() {
        inner.cache.record_external_hit(key);
        return true;
    }
    match inner.cache.get(key) {
        Some(body) => {
            inner.hot.insert(key, HotEntry::json(&body));
            true
        }
        None => false,
    }
}

/// `POST /v1/jobs`: cache hit → born-done job; in-flight twin → join
/// it; otherwise enqueue.
fn submit(
    w: &mut impl Write,
    req: &Request,
    inner: &Arc<Inner>,
    close: bool,
    class: &mut ServeClass,
) -> bool {
    let spec = match CampaignSpec::from_json(&req.body) {
        Ok(spec) => spec,
        Err(e) => {
            http::respond_json(w, 400, &error_body(&e), close);
            return true;
        }
    };
    let key = spec.cache_key();
    let cached = probe_cached(inner, &key);
    *class = if cached {
        ServeClass::Cached
    } else {
        ServeClass::Cold
    };
    let total = spec.total_units();

    let mut jobs = inner.jobs.lock().unwrap();
    if !cached {
        if let Some(&twin) = jobs.inflight.get(&key) {
            let entry = &jobs.entries[&twin];
            let body = submit_body(entry, true);
            drop(jobs);
            http::respond_json(w, 202, &body, close);
            return true;
        }
    }
    let id = jobs.next_id;
    jobs.next_id += 1;
    let entry = JobEntry {
        id,
        key: key.clone(),
        label: spec.label(),
        state: if cached {
            JobState::Done
        } else {
            JobState::Queued
        },
        cached,
        error: None,
        spec,
        progress: Arc::new(JobProgress {
            done: AtomicUsize::new(if cached { total } else { 0 }),
            total,
            flight: FlightRecorder::new(total as u64),
        }),
    };
    let body = submit_body(&entry, false);
    jobs.entries.insert(id, entry);
    if !cached {
        jobs.inflight.insert(key, id);
        jobs.queue.push_back(id);
        inner.work_ready.notify_one();
    }
    drop(jobs);
    http::respond_json(w, if cached { 200 } else { 202 }, &body, close);
    true
}

/// `POST /v1/reports`: the one-round-trip cached fast path. On a hit
/// the response *is* the report — the same precomputed hot-entry bytes
/// `GET /v1/jobs/<id>/report` serves, with no job created and no
/// second round trip. On a miss it answers 404 and the client falls
/// back to the submit flow; the probe counts nothing, so the submit
/// that follows still records exactly one logical miss.
fn cached_report(
    w: &mut impl Write,
    req: &Request,
    inner: &Arc<Inner>,
    close: bool,
    class: &mut ServeClass,
) -> bool {
    let spec = match CampaignSpec::from_json(&req.body) {
        Ok(spec) => spec,
        Err(e) => {
            http::respond_json(w, 400, &error_body(&e), close);
            return true;
        }
    };
    let key = spec.cache_key();
    if let Some(entry) = inner.hot.get(&key) {
        inner.cache.record_external_hit(&key);
        *class = ServeClass::Cached;
        entry.write_to(w, close);
        return true;
    }
    match inner.cache.peek(&key) {
        Some(body) => {
            inner.cache.record_external_hit(&key);
            *class = ServeClass::Cached;
            let entry = HotEntry::json(&body);
            entry.write_to(w, close);
            inner.hot.insert(&key, entry);
        }
        None => http::respond_json(w, 404, &error_body("not cached"), close),
    }
    true
}

fn submit_body(entry: &JobEntry, deduped: bool) -> String {
    let mut v = Value::obj();
    v.set("job", entry.id.into());
    v.set("key", entry.key.as_str().into());
    v.set("state", entry.state.name().into());
    v.set("cached", entry.cached.into());
    v.set("deduped", deduped.into());
    v.to_json()
}

fn status_body(entry: &JobEntry) -> String {
    let done = entry.progress.done.load(Ordering::Relaxed);
    let mut v = Value::obj();
    v.set("job", entry.id.into());
    v.set("key", entry.key.as_str().into());
    v.set("label", entry.label.as_str().into());
    v.set("state", entry.state.name().into());
    v.set("cached", entry.cached.into());
    v.set("done", done.into());
    v.set("total", entry.progress.total.into());
    if entry.state == JobState::Running {
        let sample = entry.progress.flight.sample_now();
        v.set("trials_per_sec", sample.trials_per_sec.into());
        v.set("eta_s", sample.eta_s.into());
    }
    if let Some(e) = &entry.error {
        v.set("error", e.as_str().into());
    }
    v.to_json()
}

/// `GET /v1/jobs/<id>[/report|/events]`.
fn job_endpoints(
    w: &mut impl Write,
    path: &str,
    inner: &Arc<Inner>,
    close: bool,
    class: &mut ServeClass,
) -> bool {
    let rest = &path["/v1/jobs/".len()..];
    let (id_str, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, Some(tail)),
        None => (rest, None),
    };
    let Ok(id) = id_str.parse::<u64>() else {
        http::respond_json(w, 400, &error_body("job id must be an integer"), close);
        return true;
    };
    match tail {
        None => {
            let jobs = inner.jobs.lock().unwrap();
            match jobs.entries.get(&id) {
                Some(entry) => {
                    let body = status_body(entry);
                    drop(jobs);
                    http::respond_json(w, 200, &body, close);
                }
                None => http::respond_json(w, 404, &error_body("no such job"), close),
            }
            true
        }
        Some("report") => {
            let (state, key, error) = {
                let jobs = inner.jobs.lock().unwrap();
                match jobs.entries.get(&id) {
                    Some(e) => (e.state, e.key.clone(), e.error.clone()),
                    None => {
                        http::respond_json(w, 404, &error_body("no such job"), close);
                        return true;
                    }
                }
            };
            match state {
                JobState::Done => {
                    // The zero-copy fast path: a hot entry is the final
                    // response bytes, written as-is.
                    if let Some(entry) = inner.hot.get(&key) {
                        *class = ServeClass::Cached;
                        entry.write_to(w, close);
                        return true;
                    }
                    match inner.cache.peek(&key) {
                        Some(body) => {
                            *class = ServeClass::Cached;
                            // Render once; subsequent fetches are hot.
                            let entry = HotEntry::json(&body);
                            entry.write_to(w, close);
                            inner.hot.insert(&key, entry);
                        }
                        None => http::respond_json(
                            w,
                            500,
                            &error_body("report missing from cache (evicted externally?)"),
                            close,
                        ),
                    }
                }
                JobState::Failed => http::respond_json(
                    w,
                    500,
                    &error_body(&error.unwrap_or_else(|| "job failed".to_string())),
                    close,
                ),
                _ => http::respond_json(w, 404, &error_body("job not finished"), close),
            }
            true
        }
        Some("events") => {
            stream_events(w, id, inner);
            // The stream is EOF-delimited: this connection is done.
            false
        }
        Some(_) => {
            http::respond_json(w, 404, &error_body("no such endpoint"), close);
            true
        }
    }
}

/// `GET /v1/jobs/<id>/events`: JSONL flight samples every poll tick
/// until the job leaves the running/queued states, then one final
/// status line. EOF-delimited (the connection closes at the end).
fn stream_events(w: &mut impl Write, id: u64, inner: &Arc<Inner>) {
    let exists = inner.jobs.lock().unwrap().entries.contains_key(&id);
    if !exists {
        http::respond_json(w, 404, &error_body("no such job"), true);
        return;
    }
    if !http::start_stream(w, "application/jsonl") {
        return;
    }
    loop {
        let (running, line) = {
            let jobs = inner.jobs.lock().unwrap();
            let Some(entry) = jobs.entries.get(&id) else {
                return;
            };
            let running = matches!(entry.state, JobState::Queued | JobState::Running);
            let line = if running {
                entry.progress.flight.sample_now().to_jsonl()
            } else {
                status_body(entry)
            };
            (running, line)
        };
        if w.write_all(line.as_bytes()).is_err()
            || w.write_all(b"\n").is_err()
            || w.flush().is_err()
        {
            return; // client went away
        }
        if !running {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}
