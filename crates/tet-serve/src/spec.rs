//! Campaign specifications and their content-addressed cache keys.
//!
//! The simulator is fully deterministic: `(preset, scenario options,
//! seed)` uniquely determines every output byte, so a campaign's result
//! is addressed by the *content* of its request. A [`CampaignSpec`] is
//! parsed from request JSON (unknown fields rejected — a typo like
//! `"sead"` must not silently hash to a different campaign than the
//! caller intended), canonicalized to a fixed field order with every
//! default materialized, and hashed into the cache key.
//!
//! Canonicalization rules:
//!
//! * fields are emitted in one fixed order, so two requests that differ
//!   only in JSON field order hash identically;
//! * every omitted field is materialized with its default, so a request
//!   that spells `"kpti": false` out and one that omits it hash
//!   identically;
//! * only fields *relevant to the campaign kind* are emitted (a matrix
//!   ignores `preset`/`attack`/`trials` knobs it does not read), so
//!   irrelevant noise cannot split the cache;
//! * preset names are normalized to their slug (`"Intel Core i7-7700"`
//!   and `"intel-core-i7-7700"` are the same machine).

use tet_obs::json::{self, Value};
use tet_uarch::CpuConfig;
use whisper::eval::TABLE2_ATTACKS;

use crate::sha;

/// Bumped whenever canonicalization or report content changes shape;
/// part of every cache key, so stale on-disk entries from older builds
/// can never be served as current results.
pub const KEY_FORMAT: &str = "tet-serve/v1";

/// What kind of campaign to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignKind {
    /// One Table 2 cell (one attack on one preset), `trials` seeds.
    Table2Cell,
    /// The full Table 2 matrix (every preset × every attack), one seed.
    Table2Matrix,
}

impl CampaignKind {
    /// The canonical wire name.
    pub fn name(self) -> &'static str {
        match self {
            CampaignKind::Table2Cell => "table2_cell",
            CampaignKind::Table2Matrix => "table2_matrix",
        }
    }
}

/// One validated campaign request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Campaign kind.
    pub kind: CampaignKind,
    /// Canonical preset name (cell campaigns only).
    pub preset: String,
    /// Attack column, one of [`TABLE2_ATTACKS`] (cell campaigns only).
    pub attack: String,
    /// Base seed.
    pub seed: u64,
    /// Cell campaigns run seeds `seed .. seed + trials`.
    pub trials: u32,
    /// Enable KPTI in the scenario (cell campaigns only).
    pub kpti: bool,
    /// Enable FLARE in the scenario (cell campaigns only).
    pub flare: bool,
    /// OS timer-interrupt noise period in cycles, `0` = off (cell
    /// campaigns only).
    pub interrupt_period: u64,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            kind: CampaignKind::Table2Cell,
            preset: "Intel Core i7-7700".to_string(),
            attack: "cc".to_string(),
            seed: 1,
            trials: 1,
            kpti: false,
            flare: false,
            interrupt_period: 0,
        }
    }
}

/// The fields a request may carry. Anything else is a hard error.
const KNOWN_FIELDS: [&str; 8] = [
    "kind",
    "preset",
    "attack",
    "seed",
    "trials",
    "kpti",
    "flare",
    "interrupt_period",
];

/// Upper bound on `trials` per request, so one malformed client cannot
/// wedge the worker pool for hours.
pub const MAX_TRIALS: u32 = 10_000;

impl CampaignSpec {
    /// Parses and validates a request body. Unknown fields, unknown
    /// presets/attacks/kinds and out-of-range trial counts are errors
    /// with one-line messages (they become HTTP 400 bodies).
    pub fn from_json(body: &str) -> Result<CampaignSpec, String> {
        let v = json::parse(body).map_err(|e| format!("invalid JSON: {e}"))?;
        let obj = match &v {
            Value::Obj(pairs) => pairs,
            _ => return Err("request body must be a JSON object".to_string()),
        };
        for (k, _) in obj {
            if !KNOWN_FIELDS.contains(&k.as_str()) {
                return Err(format!(
                    "unknown field {k:?} (known: {})",
                    KNOWN_FIELDS.join(", ")
                ));
            }
        }
        let mut spec = CampaignSpec::default();
        if let Some(kind) = v.get("kind") {
            let kind = kind.as_str().ok_or("kind must be a string")?;
            spec.kind = match kind {
                "table2_cell" => CampaignKind::Table2Cell,
                "table2_matrix" => CampaignKind::Table2Matrix,
                other => return Err(format!("unknown kind {other:?}")),
            };
        }
        if let Some(p) = v.get("preset") {
            let name = p.as_str().ok_or("preset must be a string")?;
            let cfg = CpuConfig::by_name(name).ok_or_else(|| {
                let known: Vec<String> = CpuConfig::table2_presets()
                    .iter()
                    .map(|c| CpuConfig::slug_of(c.name))
                    .collect();
                format!("unknown preset {name:?} (known: {})", known.join(", "))
            })?;
            spec.preset = cfg.name.to_string();
        }
        if let Some(a) = v.get("attack") {
            let a = a.as_str().ok_or("attack must be a string")?;
            if !TABLE2_ATTACKS.contains(&a) {
                return Err(format!(
                    "unknown attack {a:?} (known: {})",
                    TABLE2_ATTACKS.join(", ")
                ));
            }
            spec.attack = a.to_string();
        }
        if let Some(s) = v.get("seed") {
            spec.seed = s.as_u64().ok_or("seed must be a non-negative integer")?;
        }
        if let Some(t) = v.get("trials") {
            let t = t.as_u64().ok_or("trials must be a positive integer")?;
            if t == 0 || t > MAX_TRIALS as u64 {
                return Err(format!("trials must be in 1..={MAX_TRIALS}, got {t}"));
            }
            spec.trials = t as u32;
        }
        if let Some(b) = v.get("kpti") {
            spec.kpti = b.as_bool().ok_or("kpti must be a boolean")?;
        }
        if let Some(b) = v.get("flare") {
            spec.flare = b.as_bool().ok_or("flare must be a boolean")?;
        }
        if let Some(n) = v.get("interrupt_period") {
            spec.interrupt_period = n
                .as_u64()
                .ok_or("interrupt_period must be a non-negative integer")?;
        }
        Ok(spec)
    }

    /// The canonical form: fixed field order, defaults materialized,
    /// only kind-relevant fields. Two semantically identical requests
    /// produce the same string; any semantic change produces a
    /// different one.
    pub fn canonical_json(&self) -> String {
        let mut v = Value::obj();
        v.set("kind", self.kind.name().into());
        if self.kind == CampaignKind::Table2Cell {
            v.set("preset", CpuConfig::slug_of(&self.preset).into());
            v.set("attack", self.attack.as_str().into());
        }
        v.set("seed", self.seed.into());
        if self.kind == CampaignKind::Table2Cell {
            v.set("trials", self.trials.into());
            v.set("kpti", self.kpti.into());
            v.set("flare", self.flare.into());
            v.set("interrupt_period", self.interrupt_period.into());
        }
        v.to_json()
    }

    /// The content-addressed cache key: hex SHA-256 over the key-format
    /// tag and the canonical form.
    pub fn cache_key(&self) -> String {
        let material = format!("{KEY_FORMAT}\n{}", self.canonical_json());
        sha::sha256_hex(material.as_bytes())
    }

    /// Total number of simulator campaigns units this spec fans out
    /// (the progress denominator): trials for a cell, presets × attacks
    /// for the matrix.
    pub fn total_units(&self) -> usize {
        match self.kind {
            CampaignKind::Table2Cell => self.trials as usize,
            CampaignKind::Table2Matrix => CpuConfig::table2_presets().len() * TABLE2_ATTACKS.len(),
        }
    }

    /// A short human label for logs and progress lines.
    pub fn label(&self) -> String {
        match self.kind {
            CampaignKind::Table2Cell => format!(
                "{}/{} seed={} trials={}",
                CpuConfig::slug_of(&self.preset),
                self.attack,
                self.seed,
                self.trials
            ),
            CampaignKind::Table2Matrix => format!("table2-matrix seed={}", self.seed),
        }
    }
}
