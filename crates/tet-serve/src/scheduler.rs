//! The scheduling core: one validated [`CampaignSpec`] in, one
//! deterministic [`RunReport`] out.
//!
//! Trials fan out across the worker-thread pool via
//! [`tet_par::run_indexed_observed`] (results committed in submission
//! order, so the report is byte-identical at any thread count), with a
//! per-unit observer hook for live progress/telemetry. The report
//! deliberately carries **no host-timing fields** — no `wall_time_ms`,
//! no `host_threads` — because the report *is* the cache value: a
//! cached hit must be byte-identical to the cold run that produced it,
//! and wall time is the one thing a deterministic simulator does not
//! reproduce. Latency lives in the transport layer (job status,
//! `BENCH_serve.json`), not in the result.

use tet_metrics::ProfHandle;
use tet_obs::{Histogram, RunReport};
use tet_uarch::CpuConfig;
use whisper::eval::{self, AttackStatus, CellStats, Table2Row, TABLE2_ATTACKS};
use whisper::scenario::ScenarioOptions;

use crate::spec::{CampaignKind, CampaignSpec};

/// Runs `spec` on up to `threads` workers. `observe(done_units)` is
/// called from worker threads as units complete (completion order, for
/// progress only — it cannot affect the result).
pub fn run_campaign<O>(spec: &CampaignSpec, threads: usize, observe: O) -> Result<RunReport, String>
where
    O: Fn(usize) + Sync,
{
    match spec.kind {
        CampaignKind::Table2Cell => run_cell_campaign(spec, threads, observe),
        CampaignKind::Table2Matrix => run_matrix_campaign(spec, threads, observe),
    }
}

/// Shared report skeleton: the spec's canonical identity.
fn base_report(spec: &CampaignSpec) -> RunReport {
    let mut rep = RunReport::new("serve_campaign");
    rep.set_meta("kind", spec.kind.name());
    rep.set_meta("spec", spec.canonical_json());
    rep.set_meta("key", spec.cache_key());
    rep
}

fn absorb_cell_stats(rep: &mut RunReport, total: &CellStats) {
    rep.counter("runs", total.runs);
    rep.counter("sim_cycles", total.sim_cycles);
    rep.counter("ff_skipped_cycles", total.ff_skipped_cycles);
    rep.counter("ff_sprints", total.ff_sprints);
    rep.counter("snapshot_restores", total.snapshot_restores);
    rep.counter("l1_hits", total.l1_hits);
    rep.counter("l1_misses", total.l1_misses);
    rep.counter("dtlb_walks", total.dtlb_walks);
    rep.counter("branches", total.branches);
    rep.counter("br_mispredicts", total.br_mispredicts);
}

/// One Table 2 cell, `trials` seeds (`seed .. seed + trials`), each an
/// independent scenario — the embarrassingly-parallel unit.
fn run_cell_campaign<O>(
    spec: &CampaignSpec,
    threads: usize,
    observe: O,
) -> Result<RunReport, String>
where
    O: Fn(usize) + Sync,
{
    let cfg = CpuConfig::by_name(&spec.preset)
        .ok_or_else(|| format!("unknown preset {:?}", spec.preset))?;
    let attack = TABLE2_ATTACKS
        .iter()
        .position(|a| *a == spec.attack)
        .ok_or_else(|| format!("unknown attack {:?}", spec.attack))?;
    let trials = spec.trials as usize;
    let done = std::sync::atomic::AtomicUsize::new(0);
    let outcomes: Vec<(AttackStatus, CellStats)> = tet_par::run_indexed_observed(
        threads,
        trials,
        || (),
        |(), i| {
            let opts = ScenarioOptions {
                seed: spec.seed.wrapping_add(i as u64),
                kpti: spec.kpti,
                flare: spec.flare,
                interrupt_period: spec.interrupt_period,
                ..ScenarioOptions::default()
            };
            eval::run_table2_cell_opts(&cfg, &opts, attack, &ProfHandle::disabled())
        },
        |_, _| observe(1 + done.fetch_add(1, std::sync::atomic::Ordering::Relaxed)),
    );

    let mut total = CellStats::default();
    let mut successes = 0u64;
    let mut cycles_hist = Histogram::new();
    let mut statuses = String::with_capacity(trials);
    for (st, cs) in &outcomes {
        total.merge(cs);
        if *st == AttackStatus::Success {
            successes += 1;
        }
        statuses.push(if *st == AttackStatus::Success {
            'Y'
        } else {
            'n'
        });
        cycles_hist.record(cs.sim_cycles);
    }
    let mut rep = base_report(spec);
    rep.set_meta("preset", cfg.name);
    rep.set_meta("attack", TABLE2_ATTACKS[attack]);
    // The per-seed outcome string ('Y' success / 'n' fail, seed order):
    // compact, deterministic, and enough to reconstruct any cell.
    rep.set_meta("statuses", statuses);
    rep.counter("trials", trials as u64);
    rep.counter("successes", successes);
    rep.scalar("success_rate", successes as f64 / trials as f64);
    absorb_cell_stats(&mut rep, &total);
    rep.histogram("sim_cycles_per_trial", &cycles_hist);
    Ok(rep)
}

/// The full Table 2 matrix at one seed — the `table2_matrix` experiment
/// as a service.
fn run_matrix_campaign<O>(
    spec: &CampaignSpec,
    threads: usize,
    observe: O,
) -> Result<RunReport, String>
where
    O: Fn(usize) + Sync,
{
    let done = std::sync::atomic::AtomicUsize::new(0);
    let (rows, total): (Vec<Table2Row>, CellStats) =
        eval::run_table2_matrix_observed(spec.seed, threads, &ProfHandle::disabled(), |_, _| {
            observe(1 + done.fetch_add(1, std::sync::atomic::Ordering::Relaxed))
        });
    let mut rep = base_report(spec);
    let mut all_match = true;
    for row in &rows {
        let cells: Vec<String> = row.cells().iter().map(|c| c.to_string()).collect();
        rep.set_meta(
            &format!("row.{}", CpuConfig::slug_of(row.cpu)),
            cells.join(" "),
        );
        all_match &= row.matches_paper();
    }
    rep.counter("rows", rows.len() as u64);
    rep.counter("all_match", all_match as u64);
    absorb_cell_stats(&mut rep, &total);
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_campaign_is_thread_count_invariant() {
        let spec = CampaignSpec {
            trials: 4,
            seed: 7,
            ..CampaignSpec::default()
        };
        let a = run_campaign(&spec, 1, |_| {}).unwrap();
        let b = run_campaign(&spec, 8, |_| {}).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "threads must not change bytes");
        assert_eq!(a.counters["trials"], 4);
        assert!(a.counters["successes"] <= 4);
        assert!(a.wall_time_ms.is_none(), "reports must carry no wall time");
    }

    #[test]
    fn observer_sees_every_unit() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let spec = CampaignSpec {
            trials: 5,
            ..CampaignSpec::default()
        };
        let seen = AtomicUsize::new(0);
        let max = AtomicUsize::new(0);
        run_campaign(&spec, 2, |done| {
            seen.fetch_add(1, Ordering::Relaxed);
            max.fetch_max(done, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(seen.load(Ordering::Relaxed), 5);
        assert_eq!(max.load(Ordering::Relaxed), 5);
    }
}
