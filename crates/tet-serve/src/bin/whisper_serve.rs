//! `whisper-serve`: the long-running campaign server.
//!
//! ```text
//! whisper-serve [--addr HOST:PORT] [--workers N] [--threads N]
//!               [--cache DIR] [--cache-bytes N] [--idle-timeout-ms N]
//!               [--self-test]
//! ```
//!
//! * `--addr` — bind address (default `127.0.0.1:8044`; port `0` picks
//!   an ephemeral port and prints it).
//! * `--workers` — concurrent campaign jobs (default 2).
//! * `--threads` — simulator threads per campaign (default
//!   `TET_THREADS` or all cores).
//! * `--cache` — result-cache directory (default `TET_SERVE_CACHE` or
//!   `target/serve-cache`).
//! * `--cache-bytes` — disk-cache byte budget, 0 = unlimited (default
//!   `TET_SERVE_CACHE_BYTES` or 0).
//! * `--idle-timeout-ms` — keep-alive idle timeout (default 5000).
//! * `--self-test` — bind an ephemeral port, submit one small campaign
//!   through keep-alive and connection-per-request clients, assert the
//!   warm legs are cache hits with byte-identical reports, print
//!   `self-test ok`, exit 0. The CI serve-smoke job runs this before
//!   driving the server externally.
//!
//! Progress goes to stderr (`TET_QUIET=1` silences it); the bound
//! address line goes to stdout so scripts can scrape it.

use std::path::PathBuf;

use tet_serve::{Client, ServerConfig};

fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 < args.len() {
            let v = args.remove(i + 1);
            args.remove(i);
            return Some(v);
        }
        args.remove(i);
    }
    None
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let self_test = args.iter().any(|a| a == "--self-test");
    args.retain(|a| a != "--self-test");
    let addr = take_flag_value(&mut args, "--addr");
    let workers = take_flag_value(&mut args, "--workers").and_then(|v| v.parse().ok());
    let threads = take_flag_value(&mut args, "--threads").and_then(|v| v.parse().ok());
    let cache = take_flag_value(&mut args, "--cache").map(PathBuf::from);
    let cache_bytes = take_flag_value(&mut args, "--cache-bytes").map(|v| {
        v.parse::<u64>().unwrap_or_else(|e| {
            eprintln!("whisper-serve: --cache-bytes {v:?}: {e}");
            std::process::exit(2);
        })
    });
    let idle_timeout_ms = take_flag_value(&mut args, "--idle-timeout-ms").map(|v| {
        v.parse::<u64>().unwrap_or_else(|e| {
            eprintln!("whisper-serve: --idle-timeout-ms {v:?}: {e}");
            std::process::exit(2);
        })
    });
    if let Some(stray) = args.first() {
        eprintln!("whisper-serve: unknown argument {stray:?}");
        eprintln!(
            "usage: whisper-serve [--addr HOST:PORT] [--workers N] [--threads N] \
             [--cache DIR] [--cache-bytes N] [--idle-timeout-ms N] [--self-test]"
        );
        std::process::exit(2);
    }

    let defaults = ServerConfig::default();
    let mut cfg = ServerConfig {
        addr: addr.unwrap_or_else(|| {
            if self_test {
                "127.0.0.1:0".to_string()
            } else {
                "127.0.0.1:8044".to_string()
            }
        }),
        workers: workers.unwrap_or(defaults.workers),
        threads: threads.unwrap_or(defaults.threads),
        cache_dir: cache.unwrap_or(defaults.cache_dir),
        cache_bytes: cache_bytes.unwrap_or(defaults.cache_bytes),
        hot_bytes: defaults.hot_bytes,
        idle_timeout_ms: idle_timeout_ms.unwrap_or(defaults.idle_timeout_ms),
    };
    if self_test {
        // An isolated cache, so a pre-populated entry cannot fake the
        // cold leg.
        cfg.cache_dir =
            std::env::temp_dir().join(format!("whisper-serve-selftest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cfg.cache_dir);
    }

    let handle = match tet_serve::start(cfg.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("whisper-serve: {e}");
            std::process::exit(1);
        }
    };
    println!("whisper-serve listening on {}", handle.addr());

    if self_test {
        let ok = run_self_test(&handle.addr().to_string());
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&cfg.cache_dir);
        if ok {
            println!("self-test ok");
        } else {
            std::process::exit(1);
        }
        return;
    }

    // Serve until `POST /v1/shutdown`.
    handle.wait();
}

/// Cold submit, cached resubmits over keep-alive *and*
/// connection-per-request clients, byte-identity, counter and hot-tier
/// checks.
fn run_self_test(addr: &str) -> bool {
    let spec = "{\"kind\": \"table2_cell\", \"preset\": \"intel-core-i7-7700\", \
                \"attack\": \"cc\", \"seed\": 11, \"trials\": 2}";
    let keep_alive = Client::new(addr).with_keep_alive(true);
    let one_shot = Client::new(addr).with_keep_alive(false);
    let checks: Result<(), String> = (|| {
        let health = keep_alive.health()?;
        if health.get("ok").and_then(|v| v.as_bool()) != Some(true) {
            return Err("health check failed".to_string());
        }
        let (cold, was_cached) = keep_alive.run_to_report(spec)?;
        if was_cached {
            return Err("first submit must be a cold miss".to_string());
        }
        let (warm, was_cached) = keep_alive.run_to_report(spec)?;
        if !was_cached {
            return Err("second submit must be a cache hit".to_string());
        }
        if cold != warm {
            return Err("cached report must be byte-identical to the cold run".to_string());
        }
        // The same campaign through a Connection: close client: still a
        // hit, still the same bytes — the hot-cache fast path and the
        // plain path must be indistinguishable on the wire.
        let (one_shot_warm, was_cached) = one_shot.run_to_report(spec)?;
        if !was_cached {
            return Err("connection-per-request submit must be a cache hit".to_string());
        }
        if cold != one_shot_warm {
            return Err("keep-alive and per-request responses must be byte-identical".to_string());
        }
        let stats = keep_alive.cache_stats()?;
        let hits = stats.get("hits").and_then(|v| v.as_u64()).unwrap_or(0);
        let misses = stats.get("misses").and_then(|v| v.as_u64()).unwrap_or(0);
        if hits != 2 || misses != 1 {
            return Err(format!("expected 2 hits / 1 miss, got {hits}/{misses}"));
        }
        let hot_hits = stats.get("hot_hits").and_then(|v| v.as_u64()).unwrap_or(0);
        if hot_hits == 0 {
            return Err("warm submits must touch the hot cache".to_string());
        }
        // The metrics endpoint renders well-formed Prometheus text with
        // both latency paths populated.
        let prom = keep_alive.metrics()?;
        let samples =
            tet_metrics::parse_prometheus(&prom).map_err(|e| format!("/v1/metrics: {e}"))?;
        for name in ["serve_cached_request_us", "serve_cold_request_us"] {
            if !samples.iter().any(|s| s.name == format!("{name}_count")) {
                return Err(format!("/v1/metrics missing {name}"));
            }
        }
        Ok(())
    })();
    match checks {
        Ok(()) => true,
        Err(e) => {
            eprintln!("whisper-serve self-test FAILED: {e}");
            false
        }
    }
}
