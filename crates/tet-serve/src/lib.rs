//! Campaign service for the Whisper TET reproduction.
//!
//! The simulator is fully deterministic: `(preset, scenario options,
//! seed)` uniquely determines every output byte. This crate turns that
//! property into a service — a long-running experiment server whose
//! results are *content-addressed*: each campaign request is
//! canonicalized ([`spec`]), hashed ([`sha`]), and either computed once
//! through the worker-pool scheduler ([`scheduler`]) or served from the
//! disk-backed result cache ([`cache`]) byte-identically to the cold
//! run. A sharded in-memory hot cache ([`hotcache`]) fronts the disk
//! store with fully rendered responses, so repeat hits are zero-copy
//! writes of prebuilt bytes. Transport is a hand-rolled minimal
//! HTTP/1.1 + JSON layer ([`http`], reusing `tet_obs::json`) with
//! keep-alive and pipelining — the build environment is offline and
//! the workspace vendors its dependencies.
//!
//! Binaries: `whisper-serve` (this crate) runs the server;
//! `serve_load` (in `whisper-bench`) drives it with closed-loop
//! clients; `table2_matrix --server URL` runs the headline experiment
//! as a thin client of the same scheduling core. See DESIGN.md §14.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod hotcache;
pub mod http;
pub mod scheduler;
pub mod server;
pub mod sha;
pub mod spec;

pub use cache::{CacheStats, ResultCache};
pub use client::Client;
pub use hotcache::{HotCache, HotCacheStats, HotEntry};
pub use server::{start, ServerConfig, ServerHandle};
pub use spec::{CampaignKind, CampaignSpec, KEY_FORMAT};
