//! Sharded in-memory hot cache of fully rendered responses.
//!
//! The disk [`ResultCache`](crate::cache::ResultCache) is the source of
//! truth; this sits in front of it and holds the *final HTTP bytes* of
//! recently served reports — the `Arc<[u8]>` body plus both precomputed
//! response heads (keep-alive and close). A hit therefore costs two
//! `write_all` calls on the connection: no disk read, no JSON parse, no
//! re-serialize, no header formatting. Because cache keys are
//! content-addressed SHA-256 of the canonical spec, an entry can never
//! go stale — a key's value is immutable — so the hot cache needs no
//! invalidation protocol with the disk store, only a byte budget.
//!
//! Sharding: `SHARDS` independent `RwLock` maps, selected by the key's
//! leading hash bits (the keys are already uniformly distributed
//! SHA-256 hex). Hits take only the shard's *read* lock — recency is an
//! `AtomicU64` stamp ticked from a shared logical clock, the same
//! stamp-LRU idiom tet-mem uses for set-associative arrays. Inserts
//! take the write lock and evict minimum-stamp entries until the shard
//! is back under its slice of the byte budget.

use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::http::response_head;

/// Shard count: plenty for a thread-per-connection server on small
/// hosts, cheap when idle (an empty shard is one HashMap).
const SHARDS: usize = 16;

/// Counters served by `GET /v1/cache/stats` (prefixed `hot_`) and the
/// Prometheus endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotCacheStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups that fell through (to the disk store or the scheduler).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Resident bytes (bodies + precomputed heads).
    pub bytes: u64,
    /// Entries inserted since start.
    pub insertions: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Bytes released by eviction.
    pub evicted_bytes: u64,
}

/// One fully rendered 200 response: shared body bytes plus both
/// connection flavors of the head, built exactly once.
#[derive(Debug)]
pub struct HotEntry {
    head_keep: Box<str>,
    head_close: Box<str>,
    body: Arc<[u8]>,
}

impl HotEntry {
    /// Renders a JSON body into a reusable entry.
    pub fn json(body: &str) -> Arc<HotEntry> {
        Arc::new(HotEntry {
            head_keep: response_head(200, "application/json", body.len(), false).into(),
            head_close: response_head(200, "application/json", body.len(), true).into(),
            body: Arc::from(body.as_bytes()),
        })
    }

    /// The stored body bytes (what a cold response's body was).
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// Writes the complete response. Two `write_all`s of bytes built at
    /// insert time — the zero-copy fast path.
    pub fn write_to(&self, w: &mut impl Write, close: bool) {
        let head = if close {
            &self.head_close
        } else {
            &self.head_keep
        };
        let _ = w.write_all(head.as_bytes());
        let _ = w.write_all(&self.body);
        let _ = w.flush();
    }

    /// What this entry charges against the byte budget.
    fn cost(&self) -> u64 {
        (self.body.len() + self.head_keep.len() + self.head_close.len()) as u64
    }
}

struct Slot {
    entry: Arc<HotEntry>,
    /// Logical-clock stamp of the most recent touch. Atomic so a read-lock
    /// holder can refresh recency without upgrading to a write lock.
    stamp: AtomicU64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<String, Slot>,
    bytes: u64,
}

/// The sharded hot cache.
pub struct HotCache {
    shards: Vec<RwLock<Shard>>,
    /// Shared logical clock for LRU stamps.
    clock: AtomicU64,
    /// Per-shard byte budget (`max_bytes / shards`); 0 = unlimited.
    shard_budget: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
}

impl HotCache {
    /// A hot cache with `max_bytes` total budget (0 = unlimited).
    pub fn new(max_bytes: u64) -> HotCache {
        HotCache::with_shards(max_bytes, SHARDS)
    }

    fn with_shards(max_bytes: u64, shards: usize) -> HotCache {
        let shards = shards.max(1);
        HotCache {
            shards: (0..shards).map(|_| RwLock::new(Shard::default())).collect(),
            clock: AtomicU64::new(0),
            shard_budget: if max_bytes == 0 {
                0
            } else {
                (max_bytes / shards as u64).max(1)
            },
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &str) -> &RwLock<Shard> {
        // Keys are SHA-256 hex: the first byte is already uniform.
        let b = key.as_bytes().first().copied().unwrap_or(0);
        let i = match b {
            b'0'..=b'9' => b - b'0',
            b'a'..=b'f' => b - b'a' + 10,
            b'A'..=b'F' => b - b'A' + 10,
            other => other,
        } as usize;
        &self.shards[i % self.shards.len()]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Looks `key` up; a hit refreshes its LRU stamp under the shard's
    /// read lock only.
    pub fn get(&self, key: &str) -> Option<Arc<HotEntry>> {
        let shard = self.shard_of(key).read().unwrap();
        match shard.map.get(key) {
            Some(slot) => {
                slot.stamp.store(self.tick(), Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&slot.entry))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or replaces) `key`, then evicts least-recently-touched
    /// entries until the shard fits its budget slice again. The entry
    /// just inserted is never its own eviction victim, so a single
    /// over-budget entry is kept (the budget is a soft per-entry cap,
    /// a hard steady-state cap).
    pub fn insert(&self, key: &str, entry: Arc<HotEntry>) {
        let cost = entry.cost();
        let stamp = self.tick();
        let mut shard = self.shard_of(key).write().unwrap();
        let old = shard.map.insert(
            key.to_string(),
            Slot {
                entry,
                stamp: AtomicU64::new(stamp),
            },
        );
        shard.bytes += cost;
        if let Some(old) = old {
            shard.bytes -= old.entry.cost();
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        while self.shard_budget != 0 && shard.bytes > self.shard_budget && shard.map.len() > 1 {
            let victim = shard
                .map
                .iter()
                .filter(|(k, _)| k.as_str() != key)
                .min_by_key(|(_, slot)| slot.stamp.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(slot) = shard.map.remove(&victim) {
                let freed = slot.entry.cost();
                shard.bytes -= freed;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.evicted_bytes.fetch_add(freed, Ordering::Relaxed);
            }
        }
    }

    /// Current counters (entry/byte totals walk the shards).
    pub fn stats(&self) -> HotCacheStats {
        let (mut entries, mut bytes) = (0u64, 0u64);
        for shard in &self.shards {
            let shard = shard.read().unwrap();
            entries += shard.map.len() as u64;
            bytes += shard.bytes;
        }
        HotCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            bytes,
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_the_same_bytes_without_copying() {
        let cache = HotCache::new(0);
        let body = "{\"x\": 1}";
        cache.insert("k1", HotEntry::json(body));
        let a = cache.get("k1").expect("hit");
        let b = cache.get("k1").expect("hit");
        assert_eq!(a.body(), body.as_bytes());
        // Both hits share one allocation — the zero-copy property.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().hits, 2);
        assert!(cache.get("absent").is_none());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn write_to_emits_a_complete_http_response() {
        let entry = HotEntry::json("{\"ok\": true}");
        for (close, want) in [
            (false, "connection: keep-alive"),
            (true, "connection: close"),
        ] {
            let mut out = Vec::new();
            entry.write_to(&mut out, close);
            let text = String::from_utf8(out).unwrap();
            assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
            assert!(text.contains(want), "{text}");
            assert!(text.contains("content-length: 12\r\n"), "{text}");
            assert!(text.ends_with("\r\n\r\n{\"ok\": true}"), "{text:?}");
        }
    }

    #[test]
    fn eviction_follows_the_lru_stamps() {
        // One shard, budget for roughly two entries.
        let entry = |tag: &str| HotEntry::json(&format!("{{\"tag\": \"{tag}\", \"pad\": 0}}"));
        let cost = entry("a").cost();
        let cache = HotCache::with_shards(cost * 2 + cost / 2, 1);
        cache.insert("a", entry("a"));
        cache.insert("b", entry("b"));
        // Touch `a` so `b` becomes the LRU victim.
        cache.get("a").unwrap();
        cache.insert("c", entry("c"));
        assert!(cache.get("a").is_some(), "recently touched entry survives");
        assert!(cache.get("b").is_none(), "LRU entry was evicted");
        assert!(cache.get("c").is_some(), "new entry is resident");
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert!(stats.evicted_bytes >= cost);
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes <= cost * 2 + cost / 2);
    }

    #[test]
    fn an_oversized_entry_is_kept_not_thrashed() {
        let cache = HotCache::with_shards(8, 1);
        cache.insert("big", HotEntry::json("{\"big\": \"body body body\"}"));
        assert!(
            cache.get("big").is_some(),
            "a single over-budget entry stays resident"
        );
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn replacing_a_key_does_not_leak_bytes() {
        let cache = HotCache::with_shards(0, 1);
        cache.insert("k", HotEntry::json("{\"v\": 1}"));
        let after_first = cache.stats().bytes;
        cache.insert("k", HotEntry::json("{\"v\": 2}"));
        assert_eq!(cache.stats().bytes, after_first);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn keys_spread_across_shards() {
        let cache = HotCache::new(0);
        for k in ["0aaa", "5bbb", "accc", "fddd"] {
            cache.insert(k, HotEntry::json("{}"));
        }
        let populated = cache
            .shards
            .iter()
            .filter(|s| !s.read().unwrap().map.is_empty())
            .count();
        assert_eq!(
            populated, 4,
            "distinct leading nibbles map to distinct shards"
        );
    }
}
