//! A deliberately minimal HTTP/1.1 layer over `std::net::TcpStream`.
//!
//! The build environment is offline and the workspace vendors its
//! dependencies, so the server speaks just enough HTTP for its own
//! clients, `curl`, and CI: persistent connections with
//! `Connection: keep-alive` semantics (the HTTP/1.1 default),
//! `Content-Length` bodies on requests and responses, and streaming
//! responses that end when the connection closes (the job-events
//! endpoint). Because requests are parsed from a per-connection
//! [`BufRead`], request **pipelining** works for free: a client may
//! write several requests back to back and the server answers them in
//! order from the same buffer. No chunked encoding, no TLS — it serves
//! deterministic simulator campaigns on localhost, not the open
//! internet.

use std::io::{BufRead, Write};

/// Upper bound on a request body, so a stray client cannot balloon the
/// server's memory.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// The request target, e.g. `/v1/jobs/3`.
    pub path: String,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: String,
    /// Whether the request line spoke HTTP/1.0 (default close) rather
    /// than HTTP/1.1 (default keep-alive).
    pub http10: bool,
}

/// What reading from a persistent connection produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// One complete request.
    Request(Request),
    /// Clean close: EOF arrived *between* requests — the client is done
    /// with the connection. Not an error.
    Closed,
    /// The read timed out while waiting for the *start* of the next
    /// request — the keep-alive connection went idle. Not an error.
    IdleTimeout,
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

impl Request {
    /// A header value by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked for this exchange to be the
    /// connection's last (`Connection: close`, or HTTP/1.0 without an
    /// explicit keep-alive).
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => self.http10,
        }
    }

    /// Reads one request from a (possibly reused) connection.
    ///
    /// A clean EOF or a timeout *before the first request byte* is a
    /// normal end of a keep-alive connection ([`ReadOutcome::Closed`] /
    /// [`ReadOutcome::IdleTimeout`]); EOF or timeout *mid-request* is a
    /// truncated request and comes back as an error — the caller must
    /// close without serving a response body it cannot trust. Other
    /// errors are one-line protocol diagnostics (answered 400).
    pub fn read_from(reader: &mut impl BufRead) -> Result<ReadOutcome, String> {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(ReadOutcome::Closed),
            Ok(_) if !line.ends_with('\n') => {
                return Err("truncated request line (EOF mid-line)".to_string());
            }
            Ok(_) => {}
            Err(e) if is_timeout(&e) && line.is_empty() => return Ok(ReadOutcome::IdleTimeout),
            Err(e) => return Err(format!("read request line: {e}")),
        }
        let mut parts = line.split_whitespace();
        let method = parts.next().ok_or("empty request line")?.to_string();
        let path = parts
            .next()
            .ok_or("request line missing target")?
            .to_string();
        let version = parts.next().ok_or("request line missing version")?;
        if !version.starts_with("HTTP/1.") {
            return Err(format!("unsupported version {version:?}"));
        }
        let http10 = version == "HTTP/1.0";

        let mut headers = Vec::new();
        loop {
            let mut hline = String::new();
            match reader.read_line(&mut hline) {
                Ok(0) => return Err("truncated headers (EOF before blank line)".to_string()),
                Ok(_) if !hline.ends_with('\n') => {
                    return Err("truncated header line (EOF mid-line)".to_string());
                }
                Ok(_) => {}
                Err(e) => return Err(format!("read header: {e}")),
            }
            let hline = hline.trim_end();
            if hline.is_empty() {
                break;
            }
            let (name, value) = hline
                .split_once(':')
                .ok_or_else(|| format!("malformed header {hline:?}"))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }

        let mut body = String::new();
        let content_length = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .map(|(_, v)| v.parse::<usize>())
            .transpose()
            .map_err(|e| format!("bad content-length: {e}"))?
            .unwrap_or(0);
        if content_length > MAX_BODY_BYTES {
            return Err(format!(
                "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
            ));
        }
        if content_length > 0 {
            let mut buf = vec![0u8; content_length];
            reader
                .read_exact(&mut buf)
                .map_err(|e| format!("read body: {e}"))?;
            body = String::from_utf8(buf).map_err(|_| "body is not UTF-8".to_string())?;
        }
        Ok(ReadOutcome::Request(Request {
            method,
            path,
            headers,
            body,
            http10,
        }))
    }
}

/// The reason phrase for the handful of statuses the server uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Builds a complete response head (through the blank line) for a
/// `Content-Length` body. Pure string assembly — the hot cache
/// precomputes these once per entry so a cache hit writes bytes it
/// never has to format again.
pub fn response_head(status: u16, content_type: &str, body_len: usize, close: bool) -> String {
    format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {body_len}\r\nconnection: {}\r\n\r\n",
        reason(status),
        if close { "close" } else { "keep-alive" },
    )
}

/// Writes a complete response with a `Content-Length` body. `close`
/// selects the `Connection:` header; the caller owns actually closing
/// (or keeping) the connection to match.
pub fn respond_bytes(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) {
    let head = response_head(status, content_type, body.len(), close);
    // The client may already be gone; that is its problem, not ours.
    let _ = w.write_all(head.as_bytes());
    let _ = w.write_all(body);
    let _ = w.flush();
}

/// Writes a complete response with a `Content-Length` body.
pub fn respond(w: &mut impl Write, status: u16, content_type: &str, body: &str, close: bool) {
    respond_bytes(w, status, content_type, body.as_bytes(), close);
}

/// Writes a JSON response.
pub fn respond_json(w: &mut impl Write, status: u16, body: &str, close: bool) {
    respond(w, status, "application/json", body, close);
}

/// Writes the head of an EOF-delimited streaming response (no
/// `Content-Length`; the body ends when the server closes the
/// connection — streaming therefore always ends the keep-alive
/// session). Returns whether the head was accepted.
pub fn start_stream(w: &mut impl Write, content_type: &str) -> bool {
    let head =
        format!("HTTP/1.1 200 OK\r\ncontent-type: {content_type}\r\nconnection: close\r\n\r\n");
    w.write_all(head.as_bytes()).is_ok() && w.flush().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    /// Round-trips one raw request through a real socket pair.
    fn parse_raw(raw: &str) -> Result<Request, String> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let writer = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(raw.as_bytes()).unwrap();
            c.flush().unwrap();
            // Half-close so the reader sees EOF after the payload — a
            // truncated request must end in EOF, not a hung read.
            c.shutdown(std::net::Shutdown::Write).unwrap();
            c
        });
        let (server_side, _) = listener.accept().unwrap();
        let mut reader = std::io::BufReader::new(server_side);
        let req = Request::read_from(&mut reader);
        drop(writer.join().unwrap());
        match req? {
            ReadOutcome::Request(r) => Ok(r),
            other => Err(format!("expected a request, got {other:?}")),
        }
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse_raw("POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"a\": 1}\n")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, "{\"a\": 1}\n");
        assert!(!req.wants_close(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse_raw("GET /v1/health HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.body, "");
    }

    #[test]
    fn connection_semantics_follow_the_version_and_header() {
        let req = parse_raw("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(req.wants_close());
        let req = parse_raw("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(req.wants_close(), "HTTP/1.0 defaults to close");
        let req = parse_raw("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(!req.wants_close());
        let req = parse_raw("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap();
        assert!(req.wants_close(), "header matching is case-insensitive");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_raw("NOT-HTTP\r\n\r\n").is_err());
        assert!(parse_raw("GET / SPDY/9\r\n\r\n").is_err());
        assert!(parse_raw("GET / HTTP/1.1\r\nContent-Length: nine\r\n\r\n").is_err());
        let oversized = format!("GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1 << 30);
        assert!(parse_raw(&oversized).is_err());
    }

    #[test]
    fn truncation_is_an_error_not_a_request() {
        // EOF mid-request-line, mid-headers, and mid-body must all be
        // hard errors — a reused connection must never yield a request
        // assembled from a partial write.
        assert!(parse_raw("GET /v1/heal").is_err());
        assert!(parse_raw("GET / HTTP/1.1\r\nHost: x\r\n").is_err());
        assert!(parse_raw("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n{\"a\"").is_err());
    }

    #[test]
    fn eof_between_requests_is_a_clean_close() {
        let mut empty: &[u8] = b"";
        match Request::read_from(&mut empty).unwrap() {
            ReadOutcome::Closed => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let mut two: &[u8] =
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi";
        let a = match Request::read_from(&mut two).unwrap() {
            ReadOutcome::Request(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!(a.path, "/a");
        let b = match Request::read_from(&mut two).unwrap() {
            ReadOutcome::Request(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!((b.path.as_str(), b.body.as_str()), ("/b", "hi"));
        assert!(matches!(
            Request::read_from(&mut two).unwrap(),
            ReadOutcome::Closed
        ));
    }

    #[test]
    fn response_head_spells_the_connection_state() {
        let keep = response_head(200, "application/json", 2, false);
        assert!(keep.contains("connection: keep-alive\r\n"), "{keep}");
        assert!(keep.contains("content-length: 2\r\n"));
        let close = response_head(404, "application/json", 0, true);
        assert!(close.contains("connection: close\r\n"), "{close}");
        assert!(close.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(close.ends_with("\r\n\r\n"));
    }
}
