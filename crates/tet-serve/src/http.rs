//! A deliberately minimal HTTP/1.1 layer over `std::net::TcpStream`.
//!
//! The build environment is offline and the workspace vendors its
//! dependencies, so the server speaks just enough HTTP for its own
//! clients, `curl`, and CI: one request per connection
//! (`Connection: close`), `Content-Length` bodies on requests, and
//! responses that either carry a `Content-Length` or stream until EOF
//! (the job-events endpoint). No keep-alive, no chunked encoding, no
//! TLS — it serves deterministic simulator campaigns on localhost, not
//! the open internet.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on a request body, so a stray client cannot balloon the
/// server's memory.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// The request target, e.g. `/v1/jobs/3`.
    pub path: String,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: String,
}

impl Request {
    /// A header value by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Reads one request from the stream. Errors are one-line protocol
    /// diagnostics (the connection is answered 400 and closed).
    pub fn read_from(stream: &mut TcpStream) -> Result<Request, String> {
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read request line: {e}"))?;
        let mut parts = line.split_whitespace();
        let method = parts.next().ok_or("empty request line")?.to_string();
        let path = parts
            .next()
            .ok_or("request line missing target")?
            .to_string();
        let version = parts.next().ok_or("request line missing version")?;
        if !version.starts_with("HTTP/1.") {
            return Err(format!("unsupported version {version:?}"));
        }

        let mut headers = Vec::new();
        loop {
            let mut hline = String::new();
            reader
                .read_line(&mut hline)
                .map_err(|e| format!("read header: {e}"))?;
            let hline = hline.trim_end();
            if hline.is_empty() {
                break;
            }
            let (name, value) = hline
                .split_once(':')
                .ok_or_else(|| format!("malformed header {hline:?}"))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }

        let mut body = String::new();
        let content_length = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .map(|(_, v)| v.parse::<usize>())
            .transpose()
            .map_err(|e| format!("bad content-length: {e}"))?
            .unwrap_or(0);
        if content_length > MAX_BODY_BYTES {
            return Err(format!(
                "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
            ));
        }
        if content_length > 0 {
            let mut buf = vec![0u8; content_length];
            reader
                .read_exact(&mut buf)
                .map_err(|e| format!("read body: {e}"))?;
            body = String::from_utf8(buf).map_err(|_| "body is not UTF-8".to_string())?;
        }
        Ok(Request {
            method,
            path,
            headers,
            body,
        })
    }
}

/// The reason phrase for the handful of statuses the server uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete response with a `Content-Length` body and closes
/// the exchange (`Connection: close`).
pub fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    // The client may already be gone; that is its problem, not ours.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Writes a JSON response.
pub fn respond_json(stream: &mut TcpStream, status: u16, body: &str) {
    respond(stream, status, "application/json", body);
}

/// Writes the head of an EOF-delimited streaming response (no
/// `Content-Length`; the body ends when the server closes the
/// connection). Returns whether the head was accepted.
pub fn start_stream(stream: &mut TcpStream, content_type: &str) -> bool {
    let head =
        format!("HTTP/1.1 200 OK\r\ncontent-type: {content_type}\r\nconnection: close\r\n\r\n");
    stream.write_all(head.as_bytes()).is_ok() && stream.flush().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trips one raw request through a real socket pair.
    fn parse_raw(raw: &str) -> Result<Request, String> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let writer = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(raw.as_bytes()).unwrap();
            c.flush().unwrap();
            c
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let req = Request::read_from(&mut server_side);
        drop(writer.join().unwrap());
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse_raw("POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"a\": 1}\n")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, "{\"a\": 1}\n");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse_raw("GET /v1/health HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.body, "");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_raw("NOT-HTTP\r\n\r\n").is_err());
        assert!(parse_raw("GET / SPDY/9\r\n\r\n").is_err());
        assert!(parse_raw("GET / HTTP/1.1\r\nContent-Length: nine\r\n\r\n").is_err());
        let oversized = format!("GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1 << 30);
        assert!(parse_raw(&oversized).is_err());
    }
}
