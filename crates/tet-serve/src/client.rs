//! A small blocking client for the campaign server — what the load
//! generator and the `table2_matrix --server` thin-client mode use.
//!
//! One request per connection, mirroring the server's
//! `Connection: close` discipline. All methods return one-line `String`
//! errors naming the endpoint, so callers can print them and move on.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use tet_obs::json::{self, Value};

/// A server endpoint, e.g. `http://127.0.0.1:8044` or `127.0.0.1:8044`.
#[derive(Debug, Clone)]
pub struct Client {
    host_port: String,
}

/// One response: status code and body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (entire, for non-streaming endpoints).
    pub body: String,
}

impl Response {
    /// Parses the body as JSON.
    pub fn json(&self) -> Result<Value, String> {
        json::parse(&self.body).map_err(|e| format!("parse response JSON: {e}"))
    }
}

impl Client {
    /// Builds a client for `base` (with or without an `http://` prefix,
    /// trailing slashes ignored).
    pub fn new(base: &str) -> Client {
        let host_port = base
            .trim()
            .trim_start_matches("http://")
            .trim_end_matches('/')
            .to_string();
        Client { host_port }
    }

    /// One round trip. `body` is sent with a `Content-Length`; the
    /// response body is read to EOF.
    pub fn request(&self, method: &str, path: &str, body: &str) -> Result<Response, String> {
        let mut stream = TcpStream::connect(&self.host_port)
            .map_err(|e| format!("connect {}: {e}", self.host_port))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(600)))
            .map_err(|e| format!("set timeout: {e}"))?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.host_port,
            body.len()
        );
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body.as_bytes()))
            .map_err(|e| format!("send {method} {path}: {e}"))?;
        let mut raw = String::new();
        stream
            .read_to_string(&mut raw)
            .map_err(|e| format!("read {method} {path}: {e}"))?;
        Self::parse_response(&raw, method, path)
    }

    fn parse_response(raw: &str, method: &str, path: &str) -> Result<Response, String> {
        let (head, body) = raw
            .split_once("\r\n\r\n")
            .ok_or_else(|| format!("{method} {path}: malformed response"))?;
        let status_line = head.lines().next().unwrap_or_default();
        let status = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| format!("{method} {path}: bad status line {status_line:?}"))?;
        Ok(Response {
            status,
            body: body.to_string(),
        })
    }

    /// `GET /v1/health`.
    pub fn health(&self) -> Result<Value, String> {
        self.expect_json("GET", "/v1/health", "")
    }

    /// `POST /v1/jobs` with a raw spec body. Returns the submit
    /// response (`job`, `key`, `state`, `cached`, `deduped`).
    pub fn submit(&self, spec_json: &str) -> Result<Value, String> {
        let resp = self.request("POST", "/v1/jobs", spec_json)?;
        if resp.status != 200 && resp.status != 202 {
            return Err(format!("submit rejected ({}): {}", resp.status, resp.body));
        }
        resp.json()
    }

    /// `GET /v1/jobs/<id>` once.
    pub fn status(&self, job: u64) -> Result<Value, String> {
        self.expect_json("GET", &format!("/v1/jobs/{job}"), "")
    }

    /// Polls until the job is `done` (returning its final status) or
    /// `failed` (returning an error).
    pub fn wait(&self, job: u64) -> Result<Value, String> {
        loop {
            let st = self.status(job)?;
            match st.get("state").and_then(|s| s.as_str()) {
                Some("done") => return Ok(st),
                Some("failed") => {
                    let msg = st
                        .get("error")
                        .and_then(|e| e.as_str())
                        .unwrap_or("job failed")
                        .to_string();
                    return Err(msg);
                }
                _ => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// `GET /v1/jobs/<id>/report` — the raw report bytes (so callers
    /// can compare byte-identity across hits).
    pub fn report(&self, job: u64) -> Result<String, String> {
        let resp = self.request("GET", &format!("/v1/jobs/{job}/report"), "")?;
        if resp.status != 200 {
            return Err(format!("report ({}): {}", resp.status, resp.body));
        }
        Ok(resp.body)
    }

    /// Submit + wait + fetch, returning `(report_bytes, was_cached)`.
    pub fn run_to_report(&self, spec_json: &str) -> Result<(String, bool), String> {
        let sub = self.submit(spec_json)?;
        let job = sub
            .get("job")
            .and_then(|j| j.as_u64())
            .ok_or("submit response missing job id")?;
        let cached = sub.get("cached").and_then(|c| c.as_bool()).unwrap_or(false);
        if sub.get("state").and_then(|s| s.as_str()) != Some("done") {
            self.wait(job)?;
        }
        Ok((self.report(job)?, cached))
    }

    /// `GET /v1/cache/stats`.
    pub fn cache_stats(&self) -> Result<Value, String> {
        self.expect_json("GET", "/v1/cache/stats", "")
    }

    /// `POST /v1/shutdown`.
    pub fn shutdown(&self) -> Result<(), String> {
        self.request("POST", "/v1/shutdown", "").map(|_| ())
    }

    fn expect_json(&self, method: &str, path: &str, body: &str) -> Result<Value, String> {
        let resp = self.request(method, path, body)?;
        if resp.status != 200 {
            return Err(format!("{method} {path} ({}): {}", resp.status, resp.body));
        }
        resp.json()
    }
}
