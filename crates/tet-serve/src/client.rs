//! A small blocking client for the campaign server — what the load
//! generator and the `table2_matrix --server` thin-client mode use.
//!
//! By default the client keeps one connection alive and reuses it for
//! every request (HTTP/1.1 keep-alive), parsing responses by their
//! `Content-Length` instead of reading to EOF. A request on a reused
//! connection that fails before a full response arrives is retried once
//! on a fresh connection — safe here because every endpoint is
//! idempotent (submits are content-addressed and single-flight deduped
//! server-side). `TET_SERVE_KEEPALIVE=0` (or
//! [`Client::with_keep_alive`]`(false)`) restores the PR-8
//! connection-per-request behavior for A/B measurements. All methods
//! return one-line `String` errors naming the endpoint, so callers can
//! print them and move on.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

use tet_obs::json::{self, Value};

/// A server endpoint, e.g. `http://127.0.0.1:8044` or `127.0.0.1:8044`.
#[derive(Debug)]
pub struct Client {
    host_port: String,
    keep_alive: bool,
    /// The cached keep-alive connection (buffered on the read side),
    /// absent until the first request or after a close.
    conn: Mutex<Option<BufReader<TcpStream>>>,
}

impl Clone for Client {
    /// A clone targets the same server but starts with its own (empty)
    /// connection slot — connections are never shared across clones.
    fn clone(&self) -> Client {
        Client {
            host_port: self.host_port.clone(),
            keep_alive: self.keep_alive,
            conn: Mutex::new(None),
        }
    }
}

/// One response: status code and body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (entire, for non-streaming endpoints).
    pub body: String,
}

impl Response {
    /// Parses the body as JSON.
    pub fn json(&self) -> Result<Value, String> {
        json::parse(&self.body).map_err(|e| format!("parse response JSON: {e}"))
    }
}

/// Whether the connection can serve another request after a response.
struct Parsed {
    response: Response,
    reusable: bool,
}

impl Client {
    /// Builds a client for `base` (with or without an `http://` prefix,
    /// trailing slashes ignored). Keep-alive defaults on; the
    /// `TET_SERVE_KEEPALIVE` environment switch (`0`/`false`/`off`
    /// disables) applies here.
    pub fn new(base: &str) -> Client {
        let host_port = base
            .trim()
            .trim_start_matches("http://")
            .trim_end_matches('/')
            .to_string();
        Client {
            host_port,
            keep_alive: tet_obs::env_flag("TET_SERVE_KEEPALIVE", true),
            conn: Mutex::new(None),
        }
    }

    /// Overrides the keep-alive default (and drops any cached
    /// connection when turning it off).
    pub fn with_keep_alive(mut self, keep_alive: bool) -> Client {
        self.keep_alive = keep_alive;
        if !keep_alive {
            *self.conn.lock().unwrap() = None;
        }
        self
    }

    /// Whether this client reuses its connection.
    pub fn keep_alive(&self) -> bool {
        self.keep_alive
    }

    fn connect(&self) -> Result<BufReader<TcpStream>, String> {
        let stream = TcpStream::connect(&self.host_port)
            .map_err(|e| format!("connect {}: {e}", self.host_port))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(600)))
            .map_err(|e| format!("set timeout: {e}"))?;
        let _ = stream.set_nodelay(true);
        Ok(BufReader::new(stream))
    }

    fn send(
        conn: &mut BufReader<TcpStream>,
        method: &str,
        path: &str,
        body: &str,
        host: &str,
        close: bool,
    ) -> std::io::Result<()> {
        // One buffer, one write syscall, one packet: on a NODELAY
        // socket a separate head write would go out as its own segment
        // and cost the server an extra read wakeup per request.
        let mut msg = format!(
            "{method} {path} HTTP/1.1\r\nhost: {host}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
            body.len(),
            if close { "close" } else { "keep-alive" },
        );
        msg.push_str(body);
        let stream = conn.get_mut();
        stream.write_all(msg.as_bytes())?;
        stream.flush()
    }

    /// Reads one response off the connection: status line + headers,
    /// then a `Content-Length` body — or to EOF for streaming
    /// responses (which are never reusable).
    fn read_response(
        conn: &mut BufReader<TcpStream>,
        method: &str,
        path: &str,
    ) -> Result<Parsed, String> {
        let err = |what: &str| format!("{method} {path}: {what}");
        let mut status_line = String::new();
        conn.read_line(&mut status_line)
            .map_err(|e| err(&format!("read status: {e}")))?;
        if status_line.is_empty() {
            return Err(err("connection closed before a response"));
        }
        let status = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| err(&format!("bad status line {status_line:?}")))?;
        let mut content_length: Option<usize> = None;
        let mut server_closes = false;
        loop {
            let mut line = String::new();
            let n = conn
                .read_line(&mut line)
                .map_err(|e| err(&format!("read headers: {e}")))?;
            if n == 0 {
                return Err(err("connection closed mid-headers"));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim();
                if name == "content-length" {
                    content_length = Some(
                        value
                            .parse()
                            .map_err(|e| err(&format!("bad content-length: {e}")))?,
                    );
                } else if name == "connection" && value.eq_ignore_ascii_case("close") {
                    server_closes = true;
                }
            }
        }
        let body = match content_length {
            Some(len) => {
                let mut buf = vec![0u8; len];
                conn.read_exact(&mut buf)
                    .map_err(|e| err(&format!("read body: {e}")))?;
                String::from_utf8(buf).map_err(|_| err("body is not UTF-8"))?
            }
            None => {
                // EOF-delimited (the events stream): drain it; the
                // server closes the connection afterwards.
                server_closes = true;
                let mut buf = String::new();
                conn.read_to_string(&mut buf)
                    .map_err(|e| err(&format!("read streaming body: {e}")))?;
                buf
            }
        };
        Ok(Parsed {
            response: Response { status, body },
            reusable: !server_closes,
        })
    }

    /// One round trip. `body` is sent with a `Content-Length`.
    ///
    /// With keep-alive the cached connection is reused; if a *reused*
    /// connection fails before a complete response (the server's idle
    /// timeout may have closed it between our requests), the request is
    /// retried once on a fresh connection. A failure on a fresh
    /// connection is reported, not retried.
    pub fn request(&self, method: &str, path: &str, body: &str) -> Result<Response, String> {
        if !self.keep_alive {
            let mut conn = self.connect()?;
            Self::send(&mut conn, method, path, body, &self.host_port, true)
                .map_err(|e| format!("send {method} {path}: {e}"))?;
            return Self::read_response(&mut conn, method, path).map(|p| p.response);
        }

        let mut slot = self.conn.lock().unwrap();
        let (conn, reused) = match slot.take() {
            Some(conn) => (conn, true),
            None => (self.connect()?, false),
        };
        let mut conn = conn;
        let attempt = Self::send(&mut conn, method, path, body, &self.host_port, false)
            .map_err(|e| format!("send {method} {path}: {e}"))
            .and_then(|()| Self::read_response(&mut conn, method, path));
        let parsed = match attempt {
            Ok(parsed) => parsed,
            Err(first) if reused => {
                // The reused connection went stale under us; one fresh
                // retry. Safe: every endpoint is idempotent.
                drop(conn);
                let mut conn = self.connect()?;
                Self::send(&mut conn, method, path, body, &self.host_port, false)
                    .map_err(|e| format!("send {method} {path} (retry after {first}): {e}"))?;
                let parsed = Self::read_response(&mut conn, method, path)?;
                if parsed.reusable {
                    *slot = Some(conn);
                }
                return Ok(parsed.response);
            }
            Err(e) => return Err(e),
        };
        if parsed.reusable {
            *slot = Some(conn);
        }
        Ok(parsed.response)
    }

    /// `GET /v1/health`.
    pub fn health(&self) -> Result<Value, String> {
        self.expect_json("GET", "/v1/health", "")
    }

    /// `POST /v1/jobs` with a raw spec body. Returns the submit
    /// response (`job`, `key`, `state`, `cached`, `deduped`).
    pub fn submit(&self, spec_json: &str) -> Result<Value, String> {
        let resp = self.request("POST", "/v1/jobs", spec_json)?;
        if resp.status != 200 && resp.status != 202 {
            return Err(format!("submit rejected ({}): {}", resp.status, resp.body));
        }
        resp.json()
    }

    /// `GET /v1/jobs/<id>` once.
    pub fn status(&self, job: u64) -> Result<Value, String> {
        self.expect_json("GET", &format!("/v1/jobs/{job}"), "")
    }

    /// Polls until the job is `done` (returning its final status) or
    /// `failed` (returning an error).
    pub fn wait(&self, job: u64) -> Result<Value, String> {
        loop {
            let st = self.status(job)?;
            match st.get("state").and_then(|s| s.as_str()) {
                Some("done") => return Ok(st),
                Some("failed") => {
                    let msg = st
                        .get("error")
                        .and_then(|e| e.as_str())
                        .unwrap_or("job failed")
                        .to_string();
                    return Err(msg);
                }
                _ => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// `GET /v1/jobs/<id>/report` — the raw report bytes (so callers
    /// can compare byte-identity across hits).
    pub fn report(&self, job: u64) -> Result<String, String> {
        let resp = self.request("GET", &format!("/v1/jobs/{job}/report"), "")?;
        if resp.status != 200 {
            return Err(format!("report ({}): {}", resp.status, resp.body));
        }
        Ok(resp.body)
    }

    /// Submit + wait + fetch, returning `(report_bytes, was_cached)`.
    ///
    /// Tries the one-round-trip `POST /v1/reports` fast path first: on
    /// a cache hit the response is the report itself, so a warm fetch
    /// costs a single round trip instead of submit-then-fetch. A 404
    /// miss falls back to the submit flow.
    pub fn run_to_report(&self, spec_json: &str) -> Result<(String, bool), String> {
        let probe = self.request("POST", "/v1/reports", spec_json)?;
        match probe.status {
            200 => return Ok((probe.body, true)),
            404 => {}
            s => return Err(format!("POST /v1/reports ({s}): {}", probe.body)),
        }
        let sub = self.submit(spec_json)?;
        let job = sub
            .get("job")
            .and_then(|j| j.as_u64())
            .ok_or("submit response missing job id")?;
        let cached = sub.get("cached").and_then(|c| c.as_bool()).unwrap_or(false);
        if sub.get("state").and_then(|s| s.as_str()) != Some("done") {
            self.wait(job)?;
        }
        Ok((self.report(job)?, cached))
    }

    /// `GET /v1/cache/stats`.
    pub fn cache_stats(&self) -> Result<Value, String> {
        self.expect_json("GET", "/v1/cache/stats", "")
    }

    /// `GET /v1/metrics` — raw Prometheus text.
    pub fn metrics(&self) -> Result<String, String> {
        let resp = self.request("GET", "/v1/metrics", "")?;
        if resp.status != 200 {
            return Err(format!("GET /v1/metrics ({}): {}", resp.status, resp.body));
        }
        Ok(resp.body)
    }

    /// `POST /v1/shutdown`.
    pub fn shutdown(&self) -> Result<(), String> {
        self.request("POST", "/v1/shutdown", "").map(|_| ())
    }

    fn expect_json(&self, method: &str, path: &str, body: &str) -> Result<Value, String> {
        let resp = self.request(method, path, body)?;
        if resp.status != 200 {
            return Err(format!("{method} {path} ({}): {}", resp.status, resp.body));
        }
        resp.json()
    }
}
