//! Prometheus text exposition (version 0.0.4) export and a tiny
//! validating parser.
//!
//! The exporter renders a [`MetricsSection`] — counters as `counter`,
//! gauges as `gauge`, histogram summaries as `summary` with
//! `quantile`-labelled samples plus `_sum`/`_count`. Metric names are
//! sanitized to the Prometheus charset (`[a-zA-Z_:][a-zA-Z0-9_:]*`);
//! dotted registry names like `prof.fetch.est_ns` become
//! `prof_fetch_est_ns`.
//!
//! The parser exists for the CI `metrics-smoke` step: it checks the
//! scraped file is well-formed (every sample line is `name{labels} value`
//! with a legal name and a finite float) and hands samples back for
//! assertions. It is not a full PromQL ingestion pipeline.

use tet_obs::MetricsSection;

/// Rewrites a registry metric name into the Prometheus charset.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Formats a float the way Prometheus expects (no exponent surprises for
/// integral values).
fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders a metrics section as Prometheus text exposition format.
pub fn to_prometheus(section: &MetricsSection) -> String {
    let mut out = String::new();
    for (name, v) in &section.counters {
        let n = sanitize_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in &section.gauges {
        let n = sanitize_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", fmt_num(*v)));
    }
    for (name, s) in &section.histograms {
        let n = sanitize_name(name);
        out.push_str(&format!("# TYPE {n} summary\n"));
        for (q, val) in [
            ("0.5", s.p50),
            ("0.9", s.p90),
            ("0.99", s.p99),
            ("0.999", s.p999),
        ] {
            out.push_str(&format!("{n}{{quantile=\"{q}\"}} {val}\n"));
        }
        out.push_str(&format!("{n}_sum {}\n", fmt_num(s.mean * s.count as f64)));
        out.push_str(&format!("{n}_count {}\n", s.count));
        out.push_str(&format!("# TYPE {n}_min gauge\n{n}_min {}\n", s.min));
        out.push_str(&format!("# TYPE {n}_max gauge\n{n}_max {}\n", s.max));
    }
    out
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name (sanitized charset).
    pub name: String,
    /// Raw label block without braces (`quantile="0.5"`), empty if none.
    pub labels: String,
    /// Sample value.
    pub value: f64,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

/// Parses/validates Prometheus text exposition output.
///
/// Returns every sample, or the first malformed line as an error.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
        let (ident, value) = line
            .rsplit_once(char::is_whitespace)
            .ok_or_else(|| err("expected `name value`"))?;
        let value: f64 = value.parse().map_err(|_| err("bad value"))?;
        if !value.is_finite() {
            return Err(err("non-finite value"));
        }
        let (name, labels) = match ident.split_once('{') {
            Some((n, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| err("unterminated label block"))?;
                (n, labels.to_string())
            }
            None => (ident, String::new()),
        };
        if !valid_name(name) {
            return Err(err("illegal metric name"));
        }
        out.push(PromSample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tet_obs::Histogram;

    fn sample_section() -> MetricsSection {
        let mut m = MetricsSection::default();
        m.counters.insert("prof.fetch.est_ns".into(), 1234);
        m.gauges.insert("flight.trials_per_sec".into(), 42.5);
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        m.histograms.insert("step.ns".into(), h.summarize());
        m
    }

    #[test]
    fn export_parses_back() {
        let text = to_prometheus(&sample_section());
        let samples = parse_prometheus(&text).expect("well-formed");
        let get = |name: &str, labels: &str| {
            samples
                .iter()
                .find(|s| s.name == name && s.labels == labels)
                .unwrap_or_else(|| panic!("missing {name}{{{labels}}} in:\n{text}"))
                .value
        };
        assert_eq!(get("prof_fetch_est_ns", ""), 1234.0);
        assert_eq!(get("flight_trials_per_sec", ""), 42.5);
        assert_eq!(get("step_ns", "quantile=\"0.5\""), 20.0);
        assert_eq!(get("step_ns_count", ""), 4.0);
        assert_eq!(get("step_ns_sum", ""), 100.0);
        assert_eq!(get("step_ns_min", ""), 10.0);
        assert_eq!(get("step_ns_max", ""), 40.0);
    }

    #[test]
    fn sanitize_rewrites_illegal_chars() {
        assert_eq!(sanitize_name("prof.fetch.est_ns"), "prof_fetch_est_ns");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("just_a_name\n").is_err());
        assert!(parse_prometheus("name not_a_number\n").is_err());
        assert!(parse_prometheus("name NaN\n").is_err());
        assert!(parse_prometheus("bad-name 1\n").is_err());
        assert!(parse_prometheus("name{quantile=\"0.5\" 1\n").is_err());
        // Comments and blanks are fine.
        assert_eq!(
            parse_prometheus("# HELP x\n\n# TYPE x counter\nx 3\n")
                .unwrap()
                .len(),
            1
        );
    }
}
