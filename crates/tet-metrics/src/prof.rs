//! Sampled host-time attribution for the simulator pipeline.
//!
//! Timing every pipeline stage of every simulated cycle would dwarf the
//! work being measured (`Instant::now()` costs ~20-25 ns against a
//! ~100 ns `Cpu::step`). Instead the CPU times one full step in every
//! `sample_every` (default 128, `TET_PROF_SAMPLE=N` overrides) and the
//! profiler extrapolates: reported nanoseconds are
//! `measured_ns × sample_every`. Whole runs and snapshot restores are
//! rare enough to always time exactly; fast-forward attempts are
//! per-step-frequent and sample like the pipeline stages.
//!
//! The profiler is host-only state: it never influences simulated
//! execution, so outputs remain byte-identical with profiling on or off.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tet_obs::MetricsSection;

/// A profiled pipeline stage (one collapsed-stack frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Instruction fetch + branch prediction.
    Fetch,
    /// Rename/allocate into the ROB.
    Rename,
    /// Scheduler wakeup/select (issue), minus execution itself.
    Issue,
    /// Non-memory µop execution.
    Execute,
    /// Load/store µop execution (cache, TLB, walker).
    Memory,
    /// Retirement and branch resolution.
    Retire,
    /// Event-driven fast-forward sprints.
    FastForward,
    /// `Machine::restore` snapshot restores.
    SnapshotRestore,
    /// Whole `Machine::run` invocations (the parent frame).
    Run,
    /// Anything not attributed above (run overhead minus stage sum).
    Other,
}

/// All stages, in display order.
pub const STAGES: [Stage; 10] = [
    Stage::Fetch,
    Stage::Rename,
    Stage::Issue,
    Stage::Execute,
    Stage::Memory,
    Stage::Retire,
    Stage::FastForward,
    Stage::SnapshotRestore,
    Stage::Run,
    Stage::Other,
];

const N_STAGES: usize = STAGES.len();

impl Stage {
    /// Short lowercase label (also the folded-stack leaf frame).
    pub fn label(self) -> &'static str {
        match self {
            Stage::Fetch => "fetch",
            Stage::Rename => "rename",
            Stage::Issue => "issue",
            Stage::Execute => "execute",
            Stage::Memory => "memory",
            Stage::Retire => "retire",
            Stage::FastForward => "fast_forward",
            Stage::SnapshotRestore => "snapshot_restore",
            Stage::Run => "run",
            Stage::Other => "other",
        }
    }

    /// The collapsed-stack line prefix for this stage (flamegraph
    /// `a;b;c` frames, root first).
    fn folded_stack(self) -> String {
        match self {
            Stage::Run => "machine;run".to_string(),
            Stage::SnapshotRestore => "machine;snapshot_restore".to_string(),
            s => format!("machine;run;{}", s.label()),
        }
    }
}

struct ProfCore {
    /// Measured (not extrapolated) nanoseconds per stage.
    ns: [AtomicU64; N_STAGES],
    /// Timed samples per stage.
    hits: [AtomicU64; N_STAGES],
    sample_every: u32,
}

/// The owner side of a profiler: create one per campaign, hand
/// [`HostProfiler::handle`] clones to each machine, then read the
/// estimate back out.
pub struct HostProfiler {
    core: Arc<ProfCore>,
}

/// Default 1-in-N step sampling rate.
pub const DEFAULT_SAMPLE_EVERY: u32 = 128;

/// `TET_PROF_SAMPLE` override, clamped to at least 1.
pub fn sample_every_from_env() -> u32 {
    std::env::var("TET_PROF_SAMPLE")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .map(|n| n.max(1))
        .unwrap_or(DEFAULT_SAMPLE_EVERY)
}

impl HostProfiler {
    /// Creates a profiler timing one step in `sample_every`.
    pub fn new(sample_every: u32) -> HostProfiler {
        HostProfiler {
            core: Arc::new(ProfCore {
                ns: std::array::from_fn(|_| AtomicU64::new(0)),
                hits: std::array::from_fn(|_| AtomicU64::new(0)),
                sample_every: sample_every.max(1),
            }),
        }
    }

    /// Creates a profiler only when `TET_PROF` is enabled (see
    /// [`tet_obs::env_flag`]), honoring `TET_PROF_SAMPLE`.
    pub fn from_env() -> Option<HostProfiler> {
        tet_obs::env_flag("TET_PROF", false).then(|| HostProfiler::new(sample_every_from_env()))
    }

    /// A write handle for one producer (all handles share the totals).
    pub fn handle(&self) -> ProfHandle {
        ProfHandle {
            core: Some(Arc::clone(&self.core)),
        }
    }

    /// Extrapolated wall-nanoseconds attributed to each stage
    /// (`measured × sample_every`; always-on stages are exact).
    pub fn estimate_ns(&self) -> Vec<(Stage, u64)> {
        STAGES.iter().map(|&s| (s, self.stage_ns(s))).collect()
    }

    fn stage_ns(&self, s: Stage) -> u64 {
        let raw = self.core.ns[s as usize].load(Ordering::Relaxed);
        match s {
            // Rare and always timed: no extrapolation.
            Stage::SnapshotRestore | Stage::Run => raw,
            _ => raw.saturating_mul(self.core.sample_every as u64),
        }
    }

    /// Timed samples per stage.
    pub fn hits(&self, s: Stage) -> u64 {
        self.core.hits[s as usize].load(Ordering::Relaxed)
    }

    /// The configured 1-in-N sampling rate.
    pub fn sample_every(&self) -> u32 {
        self.core.sample_every
    }

    /// Collapsed-stack ("folded") export: one `frames count` line per
    /// stage with a nonzero estimate, directly consumable by
    /// `flamegraph.pl` / `inferno-flamegraph` (counts are nanoseconds).
    /// The `other` pseudo-stage absorbs run time not claimed by a
    /// pipeline stage, so the flame widths add up.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        let run_ns = self.stage_ns(Stage::Run);
        let stage_sum: u64 = STAGES
            .iter()
            .filter(|&&s| !matches!(s, Stage::Run | Stage::SnapshotRestore | Stage::Other))
            .map(|&s| self.stage_ns(s))
            .sum();
        for &s in &STAGES {
            let ns = match s {
                // `run` is the parent frame: its self time is whatever
                // the children don't account for.
                Stage::Run => continue,
                Stage::Other => run_ns.saturating_sub(stage_sum),
                _ => self.stage_ns(s),
            };
            if ns > 0 {
                out.push_str(&s.folded_stack());
                out.push(' ');
                out.push_str(&ns.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// Adds the profile to a metrics section as
    /// `prof.<stage>.est_ns` counters (plus sample metadata).
    pub fn fill_metrics(&self, m: &mut MetricsSection) {
        for &s in &STAGES {
            let ns = match s {
                Stage::Other => continue,
                _ => self.stage_ns(s),
            };
            if ns > 0 || self.hits(s) > 0 {
                m.counters.insert(format!("prof.{}.est_ns", s.label()), ns);
                m.counters
                    .insert(format!("prof.{}.samples", s.label()), self.hits(s));
            }
        }
        m.counters.insert(
            "prof.sample_every".to_string(),
            self.core.sample_every as u64,
        );
    }
}

/// A producer's write handle; disabled handles cost one branch per call.
#[derive(Clone, Default)]
pub struct ProfHandle {
    core: Option<Arc<ProfCore>>,
}

impl ProfHandle {
    /// A handle that records nothing.
    pub fn disabled() -> ProfHandle {
        ProfHandle { core: None }
    }

    /// Whether this handle records anywhere.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.core.is_some()
    }

    /// The 1-in-N sampling rate producers should apply to per-step
    /// timing (1 when disabled).
    #[inline]
    pub fn sample_every(&self) -> u32 {
        self.core.as_ref().map_or(1, |c| c.sample_every)
    }

    /// Records `ns` measured nanoseconds against a stage.
    #[inline]
    pub fn add_ns(&self, stage: Stage, ns: u64) {
        if let Some(core) = &self.core {
            core.ns[stage as usize].fetch_add(ns, Ordering::Relaxed);
            core.hits[stage as usize].fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for ProfHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfHandle")
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let h = ProfHandle::disabled();
        assert!(!h.enabled());
        assert_eq!(h.sample_every(), 1);
        h.add_ns(Stage::Fetch, 100);
    }

    #[test]
    fn sampled_stages_extrapolate() {
        let prof = HostProfiler::new(8);
        let h = prof.handle();
        h.add_ns(Stage::Fetch, 100);
        h.add_ns(Stage::Run, 1000);
        h.add_ns(Stage::SnapshotRestore, 50);
        let est: std::collections::HashMap<_, _> = prof.estimate_ns().into_iter().collect();
        assert_eq!(est[&Stage::Fetch], 800, "sampled: x8");
        assert_eq!(est[&Stage::Run], 1000, "always-on: exact");
        assert_eq!(est[&Stage::SnapshotRestore], 50, "always-on: exact");
        assert_eq!(prof.hits(Stage::Fetch), 1);
    }

    #[test]
    fn folded_output_is_flamegraph_shaped() {
        let prof = HostProfiler::new(4);
        let h = prof.handle();
        h.add_ns(Stage::Fetch, 10);
        h.add_ns(Stage::Memory, 20);
        h.add_ns(Stage::Run, 1000);
        h.add_ns(Stage::SnapshotRestore, 7);
        let folded = prof.to_folded();
        let mut lines: Vec<&str> = folded.lines().collect();
        lines.sort_unstable();
        // Sampled stages extrapolated x4; `other` = run - (10+20)*4.
        assert!(lines.contains(&"machine;run;fetch 40"), "{folded}");
        assert!(lines.contains(&"machine;run;memory 80"), "{folded}");
        assert!(lines.contains(&"machine;run;other 880"), "{folded}");
        assert!(lines.contains(&"machine;snapshot_restore 7"), "{folded}");
        // Every line parses as "frames value".
        for l in folded.lines() {
            let (stack, val) = l.rsplit_once(' ').expect("two fields");
            assert!(stack.starts_with("machine;"));
            val.parse::<u64>().expect("numeric value");
        }
    }

    #[test]
    fn fill_metrics_exports_counters() {
        let prof = HostProfiler::new(2);
        prof.handle().add_ns(Stage::Retire, 30);
        let mut m = MetricsSection::default();
        prof.fill_metrics(&mut m);
        assert_eq!(m.counters["prof.retire.est_ns"], 60);
        assert_eq!(m.counters["prof.retire.samples"], 1);
        assert_eq!(m.counters["prof.sample_every"], 2);
    }
}
