//! Host-side metrics for the Whisper TET simulator.
//!
//! Everything in this crate measures the *host* — wall-clock time,
//! throughput, progress — and must never feed back into simulated state:
//! simulation outputs stay byte-identical with metrics on or off, at any
//! thread count (the determinism suite gates this). Four layers:
//!
//! 1. **Registry** ([`registry`]) — sharded counters, gauges and
//!    log-bucketed histograms. Worker threads write through a
//!    [`MetricsHandle`] into their own shard (no cross-thread contention);
//!    a disabled handle costs one branch, mirroring the
//!    `tet_obs::SinkHandle` discipline. Snapshots merge shards into a
//!    [`tet_obs::MetricsSection`] for RunReport v3 embedding.
//! 2. **Profiler** ([`prof`]) — sampled scoped wall-time attribution for
//!    the simulator pipeline (fetch/rename/issue/execute/memory/retire,
//!    fast-forward, snapshot-restore). One in `sample_every` invocations
//!    is timed with `Instant`; totals are extrapolated. Exports a
//!    collapsed-stack (flamegraph-compatible) profile.
//! 3. **Flight recorder** ([`flight`]) — periodic campaign telemetry
//!    (trials/sec, ns/trial, ff-skip ratio, cache/TLB/BPU hit rates,
//!    ETA), appended as JSONL and streamed to the [`top`] stderr
//!    dashboard.
//! 4. **Exporters** ([`prom`], [`top`]) — Prometheus text exposition
//!    (plus a tiny validating parser for CI smoke tests) and the
//!    `whisper-top` live dashboard.
//!
//! Environment switches: `TET_METRICS=1` enables the registry,
//! `TET_PROF=1` the profiler (`TET_PROF_SAMPLE=N` overrides the 1-in-N
//! sampling rate), `TET_FLIGHT=<path>` appends flight-recorder samples as
//! JSONL. All default off; `TET_QUIET=1` silences the dashboard.

#![warn(missing_docs)]

pub mod flight;
pub mod prof;
pub mod prom;
pub mod registry;
pub mod top;

pub use flight::{FlightRecorder, FlightSample};
pub use prof::{HostProfiler, ProfHandle, Stage};
pub use prom::{parse_prometheus, to_prometheus, PromSample};
pub use registry::{MetricsHandle, Registry};
pub use top::Top;
