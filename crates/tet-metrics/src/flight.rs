//! The campaign flight recorder: periodic mid-run telemetry.
//!
//! A [`FlightRecorder`] is shared (behind an `Arc`) between the workers
//! of a long campaign and whoever wants to watch it. Workers push cheap
//! atomic deltas per finished work item (trials, simulated cycles,
//! fast-forward coverage, PMU-derived memory/branch counts); the watcher
//! calls [`FlightRecorder::maybe_sample`] which, at most once per
//! interval, folds the counters into a [`FlightSample`] — trials/sec,
//! ns/trial, ff-skip ratio, cache/TLB/BPU hit rates and an ETA.
//!
//! Samples accumulate in memory and, when `TET_FLIGHT=<path>` is set,
//! are appended to that file as JSON Lines on [`FlightRecorder::finish`]
//! — the post-hoc analysis feed, and the telemetry channel a future
//! `tet-serve` will stream to clients. Everything here is host-side
//! observation only; simulated results never depend on it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use tet_obs::json::Value;
use tet_obs::MetricsSection;

/// One periodic telemetry snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightSample {
    /// Milliseconds since the campaign started.
    pub t_ms: u64,
    /// Work items finished so far.
    pub done: u64,
    /// Total work items expected.
    pub total: u64,
    /// Simulator trials finished so far.
    pub trials: u64,
    /// Trials per wall-clock second (whole campaign so far).
    pub trials_per_sec: f64,
    /// Wall nanoseconds per trial (whole campaign so far).
    pub ns_per_trial: f64,
    /// Fraction of simulated cycles covered by fast-forward.
    pub ff_skip_ratio: f64,
    /// L1 data-cache load hit rate (0..1; 0 when no loads yet).
    pub l1_hit_rate: f64,
    /// DTLB load hit rate (1 - walks/loads; 0 when no loads yet).
    pub dtlb_hit_rate: f64,
    /// Branch predictor hit rate (0..1; 0 when no branches yet).
    pub bpu_hit_rate: f64,
    /// Estimated seconds to completion (0 when done or unknowable).
    pub eta_s: f64,
}

impl FlightSample {
    /// Compact single-line JSON (the JSONL record format).
    pub fn to_jsonl(&self) -> String {
        let mut o = Value::obj();
        o.set("t_ms", Value::from(self.t_ms));
        o.set("done", Value::from(self.done));
        o.set("total", Value::from(self.total));
        o.set("trials", Value::from(self.trials));
        o.set("trials_per_sec", Value::Num(self.trials_per_sec));
        o.set("ns_per_trial", Value::Num(self.ns_per_trial));
        o.set("ff_skip_ratio", Value::Num(self.ff_skip_ratio));
        o.set("l1_hit_rate", Value::Num(self.l1_hit_rate));
        o.set("dtlb_hit_rate", Value::Num(self.dtlb_hit_rate));
        o.set("bpu_hit_rate", Value::Num(self.bpu_hit_rate));
        o.set("eta_s", Value::Num(self.eta_s));
        o.to_json()
    }
}

/// Shared campaign telemetry accumulator. All methods are `&self` and
/// thread-safe; share via `Arc`.
pub struct FlightRecorder {
    started: Instant,
    total: u64,
    interval_ms: u64,
    done: AtomicU64,
    trials: AtomicU64,
    sim_cycles: AtomicU64,
    ff_skipped: AtomicU64,
    l1_hits: AtomicU64,
    l1_misses: AtomicU64,
    dtlb_walks: AtomicU64,
    branches: AtomicU64,
    br_misses: AtomicU64,
    /// Millisecond timestamp of the last taken sample (sampling gate).
    last_sample_ms: AtomicU64,
    samples: Mutex<Vec<FlightSample>>,
}

/// Default sampling interval.
pub const DEFAULT_INTERVAL_MS: u64 = 250;

impl FlightRecorder {
    /// Creates a recorder for a campaign of `total` work items.
    pub fn new(total: u64) -> FlightRecorder {
        FlightRecorder::with_interval(total, DEFAULT_INTERVAL_MS)
    }

    /// Creates a recorder sampling at most once per `interval_ms`.
    pub fn with_interval(total: u64, interval_ms: u64) -> FlightRecorder {
        FlightRecorder {
            started: Instant::now(),
            total,
            interval_ms,
            done: AtomicU64::new(0),
            trials: AtomicU64::new(0),
            sim_cycles: AtomicU64::new(0),
            ff_skipped: AtomicU64::new(0),
            l1_hits: AtomicU64::new(0),
            l1_misses: AtomicU64::new(0),
            dtlb_walks: AtomicU64::new(0),
            branches: AtomicU64::new(0),
            br_misses: AtomicU64::new(0),
            last_sample_ms: AtomicU64::new(0),
            samples: Mutex::new(Vec::new()),
        }
    }

    /// Marks one work item finished, with its simulator cost counters.
    pub fn record_work(&self, trials: u64, sim_cycles: u64, ff_skipped_cycles: u64) {
        self.done.fetch_add(1, Ordering::Relaxed);
        self.trials.fetch_add(trials, Ordering::Relaxed);
        self.sim_cycles.fetch_add(sim_cycles, Ordering::Relaxed);
        self.ff_skipped
            .fetch_add(ff_skipped_cycles, Ordering::Relaxed);
    }

    /// Adds PMU-derived memory/branch event counts for hit-rate gauges.
    pub fn record_events(
        &self,
        l1_hits: u64,
        l1_misses: u64,
        dtlb_walks: u64,
        branches: u64,
        br_misses: u64,
    ) {
        self.l1_hits.fetch_add(l1_hits, Ordering::Relaxed);
        self.l1_misses.fetch_add(l1_misses, Ordering::Relaxed);
        self.dtlb_walks.fetch_add(dtlb_walks, Ordering::Relaxed);
        self.branches.fetch_add(branches, Ordering::Relaxed);
        self.br_misses.fetch_add(br_misses, Ordering::Relaxed);
    }

    /// Computes a sample right now (does not store it).
    pub fn sample_now(&self) -> FlightSample {
        let t_ms = self.started.elapsed().as_millis() as u64;
        let secs = (t_ms as f64 / 1e3).max(1e-9);
        let done = self.done.load(Ordering::Relaxed);
        let trials = self.trials.load(Ordering::Relaxed);
        let sim = self.sim_cycles.load(Ordering::Relaxed);
        let ff = self.ff_skipped.load(Ordering::Relaxed);
        let l1h = self.l1_hits.load(Ordering::Relaxed);
        let l1m = self.l1_misses.load(Ordering::Relaxed);
        let loads = l1h + l1m;
        let walks = self.dtlb_walks.load(Ordering::Relaxed);
        let br = self.branches.load(Ordering::Relaxed);
        let brm = self.br_misses.load(Ordering::Relaxed);
        let rate = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        let trials_per_sec = trials as f64 / secs;
        let eta_s = if done == 0 || done >= self.total {
            0.0
        } else {
            secs * (self.total - done) as f64 / done as f64
        };
        FlightSample {
            t_ms,
            done,
            total: self.total,
            trials,
            trials_per_sec,
            ns_per_trial: if trials == 0 {
                0.0
            } else {
                secs * 1e9 / trials as f64
            },
            ff_skip_ratio: rate(ff, sim),
            l1_hit_rate: rate(l1h, loads),
            // The denominator is *retired* loads (MEM_LOAD_RETIRED.*)
            // while DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK also counts
            // walks from speculative loads that never retire — in a
            // transient-execution campaign the attack loads are exactly
            // those, so walks can exceed retired loads and the naive
            // `1 - walks/loads` goes negative. A hit *rate* is bounded
            // by definition; clamp every rate gauge into [0, 1].
            dtlb_hit_rate: if loads == 0 {
                0.0
            } else {
                (1.0 - rate(walks, loads)).clamp(0.0, 1.0)
            },
            bpu_hit_rate: if br == 0 {
                0.0
            } else {
                (1.0 - rate(brm, br)).clamp(0.0, 1.0)
            },
            eta_s,
        }
    }

    /// Takes and stores a sample if at least one interval has elapsed
    /// since the last; returns it for live display. Cheap when it is not
    /// time yet (one atomic load + compare).
    pub fn maybe_sample(&self) -> Option<FlightSample> {
        let now_ms = self.started.elapsed().as_millis() as u64;
        let last = self.last_sample_ms.load(Ordering::Relaxed);
        if now_ms.saturating_sub(last) < self.interval_ms {
            return None;
        }
        // One sampler wins the race; losers skip.
        if self
            .last_sample_ms
            .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        let s = self.sample_now();
        self.samples.lock().unwrap().push(s.clone());
        Some(s)
    }

    /// Takes one final sample, appends all samples as JSON Lines to the
    /// `TET_FLIGHT` path (if set), and returns them.
    pub fn finish(&self) -> Vec<FlightSample> {
        let last = self.sample_now();
        let mut samples = self.samples.lock().unwrap();
        samples.push(last);
        if let Some(path) = std::env::var_os("TET_FLIGHT") {
            let mut text = String::new();
            for s in samples.iter() {
                text.push_str(&s.to_jsonl());
                text.push('\n');
            }
            let append = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| std::io::Write::write_all(&mut f, text.as_bytes()));
            if let Err(e) = append {
                eprintln!("warning: could not append flight log {path:?}: {e}");
            }
        }
        samples.clone()
    }

    /// Exports the latest state as flight gauges in a metrics section.
    pub fn fill_metrics(&self, m: &mut MetricsSection) {
        let s = self.sample_now();
        m.gauges
            .insert("flight.trials_per_sec".into(), s.trials_per_sec);
        m.gauges
            .insert("flight.ns_per_trial".into(), s.ns_per_trial);
        m.gauges
            .insert("flight.ff_skip_ratio".into(), s.ff_skip_ratio);
        m.gauges.insert("flight.l1_hit_rate".into(), s.l1_hit_rate);
        m.gauges
            .insert("flight.dtlb_hit_rate".into(), s.dtlb_hit_rate);
        m.gauges
            .insert("flight.bpu_hit_rate".into(), s.bpu_hit_rate);
        m.counters.insert("flight.trials".into(), s.trials);
        m.counters.insert("flight.items_done".into(), s.done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_gauges_stay_in_unit_range() {
        // Transient-execution campaigns walk the DTLB from speculative
        // loads that never retire, so walk counts legitimately exceed
        // retired-load counts. The published gauges must stay rates.
        let fr = FlightRecorder::new(4);
        fr.record_work(4, 100, 0);
        // walks (9000) far above retired loads (90 + 10); mispredicts
        // above branches for good measure.
        fr.record_events(90, 10, 9_000, 50, 75);
        let s = fr.sample_now();
        for (name, rate) in [
            ("l1_hit_rate", s.l1_hit_rate),
            ("dtlb_hit_rate", s.dtlb_hit_rate),
            ("bpu_hit_rate", s.bpu_hit_rate),
            ("ff_skip_ratio", s.ff_skip_ratio),
        ] {
            assert!(
                (0.0..=1.0).contains(&rate),
                "{name} must stay in [0, 1], got {rate}"
            );
        }
        assert_eq!(s.dtlb_hit_rate, 0.0, "over-counted walks clamp to 0");
    }

    #[test]
    fn rates_and_eta_are_nan_free() {
        let fr = FlightRecorder::new(10);
        // Zero everything: all rates defined as 0.
        let s = fr.sample_now();
        assert_eq!(s.ff_skip_ratio, 0.0);
        assert_eq!(s.l1_hit_rate, 0.0);
        assert_eq!(s.bpu_hit_rate, 0.0);
        assert_eq!(s.ns_per_trial, 0.0);
        assert_eq!(s.eta_s, 0.0);
        fr.record_work(100, 1000, 250);
        fr.record_events(90, 10, 5, 50, 2);
        let s = fr.sample_now();
        assert_eq!(s.done, 1);
        assert_eq!(s.trials, 100);
        assert!((s.ff_skip_ratio - 0.25).abs() < 1e-12);
        assert!((s.l1_hit_rate - 0.9).abs() < 1e-12);
        assert!((s.dtlb_hit_rate - 0.95).abs() < 1e-12);
        assert!((s.bpu_hit_rate - 0.96).abs() < 1e-12);
        assert!(s.eta_s > 0.0, "9 of 10 items left");
        for v in [
            s.trials_per_sec,
            s.ns_per_trial,
            s.ff_skip_ratio,
            s.l1_hit_rate,
            s.dtlb_hit_rate,
            s.bpu_hit_rate,
            s.eta_s,
        ] {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn maybe_sample_respects_interval() {
        // Huge interval: only the first call samples.
        let fr = FlightRecorder::with_interval(4, u64::MAX / 2);
        fr.record_work(1, 10, 0);
        // The gate compares against last=0, so the very first call only
        // fires once the interval passed — with a huge interval, never.
        assert!(fr.maybe_sample().is_none());
        // Zero interval: every call samples.
        let fr = FlightRecorder::with_interval(4, 0);
        assert!(fr.maybe_sample().is_some());
        assert!(fr.maybe_sample().is_some());
        assert_eq!(fr.finish().len(), 3, "2 periodic + 1 final");
    }

    #[test]
    fn jsonl_round_trips_through_the_json_layer() {
        let fr = FlightRecorder::new(2);
        fr.record_work(5, 100, 20);
        let line = fr.sample_now().to_jsonl();
        assert!(!line.contains('\n'));
        let v = tet_obs::json::parse(&line).expect("valid JSON");
        assert_eq!(v.get("trials").and_then(|x| x.as_u64()), Some(5));
        assert_eq!(v.get("total").and_then(|x| x.as_u64()), Some(2));
    }

    #[test]
    fn fill_metrics_exports_gauges() {
        let fr = FlightRecorder::new(1);
        fr.record_work(10, 100, 50);
        let mut m = MetricsSection::default();
        fr.fill_metrics(&mut m);
        assert_eq!(m.counters["flight.trials"], 10);
        assert_eq!(m.gauges["flight.ff_skip_ratio"], 0.5);
    }
}
