//! The sharded metrics registry.
//!
//! A [`Registry`] hands out per-worker [`MetricsHandle`]s; each handle
//! owns a private shard, so recording never contends across threads (the
//! shard mutex is only ever contended by a concurrent snapshot). Handles
//! follow the `tet_obs::SinkHandle` zero-cost-disabled discipline: a
//! disabled handle is a `None` and every record call is one branch.
//!
//! Counters sum across shards; gauges are last-write-wins (a global epoch
//! stamps every set, the newest epoch survives the merge); histograms are
//! the fixed-bucket `tet_obs::Histogram` and merge bucket-wise — no
//! unbounded value vectors anywhere.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tet_obs::{Histogram, MetricsSection};

#[derive(Default)]
struct ShardState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, (u64, f64)>,
    histograms: BTreeMap<String, Histogram>,
}

struct Shard {
    state: Mutex<ShardState>,
    /// Global gauge epoch, shared by every shard of one registry.
    epoch: Arc<AtomicU64>,
}

/// A sharded host-metrics registry.
///
/// Create one per campaign/binary, pass `handle()` clones to workers
/// (one each — a handle is the shard), and `snapshot()` at the end (or
/// periodically) to merge everything into a [`MetricsSection`].
pub struct Registry {
    shards: Mutex<Vec<Arc<Shard>>>,
    epoch: Arc<AtomicU64>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry {
            shards: Mutex::new(Vec::new()),
            epoch: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Creates a registry only when `TET_METRICS` is enabled (any value
    /// but `0`/`false`/`off`/empty; see [`tet_obs::env_flag`]).
    pub fn from_env() -> Option<Registry> {
        tet_obs::env_flag("TET_METRICS", false).then(Registry::new)
    }

    /// Registers a new shard and returns the handle that writes to it.
    /// Give each worker thread its own handle.
    pub fn handle(&self) -> MetricsHandle {
        let shard = Arc::new(Shard {
            state: Mutex::new(ShardState::default()),
            epoch: Arc::clone(&self.epoch),
        });
        self.shards.lock().unwrap().push(Arc::clone(&shard));
        MetricsHandle { shard: Some(shard) }
    }

    /// Merges every shard into one section: counters sum, the
    /// newest-epoch gauge write wins, histograms merge bucket-wise.
    pub fn snapshot(&self) -> MetricsSection {
        let mut out = MetricsSection::default();
        let mut gauge_epochs: BTreeMap<String, u64> = BTreeMap::new();
        // Summaries are lossy, so histograms merge as full bucket arrays
        // first and are summarized once at the end.
        let mut merged: BTreeMap<String, Histogram> = BTreeMap::new();
        for shard in self.shards.lock().unwrap().iter() {
            let st = shard.state.lock().unwrap();
            for (k, v) in &st.counters {
                *out.counters.entry(k.clone()).or_insert(0) += v;
            }
            for (k, &(epoch, v)) in &st.gauges {
                let seen = gauge_epochs.get(k).copied().unwrap_or(0);
                if epoch >= seen {
                    gauge_epochs.insert(k.clone(), epoch);
                    out.gauges.insert(k.clone(), v);
                }
            }
            for (k, h) in &st.histograms {
                merged.entry(k.clone()).or_default().merge(h);
            }
        }
        out.histograms = merged
            .iter()
            .map(|(k, h)| (k.clone(), h.summarize()))
            .collect();
        out
    }
}

/// A worker's write handle into one registry shard. Cheap to pass around;
/// a disabled handle ([`MetricsHandle::disabled`]) makes every call a
/// single branch.
#[derive(Clone)]
pub struct MetricsHandle {
    shard: Option<Arc<Shard>>,
}

impl MetricsHandle {
    /// A handle that records nothing.
    pub fn disabled() -> MetricsHandle {
        MetricsHandle { shard: None }
    }

    /// Whether this handle records anywhere.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.shard.is_some()
    }

    /// Adds `delta` to a monotonic counter.
    #[inline]
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(shard) = &self.shard {
            let mut st = shard.state.lock().unwrap();
            match st.counters.get_mut(name) {
                Some(v) => *v += delta,
                None => {
                    st.counters.insert(name.to_string(), delta);
                }
            }
        }
    }

    /// Sets a point-in-time gauge (last write across all shards wins).
    #[inline]
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(shard) = &self.shard {
            let epoch = shard.epoch.fetch_add(1, Ordering::Relaxed) + 1;
            let mut st = shard.state.lock().unwrap();
            st.gauges.insert(name.to_string(), (epoch, value));
        }
    }

    /// Records one sample into a log-bucketed histogram.
    #[inline]
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(shard) = &self.shard {
            let mut st = shard.state.lock().unwrap();
            match st.histograms.get_mut(name) {
                Some(h) => h.record(value),
                None => {
                    let mut h = Histogram::new();
                    h.record(value);
                    st.histograms.insert(name.to_string(), h);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let h = MetricsHandle::disabled();
        assert!(!h.enabled());
        h.counter_add("x", 1);
        h.gauge_set("g", 2.0);
        h.observe("h", 3);
        // Nothing to snapshot — there is no registry at all.
    }

    #[test]
    fn counters_sum_across_shards() {
        let reg = Registry::new();
        let a = reg.handle();
        let b = reg.handle();
        a.counter_add("trials", 3);
        b.counter_add("trials", 4);
        b.counter_add("only_b", 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["trials"], 7);
        assert_eq!(snap.counters["only_b"], 1);
    }

    #[test]
    fn gauge_last_write_wins_across_shards() {
        let reg = Registry::new();
        let a = reg.handle();
        let b = reg.handle();
        a.gauge_set("rate", 1.0);
        b.gauge_set("rate", 2.0);
        a.gauge_set("rate", 3.0);
        assert_eq!(reg.snapshot().gauges["rate"], 3.0);
    }

    #[test]
    fn histograms_merge_across_shards() {
        let reg = Registry::new();
        let a = reg.handle();
        let b = reg.handle();
        for v in 1..=50u64 {
            a.observe("lat", v);
        }
        for v in 51..=100u64 {
            b.observe("lat", v);
        }
        let s = &reg.snapshot().histograms["lat"];
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.p50, 50);
    }

    #[test]
    fn snapshot_is_reusable_and_threadsafe() {
        let reg = Arc::new(Registry::new());
        let handles: Vec<MetricsHandle> = (0..4).map(|_| reg.handle()).collect();
        let mut joins = Vec::new();
        for (i, h) in handles.into_iter().enumerate() {
            joins.push(std::thread::spawn(move || {
                for j in 0..1000u64 {
                    h.counter_add("n", 1);
                    h.observe("v", i as u64 * 1000 + j);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counters["n"], 4000);
        assert_eq!(snap.histograms["v"].count, 4000);
    }

    #[test]
    fn from_env_respects_tet_metrics() {
        // Only checks the off path (the on path would race other tests
        // through the process-global environment).
        if std::env::var_os("TET_METRICS").is_none() {
            assert!(Registry::from_env().is_none());
        }
    }
}
