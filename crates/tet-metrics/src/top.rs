//! `whisper-top`: the live stderr campaign dashboard.
//!
//! Extends the `tet_obs::Progress` discipline — status goes to stderr,
//! results to stdout, `TET_QUIET=1` silences everything — with a
//! one-line, continuously-updated view of a [`FlightSample`] stream:
//!
//! ```text
//! [table2] 12/20 | 431 trials | 96.4 tr/s | 10.4 ms/trial | ff 38% | L1 91% | TLB 98% | BPU 95% | ETA 4s
//! ```
//!
//! On a TTY the line redraws in place (`\r`); when stderr is redirected
//! each sample prints as its own line so logs stay readable.

use std::io::{IsTerminal, Write};

use crate::flight::FlightSample;

/// A live dashboard for one campaign.
#[derive(Debug)]
pub struct Top {
    label: String,
    quiet: bool,
    tty: bool,
    drew: bool,
}

/// Renders one sample as the dashboard line (without the trailing
/// newline/carriage control).
pub fn render_line(label: &str, s: &FlightSample) -> String {
    let pct = |v: f64| format!("{:.0}%", v * 100.0);
    let eta = if s.eta_s > 0.0 {
        format!(" | ETA {:.0}s", s.eta_s)
    } else {
        String::new()
    };
    format!(
        "[{label}] {}/{} | {} trials | {:.1} tr/s | {:.2} ms/trial | ff {} | L1 {} | TLB {} | BPU {}{eta}",
        s.done,
        s.total,
        s.trials,
        s.trials_per_sec,
        s.ns_per_trial / 1e6,
        pct(s.ff_skip_ratio),
        pct(s.l1_hit_rate),
        pct(s.dtlb_hit_rate),
        pct(s.bpu_hit_rate),
    )
}

impl Top {
    /// Creates a dashboard; honors `TET_QUIET=1`.
    pub fn new(label: &str) -> Top {
        Top {
            label: label.to_string(),
            quiet: tet_obs::quiet(),
            tty: std::io::stderr().is_terminal(),
            drew: false,
        }
    }

    /// Draws one sample (in place on a TTY, one line per sample
    /// otherwise).
    pub fn tick(&mut self, s: &FlightSample) {
        if self.quiet {
            return;
        }
        let line = render_line(&self.label, s);
        let mut err = std::io::stderr().lock();
        let _ = if self.tty {
            write!(err, "\r\x1b[2K{line}")
        } else {
            writeln!(err, "{line}")
        };
        let _ = err.flush();
        self.drew = true;
    }

    /// Finishes the dashboard: draws the final sample and, on a TTY,
    /// terminates the in-place line.
    pub fn done(&mut self, last: &FlightSample) {
        if self.quiet {
            return;
        }
        self.tick(last);
        if self.tty && self.drew {
            eprintln!();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FlightSample {
        FlightSample {
            t_ms: 1500,
            done: 12,
            total: 20,
            trials: 431,
            trials_per_sec: 96.4,
            ns_per_trial: 10_400_000.0,
            ff_skip_ratio: 0.38,
            l1_hit_rate: 0.91,
            dtlb_hit_rate: 0.98,
            bpu_hit_rate: 0.95,
            eta_s: 4.2,
        }
    }

    #[test]
    fn line_contains_every_field() {
        let line = render_line("table2", &sample());
        for needle in [
            "[table2]",
            "12/20",
            "431 trials",
            "96.4 tr/s",
            "10.40 ms/trial",
            "ff 38%",
            "L1 91%",
            "TLB 98%",
            "BPU 95%",
            "ETA 4s",
        ] {
            assert!(line.contains(needle), "missing {needle:?} in {line:?}");
        }
    }

    #[test]
    fn finished_campaign_drops_eta() {
        let mut s = sample();
        s.eta_s = 0.0;
        assert!(!render_line("x", &s).contains("ETA"));
    }

    #[test]
    fn dashboard_api_is_callable() {
        let mut top = Top::new("unit-test");
        // Output goes to stderr; this exercises the paths (quiet or not).
        top.tick(&sample());
        top.done(&sample());
    }
}
