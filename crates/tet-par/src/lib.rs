//! Deterministic parallel execution of independent simulator trials.
//!
//! Every paper artifact in this repository — the Table 2 attack matrix,
//! the `0..=255` argmax sweeps, the seed-replicated KASLR scans, the
//! ablation parameter sweeps — is an embarrassingly-parallel fan-out of
//! *independent* simulator runs: each trial builds its own
//! [`Machine`](../tet_uarch/struct.Machine.html)/scenario from a config
//! plus a seed, so trials share no mutable state. This crate provides the
//! one primitive those fan-outs need and nothing more: run an indexed
//! work list on `N` scoped worker threads and **commit results in
//! submission order**, so the output is byte-identical to a serial run
//! regardless of thread count or OS scheduling.
//!
//! # Determinism model (DESIGN.md §8)
//!
//! Two properties make `threads = 1` and `threads = 64` byte-identical:
//!
//! 1. **The work decomposition is fixed.** Callers split work by *index*
//!    (one cell, one seed, one payload chunk), never by "whatever thread
//!    is free next". Thread count only changes who executes an index,
//!    never what an index computes.
//! 2. **Results commit in submission order.** Each worker writes its
//!    result into the slot owned by its index; the caller consumes slots
//!    `0..n` in order. No result ever observes another trial's timing.
//!
//! Workers *claim* indices dynamically (an atomic cursor, so a slow trial
//! does not convoy the rest), which is safe precisely because trials are
//! independent.
//!
//! # Thread-count policy
//!
//! [`default_threads`] resolves, in order: the `TET_THREADS` environment
//! variable, then the host's available parallelism. Binaries layer a
//! `--threads N` flag on top via [`threads_from_args`].
//!
//! # Examples
//!
//! ```
//! let squares = tet_par::run_indexed(4, 10, |i| i * i);
//! assert_eq!(squares, (0..10).map(|i| i * i).collect::<Vec<_>>());
//! ```

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves the thread count to use when the caller did not pass one:
/// `TET_THREADS` if set to a positive integer, else the host's available
/// parallelism, else 1.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("TET_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Extracts a `--threads N` flag from CLI arguments, removing it (and its
/// value) from the list; falls back to [`default_threads`]. Accepts both
/// `--threads 8` and `--threads=8`.
///
/// # Examples
///
/// ```
/// let mut args = vec!["64".to_string(), "--threads".into(), "2".into()];
/// let threads = tet_par::threads_from_args(&mut args);
/// assert_eq!(threads, 2);
/// assert_eq!(args, vec!["64".to_string()]);
/// ```
pub fn threads_from_args(args: &mut Vec<String>) -> usize {
    let mut threads = None;
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix("--threads=") {
            threads = v.parse::<usize>().ok().filter(|&n| n > 0);
            args.remove(i);
            continue;
        }
        if args[i] == "--threads" {
            if i + 1 < args.len() {
                threads = args[i + 1].parse::<usize>().ok().filter(|&n| n > 0);
                args.drain(i..=i + 1);
            } else {
                args.remove(i);
            }
            continue;
        }
        i += 1;
    }
    threads.unwrap_or_else(default_threads)
}

/// Runs `f(0..n)` on up to `threads` scoped worker threads and returns
/// the results **in index order** — byte-identical to
/// `(0..n).map(f).collect()` for any thread count.
///
/// Indices are claimed dynamically from an atomic cursor, so an
/// expensive trial does not serialize the cheap ones behind it. With
/// `threads <= 1` (or `n <= 1`) the closure runs inline on the caller's
/// thread with no pool at all — the serial path stays allocation- and
/// synchronization-free.
///
/// # Panics
///
/// Propagates the first worker panic (by index order) to the caller.
pub fn run_indexed<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let workers = threads.min(n);
    // One mutex-free-in-practice slot per index: each slot is written by
    // exactly one worker (the one that claimed the index), so the lock is
    // never contended; it exists to make the slot writes safe Rust.
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let panicked = AtomicUsize::new(usize::MAX);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)));
                match result {
                    Ok(v) => *slots[i].lock().expect("slot lock") = Some(v),
                    Err(_) => {
                        // Record the lowest panicking index so the caller
                        // re-panics deterministically.
                        panicked.fetch_min(i, Ordering::SeqCst);
                        // Stop claiming new work.
                        cursor.fetch_add(n, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });

    let bad = panicked.load(Ordering::SeqCst);
    if bad != usize::MAX {
        // Re-run the offending index inline so the caller sees the
        // original panic payload (trials are deterministic by contract).
        let _ = f(bad);
        panic!("parallel trial {bad} panicked");
    }

    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock")
                .expect("every index was committed")
        })
        .collect()
}

/// [`run_indexed`] with **worker-local scratch state**: each worker
/// thread builds one `S` via `init` and reuses it for every index it
/// claims — the shape trial runners need when each trial wants a warm
/// simulator machine (e.g. one restored from a shared
/// `MachineSnapshot`) without paying a full rebuild per trial.
///
/// Determinism contract: `f(&mut s, i)` must produce a result that
/// depends only on `i`, treating `s` purely as a reusable resource it
/// re-initializes (e.g. by snapshot restore) before use. Which indices
/// share a worker's state varies with thread count and scheduling; a
/// result that leaked information between trials through `s` would
/// break the byte-identical-at-any-thread-count guarantee.
///
/// # Panics
///
/// Propagates the first worker panic (by index order) to the caller.
///
/// # Examples
///
/// ```
/// // Each worker allocates one scratch buffer, reused across indices.
/// let out = tet_par::run_indexed_with(
///     4,
///     10,
///     || Vec::with_capacity(8),
///     |buf, i| {
///         buf.clear();
///         buf.extend((0..=i).map(|x| x as u64));
///         buf.iter().sum::<u64>()
///     },
/// );
/// assert_eq!(out[4], 10);
/// ```
pub fn run_indexed_with<S, T, Init, F>(threads: usize, n: usize, init: Init, f: F) -> Vec<T>
where
    T: Send,
    Init: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        let mut s = init();
        return (0..n).map(|i| f(&mut s, i)).collect();
    }
    let workers = threads.min(n);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let panicked = AtomicUsize::new(usize::MAX);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut s = init();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut s, i)));
                    match result {
                        Ok(v) => *slots[i].lock().expect("slot lock") = Some(v),
                        Err(_) => {
                            panicked.fetch_min(i, Ordering::SeqCst);
                            cursor.fetch_add(n, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            });
        }
    });

    let bad = panicked.load(Ordering::SeqCst);
    if bad != usize::MAX {
        // Re-run the offending index inline (with fresh state) so the
        // caller sees the original panic payload.
        let _ = f(&mut init(), bad);
        panic!("parallel trial {bad} panicked");
    }

    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock")
                .expect("every index was committed")
        })
        .collect()
}

/// [`run_indexed_with`] plus a **telemetry observer**: `observe(i, &r)`
/// runs on the worker thread immediately after index `i` completes, in
/// *completion* order (which varies with thread count and scheduling).
///
/// This is the hook campaign dashboards and flight recorders attach to —
/// per-item progress without waiting for the whole fan-out. The observer
/// must only drive host-side telemetry (atomic counters, stderr
/// dashboards): results are committed before it runs and it returns
/// nothing, so it *cannot* change what the fan-out computes, keeping the
/// byte-identical-at-any-thread-count guarantee intact.
///
/// # Panics
///
/// Propagates the first worker panic (by index order) to the caller.
pub fn run_indexed_observed<S, T, Init, F, O>(
    threads: usize,
    n: usize,
    init: Init,
    f: F,
    observe: O,
) -> Vec<T>
where
    T: Send,
    Init: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
    O: Fn(usize, &T) + Sync,
{
    if threads <= 1 || n <= 1 {
        let mut s = init();
        return (0..n)
            .map(|i| {
                let r = f(&mut s, i);
                observe(i, &r);
                r
            })
            .collect();
    }
    let workers = threads.min(n);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let panicked = AtomicUsize::new(usize::MAX);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut s = init();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut s, i)));
                    match result {
                        Ok(v) => {
                            observe(i, &v);
                            *slots[i].lock().expect("slot lock") = Some(v);
                        }
                        Err(_) => {
                            panicked.fetch_min(i, Ordering::SeqCst);
                            cursor.fetch_add(n, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            });
        }
    });

    let bad = panicked.load(Ordering::SeqCst);
    if bad != usize::MAX {
        // Re-run the offending index inline (with fresh state) so the
        // caller sees the original panic payload.
        let _ = f(&mut init(), bad);
        panic!("parallel trial {bad} panicked");
    }

    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock")
                .expect("every index was committed")
        })
        .collect()
}

/// Maps `f` over `items` in parallel, returning results in item order
/// (the slice analogue of [`run_indexed`]).
///
/// # Examples
///
/// ```
/// let doubled = tet_par::par_map(2, &[1, 2, 3], |&x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
pub fn par_map<I, T, F>(threads: usize, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    run_indexed(threads, items.len(), |i| f(&items[i]))
}

/// Splits `len` work items into fixed-size chunks and returns the chunk
/// bounds `(start, end)`. The chunk size depends only on `chunk`, never
/// on the thread count — this is what keeps chunked decompositions
/// deterministic across `--threads` settings.
///
/// # Examples
///
/// ```
/// assert_eq!(tet_par::chunk_bounds(10, 4), vec![(0, 4), (4, 8), (8, 10)]);
/// assert_eq!(tet_par::chunk_bounds(0, 4), vec![]);
/// ```
pub fn chunk_bounds(len: usize, chunk: usize) -> Vec<(usize, usize)> {
    assert!(chunk > 0, "chunk size must be positive");
    (0..len.div_ceil(chunk))
        .map(|c| (c * chunk, ((c + 1) * chunk).min(len)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_commit_in_submission_order() {
        // Make later indices finish *earlier* to prove ordering does not
        // depend on completion time.
        let out = run_indexed(4, 32, |i| {
            std::thread::sleep(std::time::Duration::from_micros((32 - i as u64) * 50));
            i * 3
        });
        assert_eq!(out, (0..32).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree_for_any_thread_count() {
        let reference: Vec<u64> = (0..100).map(|i| (i as u64).wrapping_mul(0x9e37)).collect();
        for threads in [1, 2, 3, 8, 17] {
            let got = run_indexed(threads, 100, |i| (i as u64).wrapping_mul(0x9e37));
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let hits: Vec<AtomicU64> = (0..50).map(|_| AtomicU64::new(0)).collect();
        run_indexed(8, 50, |i| hits[i].fetch_add(1, Ordering::SeqCst));
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "index {i}");
        }
    }

    #[test]
    fn zero_and_one_items() {
        assert_eq!(run_indexed(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(8, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn indexed_with_matches_plain_indexed_at_any_thread_count() {
        let reference: Vec<u64> = (0..60).map(|i| (i as u64) * 7 + 1).collect();
        for threads in [1, 2, 5, 16] {
            let got = run_indexed_with(
                threads,
                60,
                || 0u64, // scratch the closure must not depend on
                |s, i| {
                    *s = s.wrapping_add(i as u64); // poison the scratch
                    (i as u64) * 7 + 1
                },
            );
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "with-state boom")]
    fn indexed_with_propagates_panics() {
        run_indexed_with(
            4,
            20,
            || (),
            |(), i| {
                if i == 7 {
                    panic!("with-state boom");
                }
                i
            },
        );
    }

    #[test]
    fn observed_fanout_matches_and_sees_every_item_once() {
        let reference: Vec<u64> = (0..40).map(|i| (i as u64) * 11).collect();
        for threads in [1, 2, 8] {
            let seen: Vec<AtomicU64> = (0..40).map(|_| AtomicU64::new(0)).collect();
            let sum = AtomicU64::new(0);
            let got = run_indexed_observed(
                threads,
                40,
                || (),
                |(), i| (i as u64) * 11,
                |i, r| {
                    seen[i].fetch_add(1, Ordering::SeqCst);
                    sum.fetch_add(*r, Ordering::SeqCst);
                },
            );
            assert_eq!(got, reference, "threads={threads}");
            for (i, s) in seen.iter().enumerate() {
                assert_eq!(s.load(Ordering::SeqCst), 1, "threads={threads} index {i}");
            }
            assert_eq!(sum.load(Ordering::SeqCst), reference.iter().sum::<u64>());
        }
    }

    #[test]
    #[should_panic(expected = "observed boom")]
    fn observed_fanout_propagates_panics() {
        run_indexed_observed(
            4,
            20,
            || (),
            |(), i| {
                if i == 9 {
                    panic!("observed boom");
                }
                i
            },
            |_, _| {},
        );
    }

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<String> = (0..20).map(|i| format!("s{i}")).collect();
        let out = par_map(4, &items, |s| s.len());
        let want: Vec<usize> = items.iter().map(|s| s.len()).collect();
        assert_eq!(out, want);
    }

    #[test]
    #[should_panic(expected = "boom at 13")]
    fn worker_panics_propagate() {
        run_indexed(4, 20, |i| {
            if i == 13 {
                panic!("boom at 13");
            }
            i
        });
    }

    #[test]
    fn threads_flag_parsing() {
        let mut args = vec!["--threads".to_string(), "3".into(), "x".into()];
        assert_eq!(threads_from_args(&mut args), 3);
        assert_eq!(args, vec!["x".to_string()]);

        let mut args = vec!["--threads=5".to_string()];
        assert_eq!(threads_from_args(&mut args), 5);
        assert!(args.is_empty());

        // Dangling flag falls back to the default (>= 1 either way).
        let mut args = vec!["--threads".to_string()];
        assert!(threads_from_args(&mut args) >= 1);
        assert!(args.is_empty());
    }

    #[test]
    fn chunk_bounds_cover_everything_once() {
        for (len, chunk) in [(10usize, 3usize), (12, 4), (1, 8), (7, 7), (16, 1)] {
            let bounds = chunk_bounds(len, chunk);
            let mut covered = 0;
            for (i, &(s, e)) in bounds.iter().enumerate() {
                assert!(s < e && e <= len);
                assert_eq!(s, covered, "chunk {i} must start where the last ended");
                covered = e;
            }
            assert_eq!(covered, len);
        }
    }
}
