//! Property tests for the textual assembly format: disassembling any
//! representable program and re-parsing it must reproduce the program
//! exactly, and the flag algebra obeys its involutions.

use proptest::prelude::*;
use tet_isa::inst::AluOp;
use tet_isa::text::{disassemble, parse};
use tet_isa::{Addr, Asm, Cond, Flags, Inst, Reg, Src};

fn reg() -> impl Strategy<Value = Reg> {
    prop::sample::select(Reg::ALL.to_vec())
}

fn cond() -> impl Strategy<Value = Cond> {
    prop::sample::select(Cond::ALL.to_vec())
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
    ]
}

/// Addressing modes the textual syntax can represent.
fn addr() -> impl Strategy<Value = Addr> {
    prop_oneof![
        any::<u64>().prop_map(Addr::abs),
        reg().prop_map(Addr::base),
        (reg(), -0x1000i64..0x1000).prop_map(|(b, d)| Addr::base_disp(b, d)),
    ]
}

fn src() -> impl Strategy<Value = Src> {
    prop_oneof![reg().prop_map(Src::Reg), any::<u64>().prop_map(Src::Imm)]
}

/// Straight-line (non-branch) instructions.
fn straight_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        (reg(), any::<u64>()).prop_map(|(dst, imm)| Inst::MovImm { dst, imm }),
        (reg(), reg()).prop_map(|(dst, src)| Inst::MovReg { dst, src }),
        (reg(), addr()).prop_map(|(dst, addr)| Inst::Load { dst, addr }),
        (reg(), addr()).prop_map(|(dst, addr)| Inst::LoadByte { dst, addr }),
        (reg(), addr()).prop_map(|(src, addr)| Inst::Store { src, addr }),
        (reg(), addr()).prop_map(|(src, addr)| Inst::StoreByte { src, addr }),
        (reg(), addr()).prop_map(|(dst, addr)| Inst::Lea { dst, addr }),
        (alu_op(), reg(), src()).prop_map(|(op, dst, src)| Inst::Alu { op, dst, src }),
        (reg(), src()).prop_map(|(a, b)| Inst::Cmp { a, b }),
        (reg(), src()).prop_map(|(a, b)| Inst::Test { a, b }),
        reg().prop_map(|src| Inst::Push { src }),
        reg().prop_map(|dst| Inst::Pop { dst }),
        addr().prop_map(|addr| Inst::Clflush { addr }),
        addr().prop_map(|addr| Inst::Prefetch { addr }),
        Just(Inst::Lfence),
        Just(Inst::Mfence),
        Just(Inst::Sfence),
        Just(Inst::Rdtsc),
        Just(Inst::XEnd),
        Just(Inst::Syscall),
        Just(Inst::Ret),
        reg().prop_map(|reg| Inst::JmpReg { reg }),
    ]
}

proptest! {
    /// disassemble ∘ parse = identity on representable programs.
    #[test]
    fn text_round_trip(
        body in prop::collection::vec(straight_inst(), 1..40),
        branches in prop::collection::vec((cond(), 0usize..40), 0..6),
    ) {
        let mut a = Asm::new();
        for inst in &body {
            a.raw(*inst);
        }
        // Add branches with targets inside the body.
        for (c, t) in &branches {
            a.raw(Inst::Jcc {
                cond: *c,
                target: *t % body.len(),
            });
        }
        a.raw(Inst::Halt);
        let prog = a.assemble().expect("assembles");

        let text = disassemble(&prog);
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(prog, reparsed);
    }

    /// Condition inversion is an involution and exactly complements
    /// evaluation for arbitrary operand pairs.
    #[test]
    fn cond_inversion_complements(a in any::<u64>(), b in any::<u64>()) {
        for c in Cond::ALL {
            let f = Flags::from_sub(a, b);
            prop_assert_eq!(c.invert().invert(), *c);
            prop_assert_ne!(c.eval(f), c.invert().eval(f));
        }
    }

    /// Flags algebra sanity for arbitrary operands.
    #[test]
    fn flags_match_wide_arithmetic(a in any::<u64>(), b in any::<u64>()) {
        let sub = Flags::from_sub(a, b);
        prop_assert_eq!(sub.zf, a == b);
        prop_assert_eq!(sub.cf, a < b);
        prop_assert_eq!(sub.sf, (a.wrapping_sub(b) as i64) < 0);
        prop_assert_eq!(sub.of, (a as i64).checked_sub(b as i64).is_none());

        let add = Flags::from_add(a, b);
        prop_assert_eq!(add.cf, a.checked_add(b).is_none());
        prop_assert_eq!(add.of, (a as i64).checked_add(b as i64).is_none());

        // Signed/unsigned comparisons agree with native operators.
        prop_assert_eq!(Cond::L.eval(sub), (a as i64) < (b as i64));
        prop_assert_eq!(Cond::A.eval(sub), a > b);
        prop_assert_eq!(Cond::Be.eval(sub), a <= b);
        prop_assert_eq!(Cond::Ge.eval(sub), (a as i64) >= (b as i64));
    }

    /// `AluOp::apply` agrees with the native operators.
    #[test]
    fn alu_matches_native(op in alu_op(), a in any::<u64>(), b in any::<u64>()) {
        let expect = match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a << (b & 63),
        };
        prop_assert_eq!(op.apply(a, b), expect);
    }
}
