//! Condition codes and the arithmetic flags they test.

/// The arithmetic status flags set by `cmp`/`test`/ALU instructions.
///
/// # Examples
///
/// ```
/// use tet_isa::Flags;
///
/// let f = Flags::from_sub(5, 5);
/// assert!(f.zf);
/// assert!(!f.cf);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Flags {
    /// Zero flag: result was zero.
    pub zf: bool,
    /// Carry flag: unsigned borrow/carry occurred.
    pub cf: bool,
    /// Sign flag: result's most significant bit.
    pub sf: bool,
    /// Overflow flag: signed overflow occurred.
    pub of: bool,
}

impl Flags {
    /// Flags produced by `a - b` (the semantics of `cmp a, b`).
    pub fn from_sub(a: u64, b: u64) -> Flags {
        let (res, borrow) = a.overflowing_sub(b);
        let sa = (a as i64) < 0;
        let sb = (b as i64) < 0;
        let sr = (res as i64) < 0;
        Flags {
            zf: res == 0,
            cf: borrow,
            sf: sr,
            of: (sa != sb) && (sr != sa),
        }
    }

    /// Flags produced by `a & b` (the semantics of `test a, b`).
    pub fn from_and(a: u64, b: u64) -> Flags {
        let res = a & b;
        Flags {
            zf: res == 0,
            cf: false,
            sf: (res as i64) < 0,
            of: false,
        }
    }

    /// Flags produced by a logical result (and/or/xor write-back forms).
    pub fn from_logic(res: u64) -> Flags {
        Flags {
            zf: res == 0,
            cf: false,
            sf: (res as i64) < 0,
            of: false,
        }
    }

    /// Flags produced by `a + b`.
    pub fn from_add(a: u64, b: u64) -> Flags {
        let (res, carry) = a.overflowing_add(b);
        let sa = (a as i64) < 0;
        let sb = (b as i64) < 0;
        let sr = (res as i64) < 0;
        Flags {
            zf: res == 0,
            cf: carry,
            sf: sr,
            of: (sa == sb) && (sr != sa),
        }
    }
}

/// An x86 condition code, as tested by `Jcc` instructions.
///
/// The paper verifies that at least `JE/JZ`, `JNE/JNZ` and `JC` leak
/// through the TET channel and conjectures all conditional jumps do; the
/// full set is provided so the ablation experiment can sweep them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cond {
    /// `JE`/`JZ`: zero flag set.
    E,
    /// `JNE`/`JNZ`: zero flag clear.
    Ne,
    /// `JC`/`JB`: carry flag set.
    C,
    /// `JNC`/`JAE`: carry flag clear.
    Nc,
    /// `JS`: sign flag set.
    S,
    /// `JNS`: sign flag clear.
    Ns,
    /// `JO`: overflow flag set.
    O,
    /// `JNO`: overflow flag clear.
    No,
    /// `JL`: signed less (`SF != OF`).
    L,
    /// `JGE`: signed greater-or-equal (`SF == OF`).
    Ge,
    /// `JLE`: signed less-or-equal (`ZF || SF != OF`).
    Le,
    /// `JG`: signed greater (`!ZF && SF == OF`).
    G,
    /// `JA`: unsigned above (`!CF && !ZF`).
    A,
    /// `JBE`: unsigned below-or-equal (`CF || ZF`).
    Be,
}

impl Cond {
    /// All condition codes.
    pub const ALL: &'static [Cond] = &[
        Cond::E,
        Cond::Ne,
        Cond::C,
        Cond::Nc,
        Cond::S,
        Cond::Ns,
        Cond::O,
        Cond::No,
        Cond::L,
        Cond::Ge,
        Cond::Le,
        Cond::G,
        Cond::A,
        Cond::Be,
    ];

    /// Evaluates the condition against a set of flags.
    ///
    /// # Examples
    ///
    /// ```
    /// use tet_isa::{Cond, Flags};
    ///
    /// let eq = Flags::from_sub(7, 7);
    /// assert!(Cond::E.eval(eq));
    /// assert!(!Cond::Ne.eval(eq));
    /// ```
    pub fn eval(self, f: Flags) -> bool {
        match self {
            Cond::E => f.zf,
            Cond::Ne => !f.zf,
            Cond::C => f.cf,
            Cond::Nc => !f.cf,
            Cond::S => f.sf,
            Cond::Ns => !f.sf,
            Cond::O => f.of,
            Cond::No => !f.of,
            Cond::L => f.sf != f.of,
            Cond::Ge => f.sf == f.of,
            Cond::Le => f.zf || f.sf != f.of,
            Cond::G => !f.zf && f.sf == f.of,
            Cond::A => !f.cf && !f.zf,
            Cond::Be => f.cf || f.zf,
        }
    }

    /// The condition's logical inverse (`E` ↔ `Ne`, `C` ↔ `Nc`, …).
    pub fn invert(self) -> Cond {
        match self {
            Cond::E => Cond::Ne,
            Cond::Ne => Cond::E,
            Cond::C => Cond::Nc,
            Cond::Nc => Cond::C,
            Cond::S => Cond::Ns,
            Cond::Ns => Cond::S,
            Cond::O => Cond::No,
            Cond::No => Cond::O,
            Cond::L => Cond::Ge,
            Cond::Ge => Cond::L,
            Cond::Le => Cond::G,
            Cond::G => Cond::Le,
            Cond::A => Cond::Be,
            Cond::Be => Cond::A,
        }
    }

    /// The conventional mnemonic, e.g. `"je"`.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Cond::E => "je",
            Cond::Ne => "jne",
            Cond::C => "jc",
            Cond::Nc => "jnc",
            Cond::S => "js",
            Cond::Ns => "jns",
            Cond::O => "jo",
            Cond::No => "jno",
            Cond::L => "jl",
            Cond::Ge => "jge",
            Cond::Le => "jle",
            Cond::G => "jg",
            Cond::A => "ja",
            Cond::Be => "jbe",
        }
    }
}

impl std::fmt::Display for Cond {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_flags_equality() {
        let f = Flags::from_sub(42, 42);
        assert!(f.zf && !f.cf && !f.sf && !f.of);
    }

    #[test]
    fn sub_flags_borrow() {
        let f = Flags::from_sub(1, 2);
        assert!(!f.zf && f.cf && f.sf);
    }

    #[test]
    fn sub_flags_signed_overflow() {
        // i64::MIN - 1 overflows signed.
        let f = Flags::from_sub(i64::MIN as u64, 1);
        assert!(f.of);
    }

    #[test]
    fn add_flags_carry_and_overflow() {
        let f = Flags::from_add(u64::MAX, 1);
        assert!(f.zf && f.cf && !f.of);
        let f = Flags::from_add(i64::MAX as u64, 1);
        assert!(f.of && f.sf);
    }

    #[test]
    fn and_flags() {
        let f = Flags::from_and(0b1010, 0b0101);
        assert!(f.zf && !f.cf && !f.of);
    }

    #[test]
    fn inversion_is_involutive_and_complementary() {
        let samples = [
            Flags::from_sub(0, 0),
            Flags::from_sub(1, 2),
            Flags::from_sub(2, 1),
            Flags::from_sub(i64::MIN as u64, 1),
            Flags::from_add(u64::MAX, 1),
        ];
        for c in Cond::ALL {
            assert_eq!(c.invert().invert(), *c);
            for f in samples {
                assert_ne!(c.eval(f), c.invert().eval(f), "{c} on {f:?}");
            }
        }
    }

    #[test]
    fn signed_vs_unsigned_comparisons() {
        // -1 vs 1: signed less, unsigned above.
        let f = Flags::from_sub(u64::MAX, 1);
        assert!(Cond::L.eval(f));
        assert!(Cond::A.eval(f));
    }

    #[test]
    fn mnemonics_are_unique() {
        let set: std::collections::HashSet<_> = Cond::ALL.iter().map(|c| c.mnemonic()).collect();
        assert_eq!(set.len(), Cond::ALL.len());
    }
}
