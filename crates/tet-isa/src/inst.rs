//! Instruction definitions.

use crate::cond::Cond;
use crate::reg::Reg;

/// A memory operand: `disp(base, index*scale)` in AT&T terms.
///
/// Absolute addresses are expressed with no base register and the address
/// in `disp` — how the paper's gadgets reference kernel probe addresses.
///
/// # Examples
///
/// ```
/// use tet_isa::{Addr, Reg};
///
/// let stack_top = Addr::base(Reg::Rsp);
/// let kernel = Addr::abs(0xffff_ffff_8000_0000);
/// assert_eq!(kernel.disp, 0xffff_ffff_8000_0000u64 as i64);
/// assert!(stack_top.base.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Addr {
    /// Base register, if any.
    pub base: Option<Reg>,
    /// Index register and scale (1, 2, 4 or 8), if any.
    pub index: Option<(Reg, u8)>,
    /// Displacement, added to base and scaled index.
    pub disp: i64,
}

impl Addr {
    /// `disp` only — an absolute virtual address.
    pub const fn abs(addr: u64) -> Addr {
        Addr {
            base: None,
            index: None,
            disp: addr as i64,
        }
    }

    /// `(base)` — register-indirect with no displacement.
    pub const fn base(base: Reg) -> Addr {
        Addr {
            base: Some(base),
            index: None,
            disp: 0,
        }
    }

    /// `disp(base)` — register-indirect with displacement.
    pub const fn base_disp(base: Reg, disp: i64) -> Addr {
        Addr {
            base: Some(base),
            index: None,
            disp,
        }
    }

    /// `disp(base, index*scale)` — full form.
    pub const fn base_index(base: Reg, index: Reg, scale: u8, disp: i64) -> Addr {
        Addr {
            base: Some(base),
            index: Some((index, scale)),
            disp,
        }
    }

    /// Registers this operand reads to form its effective address.
    pub fn srcs(&self) -> impl Iterator<Item = Reg> {
        self.base.into_iter().chain(self.index.map(|(r, _)| r))
    }
}

/// A source operand: register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src {
    /// A register source.
    Reg(Reg),
    /// An immediate source.
    Imm(u64),
}

impl From<Reg> for Src {
    fn from(r: Reg) -> Src {
        Src::Reg(r)
    }
}

impl From<u64> for Src {
    fn from(v: u64) -> Src {
        Src::Imm(v)
    }
}

/// Flag-setting ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the operations are self-describing
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    /// Logical left shift (count masked to 63, as on x86-64).
    Shl,
}

impl AluOp {
    /// Applies the operation.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a << (b & 63),
        }
    }
}

/// One instruction of the simulated ISA.
///
/// Branch targets are *instruction indices* into the owning
/// [`Program`](crate::Program); the [`Asm`](crate::Asm) builder resolves
/// labels to indices at assembly time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// No operation.
    Nop,
    /// `dst <- imm`.
    MovImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: u64,
    },
    /// `dst <- src`.
    MovReg {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// 8-byte load: `dst <- mem[addr]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Memory operand.
        addr: Addr,
    },
    /// Zero-extending 1-byte load: `dst <- zx(mem8[addr])` — how the
    /// paper's gadgets read secret bytes.
    LoadByte {
        /// Destination register.
        dst: Reg,
        /// Memory operand.
        addr: Addr,
    },
    /// 8-byte store: `mem[addr] <- src`.
    Store {
        /// Source register.
        src: Reg,
        /// Memory operand.
        addr: Addr,
    },
    /// 1-byte store: `mem8[addr] <- src & 0xff`.
    StoreByte {
        /// Source register.
        src: Reg,
        /// Memory operand.
        addr: Addr,
    },
    /// Load effective address: `dst <- &addr` (no memory access).
    Lea {
        /// Destination register.
        dst: Reg,
        /// Memory operand whose effective address is taken.
        addr: Addr,
    },
    /// Flag-setting ALU op: `dst <- op(dst, src)`.
    Alu {
        /// The operation.
        op: AluOp,
        /// Destination (and first source) register.
        dst: Reg,
        /// Second source operand.
        src: Src,
    },
    /// Compare: sets flags from `a - b` without writing a register.
    Cmp {
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Src,
    },
    /// Test: sets flags from `a & b` without writing a register.
    Test {
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Src,
    },
    /// Conditional jump to an instruction index.
    Jcc {
        /// Condition tested against the flags.
        cond: Cond,
        /// Target instruction index.
        target: usize,
    },
    /// Unconditional jump.
    Jmp {
        /// Target instruction index.
        target: usize,
    },
    /// Indirect jump through a register holding an instruction index.
    JmpReg {
        /// Register holding the target instruction index.
        reg: Reg,
    },
    /// Call: pushes the return index on the stack, jumps to `target`.
    Call {
        /// Target instruction index.
        target: usize,
    },
    /// Return: pops the return index from the stack. Predicted by the RSB.
    Ret,
    /// Push a register on the stack (`rsp -= 8; mem[rsp] <- src`).
    Push {
        /// Source register.
        src: Reg,
    },
    /// Pop a register from the stack (`dst <- mem[rsp]; rsp += 8`).
    Pop {
        /// Destination register.
        dst: Reg,
    },
    /// Flush the cache line containing `addr` from the whole hierarchy.
    Clflush {
        /// Memory operand whose line is flushed.
        addr: Addr,
    },
    /// Software prefetch of `addr` (never faults; used by the baseline
    /// EntryBleed-style KASLR probe).
    Prefetch {
        /// Memory operand to prefetch.
        addr: Addr,
    },
    /// Load fence: younger instructions wait until all older instructions
    /// complete. Serialises `rdtsc` measurements like the paper's gadgets.
    Lfence,
    /// Full memory fence (same serialising behaviour in this model, plus
    /// store-buffer drain).
    Mfence,
    /// Store fence (drains the store buffer).
    Sfence,
    /// Read the time-stamp counter into `rax` (cycle-resolution).
    Rdtsc,
    /// Begin a TSX transaction; on any abort, control transfers to
    /// `abort_target` with no architectural side effects.
    XBegin {
        /// Instruction index control resumes at on abort.
        abort_target: usize,
    },
    /// End (commit) the innermost TSX transaction.
    XEnd,
    /// Minimal syscall model: enters the kernel through the KPTI
    /// trampoline (warming its TLB entries) and returns.
    Syscall,
    /// Stop the simulation (architecturally retires, then halts).
    Halt,
}

/// Placeholder for unresolved branch targets inside [`Asm`](crate::Asm).
pub(crate) const UNRESOLVED: usize = usize::MAX;

impl Inst {
    /// The instruction's mnemonic — a static name used by trace events
    /// and timeline exports.
    pub const fn mnemonic(&self) -> &'static str {
        match self {
            Inst::Nop => "nop",
            Inst::MovImm { .. } => "mov_imm",
            Inst::MovReg { .. } => "mov",
            Inst::Load { .. } => "load",
            Inst::LoadByte { .. } => "load_byte",
            Inst::Store { .. } => "store",
            Inst::StoreByte { .. } => "store_byte",
            Inst::Lea { .. } => "lea",
            Inst::Alu { op, .. } => match op {
                AluOp::Add => "add",
                AluOp::Sub => "sub",
                AluOp::And => "and",
                AluOp::Or => "or",
                AluOp::Xor => "xor",
                AluOp::Shl => "shl",
            },
            Inst::Cmp { .. } => "cmp",
            Inst::Test { .. } => "test",
            Inst::Jcc { .. } => "jcc",
            Inst::Jmp { .. } => "jmp",
            Inst::JmpReg { .. } => "jmp_reg",
            Inst::Call { .. } => "call",
            Inst::Ret => "ret",
            Inst::Push { .. } => "push",
            Inst::Pop { .. } => "pop",
            Inst::Clflush { .. } => "clflush",
            Inst::Prefetch { .. } => "prefetch",
            Inst::Lfence => "lfence",
            Inst::Mfence => "mfence",
            Inst::Sfence => "sfence",
            Inst::Rdtsc => "rdtsc",
            Inst::XBegin { .. } => "xbegin",
            Inst::XEnd => "xend",
            Inst::Syscall => "syscall",
            Inst::Halt => "halt",
        }
    }

    /// Is this a control-flow instruction (jump/call/ret)?
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Inst::Jcc { .. }
                | Inst::Jmp { .. }
                | Inst::JmpReg { .. }
                | Inst::Call { .. }
                | Inst::Ret
        )
    }

    /// Does this instruction access data memory?
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. }
                | Inst::LoadByte { .. }
                | Inst::Store { .. }
                | Inst::StoreByte { .. }
                | Inst::Push { .. }
                | Inst::Pop { .. }
                | Inst::Call { .. }
                | Inst::Ret
                | Inst::Clflush { .. }
                | Inst::Prefetch { .. }
        )
    }

    /// Is this a serialising fence?
    pub fn is_fence(&self) -> bool {
        matches!(self, Inst::Lfence | Inst::Mfence | Inst::Sfence)
    }

    /// The register this instruction architecturally writes, if any
    /// (`rsp` side effects of push/pop/call/ret are handled separately by
    /// the pipeline's stack engine).
    pub fn dest_reg(&self) -> Option<Reg> {
        match self {
            Inst::MovImm { dst, .. }
            | Inst::MovReg { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::LoadByte { dst, .. }
            | Inst::Lea { dst, .. }
            | Inst::Alu { dst, .. }
            | Inst::Pop { dst } => Some(*dst),
            Inst::Rdtsc => Some(Reg::Rax),
            _ => None,
        }
    }

    /// Does this instruction write the arithmetic flags?
    pub fn writes_flags(&self) -> bool {
        matches!(
            self,
            Inst::Alu { .. } | Inst::Cmp { .. } | Inst::Test { .. }
        )
    }

    /// Does this instruction read the arithmetic flags?
    pub fn reads_flags(&self) -> bool {
        matches!(self, Inst::Jcc { .. })
    }

    /// The dense per-variant opcode of this instruction — the key into
    /// threaded-code dispatch tables (one handler slot per variant, see
    /// the execute table in `tet-uarch`).
    pub const fn opcode(&self) -> Opcode {
        match self {
            Inst::Nop => Opcode::Nop,
            Inst::MovImm { .. } => Opcode::MovImm,
            Inst::MovReg { .. } => Opcode::MovReg,
            Inst::Load { .. } => Opcode::Load,
            Inst::LoadByte { .. } => Opcode::LoadByte,
            Inst::Store { .. } => Opcode::Store,
            Inst::StoreByte { .. } => Opcode::StoreByte,
            Inst::Lea { .. } => Opcode::Lea,
            Inst::Alu { .. } => Opcode::Alu,
            Inst::Cmp { .. } => Opcode::Cmp,
            Inst::Test { .. } => Opcode::Test,
            Inst::Jcc { .. } => Opcode::Jcc,
            Inst::Jmp { .. } => Opcode::Jmp,
            Inst::JmpReg { .. } => Opcode::JmpReg,
            Inst::Call { .. } => Opcode::Call,
            Inst::Ret => Opcode::Ret,
            Inst::Push { .. } => Opcode::Push,
            Inst::Pop { .. } => Opcode::Pop,
            Inst::Clflush { .. } => Opcode::Clflush,
            Inst::Prefetch { .. } => Opcode::Prefetch,
            Inst::Lfence => Opcode::Lfence,
            Inst::Mfence => Opcode::Mfence,
            Inst::Sfence => Opcode::Sfence,
            Inst::Rdtsc => Opcode::Rdtsc,
            Inst::XBegin { .. } => Opcode::XBegin,
            Inst::XEnd => Opcode::XEnd,
            Inst::Syscall => Opcode::Syscall,
            Inst::Halt => Opcode::Halt,
        }
    }
}

/// Dense opcode index, one per [`Inst`] variant, in declaration order.
/// Dispatch tables are `[T; Opcode::COUNT]` arrays indexed by
/// `opcode as usize`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// `Inst::Nop`
    Nop,
    /// `Inst::MovImm`
    MovImm,
    /// `Inst::MovReg`
    MovReg,
    /// `Inst::Load`
    Load,
    /// `Inst::LoadByte`
    LoadByte,
    /// `Inst::Store`
    Store,
    /// `Inst::StoreByte`
    StoreByte,
    /// `Inst::Lea`
    Lea,
    /// `Inst::Alu`
    Alu,
    /// `Inst::Cmp`
    Cmp,
    /// `Inst::Test`
    Test,
    /// `Inst::Jcc`
    Jcc,
    /// `Inst::Jmp`
    Jmp,
    /// `Inst::JmpReg`
    JmpReg,
    /// `Inst::Call`
    Call,
    /// `Inst::Ret`
    Ret,
    /// `Inst::Push`
    Push,
    /// `Inst::Pop`
    Pop,
    /// `Inst::Clflush`
    Clflush,
    /// `Inst::Prefetch`
    Prefetch,
    /// `Inst::Lfence`
    Lfence,
    /// `Inst::Mfence`
    Mfence,
    /// `Inst::Sfence`
    Sfence,
    /// `Inst::Rdtsc`
    Rdtsc,
    /// `Inst::XBegin`
    XBegin,
    /// `Inst::XEnd`
    XEnd,
    /// `Inst::Syscall`
    Syscall,
    /// `Inst::Halt`
    Halt,
}

impl Opcode {
    /// Number of opcodes (the dispatch-table length).
    pub const COUNT: usize = 28;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_constructors() {
        let a = Addr::abs(0x1000);
        assert_eq!((a.base, a.index, a.disp), (None, None, 0x1000));
        let b = Addr::base_disp(Reg::Rcx, -8);
        assert_eq!(b.base, Some(Reg::Rcx));
        assert_eq!(b.disp, -8);
        let c = Addr::base_index(Reg::Rbx, Reg::Rdx, 8, 16);
        assert_eq!(c.index, Some((Reg::Rdx, 8)));
        let srcs: Vec<_> = c.srcs().collect();
        assert_eq!(srcs, vec![Reg::Rbx, Reg::Rdx]);
    }

    #[test]
    fn alu_ops_apply() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), u64::MAX);
        assert_eq!(AluOp::And.apply(0b110, 0b011), 0b010);
        assert_eq!(AluOp::Or.apply(0b100, 0b001), 0b101);
        assert_eq!(AluOp::Xor.apply(0b110, 0b011), 0b101);
    }

    #[test]
    fn classification() {
        assert!(Inst::Ret.is_branch());
        assert!(Inst::Ret.is_memory());
        assert!(Inst::Lfence.is_fence());
        assert!(!Inst::Nop.is_branch());
        assert!(Inst::Jcc {
            cond: Cond::E,
            target: 0
        }
        .reads_flags());
        assert!(Inst::Cmp {
            a: Reg::Rax,
            b: Src::Imm(1)
        }
        .writes_flags());
        assert_eq!(Inst::Rdtsc.dest_reg(), Some(Reg::Rax));
        assert_eq!(Inst::Nop.dest_reg(), None);
    }

    #[test]
    fn src_conversions() {
        assert_eq!(Src::from(Reg::Rbx), Src::Reg(Reg::Rbx));
        assert_eq!(Src::from(9u64), Src::Imm(9));
    }
}
