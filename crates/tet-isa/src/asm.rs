//! Label-based program builder ("assembler") and the assembled [`Program`].

use crate::cond::Cond;
use crate::inst::{Addr, AluOp, Inst, Src, UNRESOLVED};
use crate::reg::Reg;

/// An opaque, builder-scoped branch-target label.
///
/// Obtain one with [`Asm::fresh_label`], reference it in jumps/calls, and
/// place it with [`Asm::bind`]. Labels may be referenced before or after
/// they are bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors produced by [`Asm::assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssembleError {
    /// A label was referenced but never bound.
    UnboundLabel {
        /// Index of the instruction that references the label.
        at: usize,
    },
    /// The program is empty.
    Empty,
}

impl std::fmt::Display for AssembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssembleError::UnboundLabel { at } => {
                write!(
                    f,
                    "instruction {at} references a label that was never bound"
                )
            }
            AssembleError::Empty => f.write_str("program contains no instructions"),
        }
    }
}

impl std::error::Error for AssembleError {}

/// An assembled, immutable program: a sequence of instructions with all
/// branch targets resolved to instruction indices.
///
/// # Examples
///
/// ```
/// use tet_isa::{Asm, Reg};
///
/// # fn main() -> Result<(), tet_isa::AssembleError> {
/// let mut a = Asm::new();
/// a.mov_imm(Reg::Rax, 1).halt();
/// let prog = a.assemble()?;
/// assert_eq!(prog.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    insts: Vec<Inst>,
}

impl Program {
    /// The instruction at `pc`, or `None` past the end.
    #[inline]
    pub fn fetch(&self, pc: usize) -> Option<Inst> {
        self.insts.get(pc).copied()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// All instructions in order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }
}

impl std::fmt::Display for Program {
    /// Renders a simple disassembly listing, one instruction per line.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, inst) in self.insts.iter().enumerate() {
            writeln!(f, "{i:4}: {inst:?}")?;
        }
        Ok(())
    }
}

/// The program builder.
///
/// All emit methods return `&mut Self` so gadgets read like assembly
/// listings. See the [crate docs](crate) for a full example.
#[derive(Debug, Clone, Default)]
pub struct Asm {
    insts: Vec<Inst>,
    /// Bound position of each label (by label id), `None` until bound.
    labels: Vec<Option<usize>>,
    /// `(instruction index, label id)` pairs awaiting resolution.
    patches: Vec<(usize, usize)>,
}

impl Asm {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh, unbound label.
    pub fn fresh_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the *next* emitted instruction's index.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (each label is bound once).
    pub fn bind(&mut self, label: Label) -> &mut Self {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.insts.len());
        self
    }

    /// Index the next emitted instruction will occupy.
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    /// Emits a raw instruction (escape hatch for unusual encodings).
    pub fn raw(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    fn emit_target(&mut self, make: impl FnOnce(usize) -> Inst, label: Label) -> &mut Self {
        let at = self.insts.len();
        self.insts.push(make(UNRESOLVED));
        self.patches.push((at, label.0));
        self
    }

    // ----- straight-line instructions ------------------------------------

    /// Emits `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.raw(Inst::Nop)
    }

    /// Emits `count` consecutive `nop`s.
    pub fn nops(&mut self, count: usize) -> &mut Self {
        for _ in 0..count {
            self.nop();
        }
        self
    }

    /// Emits `mov dst, imm`.
    pub fn mov_imm(&mut self, dst: Reg, imm: u64) -> &mut Self {
        self.raw(Inst::MovImm { dst, imm })
    }

    /// Emits `mov dst, src`.
    pub fn mov_reg(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.raw(Inst::MovReg { dst, src })
    }

    /// Emits an 8-byte load `mov dst, disp(base)`.
    pub fn load(&mut self, dst: Reg, base: Reg, disp: i64) -> &mut Self {
        self.raw(Inst::Load {
            dst,
            addr: Addr::base_disp(base, disp),
        })
    }

    /// Emits an 8-byte load from an absolute address.
    pub fn load_abs(&mut self, dst: Reg, addr: u64) -> &mut Self {
        self.raw(Inst::Load {
            dst,
            addr: Addr::abs(addr),
        })
    }

    /// Emits an 8-byte load with a full memory operand.
    pub fn load_addr(&mut self, dst: Reg, addr: Addr) -> &mut Self {
        self.raw(Inst::Load { dst, addr })
    }

    /// Emits a zero-extending byte load `movzx dst, byte disp(base)`.
    pub fn load_byte(&mut self, dst: Reg, base: Reg, disp: i64) -> &mut Self {
        self.raw(Inst::LoadByte {
            dst,
            addr: Addr::base_disp(base, disp),
        })
    }

    /// Emits a zero-extending byte load from an absolute address.
    pub fn load_byte_abs(&mut self, dst: Reg, addr: u64) -> &mut Self {
        self.raw(Inst::LoadByte {
            dst,
            addr: Addr::abs(addr),
        })
    }

    /// Emits an 8-byte store `mov disp(base), src`.
    pub fn store(&mut self, src: Reg, base: Reg, disp: i64) -> &mut Self {
        self.raw(Inst::Store {
            src,
            addr: Addr::base_disp(base, disp),
        })
    }

    /// Emits an 8-byte store to an absolute address.
    pub fn store_abs(&mut self, src: Reg, addr: u64) -> &mut Self {
        self.raw(Inst::Store {
            src,
            addr: Addr::abs(addr),
        })
    }

    /// Emits a 1-byte store to an absolute address.
    pub fn store_byte_abs(&mut self, src: Reg, addr: u64) -> &mut Self {
        self.raw(Inst::StoreByte {
            src,
            addr: Addr::abs(addr),
        })
    }

    /// Emits `lea dst, addr`.
    pub fn lea(&mut self, dst: Reg, addr: Addr) -> &mut Self {
        self.raw(Inst::Lea { dst, addr })
    }

    /// Emits `add dst, src`.
    pub fn add(&mut self, dst: Reg, src: impl Into<Src>) -> &mut Self {
        self.raw(Inst::Alu {
            op: AluOp::Add,
            dst,
            src: src.into(),
        })
    }

    /// Emits `sub dst, src`.
    pub fn sub(&mut self, dst: Reg, src: impl Into<Src>) -> &mut Self {
        self.raw(Inst::Alu {
            op: AluOp::Sub,
            dst,
            src: src.into(),
        })
    }

    /// Emits `and dst, src`.
    pub fn and(&mut self, dst: Reg, src: impl Into<Src>) -> &mut Self {
        self.raw(Inst::Alu {
            op: AluOp::And,
            dst,
            src: src.into(),
        })
    }

    /// Emits `or dst, src`.
    pub fn or(&mut self, dst: Reg, src: impl Into<Src>) -> &mut Self {
        self.raw(Inst::Alu {
            op: AluOp::Or,
            dst,
            src: src.into(),
        })
    }

    /// Emits `xor dst, src`.
    pub fn xor(&mut self, dst: Reg, src: impl Into<Src>) -> &mut Self {
        self.raw(Inst::Alu {
            op: AluOp::Xor,
            dst,
            src: src.into(),
        })
    }

    /// Emits `shl dst, src`.
    pub fn shl(&mut self, dst: Reg, src: impl Into<Src>) -> &mut Self {
        self.raw(Inst::Alu {
            op: AluOp::Shl,
            dst,
            src: src.into(),
        })
    }

    /// Emits `cmp a, b` with a register second operand.
    pub fn cmp(&mut self, a: Reg, b: Reg) -> &mut Self {
        self.raw(Inst::Cmp { a, b: Src::Reg(b) })
    }

    /// Emits `cmp a, imm`.
    pub fn cmp_imm(&mut self, a: Reg, imm: u64) -> &mut Self {
        self.raw(Inst::Cmp {
            a,
            b: Src::Imm(imm),
        })
    }

    /// Emits `test a, b`.
    pub fn test(&mut self, a: Reg, b: impl Into<Src>) -> &mut Self {
        self.raw(Inst::Test { a, b: b.into() })
    }

    // ----- control flow ---------------------------------------------------

    /// Emits a conditional jump to `label`.
    pub fn jcc(&mut self, cond: Cond, label: Label) -> &mut Self {
        self.emit_target(|target| Inst::Jcc { cond, target }, label)
    }

    /// Emits an unconditional jump to `label`.
    pub fn jmp(&mut self, label: Label) -> &mut Self {
        self.emit_target(|target| Inst::Jmp { target }, label)
    }

    /// Emits an indirect jump through `reg`.
    pub fn jmp_reg(&mut self, reg: Reg) -> &mut Self {
        self.raw(Inst::JmpReg { reg })
    }

    /// Emits `call label`.
    pub fn call(&mut self, label: Label) -> &mut Self {
        self.emit_target(|target| Inst::Call { target }, label)
    }

    /// Emits `ret`.
    pub fn ret(&mut self) -> &mut Self {
        self.raw(Inst::Ret)
    }

    /// Emits `push src`.
    pub fn push(&mut self, src: Reg) -> &mut Self {
        self.raw(Inst::Push { src })
    }

    /// Emits `pop dst`.
    pub fn pop(&mut self, dst: Reg) -> &mut Self {
        self.raw(Inst::Pop { dst })
    }

    // ----- system / timing -------------------------------------------------

    /// Emits `clflush disp(base)`.
    pub fn clflush(&mut self, base: Reg, disp: i64) -> &mut Self {
        self.raw(Inst::Clflush {
            addr: Addr::base_disp(base, disp),
        })
    }

    /// Emits `clflush` of an absolute address.
    pub fn clflush_abs(&mut self, addr: u64) -> &mut Self {
        self.raw(Inst::Clflush {
            addr: Addr::abs(addr),
        })
    }

    /// Emits a software prefetch of an absolute address.
    pub fn prefetch_abs(&mut self, addr: u64) -> &mut Self {
        self.raw(Inst::Prefetch {
            addr: Addr::abs(addr),
        })
    }

    /// Emits `lfence`.
    pub fn lfence(&mut self) -> &mut Self {
        self.raw(Inst::Lfence)
    }

    /// Emits `mfence`.
    pub fn mfence(&mut self) -> &mut Self {
        self.raw(Inst::Mfence)
    }

    /// Emits `sfence`.
    pub fn sfence(&mut self) -> &mut Self {
        self.raw(Inst::Sfence)
    }

    /// Emits `rdtsc` (result in `rax`).
    pub fn rdtsc(&mut self) -> &mut Self {
        self.raw(Inst::Rdtsc)
    }

    /// Emits `xbegin` with `abort` as the fallback target.
    pub fn xbegin(&mut self, abort: Label) -> &mut Self {
        self.emit_target(|abort_target| Inst::XBegin { abort_target }, abort)
    }

    /// Emits `xend`.
    pub fn xend(&mut self) -> &mut Self {
        self.raw(Inst::XEnd)
    }

    /// Emits `syscall`.
    pub fn syscall(&mut self) -> &mut Self {
        self.raw(Inst::Syscall)
    }

    /// Emits `hlt` (ends the simulation).
    pub fn halt(&mut self) -> &mut Self {
        self.raw(Inst::Halt)
    }

    // ----- assembly ---------------------------------------------------------

    /// Resolves all labels and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AssembleError::UnboundLabel`] if any referenced label was
    /// never [`bind`](Asm::bind)-ed, and [`AssembleError::Empty`] for an
    /// empty program.
    pub fn assemble(&self) -> Result<Program, AssembleError> {
        if self.insts.is_empty() {
            return Err(AssembleError::Empty);
        }
        let mut insts = self.insts.clone();
        for &(at, label_id) in &self.patches {
            let target = self.labels[label_id].ok_or(AssembleError::UnboundLabel { at })?;
            match &mut insts[at] {
                Inst::Jcc { target: t, .. }
                | Inst::Jmp { target: t }
                | Inst::Call { target: t }
                | Inst::XBegin { abort_target: t } => *t = target,
                other => unreachable!("patch recorded for non-target instruction {other:?}"),
            }
        }
        Ok(Program { insts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        let top = a.fresh_label();
        let out = a.fresh_label();
        a.bind(top)
            .nop()
            .jcc(Cond::E, out) // forward
            .jmp(top) // backward
            .bind(out)
            .halt();
        let p = a.assemble().unwrap();
        assert_eq!(
            p.fetch(1),
            Some(Inst::Jcc {
                cond: Cond::E,
                target: 3
            })
        );
        assert_eq!(p.fetch(2), Some(Inst::Jmp { target: 0 }));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Asm::new();
        let l = a.fresh_label();
        a.jmp(l);
        assert_eq!(a.assemble(), Err(AssembleError::UnboundLabel { at: 0 }));
    }

    #[test]
    fn empty_program_is_an_error() {
        assert_eq!(Asm::new().assemble(), Err(AssembleError::Empty));
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new();
        let l = a.fresh_label();
        a.bind(l).nop().bind(l);
    }

    #[test]
    fn xbegin_targets_resolve() {
        let mut a = Asm::new();
        let abort = a.fresh_label();
        a.xbegin(abort).nop().xend().bind(abort).halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.fetch(0), Some(Inst::XBegin { abort_target: 3 }));
    }

    #[test]
    fn here_tracks_next_index() {
        let mut a = Asm::new();
        assert_eq!(a.here(), 0);
        a.nop().nop();
        assert_eq!(a.here(), 2);
    }

    #[test]
    fn nops_emits_n() {
        let mut a = Asm::new();
        a.nops(5).halt();
        assert_eq!(a.assemble().unwrap().len(), 6);
    }

    #[test]
    fn fetch_past_end_is_none() {
        let mut a = Asm::new();
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.fetch(1), None);
    }

    #[test]
    fn display_lists_instructions() {
        let mut a = Asm::new();
        a.mov_imm(Reg::Rax, 7).halt();
        let p = a.assemble().unwrap();
        let listing = p.to_string();
        assert!(listing.contains("MovImm"));
        assert!(listing.contains("Halt"));
    }

    #[test]
    fn assemble_is_repeatable() {
        let mut a = Asm::new();
        let l = a.fresh_label();
        a.jmp(l).bind(l).halt();
        let p1 = a.assemble().unwrap();
        let p2 = a.assemble().unwrap();
        assert_eq!(p1, p2);
    }
}
