//! A textual assembly format: parse gadgets written as text, and print
//! programs back out ([`disassemble`]). The syntax is Intel-flavoured
//! (`op dst, src`), one instruction per line, `;` or `#` comments,
//! `label:` definitions.
//!
//! # Examples
//!
//! The Figure 1a TET block as text:
//!
//! ```
//! use tet_isa::text::parse;
//!
//! # fn main() -> Result<(), tet_isa::text::ParseError> {
//! let prog = parse(
//!     r#"
//!     rdtsc
//!     mov r8, rax
//!     lfence
//!     ldb rax, [0xffffffff81000000]   ; faulting transient load
//!     cmp rax, rbx
//!     je matched
//!     nop
//! matched:
//!     nop
//!     rdtsc
//!     sub rax, r8
//!     halt
//!     "#,
//! )?;
//! assert_eq!(prog.len(), 11);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use crate::asm::Program;
use crate::cond::Cond;
use crate::inst::{Addr, AluOp, Inst, Src};
use crate::reg::Reg;

/// A parse failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    Reg::ALL
        .iter()
        .copied()
        .find(|r| r.name() == tok)
        .ok_or_else(|| err(line, format!("unknown register `{tok}`")))
}

fn parse_imm(tok: &str, line: usize) -> Result<u64, ParseError> {
    let (s, neg) = match tok.strip_prefix('-') {
        Some(rest) => (rest, true),
        None => (tok, false),
    };
    let v = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse::<u64>()
    }
    .map_err(|_| err(line, format!("bad immediate `{tok}`")))?;
    Ok(if neg { v.wrapping_neg() } else { v })
}

fn parse_src(tok: &str, line: usize) -> Result<Src, ParseError> {
    if let Ok(r) = parse_reg(tok, line) {
        Ok(Src::Reg(r))
    } else {
        Ok(Src::Imm(parse_imm(tok, line)?))
    }
}

/// Parses `[base]`, `[base+disp]`, `[base-disp]` or `[abs]`.
fn parse_mem(tok: &str, line: usize) -> Result<Addr, ParseError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| {
            err(
                line,
                format!("expected memory operand `[...]`, got `{tok}`"),
            )
        })?;
    let inner = inner.trim();
    // base +/- disp
    for (i, c) in inner.char_indices().skip(1) {
        if c == '+' || c == '-' {
            let base = parse_reg(inner[..i].trim(), line)?;
            let disp = parse_imm(inner[i + 1..].trim(), line)? as i64;
            return Ok(Addr::base_disp(base, if c == '-' { -disp } else { disp }));
        }
    }
    if let Ok(base) = parse_reg(inner, line) {
        Ok(Addr::base(base))
    } else {
        Ok(Addr::abs(parse_imm(inner, line)?))
    }
}

fn split_operands(rest: &str) -> Vec<String> {
    rest.split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Parses a text program into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseError`] for unknown mnemonics/registers, malformed
/// operands, duplicate or undefined labels, and empty programs.
pub fn parse(source: &str) -> Result<Program, ParseError> {
    // Pass 1: assign instruction indices, record label positions.
    struct Pending {
        line: usize,
        mnemonic: String,
        operands: Vec<String>,
    }
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut pending: Vec<Pending> = Vec::new();

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        if let Some(i) = text.find([';', '#']) {
            text = &text[..i];
        }
        let mut text = text.trim();
        // Labels (possibly several) at line start.
        while let Some(colon) = text.find(':') {
            let (name, rest) = text.split_at(colon);
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                break; // not a label — let the mnemonic parser complain
            }
            if labels.insert(name.to_string(), pending.len()).is_some() {
                return Err(err(line, format!("duplicate label `{name}`")));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };
        pending.push(Pending {
            line,
            mnemonic: mnemonic.to_lowercase(),
            operands: split_operands(rest),
        });
    }

    // Pass 2: encode.
    let mut insts = Vec::with_capacity(pending.len());
    let resolve = |name: &str, line: usize| -> Result<usize, ParseError> {
        labels
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("undefined label `{name}`")))
    };

    for p in &pending {
        let line = p.line;
        let ops = &p.operands;
        let n = ops.len();
        let want = |k: usize| -> Result<(), ParseError> {
            if n == k {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!("`{}` expects {k} operand(s), got {n}", p.mnemonic),
                ))
            }
        };
        let alu = |op: AluOp| -> Result<Inst, ParseError> {
            want(2)?;
            Ok(Inst::Alu {
                op,
                dst: parse_reg(&ops[0], line)?,
                src: parse_src(&ops[1], line)?,
            })
        };

        let inst = match p.mnemonic.as_str() {
            "nop" => {
                want(0)?;
                Inst::Nop
            }
            "halt" | "hlt" => {
                want(0)?;
                Inst::Halt
            }
            "mov" => {
                want(2)?;
                if ops[0].starts_with('[') {
                    Inst::Store {
                        src: parse_reg(&ops[1], line)?,
                        addr: parse_mem(&ops[0], line)?,
                    }
                } else if ops[1].starts_with('[') {
                    Inst::Load {
                        dst: parse_reg(&ops[0], line)?,
                        addr: parse_mem(&ops[1], line)?,
                    }
                } else if let Ok(srcreg) = parse_reg(&ops[1], line) {
                    Inst::MovReg {
                        dst: parse_reg(&ops[0], line)?,
                        src: srcreg,
                    }
                } else {
                    Inst::MovImm {
                        dst: parse_reg(&ops[0], line)?,
                        imm: parse_imm(&ops[1], line)?,
                    }
                }
            }
            "ldb" | "movzxb" => {
                want(2)?;
                Inst::LoadByte {
                    dst: parse_reg(&ops[0], line)?,
                    addr: parse_mem(&ops[1], line)?,
                }
            }
            "stb" => {
                want(2)?;
                Inst::StoreByte {
                    src: parse_reg(&ops[1], line)?,
                    addr: parse_mem(&ops[0], line)?,
                }
            }
            "lea" => {
                want(2)?;
                Inst::Lea {
                    dst: parse_reg(&ops[0], line)?,
                    addr: parse_mem(&ops[1], line)?,
                }
            }
            "add" => alu(AluOp::Add)?,
            "sub" => alu(AluOp::Sub)?,
            "and" => alu(AluOp::And)?,
            "or" => alu(AluOp::Or)?,
            "xor" => alu(AluOp::Xor)?,
            "shl" => alu(AluOp::Shl)?,
            "cmp" => {
                want(2)?;
                Inst::Cmp {
                    a: parse_reg(&ops[0], line)?,
                    b: parse_src(&ops[1], line)?,
                }
            }
            "test" => {
                want(2)?;
                Inst::Test {
                    a: parse_reg(&ops[0], line)?,
                    b: parse_src(&ops[1], line)?,
                }
            }
            "jmp" => {
                want(1)?;
                if let Ok(r) = parse_reg(&ops[0], line) {
                    Inst::JmpReg { reg: r }
                } else {
                    Inst::Jmp {
                        target: resolve(&ops[0], line)?,
                    }
                }
            }
            "call" => {
                want(1)?;
                Inst::Call {
                    target: resolve(&ops[0], line)?,
                }
            }
            "ret" => {
                want(0)?;
                Inst::Ret
            }
            "push" => {
                want(1)?;
                Inst::Push {
                    src: parse_reg(&ops[0], line)?,
                }
            }
            "pop" => {
                want(1)?;
                Inst::Pop {
                    dst: parse_reg(&ops[0], line)?,
                }
            }
            "clflush" => {
                want(1)?;
                Inst::Clflush {
                    addr: parse_mem(&ops[0], line)?,
                }
            }
            "prefetch" => {
                want(1)?;
                Inst::Prefetch {
                    addr: parse_mem(&ops[0], line)?,
                }
            }
            "lfence" => {
                want(0)?;
                Inst::Lfence
            }
            "mfence" => {
                want(0)?;
                Inst::Mfence
            }
            "sfence" => {
                want(0)?;
                Inst::Sfence
            }
            "rdtsc" => {
                want(0)?;
                Inst::Rdtsc
            }
            "xbegin" => {
                want(1)?;
                Inst::XBegin {
                    abort_target: resolve(&ops[0], line)?,
                }
            }
            "xend" => {
                want(0)?;
                Inst::XEnd
            }
            "syscall" => {
                want(0)?;
                Inst::Syscall
            }
            other => {
                if let Some(cond) = Cond::ALL.iter().find(|c| c.mnemonic() == other) {
                    want(1)?;
                    Inst::Jcc {
                        cond: *cond,
                        target: resolve(&ops[0], line)?,
                    }
                } else {
                    return Err(err(line, format!("unknown mnemonic `{other}`")));
                }
            }
        };
        insts.push(inst);
    }

    // Reuse the builder for the final Program construction (validates
    // non-emptiness).
    let mut a = crate::asm::Asm::new();
    for i in &insts {
        a.raw(*i);
    }
    a.assemble().map_err(|e| ParseError {
        line: 0,
        message: e.to_string(),
    })
}

fn fmt_addr(addr: &Addr) -> String {
    match (addr.base, addr.index) {
        (Some(b), None) if addr.disp == 0 => format!("[{b}]"),
        (Some(b), None) if addr.disp >= 0 => format!("[{b}+{:#x}]", addr.disp),
        (Some(b), None) => format!("[{b}-{:#x}]", -addr.disp),
        (None, None) => format!("[{:#x}]", addr.disp as u64),
        // Scaled-index operands have no textual form yet; print a
        // readable debug shape (parse() does not accept it back).
        (b, i) => format!("[{b:?}+{i:?}+{:#x}]", addr.disp),
    }
}

fn fmt_src(src: &Src) -> String {
    match src {
        Src::Reg(r) => r.to_string(),
        Src::Imm(v) => format!("{v:#x}"),
    }
}

/// Renders one instruction in the textual syntax (branch targets appear
/// as `Ln` labels; [`disassemble`] emits the matching definitions).
pub fn fmt_inst(inst: &Inst) -> String {
    match inst {
        Inst::Nop => "nop".into(),
        Inst::Halt => "halt".into(),
        Inst::MovImm { dst, imm } => format!("mov {dst}, {imm:#x}"),
        Inst::MovReg { dst, src } => format!("mov {dst}, {src}"),
        Inst::Load { dst, addr } => format!("mov {dst}, {}", fmt_addr(addr)),
        Inst::LoadByte { dst, addr } => format!("ldb {dst}, {}", fmt_addr(addr)),
        Inst::Store { src, addr } => format!("mov {}, {src}", fmt_addr(addr)),
        Inst::StoreByte { src, addr } => format!("stb {}, {src}", fmt_addr(addr)),
        Inst::Lea { dst, addr } => format!("lea {dst}, {}", fmt_addr(addr)),
        Inst::Alu { op, dst, src } => {
            let m = match op {
                AluOp::Add => "add",
                AluOp::Sub => "sub",
                AluOp::And => "and",
                AluOp::Or => "or",
                AluOp::Xor => "xor",
                AluOp::Shl => "shl",
            };
            format!("{m} {dst}, {}", fmt_src(src))
        }
        Inst::Cmp { a, b } => format!("cmp {a}, {}", fmt_src(b)),
        Inst::Test { a, b } => format!("test {a}, {}", fmt_src(b)),
        Inst::Jcc { cond, target } => format!("{} L{target}", cond.mnemonic()),
        Inst::Jmp { target } => format!("jmp L{target}"),
        Inst::JmpReg { reg } => format!("jmp {reg}"),
        Inst::Call { target } => format!("call L{target}"),
        Inst::Ret => "ret".into(),
        Inst::Push { src } => format!("push {src}"),
        Inst::Pop { dst } => format!("pop {dst}"),
        Inst::Clflush { addr } => format!("clflush {}", fmt_addr(addr)),
        Inst::Prefetch { addr } => format!("prefetch {}", fmt_addr(addr)),
        Inst::Lfence => "lfence".into(),
        Inst::Mfence => "mfence".into(),
        Inst::Sfence => "sfence".into(),
        Inst::Rdtsc => "rdtsc".into(),
        Inst::XBegin { abort_target } => format!("xbegin L{abort_target}"),
        Inst::XEnd => "xend".into(),
        Inst::Syscall => "syscall".into(),
    }
}

impl std::fmt::Display for Inst {
    /// Renders the instruction in the textual assembly syntax.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&fmt_inst(self))
    }
}

/// Renders a whole program in parseable textual syntax, emitting `Ln:`
/// label definitions at branch targets.
pub fn disassemble(prog: &Program) -> String {
    use std::collections::BTreeSet;
    let mut targets = BTreeSet::new();
    for inst in prog.insts() {
        match inst {
            Inst::Jcc { target, .. }
            | Inst::Jmp { target }
            | Inst::Call { target }
            | Inst::XBegin {
                abort_target: target,
            } => {
                targets.insert(*target);
            }
            _ => {}
        }
    }
    let mut out = String::new();
    for (i, inst) in prog.insts().iter().enumerate() {
        if targets.contains(&i) {
            out.push_str(&format!("L{i}:\n"));
        }
        out.push_str("    ");
        out.push_str(&fmt_inst(inst));
        out.push('\n');
    }
    // Labels one past the end (e.g. an abort target after the last inst).
    if targets.contains(&prog.len()) {
        out.push_str(&format!("L{}:\n    nop\n", prog.len()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_fig1_gadget() {
        let prog = parse(
            r#"
            rdtsc
            mov r8, rax
            lfence
            ldb rax, [0xffffffff81000000]
            cmp rax, rbx
            je matched
            nop
        matched:
            nop
            rdtsc
            sub rax, r8
            halt
            "#,
        )
        .expect("parses");
        assert_eq!(prog.len(), 11);
        assert_eq!(
            prog.fetch(5),
            Some(Inst::Jcc {
                cond: Cond::E,
                target: 7
            })
        );
        assert_eq!(
            prog.fetch(3),
            Some(Inst::LoadByte {
                dst: Reg::Rax,
                addr: Addr::abs(0xffff_ffff_8100_0000)
            })
        );
    }

    #[test]
    fn mov_disambiguates_forms() {
        let prog = parse("mov rax, 5\nmov rbx, rax\nmov [rsp+8], rbx\nmov rcx, [rsp]\nhalt")
            .expect("parses");
        assert!(matches!(prog.fetch(0), Some(Inst::MovImm { .. })));
        assert!(matches!(prog.fetch(1), Some(Inst::MovReg { .. })));
        assert!(matches!(prog.fetch(2), Some(Inst::Store { .. })));
        assert!(matches!(prog.fetch(3), Some(Inst::Load { .. })));
    }

    #[test]
    fn negative_displacement_and_comments() {
        let prog = parse("mov rax, [rbp-0x10] ; load a local\nhalt # done").expect("parses");
        match prog.fetch(0) {
            Some(Inst::Load { addr, .. }) => assert_eq!(addr.disp, -0x10),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn backward_and_forward_labels() {
        let prog = parse("top:\nsub rcx, 1\njne top\nje done\nnop\ndone:\nhalt").expect("parses");
        assert_eq!(
            prog.fetch(1),
            Some(Inst::Jcc {
                cond: Cond::Ne,
                target: 0
            })
        );
        assert_eq!(
            prog.fetch(2),
            Some(Inst::Jcc {
                cond: Cond::E,
                target: 4
            })
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("nop\nbogus rax\nhalt").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = parse("jmp nowhere\nhalt").unwrap_err();
        assert!(e.message.contains("undefined label"));

        let e = parse("x:\nnop\nx:\nhalt").unwrap_err();
        assert!(e.message.contains("duplicate label"));

        let e = parse("mov rax\nhalt").unwrap_err();
        assert!(e.message.contains("expects 2 operand"));
    }

    #[test]
    fn all_jcc_mnemonics_parse() {
        for c in Cond::ALL {
            let src = format!("t:\nnop\n{} t\nhalt", c.mnemonic());
            let prog = parse(&src).expect("parses");
            assert_eq!(
                prog.fetch(1),
                Some(Inst::Jcc {
                    cond: *c,
                    target: 0
                })
            );
        }
    }

    #[test]
    fn disassemble_round_trips() {
        let src = r#"
            rdtsc
            mov r8, rax
            lfence
            ldb rax, [0x1000]
            cmp rax, rbx
            je m
            nop
        m:
            push rax
            pop rbx
            clflush [rsp]
            prefetch [0x2000]
            xbegin a
            xend
        a:
            call f
            jmp out
        f:
            ret
        out:
            halt
        "#;
        let prog = parse(src).expect("parses");
        let text = disassemble(&prog);
        let reparsed = parse(&text).expect("disassembly reparses");
        assert_eq!(prog, reparsed, "round trip must be exact:\n{text}");
    }

    #[test]
    fn empty_program_is_rejected() {
        assert!(parse("; nothing but comments\n").is_err());
    }
}
