//! An x86-like instruction set for the Whisper (DAC 2024) reproduction.
//!
//! The attacks in the paper are written as short assembly gadgets
//! (Figure 1a, Listing 1, Listing 2). This crate defines the instruction
//! set those gadgets need — conditional jumps in several flavours,
//! loads/stores, `call`/`ret`, fences, `clflush`, `rdtsc`, TSX region
//! markers — together with registers, flags, and an [`Asm`] builder that
//! assembles label-based programs into executable [`Program`]s for the
//! [`tet-uarch`](../tet_uarch/index.html) pipeline simulator.
//!
//! Programs are instruction-indexed: each instruction occupies one slot
//! and "addresses" used by the frontend are instruction indices. Data
//! addresses are full 64-bit virtual addresses resolved by the simulated
//! MMU.
//!
//! # Examples
//!
//! Build the TET gadget core of Figure 1a — compare a test value with a
//! transiently-obtained secret and conditionally execute a `nop`:
//!
//! ```
//! use tet_isa::{Asm, Cond, Reg};
//!
//! # fn main() -> Result<(), tet_isa::AssembleError> {
//! let mut a = Asm::new();
//! let skip = a.fresh_label();
//! a.load(Reg::Rax, Reg::Rcx, 0) // transient load of the secret
//!     .cmp_imm(Reg::Rax, b'S' as u64)
//!     .jcc(Cond::Ne, skip)
//!     .nop()
//!     .bind(skip)
//!     .halt();
//! let prog = a.assemble()?;
//! assert_eq!(prog.len(), 5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod cond;
pub mod inst;
pub mod reg;
pub mod text;

pub use asm::{Asm, AssembleError, Label, Program};
pub use cond::{Cond, Flags};
pub use inst::{Addr, Inst, Opcode, Src};
pub use reg::Reg;
