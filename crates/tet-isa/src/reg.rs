//! General-purpose registers.

/// A 64-bit general-purpose register.
///
/// The set mirrors x86-64's sixteen GPRs. The discriminant doubles as a
/// dense index into register files.
///
/// # Examples
///
/// ```
/// use tet_isa::Reg;
/// assert_eq!(Reg::Rax as usize, 0);
/// assert_eq!(Reg::ALL.len(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
#[allow(missing_docs)] // the registers are self-describing
pub enum Reg {
    Rax,
    Rbx,
    Rcx,
    Rdx,
    Rsi,
    Rdi,
    Rsp,
    Rbp,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

impl Reg {
    /// All sixteen registers, in index order.
    pub const ALL: &'static [Reg] = &[
        Reg::Rax,
        Reg::Rbx,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rsi,
        Reg::Rdi,
        Reg::Rsp,
        Reg::Rbp,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// The register's conventional lower-case assembly name.
    pub const fn name(self) -> &'static str {
        match self {
            Reg::Rax => "rax",
            Reg::Rbx => "rbx",
            Reg::Rcx => "rcx",
            Reg::Rdx => "rdx",
            Reg::Rsi => "rsi",
            Reg::Rdi => "rdi",
            Reg::Rsp => "rsp",
            Reg::Rbp => "rbp",
            Reg::R8 => "r8",
            Reg::R9 => "r9",
            Reg::R10 => "r10",
            Reg::R11 => "r11",
            Reg::R12 => "r12",
            Reg::R13 => "r13",
            Reg::R14 => "r14",
            Reg::R15 => "r15",
        }
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A committed architectural register file.
///
/// # Examples
///
/// ```
/// use tet_isa::{reg::RegFile, Reg};
///
/// let mut rf = RegFile::new();
/// rf.set(Reg::Rbx, 0xdead_beef);
/// assert_eq!(rf.get(Reg::Rbx), 0xdead_beef);
/// assert_eq!(rf.get(Reg::Rax), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegFile {
    vals: [u64; 16],
}

impl RegFile {
    /// Creates a register file with every register zeroed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a register.
    #[inline]
    pub fn get(&self, r: Reg) -> u64 {
        self.vals[r as usize]
    }

    /// Writes a register.
    #[inline]
    pub fn set(&mut self, r: Reg, v: u64) {
        self.vals[r as usize] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(*r as usize, i);
        }
    }

    #[test]
    fn names_match_convention() {
        assert_eq!(Reg::Rax.to_string(), "rax");
        assert_eq!(Reg::R15.to_string(), "r15");
    }

    #[test]
    fn regfile_roundtrip() {
        let mut rf = RegFile::new();
        for (i, r) in Reg::ALL.iter().enumerate() {
            rf.set(*r, i as u64 * 7);
        }
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(rf.get(*r), i as u64 * 7);
        }
    }
}
