//! Performance monitor unit (PMU) model for the Whisper reproduction.
//!
//! The paper analyses the root cause of the TET side channel with an
//! automated PMU toolset (Figure 2): a *preparation* stage builds the list
//! of candidate events from the vendor catalogs, an *online collection*
//! stage records counter values while a scenario runs, and an *offline
//! analysis* stage differentially filters the events that react to the
//! scenario knob (e.g. "Jcc triggered" vs "Jcc not triggered").
//!
//! This crate provides all three pieces for the simulated CPU:
//!
//! * [`Event`] — the event catalog, covering every event in Table 3 of the
//!   paper (Intel Skylake/Kaby Lake/Comet Lake names and the AMD Zen 3
//!   names) plus a set of general pipeline/memory events, each with a
//!   vendor, a [`Unit`] (frontend / backend / memory / core) and a
//!   human-readable description.
//! * [`Pmu`] — the live counter bank the simulator increments, and
//!   [`PmuSnapshot`] — an immutable copy taken around a region of interest.
//! * [`toolset`] — the Figure 2 pipeline: multi-run collection, averaging,
//!   and differential filtering.
//!
//! # Examples
//!
//! ```
//! use tet_pmu::{Event, Pmu};
//!
//! let mut pmu = Pmu::new();
//! pmu.bump(Event::UopsIssuedAny, 4);
//! pmu.bump(Event::BrMispExecAllBranches, 1);
//! let snap = pmu.snapshot();
//! assert_eq!(snap.count(Event::UopsIssuedAny), 4);
//! assert_eq!(snap.count(Event::BrMispExecAllBranches), 1);
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod toolset;

pub use event::{Event, EventDesc, Unit, Vendor};
pub use toolset::{Collector, DifferentialReport, EventDelta};

/// A live bank of performance counters.
///
/// The simulator owns one `Pmu` per logical thread and increments it from
/// every pipeline stage. Attack and analysis code never mutates a `Pmu`;
/// it works on [`PmuSnapshot`]s taken before/after a region of interest.
///
/// # Examples
///
/// ```
/// use tet_pmu::{Event, Pmu};
///
/// let mut pmu = Pmu::new();
/// let before = pmu.snapshot();
/// pmu.bump(Event::ResourceStallsAny, 21);
/// let after = pmu.snapshot();
/// assert_eq!(after.delta(&before).count(Event::ResourceStallsAny), 21);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pmu {
    counts: Vec<u64>,
}

impl Pmu {
    /// Creates a counter bank with every event zeroed.
    pub fn new() -> Self {
        Pmu {
            counts: vec![0; Event::ALL.len()],
        }
    }

    /// Increments `event` by `n`.
    #[inline]
    pub fn bump(&mut self, event: Event, n: u64) {
        self.counts[event as usize] += n;
    }

    /// Returns the current value of `event`.
    #[inline]
    pub fn count(&self, event: Event) -> u64 {
        self.counts[event as usize]
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        for c in &mut self.counts {
            *c = 0;
        }
    }

    /// Takes an immutable copy of all counters.
    pub fn snapshot(&self) -> PmuSnapshot {
        PmuSnapshot {
            counts: self.counts.clone(),
        }
    }

    /// Copies all counters into `out`, reusing its buffer — the
    /// allocation-free variant of [`Pmu::snapshot`] for callers that
    /// snapshot around every run in a hot loop.
    pub fn snapshot_into(&self, out: &mut PmuSnapshot) {
        out.counts.clear();
        out.counts.extend_from_slice(&self.counts);
    }

    /// Overwrites this bank with the contents of `src`, reusing the
    /// existing buffer — the restore half of the machine snapshot layer.
    pub fn copy_from(&mut self, src: &Pmu) {
        self.counts.clear();
        self.counts.extend_from_slice(&src.counts);
    }
}

impl Default for Pmu {
    fn default() -> Self {
        Self::new()
    }
}

/// An immutable copy of all counter values at one instant.
///
/// Snapshots support subtraction via [`PmuSnapshot::delta`], which is how
/// per-region counts are obtained (mirroring `perf`'s grouped reads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PmuSnapshot {
    counts: Vec<u64>,
}

impl PmuSnapshot {
    /// A snapshot with every counter zero; useful as a subtraction base.
    pub fn zero() -> Self {
        PmuSnapshot {
            counts: vec![0; Event::ALL.len()],
        }
    }

    /// Returns the recorded value of `event`.
    #[inline]
    pub fn count(&self, event: Event) -> u64 {
        self.counts[event as usize]
    }

    /// Returns `self - earlier`, saturating at zero per counter.
    ///
    /// Saturation (rather than panicking) keeps the toolset robust when a
    /// caller accidentally swaps the operands; counters are monotonic in
    /// normal use so the result is exact.
    pub fn delta(&self, earlier: &PmuSnapshot) -> PmuSnapshot {
        let counts = self
            .counts
            .iter()
            .zip(&earlier.counts)
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        PmuSnapshot { counts }
    }

    /// Adds every counter of `delta` into this snapshot — how lifetime
    /// accumulators (e.g. a machine's across-restore PMU totals) fold
    /// per-run deltas together.
    pub fn accumulate(&mut self, delta: &PmuSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&delta.counts) {
            *a += b;
        }
    }

    /// Learns a 0/1 response mask from two observations of the same
    /// probe whose timing differed by `d0` cycles: every counter must
    /// have moved by exactly `0` (a pure event count) or exactly `d0`
    /// (a cycle-counting event that absorbed the whole shift — e.g.
    /// unhalted-cycle or stall-cycle events). Returns `None` if any
    /// counter moved by anything else; `d0` must be non-zero.
    pub fn unit_shift(&self, other: &PmuSnapshot, d0: i64) -> Option<PmuSnapshot> {
        debug_assert_ne!(d0, 0);
        let mut counts = Vec::with_capacity(self.counts.len());
        for (a, b) in self.counts.iter().zip(&other.counts) {
            let diff = *b as i64 - *a as i64;
            if diff == 0 {
                counts.push(0);
            } else if diff == d0 {
                counts.push(1);
            } else {
                return None;
            }
        }
        Some(PmuSnapshot { counts })
    }

    /// Returns `self + d * unit` per counter — reconstructs the
    /// snapshot a probe shifted by `d` cycles would have produced,
    /// given the 0/1 response mask [`PmuSnapshot::unit_shift`] learned.
    pub fn add_scaled(&self, unit: &PmuSnapshot, d: i64) -> PmuSnapshot {
        let counts = self
            .counts
            .iter()
            .zip(&unit.counts)
            .map(|(a, u)| a.wrapping_add_signed(d * *u as i64))
            .collect();
        PmuSnapshot { counts }
    }

    /// Iterates over `(event, value)` pairs for all events.
    pub fn iter(&self) -> impl Iterator<Item = (Event, u64)> + '_ {
        Event::ALL
            .iter()
            .copied()
            .map(move |e| (e, self.counts[e as usize]))
    }

    /// Iterates over `(event, value)` pairs with non-zero values.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (Event, u64)> + '_ {
        self.iter().filter(|&(_, v)| v != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_pmu_is_all_zero() {
        let pmu = Pmu::new();
        for e in Event::ALL {
            assert_eq!(pmu.count(*e), 0, "{e:?} should start at zero");
        }
    }

    #[test]
    fn bump_accumulates() {
        let mut pmu = Pmu::new();
        pmu.bump(Event::UopsIssuedAny, 3);
        pmu.bump(Event::UopsIssuedAny, 4);
        assert_eq!(pmu.count(Event::UopsIssuedAny), 7);
    }

    #[test]
    fn reset_clears_all() {
        let mut pmu = Pmu::new();
        pmu.bump(Event::IdqDsbUops, 10);
        pmu.bump(Event::ItlbMissesWalkActive, 19);
        pmu.reset();
        assert_eq!(pmu.count(Event::IdqDsbUops), 0);
        assert_eq!(pmu.count(Event::ItlbMissesWalkActive), 0);
    }

    #[test]
    fn snapshot_into_matches_snapshot() {
        let mut pmu = Pmu::new();
        pmu.bump(Event::InstRetiredAny, 3);
        pmu.bump(Event::CpuClkUnhalted, 9);
        let mut reused = PmuSnapshot::zero();
        pmu.snapshot_into(&mut reused);
        assert_eq!(reused, pmu.snapshot());
        // Reuse after further bumps overwrites, not appends.
        pmu.bump(Event::InstRetiredAny, 1);
        pmu.snapshot_into(&mut reused);
        assert_eq!(reused, pmu.snapshot());
    }

    #[test]
    fn snapshot_delta_is_per_event() {
        let mut pmu = Pmu::new();
        pmu.bump(Event::DtlbLoadMissesWalkActive, 62);
        let before = pmu.snapshot();
        pmu.bump(Event::DtlbLoadMissesWalkActive, 8);
        pmu.bump(Event::MachineClearsCount, 1);
        let after = pmu.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.count(Event::DtlbLoadMissesWalkActive), 8);
        assert_eq!(d.count(Event::MachineClearsCount), 1);
        assert_eq!(d.count(Event::UopsIssuedAny), 0);
    }

    #[test]
    fn delta_saturates_when_operands_swapped() {
        let mut pmu = Pmu::new();
        let before = pmu.snapshot();
        pmu.bump(Event::RsEventsEmptyCycles, 5);
        let after = pmu.snapshot();
        assert_eq!(before.delta(&after).count(Event::RsEventsEmptyCycles), 0);
    }

    #[test]
    fn iter_nonzero_skips_zeroes() {
        let mut pmu = Pmu::new();
        pmu.bump(Event::IcFw32, 661);
        let nz: Vec<_> = pmu.snapshot().iter_nonzero().collect();
        assert_eq!(nz, vec![(Event::IcFw32, 661)]);
    }
}
