//! The automated PMU analysis toolset of Figure 2.
//!
//! The paper's workflow has three stages:
//!
//! 1. **Preparation** — enumerate candidate events from the vendor catalog
//!    (here: [`Event::ALL`](crate::Event::ALL), optionally filtered by
//!    vendor/unit).
//! 2. **Online collection** — run the scenario many times and record the
//!    counters for each run ([`Collector`]).
//! 3. **Offline analysis** — differentially filter events whose mean value
//!    differs between a baseline scenario and a variant scenario
//!    ([`DifferentialReport`]), which is how Table 3 was produced.

use crate::{Event, PmuSnapshot, Unit, Vendor};

/// Averaged counter values over a set of collection runs.
///
/// Values are kept as `f64` means so that small per-run variations (e.g.
/// from the simulator's noise model) survive averaging, exactly as
/// repeated `perf stat` runs would be averaged.
#[derive(Debug, Clone, PartialEq)]
pub struct AveragedCounts {
    means: Vec<f64>,
    runs: usize,
}

impl AveragedCounts {
    /// Returns the mean value of `event` across the collected runs.
    pub fn mean(&self, event: Event) -> f64 {
        self.means[event as usize]
    }

    /// Number of runs that were averaged.
    pub fn runs(&self) -> usize {
        self.runs
    }
}

/// Online collection stage: runs a scenario closure repeatedly and
/// averages the resulting per-run snapshots.
///
/// # Examples
///
/// ```
/// use tet_pmu::{Collector, Event, Pmu};
///
/// let avg = Collector::new(4).collect(|run| {
///     let mut pmu = Pmu::new();
///     pmu.bump(Event::UopsIssuedAny, 10 + run as u64);
///     pmu.snapshot()
/// });
/// assert_eq!(avg.mean(Event::UopsIssuedAny), 11.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Collector {
    runs: usize,
}

impl Collector {
    /// Creates a collector that performs `runs` scenario executions.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is zero.
    pub fn new(runs: usize) -> Self {
        assert!(runs > 0, "collector needs at least one run");
        Collector { runs }
    }

    /// Runs the scenario `runs` times and averages the snapshots.
    ///
    /// The closure receives the zero-based run index so scenarios can
    /// vary seeds per run.
    pub fn collect<F>(&self, mut scenario: F) -> AveragedCounts
    where
        F: FnMut(usize) -> PmuSnapshot,
    {
        let mut sums = vec![0.0f64; Event::ALL.len()];
        for run in 0..self.runs {
            let snap = scenario(run);
            for (e, v) in snap.iter() {
                sums[e as usize] += v as f64;
            }
        }
        for s in &mut sums {
            *s /= self.runs as f64;
        }
        AveragedCounts {
            means: sums,
            runs: self.runs,
        }
    }
}

/// One event that survived differential filtering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventDelta {
    /// The event that reacted to the scenario knob.
    pub event: Event,
    /// Mean value under the baseline scenario.
    pub baseline: f64,
    /// Mean value under the variant scenario.
    pub variant: f64,
}

impl EventDelta {
    /// Absolute difference between variant and baseline means.
    pub fn abs_delta(&self) -> f64 {
        (self.variant - self.baseline).abs()
    }

    /// Relative difference (`|v-b| / max(|b|, 1)`), robust near zero.
    pub fn rel_delta(&self) -> f64 {
        self.abs_delta() / self.baseline.abs().max(1.0)
    }
}

/// Offline analysis stage: differential filtering of two averaged runs.
///
/// This is the filter that produces Table 3: events whose counter value
/// changes between "Jcc not triggered" and "Jcc triggered" (or "unmapped"
/// and "mapped") are relevant to the side channel; everything else is
/// discarded.
#[derive(Debug, Clone, PartialEq)]
pub struct DifferentialReport {
    deltas: Vec<EventDelta>,
}

impl DifferentialReport {
    /// Compares the two averaged collections and keeps events whose
    /// absolute mean difference is at least `min_abs_delta`.
    ///
    /// Results are sorted by descending absolute delta, so the most
    /// reactive events (the ones worth a manual look) come first.
    pub fn compare(
        baseline: &AveragedCounts,
        variant: &AveragedCounts,
        min_abs_delta: f64,
    ) -> Self {
        let mut deltas: Vec<EventDelta> = Event::ALL
            .iter()
            .map(|&event| EventDelta {
                event,
                baseline: baseline.mean(event),
                variant: variant.mean(event),
            })
            .filter(|d| d.abs_delta() >= min_abs_delta)
            .collect();
        deltas.sort_by(|a, b| {
            b.abs_delta()
                .partial_cmp(&a.abs_delta())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        DifferentialReport { deltas }
    }

    /// All surviving deltas, most reactive first.
    pub fn deltas(&self) -> &[EventDelta] {
        &self.deltas
    }

    /// Surviving deltas restricted to one microarchitectural unit —
    /// used to answer the paper's RQ1/RQ2/RQ3 per-unit questions.
    pub fn deltas_for_unit(&self, unit: Unit) -> impl Iterator<Item = &EventDelta> {
        self.deltas
            .iter()
            .filter(move |d| d.event.desc().unit == unit)
    }

    /// Surviving deltas restricted to one vendor catalog.
    pub fn deltas_for_vendor(&self, vendor: Vendor) -> impl Iterator<Item = &EventDelta> {
        self.deltas
            .iter()
            .filter(move |d| d.event.desc().vendor == vendor)
    }

    /// Renders the report as an aligned text table (the "offline analysis"
    /// artifact of Figure 2).
    pub fn to_table(&self, baseline_label: &str, variant_label: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<52} {:>14} {:>14} {:>10}\n",
            "Event", baseline_label, variant_label, "|delta|"
        ));
        for d in &self.deltas {
            out.push_str(&format!(
                "{:<52} {:>14.1} {:>14.1} {:>10.1}\n",
                d.event.name(),
                d.baseline,
                d.variant,
                d.abs_delta()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pmu;

    fn snap_with(pairs: &[(Event, u64)]) -> PmuSnapshot {
        let mut pmu = Pmu::new();
        for &(e, v) in pairs {
            pmu.bump(e, v);
        }
        pmu.snapshot()
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn collector_rejects_zero_runs() {
        let _ = Collector::new(0);
    }

    #[test]
    fn collector_averages_across_runs() {
        let avg = Collector::new(2).collect(|run| {
            snap_with(&[(Event::ResourceStallsAny, if run == 0 { 15 } else { 21 })])
        });
        assert_eq!(avg.mean(Event::ResourceStallsAny), 18.0);
        assert_eq!(avg.runs(), 2);
    }

    #[test]
    fn differential_filter_keeps_only_reactive_events() {
        let base = Collector::new(1)
            .collect(|_| snap_with(&[(Event::UopsIssuedAny, 334), (Event::InstRetiredAny, 100)]));
        let var = Collector::new(1)
            .collect(|_| snap_with(&[(Event::UopsIssuedAny, 319), (Event::InstRetiredAny, 100)]));
        let report = DifferentialReport::compare(&base, &var, 2.0);
        assert_eq!(report.deltas().len(), 1);
        assert_eq!(report.deltas()[0].event, Event::UopsIssuedAny);
        assert_eq!(report.deltas()[0].abs_delta(), 15.0);
    }

    #[test]
    fn deltas_sorted_by_magnitude() {
        let base = Collector::new(1).collect(|_| {
            snap_with(&[
                (Event::IdqMsMiteUops, 77),
                (Event::IntMiscClearResteerCycles, 27),
            ])
        });
        let var = Collector::new(1).collect(|_| {
            snap_with(&[
                (Event::IdqMsMiteUops, 97),
                (Event::IntMiscClearResteerCycles, 39),
            ])
        });
        let report = DifferentialReport::compare(&base, &var, 1.0);
        assert_eq!(report.deltas()[0].event, Event::IdqMsMiteUops);
        assert_eq!(report.deltas()[1].event, Event::IntMiscClearResteerCycles);
    }

    #[test]
    fn unit_filter_selects_frontend_events() {
        let base = Collector::new(1)
            .collect(|_| snap_with(&[(Event::IdqDsbUops, 119), (Event::ResourceStallsAny, 15)]));
        let var = Collector::new(1)
            .collect(|_| snap_with(&[(Event::IdqDsbUops, 115), (Event::ResourceStallsAny, 21)]));
        let report = DifferentialReport::compare(&base, &var, 1.0);
        let frontend: Vec<_> = report.deltas_for_unit(Unit::Frontend).collect();
        assert_eq!(frontend.len(), 1);
        assert_eq!(frontend[0].event, Event::IdqDsbUops);
    }

    #[test]
    fn table_rendering_contains_event_names() {
        let base =
            Collector::new(1).collect(|_| snap_with(&[(Event::DtlbLoadMissesWalkActive, 62)]));
        let var = Collector::new(1).collect(|_| snap_with(&[(Event::DtlbLoadMissesWalkActive, 0)]));
        let report = DifferentialReport::compare(&base, &var, 1.0);
        let table = report.to_table("unmapped", "mapped");
        assert!(table.contains("DTLB_LOAD_MISSES.WALK_ACTIVE"));
        assert!(table.contains("unmapped"));
    }

    #[test]
    fn rel_delta_is_robust_near_zero_baseline() {
        let d = EventDelta {
            event: Event::BrMispExecIndirect,
            baseline: 0.0,
            variant: 1.0,
        };
        assert_eq!(d.rel_delta(), 1.0);
    }
}
