//! The performance-event catalog.
//!
//! Covers every event that appears in Table 3 of the paper — both the
//! Intel names (`BR_MISP_EXEC.INDIRECT`, `IDQ.DSB_UOPS`,
//! `DTLB_LOAD_MISSES.WALK_ACTIVE`, …) and the AMD Zen 3 names
//! (`bp_l1_btb_correct`, `de_dis_dispatch_token_stalls2.retire_token_stall`,
//! …) — plus a set of general pipeline, branch, cache and TLB events so the
//! differential toolset of Figure 2 has a realistic catalog to filter.

/// Which vendor catalog an event comes from.
///
/// The simulated core increments both vendors' counters (it is one machine
/// model); the [`Vendor`] tag is used by reports to show the event names a
/// given CPU preset would expose, mirroring how the paper lists Intel
/// events for the Core i7 results and AMD events for the Ryzen results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Vendor {
    /// Intel Perfmon event naming.
    Intel,
    /// AMD PPR event naming.
    Amd,
    /// Synthetic event present in both models (e.g. raw cycle count).
    Common,
}

impl std::fmt::Display for Vendor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Vendor::Intel => f.write_str("Intel"),
            Vendor::Amd => f.write_str("AMD"),
            Vendor::Common => f.write_str("Common"),
        }
    }
}

/// The microarchitectural unit an event observes.
///
/// The paper's analysis is organised around exactly these units: RQ1
/// (frontend), RQ2 (backend/pipeline), RQ3 (memory subsystem).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Unit {
    /// Instruction fetch, decode, DSB/MITE/IDQ, branch prediction.
    Frontend,
    /// Rename, reservation stations, execution ports, retirement.
    Backend,
    /// Caches, fill buffers, TLBs, page walker.
    Memory,
    /// Whole-core events (cycles, instructions, machine clears).
    Core,
}

impl std::fmt::Display for Unit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Unit::Frontend => f.write_str("frontend"),
            Unit::Backend => f.write_str("backend"),
            Unit::Memory => f.write_str("memory"),
            Unit::Core => f.write_str("core"),
        }
    }
}

/// Static metadata describing one performance event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventDesc {
    /// The vendor catalog name, e.g. `"BR_MISP_EXEC.ALL_BRANCHES"`.
    pub name: &'static str,
    /// Which vendor catalog defines the event.
    pub vendor: Vendor,
    /// Which microarchitectural unit the event observes.
    pub unit: Unit,
    /// One-line human description.
    pub doc: &'static str,
}

macro_rules! events {
    ($( $(#[$meta:meta])* $variant:ident => ($name:literal, $vendor:ident, $unit:ident, $doc:literal); )+) => {
        /// A performance event the simulated PMU can count.
        ///
        /// The discriminant doubles as a dense index into counter banks.
        /// See [`Event::ALL`] for the complete catalog and
        /// [`Event::desc`] for per-event metadata.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[repr(usize)]
        pub enum Event {
            $( $(#[$meta])* $variant, )+
        }

        impl Event {
            /// Every event in the catalog, in index order.
            pub const ALL: &'static [Event] = &[ $(Event::$variant,)+ ];

            /// Returns the static metadata for this event.
            pub const fn desc(self) -> EventDesc {
                match self {
                    $( Event::$variant => EventDesc {
                        name: $name,
                        vendor: Vendor::$vendor,
                        unit: Unit::$unit,
                        doc: $doc,
                    }, )+
                }
            }

            /// Returns the vendor catalog name, e.g. `"IDQ.DSB_UOPS"`.
            pub const fn name(self) -> &'static str {
                self.desc().name
            }

            /// Looks an event up by its vendor catalog name.
            ///
            /// # Examples
            ///
            /// ```
            /// use tet_pmu::Event;
            /// assert_eq!(
            ///     Event::from_name("BR_MISP_EXEC.INDIRECT"),
            ///     Some(Event::BrMispExecIndirect),
            /// );
            /// assert_eq!(Event::from_name("NOT_AN_EVENT"), None);
            /// ```
            pub fn from_name(name: &str) -> Option<Event> {
                match name {
                    $( $name => Some(Event::$variant), )+
                    _ => None,
                }
            }
        }
    };
}

events! {
    // ----- Common / whole-core ------------------------------------------
    /// Unhalted core clock cycles.
    CpuClkUnhalted => ("CPU_CLK_UNHALTED.THREAD", Common, Core,
        "unhalted core cycles on this logical thread");
    /// Architecturally retired instructions.
    InstRetiredAny => ("INST_RETIRED.ANY", Common, Core,
        "instructions retired (architectural)");
    /// Machine clears of any flavour (memory ordering, assists, faults).
    MachineClearsCount => ("MACHINE_CLEARS.COUNT", Intel, Core,
        "number of machine clears (pipeline flushed and restarted)");
    /// `clflush` instructions executed — the tell-tale of Flush+Reload
    /// style attacks that cache-based detectors key on (Table 1).
    ClflushExecuted => ("CLFLUSH.EXECUTED", Common, Memory,
        "cache-line flush instructions executed");

    // ----- Frontend: branch prediction ----------------------------------
    /// Mispredicted indirect branches *executed* (incl. transient) —
    /// undocumented Skylake event used in Table 3.
    BrMispExecIndirect => ("BR_MISP_EXEC.INDIRECT", Intel, Frontend,
        "mispredicted indirect/return branches executed, speculative included");
    /// All mispredicted branches *executed* (incl. transient) —
    /// undocumented Skylake event used in Table 3.
    BrMispExecAllBranches => ("BR_MISP_EXEC.ALL_BRANCHES", Intel, Frontend,
        "all mispredicted branches executed, speculative included");
    /// Branches retired (architectural only; transient branches excluded).
    BrInstRetiredAll => ("BR_INST_RETIRED.ALL_BRANCHES", Intel, Frontend,
        "branch instructions retired");
    /// Branches *executed*, speculative included — compare against
    /// `BR_INST_RETIRED` to count wrong-path branches.
    BrInstExecAll => ("BR_INST_EXEC.ALL_BRANCHES", Intel, Frontend,
        "branch instructions executed, speculative included");
    /// Mispredicted branches retired (architectural only).
    BrMispRetiredAll => ("BR_MISP_RETIRED.ALL_BRANCHES", Intel, Frontend,
        "mispredicted branch instructions retired");
    /// Conditional-predictor lookups that hit in the BTB.
    BtbHits => ("BACLEARS.ANY_BTB_HIT", Intel, Frontend,
        "branch target buffer lookups that hit");

    // ----- Frontend: fetch / decode / IDQ --------------------------------
    /// Uops delivered from the decoded stream buffer (uop cache).
    IdqDsbUops => ("IDQ.DSB_UOPS", Intel, Frontend,
        "uops delivered to IDQ from the DSB (uop cache)");
    /// Cycles the microcode sequencer delivered uops initiated by a DSB hit.
    IdqMsDsbCycles => ("IDQ.MS_DSB_CYCLES", Intel, Frontend,
        "cycles MS delivered uops after a DSB-initiated entry");
    /// Cycles the DSB delivered its optimal uop bandwidth.
    IdqDsbCyclesOk => ("IDQ.DSB_CYCLES_OK", Intel, Frontend,
        "cycles DSB delivered full bandwidth");
    /// Cycles the DSB delivered at least one uop.
    IdqDsbCyclesAny => ("IDQ.DSB_CYCLES_ANY", Intel, Frontend,
        "cycles DSB delivered any uop");
    /// Uops delivered by the microcode sequencer after a MITE entry.
    IdqMsMiteUops => ("IDQ.MS_MITE_UOPS", Intel, Frontend,
        "uops delivered from MITE (legacy decode) via MS");
    /// Cycles MITE delivered at least one uop.
    IdqAllMiteCyclesAnyUops => ("IDQ.ALL_MITE_CYCLES_ANY_UOPS", Intel, Frontend,
        "cycles MITE delivered any uop");
    /// Total microcode-sequencer uops.
    IdqMsUops => ("IDQ.MS_UOPS", Intel, Frontend,
        "uops delivered by the microcode sequencer");
    /// Cycles instruction fetch stalled for L1I data.
    Icache16bIfdataStall => ("ICACHE_16B.IFDATA_STALL", Intel, Frontend,
        "cycles fetch stalled waiting for instruction bytes");
    /// DSB-to-MITE delivery switches (the frontend handoff the resteer
    /// analysis of Figure 3 keys on).
    Dsb2MiteSwitches => ("DSB2MITE_SWITCHES.COUNT", Intel, Frontend,
        "transitions from DSB delivery to legacy-decode delivery");
    /// Cycles the IDQ was empty (frontend starved the backend).
    IdqEmptyCycles => ("IDQ_UOPS_NOT_DELIVERED.CYCLES_0_UOPS_DELIV", Intel, Frontend,
        "cycles zero uops were delivered from IDQ to rename");

    // ----- Backend: issue / execute / retire -----------------------------
    /// Uops issued (renamed), transient included.
    UopsIssuedAny => ("UOPS_ISSUED.ANY", Intel, Backend,
        "uops issued by rename, speculative included");
    /// Cycles rename issued zero uops.
    UopsIssuedStallCycles => ("UOPS_ISSUED.STALL_CYCLES", Intel, Backend,
        "cycles with zero uops issued");
    /// Uops executed on any port, transient included.
    UopsExecutedAny => ("UOPS_EXECUTED.THREAD", Intel, Backend,
        "uops executed, speculative included");
    /// Cycles with zero uops executed.
    UopsExecutedStallCycles => ("UOPS_EXECUTED.STALL_CYCLES", Intel, Backend,
        "cycles with zero uops executed");
    /// Cycles with zero uops executed on the whole core.
    UopsExecutedCoreCyclesNone => ("UOPS_EXECUTED.CORE_CYCLES_NONE", Intel, Backend,
        "core cycles with no uop executed on any port");
    /// Cycles allocation stalled for a backend resource (ROB/RS/SB full).
    ResourceStallsAny => ("RESOURCE_STALLS.ANY", Intel, Backend,
        "cycles allocation stalled on any backend resource");
    /// Total execution stall cycles.
    CycleActivityStallsTotal => ("CYCLE_ACTIVITY.STALLS_TOTAL", Intel, Backend,
        "cycles with no uops executed and backend not idle");
    /// Cycles with at least one in-flight demand load (memory-bound proxy).
    CycleActivityCyclesMemAny => ("CYCLE_ACTIVITY.CYCLES_MEM_ANY", Intel, Memory,
        "cycles with an outstanding memory load");
    /// Cycles the reservation station was empty.
    RsEventsEmptyCycles => ("RS_EVENTS.EMPTY_CYCLES", Intel, Backend,
        "cycles the reservation station was empty");
    /// Uops retired.
    UopsRetiredAll => ("UOPS_RETIRED.ALL", Intel, Backend,
        "uops retired (architectural)");

    // ----- Backend: recovery / resteer -----------------------------------
    /// Cycles rename was stalled by a branch-misprediction recovery.
    IntMiscRecoveryCycles => ("INT_MISC.RECOVERY_CYCLES", Intel, Backend,
        "cycles allocation stalled due to recovery from earlier clear");
    /// Recovery cycles summed across SMT threads.
    IntMiscRecoveryCyclesAny => ("INT_MISC.RECOVERY_CYCLES_ANY", Intel, Backend,
        "recovery cycles, any thread of the core");
    /// Cycles the frontend was resteered after a clear.
    IntMiscClearResteerCycles => ("INT_MISC.CLEAR_RESTEER_CYCLES", Intel, Frontend,
        "cycles from machine clear/mispredict until new uops arrive");

    // ----- Memory subsystem: caches --------------------------------------
    /// Demand loads that hit L1D.
    MemLoadRetiredL1Hit => ("MEM_LOAD_RETIRED.L1_HIT", Intel, Memory,
        "retired loads that hit the L1 data cache");
    /// Demand loads that missed L1D.
    MemLoadRetiredL1Miss => ("MEM_LOAD_RETIRED.L1_MISS", Intel, Memory,
        "retired loads that missed the L1 data cache");
    /// Demand loads that hit L2.
    MemLoadRetiredL2Hit => ("MEM_LOAD_RETIRED.L2_HIT", Intel, Memory,
        "retired loads that hit L2");
    /// Demand loads that hit LLC.
    MemLoadRetiredL3Hit => ("MEM_LOAD_RETIRED.L3_HIT", Intel, Memory,
        "retired loads that hit the last-level cache");
    /// Demand loads served from DRAM.
    MemLoadRetiredL3Miss => ("MEM_LOAD_RETIRED.L3_MISS", Intel, Memory,
        "retired loads that missed the last-level cache");
    /// Line-fill-buffer allocations.
    L1dPendMissFbFull => ("L1D_PEND_MISS.FB_FULL", Intel, Memory,
        "cycles a demand request stalled because all fill buffers were busy");
    /// Loads blocked because they could not forward from an in-flight
    /// store (partial overlap or a flushed line) — the Listing 1 `ret`
    /// slow-down shows up here.
    LdBlocksStoreForward => ("LD_BLOCKS.STORE_FORWARD", Intel, Memory,
        "loads blocked on an unforwardable in-flight store");

    // ----- Memory subsystem: TLB / page walks -----------------------------
    /// DTLB load misses that started a page walk.
    DtlbLoadMissesMissCausesAWalk => ("DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK", Intel, Memory,
        "load DTLB misses that caused a page walk");
    /// Cycles a DTLB-load page walk was active.
    DtlbLoadMissesWalkActive => ("DTLB_LOAD_MISSES.WALK_ACTIVE", Intel, Memory,
        "cycles at least one load page walk was active");
    /// DTLB load walks that completed with a translation.
    DtlbLoadMissesWalkCompleted => ("DTLB_LOAD_MISSES.WALK_COMPLETED", Intel, Memory,
        "load page walks that completed successfully");
    /// ITLB misses that started a page walk.
    ItlbMissesMissCausesAWalk => ("ITLB_MISSES.MISS_CAUSES_A_WALK", Intel, Memory,
        "instruction TLB misses that caused a page walk");
    /// Cycles an ITLB page walk was active.
    ItlbMissesWalkActive => ("ITLB_MISSES.WALK_ACTIVE", Intel, Memory,
        "cycles at least one instruction page walk was active");
    /// DTLB fills (translations installed), including fills on faulting
    /// accesses — the mechanism behind TET-KASLR.
    DtlbFills => ("DTLB_FILLS.ANY", Intel, Memory,
        "translations installed into the load DTLB");

    // ----- AMD Zen 3 (Table 3 Ryzen rows) ---------------------------------
    /// L1 BTB corrections (paper: `bp_l1_btb_correct`).
    BpL1BtbCorrect => ("bp_l1_btb_correct", Amd, Frontend,
        "L1 BTB corrections of the branch fetch target");
    /// L1 TLB fetch hits (paper: `bp_l1_tlb_fetch_hit`).
    BpL1TlbFetchHit => ("bp_l1_tlb_fetch_hit", Amd, Frontend,
        "instruction fetches that hit the L1 ITLB");
    /// Cycles dispatch slot 0 had an empty uop queue
    /// (paper: `de_dis_uop_queue_empty_di0`).
    DeDisUopQueueEmptyDi0 => ("de_dis_uop_queue_empty_di0", Amd, Frontend,
        "cycles the uop queue was empty at dispatch slot 0");
    /// Dispatch stalled on retire tokens
    /// (paper: `de_dis_dispatch_token_stalls2.retire_token_stall`).
    DeDisDispatchTokenStalls2RetireTokenStall =>
        ("de_dis_dispatch_token_stalls2.retire_token_stall", Amd, Backend,
        "dispatch stall cycles due to exhausted retire-queue tokens");
    /// 32-byte instruction-cache fetch windows (paper: `ic_fw32`).
    IcFw32 => ("ic_fw32", Amd, Frontend,
        "32-byte instruction fetch windows read from the I-cache");
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, e) in Event::ALL.iter().enumerate() {
            assert_eq!(*e as usize, i);
        }
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<_> = Event::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), Event::ALL.len());
    }

    #[test]
    fn from_name_round_trips() {
        for e in Event::ALL {
            assert_eq!(Event::from_name(e.name()), Some(*e));
        }
    }

    #[test]
    fn table3_events_are_present() {
        // Every event name that appears in Table 3 of the paper.
        for name in [
            "BR_MISP_EXEC.INDIRECT",
            "BR_MISP_EXEC.ALL_BRANCHES",
            "RESOURCE_STALLS.ANY",
            "IDQ.DSB_UOPS",
            "IDQ.MS_DSB_CYCLES",
            "IDQ.DSB_CYCLES_OK",
            "IDQ.DSB_CYCLES_ANY",
            "IDQ.MS_MITE_UOPS",
            "IDQ.ALL_MITE_CYCLES_ANY_UOPS",
            "IDQ.MS_UOPS",
            "UOPS_EXECUTED.CORE_CYCLES_NONE",
            "CYCLE_ACTIVITY.STALLS_TOTAL",
            "UOPS_EXECUTED.STALL_CYCLES",
            "CYCLE_ACTIVITY.CYCLES_MEM_ANY",
            "INT_MISC.RECOVERY_CYCLES_ANY",
            "INT_MISC.CLEAR_RESTEER_CYCLES",
            "UOPS_ISSUED.ANY",
            "UOPS_ISSUED.STALL_CYCLES",
            "RS_EVENTS.EMPTY_CYCLES",
            "bp_l1_btb_correct",
            "bp_l1_tlb_fetch_hit",
            "de_dis_uop_queue_empty_di0",
            "de_dis_dispatch_token_stalls2.retire_token_stall",
            "ic_fw32",
            "INT_MISC.RECOVERY_CYCLES",
            "ICACHE_16B.IFDATA_STALL",
            "DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK",
            "DTLB_LOAD_MISSES.WALK_ACTIVE",
            "ITLB_MISSES.WALK_ACTIVE",
        ] {
            assert!(
                Event::from_name(name).is_some(),
                "Table 3 event missing from catalog: {name}"
            );
        }
    }

    #[test]
    fn vendor_partition_is_sane() {
        assert!(Event::ALL.iter().any(|e| e.desc().vendor == Vendor::Intel));
        assert!(Event::ALL.iter().any(|e| e.desc().vendor == Vendor::Amd));
        assert!(Event::ALL.iter().any(|e| e.desc().vendor == Vendor::Common));
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(
            Event::DtlbLoadMissesWalkActive.to_string(),
            "DTLB_LOAD_MISSES.WALK_ACTIVE"
        );
    }
}
