//! Property test: pre-decoded µop templates are field-for-field
//! identical to legacy per-instruction cracking (DESIGN.md §13).
//!
//! [`ProgramTemplate::build`] cracks a program once; the pipeline then
//! instantiates every µop from the template. The template fast path is
//! only sound if each cached [`tet_uarch::UopMeta`] field equals what
//! the legacy crack-on-fetch path would have computed for that pc —
//! opcode dispatch index, classification bits, source/destination
//! register lists, mnemonic, code vaddr and code page. This sweeps the
//! `tet-check` random-program generator (the same generator the oracle
//! fuzzer uses): 200 programs per Table 2 preset, every instruction of
//! every program compared on every field.
//!
//! Deterministic: one fixed RNG stream per preset, so CI always checks
//! the same 1000 programs.

use proptest::test_runner::TestRng;
use tet_check::gen::{self, GenConfig};
use tet_uarch::uop::{dest_regs, src_regs, UopKind};
use tet_uarch::{code_vaddr, CpuConfig, ProgramTemplate};

const PROGRAMS_PER_PRESET: usize = 200;

#[test]
fn template_matches_legacy_cracking_on_random_programs() {
    let gen_cfg = GenConfig::default();
    for preset in CpuConfig::table2_presets() {
        let mut rng = TestRng::deterministic(&format!("template-eq-{}", preset.name));
        for case in 0..PROGRAMS_PER_PRESET {
            let insts = gen::gen_program(&mut rng, &gen_cfg);
            let program = gen::to_program(&insts);
            let tpl = ProgramTemplate::build(&program);
            let ctx = || format!("preset {} case {case}", preset.name);

            assert_eq!(tpl.len(), program.len(), "{}", ctx());
            assert_eq!(tpl.is_empty(), program.is_empty(), "{}", ctx());
            assert_eq!(tpl.program().insts(), program.insts(), "{}", ctx());
            for pc in 0..program.len() {
                let inst = program.fetch(pc).expect("pc < len");
                let m = tpl
                    .meta(pc)
                    .unwrap_or_else(|| panic!("{}: missing meta for pc {pc} ({inst:?})", ctx()));
                assert_eq!(m.inst, inst, "{}: pc {pc} inst", ctx());
                assert_eq!(m.op, inst.opcode(), "{}: pc {pc} opcode ({inst:?})", ctx());
                assert_eq!(
                    m.kind,
                    UopKind::classify(&inst),
                    "{}: pc {pc} kind ({inst:?})",
                    ctx()
                );
                assert_eq!(
                    m.srcs.as_slice(),
                    src_regs(&inst).as_slice(),
                    "{}: pc {pc} srcs ({inst:?})",
                    ctx()
                );
                assert_eq!(
                    m.dests.as_slice(),
                    dest_regs(&inst).as_slice(),
                    "{}: pc {pc} dests ({inst:?})",
                    ctx()
                );
                assert_eq!(m.mnemonic, inst.mnemonic(), "{}: pc {pc} mnemonic", ctx());
                assert_eq!(m.vaddr, code_vaddr(pc), "{}: pc {pc} vaddr", ctx());
                assert_eq!(
                    m.page,
                    code_vaddr(pc) / tet_mem::PAGE_SIZE,
                    "{}: pc {pc} page",
                    ctx()
                );
            }
            // Out-of-program pcs must stay out-of-template, too: the
            // frontend relies on `meta(pc) == None` exactly where
            // `fetch(pc) == None` ends a run.
            assert!(tpl.meta(program.len()).is_none(), "{}", ctx());
        }
    }
}
