//! Temporary diagnostic for the RSB timing components.
use tet_isa::{Asm, Cond, Program, Reg};
use tet_pmu::Event;
use tet_uarch::{CpuConfig, Machine, RunConfig, RunExit};

fn rsb_gadget(secret_addr: u64, sea: usize) -> Program {
    let build = |done_pc: u64| -> (Asm, usize) {
        let mut a = Asm::new();
        let f = a.fresh_label();
        let matched = a.fresh_label();
        a.rdtsc().mov_reg(Reg::R8, Reg::Rax).lfence().call(f);
        a.load_byte_abs(Reg::Rax, secret_addr)
            .cmp(Reg::Rax, Reg::Rbx)
            .jcc(Cond::E, matched)
            .nops(sea);
        a.bind(f);
        a.mov_imm(Reg::R9, done_pc)
            .store(Reg::R9, Reg::Rsp, 0)
            .clflush(Reg::Rsp, 0)
            .ret();
        let done = a.here();
        a.bind(matched);
        a.lfence().rdtsc().sub(Reg::Rax, Reg::R8).halt();
        (a, done)
    };
    let (_, done_pc) = build(0);
    let (a, _) = build(done_pc as u64);
    a.assemble().unwrap()
}

#[test]
fn dump_components() {
    let mut m = Machine::new(CpuConfig::raptor_lake_i9_13900k(), 23);
    let pa = m.map_user_page(0x50_0000);
    m.phys_mut().write_u8(pa, b'R');
    m.map_user_page(0x60_0000);
    let prog = rsb_gadget(0x50_0000, 48);
    let run = |m: &mut Machine, test: u64| {
        let before = m.cpu().pmu.snapshot();
        let r = m.run(
            &prog,
            &RunConfig {
                init_regs: vec![(Reg::Rbx, test), (Reg::Rsp, 0x60_0800)],
                ..RunConfig::default()
            },
        );
        assert_eq!(r.exit, RunExit::Halted);
        let d = m.cpu().pmu.snapshot().delta(&before);
        (
            r.regs.get(Reg::Rax),
            d.count(Event::BrMispExecAllBranches),
            d.count(Event::IntMiscClearResteerCycles),
            d.count(Event::UopsIssuedAny),
            d.count(Event::BrMispExecIndirect),
        )
    };
    for _ in 0..4 {
        run(&mut m, 1);
    }
    for i in 0..2 {
        let miss = run(&mut m, 1);
        let hit = run(&mut m, b'R' as u64);
        println!(
            "round {i}: miss tote={} misp={} resteer={} issued={} ind={}",
            miss.0, miss.1, miss.2, miss.3, miss.4
        );
        println!(
            "         hit  tote={} misp={} resteer={} issued={} ind={}",
            hit.0, hit.1, hit.2, hit.3, hit.4
        );
    }
}

#[test]
fn sweep_sea() {
    for sea in [0usize, 8, 16, 32, 48, 96] {
        let mut m = Machine::new(CpuConfig::raptor_lake_i9_13900k(), 23);
        let pa = m.map_user_page(0x50_0000);
        m.phys_mut().write_u8(pa, b'R');
        m.map_user_page(0x60_0000);
        let prog = rsb_gadget(0x50_0000, sea);
        let run = |m: &mut Machine, test: u64| {
            let r = m.run(
                &prog,
                &RunConfig {
                    init_regs: vec![(Reg::Rbx, test), (Reg::Rsp, 0x60_0800)],
                    ..RunConfig::default()
                },
            );
            r.regs.get(Reg::Rax)
        };
        for _ in 0..4 {
            run(&mut m, 1);
        }
        let miss = run(&mut m, 1);
        let hit = run(&mut m, b'R' as u64);
        println!(
            "sea={sea:3}: miss={miss} hit={hit} delta={}",
            miss as i64 - hit as i64
        );
    }
}

#[test]
fn trace_windows() {
    let mut m = Machine::new(CpuConfig::raptor_lake_i9_13900k(), 23);
    let pa = m.map_user_page(0x50_0000);
    m.phys_mut().write_u8(pa, b'R');
    m.map_user_page(0x60_0000);
    let prog = rsb_gadget(0x50_0000, 48);
    let run = |m: &mut Machine, test: u64| {
        let r = m.run(
            &prog,
            &RunConfig {
                init_regs: vec![(Reg::Rbx, test), (Reg::Rsp, 0x60_0800)],
                trace_frontend: true,
                ..RunConfig::default()
            },
        );
        (r.regs.get(Reg::Rax), r.frontend_trace.unwrap())
    };
    for _ in 0..4 {
        run(&mut m, 1);
    }
    for (label, test) in [("miss", 1u64), ("hit", b'R' as u64)] {
        let (tote, tr) = run(&mut m, test);
        let line: String = tr
            .iter()
            .map(|e| {
                if e.mite_uops > 0 {
                    'M'
                } else if e.dsb_uops > 0 {
                    'D'
                } else if e.stalled {
                    '.'
                } else {
                    '_'
                }
            })
            .collect();
        println!("{label} tote={tote}\n{line}");
    }
}
