//! SMT co-execution determinism and isolation properties.

use tet_isa::{Asm, Cond, Program, Reg};
use tet_uarch::{CpuConfig, RunConfig, RunExit, SmtMachine};

fn worker(iters: u64, stride: u64) -> Program {
    let mut a = Asm::new();
    let top = a.fresh_label();
    a.mov_imm(Reg::Rcx, iters).mov_imm(Reg::Rax, 0);
    a.bind(top)
        .add(Reg::Rax, stride)
        .nops(3)
        .sub(Reg::Rcx, 1u64)
        .jcc(Cond::Ne, top)
        .halt();
    a.assemble().expect("worker is closed")
}

#[test]
fn co_runs_are_bit_for_bit_deterministic() {
    let run = || {
        let mut smt = SmtMachine::new(CpuConfig::kaby_lake_i7_7700(), 1234);
        let r = smt.run(
            &worker(50, 3),
            &worker(70, 7),
            &RunConfig::default(),
            &RunConfig::default(),
        );
        (
            r.t0.cycles,
            r.t1.cycles,
            r.t0.regs.get(Reg::Rax),
            r.t1.regs.get(Reg::Rax),
            r.t0.pmu.count(tet_pmu::Event::CpuClkUnhalted),
            r.t1.pmu.count(tet_pmu::Event::CpuClkUnhalted),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn threads_compute_independent_results() {
    let mut smt = SmtMachine::new(CpuConfig::kaby_lake_i7_7700(), 5);
    let r = smt.run(
        &worker(50, 3),
        &worker(70, 7),
        &RunConfig::default(),
        &RunConfig::default(),
    );
    assert_eq!(r.t0.exit, RunExit::Halted);
    assert_eq!(r.t1.exit, RunExit::Halted);
    assert_eq!(r.t0.regs.get(Reg::Rax), 150);
    assert_eq!(r.t1.regs.get(Reg::Rax), 490);
}

#[test]
fn address_spaces_are_isolated() {
    // Same virtual address, different physical frames per thread.
    let mut smt = SmtMachine::new(CpuConfig::kaby_lake_i7_7700(), 5);
    let va = 0x33_0000u64;
    let pa0 = smt.map_user_page(0, va);
    let pa1 = smt.map_user_page(1, va);
    assert_ne!(pa0, pa1);
    smt.phys_mut().write_u64(pa0, 111);
    smt.phys_mut().write_u64(pa1, 222);

    let mut a = Asm::new();
    a.load_abs(Reg::Rax, va).halt();
    let p = a.assemble().unwrap();
    let r = smt.run(&p, &p, &RunConfig::default(), &RunConfig::default());
    assert_eq!(r.t0.regs.get(Reg::Rax), 111);
    assert_eq!(r.t1.regs.get(Reg::Rax), 222);
}

#[test]
fn one_sided_runs_still_terminate() {
    // Thread 1 finishes immediately; thread 0 keeps going.
    let mut smt = SmtMachine::new(CpuConfig::kaby_lake_i7_7700(), 5);
    let mut b = Asm::new();
    b.halt();
    let r = smt.run(
        &worker(100, 1),
        &b.assemble().unwrap(),
        &RunConfig::default(),
        &RunConfig::default(),
    );
    assert_eq!(r.t0.exit, RunExit::Halted);
    assert_eq!(r.t1.exit, RunExit::Halted);
    assert_eq!(r.t0.regs.get(Reg::Rax), 100);
}

#[test]
fn sibling_noise_perturbs_timing_but_never_results() {
    // A fault-storm neighbour slows the worker without corrupting it.
    let mut quiet = SmtMachine::new(CpuConfig::kaby_lake_i7_7700(), 5);
    let mut qb = Asm::new();
    qb.halt();
    let baseline = quiet.run(
        &worker(100, 13),
        &qb.assemble().unwrap(),
        &RunConfig::default(),
        &RunConfig::default(),
    );

    let mut noisy = SmtMachine::new(CpuConfig::kaby_lake_i7_7700(), 5);
    let mut t = Asm::new();
    let top = t.fresh_label();
    t.mov_imm(Reg::Rcx, 50);
    let resume = t.here();
    t.bind(top)
        .load_abs(Reg::Rax, 0xdead_0000)
        .sub(Reg::Rcx, 1u64)
        .jcc(Cond::Ne, top)
        .halt();
    let storm = t.assemble().unwrap();
    let r = noisy.run(
        &worker(100, 13),
        &storm,
        &RunConfig::default(),
        &RunConfig {
            handler_pc: Some(resume + 1),
            ..RunConfig::default()
        },
    );
    assert_eq!(r.t0.regs.get(Reg::Rax), baseline.t0.regs.get(Reg::Rax));
    assert!(
        r.t0.cycles > baseline.t0.cycles,
        "the fault storm must cost the worker time ({} vs {})",
        r.t0.cycles,
        baseline.t0.cycles
    );
}
