//! Property-based fuzzing of the OoO core against the `tet-check`
//! reference interpreter (DESIGN.md §9).
//!
//! Random gadget-shaped programs (arithmetic, memory traffic, forward
//! branches, faulting accesses, TSX, fences) run under every Table 2
//! `CpuConfig` preset with the retirement oracle live. Any divergence
//! panics inside the run; the harness then shrinks the program to a
//! minimal failing fixture and prints it, ready to paste into
//! [`shrunken fixtures`](#shrunken-fixtures) below as a permanent
//! regression test.
//!
//! Deterministic: the RNG seed is fixed, so every CI run fuzzes the same
//! programs. `TET_FUZZ_CASES` scales the per-preset program count
//! (default 200 → 1000 oracle-checked runs across the 5 presets).

use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::test_runner::TestRng;
use tet_check::gen::{self, layout, GenConfig};
use tet_isa::{Inst, Reg};
use tet_uarch::{CpuConfig, Machine, RunConfig};

/// Cycle budget per fuzz run: wild `ret`s can loop a program until the
/// budget expires, and `CycleLimit` is a clean oracle exit.
const FUZZ_MAX_CYCLES: u64 = 5_000;

fn fuzz_cases_per_preset() -> usize {
    std::env::var("TET_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// A machine with the generator's layout mapped: data + stack pages
/// (user), one kernel page holding a secret, and check mode forced on.
fn machine_for(cfg: CpuConfig, seed: u64) -> Machine {
    let mut m = Machine::new(cfg, seed);
    m.map_user_page(layout::DATA_PAGE);
    m.map_user_page(layout::STACK_PAGE);
    let kpa = m.map_kernel_page(layout::KERNEL_PAGE);
    m.phys_mut().write_u64(kpa, 0x5ec2e7_5ec2e7);
    m.set_check_mode(true);
    m
}

fn run_cfg(handler: Option<usize>) -> RunConfig {
    RunConfig {
        handler_pc: handler,
        max_cycles: FUZZ_MAX_CYCLES,
        init_regs: vec![(Reg::Rsp, layout::STACK_TOP)],
        ..RunConfig::default()
    }
}

/// Runs one program on one preset; returns the panic payload on oracle
/// divergence (or any other panic), `None` on a clean run.
fn run_once(cfg: &CpuConfig, seed: u64, insts: &[Inst], handler: Option<usize>) -> Option<String> {
    let program = gen::to_program(insts);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut m = machine_for(cfg.clone(), seed);
        m.run(&program, &run_cfg(handler));
    }));
    result.err().map(|e| {
        e.downcast_ref::<String>()
            .cloned()
            .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic".into())
    })
}

/// The main fuzz loop: `TET_FUZZ_CASES` random programs per preset, each
/// with the oracle live. On divergence, shrinks to a minimal program and
/// fails with a rendered fixture.
#[test]
fn fuzz_random_programs_against_reference() {
    let presets = CpuConfig::table2_presets();
    let cases = fuzz_cases_per_preset();
    let gen_cfg = GenConfig::default();
    for (pi, preset) in presets.iter().enumerate() {
        let mut rng = TestRng::deterministic(&format!("fuzz-oracle-{}", preset.name));
        for case in 0..cases {
            let insts = gen::gen_program(&mut rng, &gen_cfg);
            // Alternate between fault-terminates and signal-handler runs
            // so both delivery routes get fuzzed.
            let handler = (case % 2 == 1).then_some(insts.len() - 1);
            let seed = (pi as u64) << 32 | case as u64;
            if let Some(panic) = run_once(preset, seed, &insts, handler) {
                let min = gen::shrink(insts, |candidate| {
                    let h = handler.map(|_| candidate.len() - 1);
                    run_once(preset, seed, candidate, h).is_some()
                });
                let h = handler.map(|_| min.len() - 1);
                let min_panic = run_once(preset, seed, &min, h).unwrap_or(panic);
                panic!(
                    "oracle divergence on preset {} case {case} (handler: {handler:?}).\n\
                     Minimal program:\n{}\nDivergence:\n{min_panic}",
                    preset.name,
                    gen::render(&min),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shrunken fixtures
//
// Deterministic regression programs in the exact shape the shrinker
// emits. Programs that once exposed interesting machine/reference
// disagreements during bring-up (or exercise the trickiest retirement
// paths) are pinned here forever.
// ---------------------------------------------------------------------------

fn check_fixture(insts: &[Inst], handler: Option<usize>) {
    for (pi, preset) in CpuConfig::table2_presets().iter().enumerate() {
        if let Some(panic) = run_once(preset, 0x7e57 + pi as u64, insts, handler) {
            panic!(
                "fixture diverged on preset {}:\n{}\n{panic}",
                preset.name,
                gen::render(insts)
            );
        }
    }
}

/// A faulting load inside a TSX region: the abort path must roll back
/// the register file and resume at the abort target.
#[test]
fn fixture_tsx_abort_rolls_back() {
    let insts = vec![
        /*  0 */
        Inst::MovImm {
            dst: Reg::Rax,
            imm: 7,
        },
        /*  1 */
        Inst::XBegin { abort_target: 4 },
        /*  2 */
        Inst::MovImm {
            dst: Reg::Rax,
            imm: 99,
        },
        /*  3 */
        Inst::Load {
            dst: Reg::Rbx,
            addr: tet_isa::Addr::abs(layout::KERNEL_PAGE),
        },
        /*  4 */ Inst::Halt,
    ];
    check_fixture(&insts, None);
}

/// A store inside an aborting transaction must be undone in physical
/// memory before the abort target runs.
#[test]
fn fixture_tsx_abort_undoes_stores() {
    let insts = vec![
        /*  0 */
        Inst::MovImm {
            dst: Reg::Rcx,
            imm: 0x41,
        },
        /*  1 */
        Inst::Store {
            src: Reg::Rcx,
            addr: tet_isa::Addr::abs(layout::DATA_PAGE + 0x100),
        },
        /*  2 */
        Inst::XBegin { abort_target: 6 },
        /*  3 */
        Inst::MovImm {
            dst: Reg::Rcx,
            imm: 0x42,
        },
        /*  4 */
        Inst::Store {
            src: Reg::Rcx,
            addr: tet_isa::Addr::abs(layout::DATA_PAGE + 0x100),
        },
        /*  5 */
        Inst::LoadByte {
            dst: Reg::Rdx,
            addr: tet_isa::Addr::abs(layout::UNMAPPED),
        },
        /*  6 */
        Inst::Load {
            dst: Reg::Rsi,
            addr: tet_isa::Addr::abs(layout::DATA_PAGE + 0x100),
        },
        /*  7 */ Inst::Halt,
    ];
    check_fixture(&insts, None);
}

/// Faulting access with a signal handler: the machine resteers to the
/// handler pc with no architectural side effects from the faulting µop.
#[test]
fn fixture_fault_to_handler() {
    let insts = vec![
        /*  0 */
        Inst::MovImm {
            dst: Reg::Rbx,
            imm: 3,
        },
        /*  1 */
        Inst::Load {
            dst: Reg::Rbx,
            addr: tet_isa::Addr::abs(layout::KERNEL_PAGE + 8),
        },
        /*  2 */
        Inst::MovImm {
            dst: Reg::Rbx,
            imm: 555,
        },
        /*  3 */ Inst::Halt,
    ];
    check_fixture(&insts, Some(3));
}

/// Call/ret round trip with stack traffic between: store-to-load
/// forwarding on the return address and `rsp` bookkeeping both commit.
#[test]
fn fixture_call_ret_stack_traffic() {
    let insts = vec![
        /*  0 */ Inst::Call { target: 3 },
        /*  1 */
        Inst::MovImm {
            dst: Reg::Rdi,
            imm: 11,
        },
        /*  2 */ Inst::Halt,
        /*  3 */ Inst::Push { src: Reg::Rdi },
        /*  4 */
        Inst::MovImm {
            dst: Reg::Rdi,
            imm: 22,
        },
        /*  5 */ Inst::Pop { dst: Reg::Rdi },
        /*  6 */ Inst::Ret,
        /*  7 */ Inst::Halt,
    ];
    check_fixture(&insts, None);
}

/// `pop rsp` — the dst write and the stack-pointer increment race; the
/// core resolves it increment-last, and the reference must agree.
#[test]
fn fixture_pop_into_rsp() {
    let insts = vec![
        /*  0 */ Inst::Push { src: Reg::Rsp },
        /*  1 */ Inst::Pop { dst: Reg::Rsp },
        /*  2 */
        Inst::MovImm {
            dst: Reg::Rax,
            imm: 1,
        },
        /*  3 */ Inst::Halt,
    ];
    check_fixture(&insts, None);
}

/// A mispredicted conditional branch over a store: the squashed store
/// must leave no architectural trace.
#[test]
fn fixture_branch_over_store() {
    let insts = vec![
        /*  0 */
        Inst::MovImm {
            dst: Reg::Rax,
            imm: 0,
        },
        /*  1 */
        Inst::Cmp {
            a: Reg::Rax,
            b: tet_isa::Src::Imm(0),
        },
        /*  2 */
        Inst::Jcc {
            cond: tet_isa::Cond::E,
            target: 4,
        },
        /*  3 */
        Inst::Store {
            src: Reg::Rax,
            addr: tet_isa::Addr::abs(layout::UNMAPPED),
        },
        /*  4 */
        Inst::Load {
            dst: Reg::Rbx,
            addr: tet_isa::Addr::abs(layout::DATA_PAGE),
        },
        /*  5 */ Inst::Halt,
    ];
    check_fixture(&insts, None);
}

// ---------------------------------------------------------------------------
// Mutation test (DESIGN.md §9): prove the oracle actually has teeth.
// ---------------------------------------------------------------------------

/// Injects a retire-path bug (every committed result value XOR 1) and
/// asserts the oracle catches it on a trivial program. If this test ever
/// fails, the oracle has gone blind.
#[test]
fn mutation_corrupted_retire_is_caught() {
    let insts = vec![
        Inst::MovImm {
            dst: Reg::Rax,
            imm: 4,
        },
        Inst::Halt,
    ];
    let program = gen::to_program(&insts);
    let caught = catch_unwind(AssertUnwindSafe(|| {
        let mut m = machine_for(CpuConfig::kaby_lake_i7_7700(), 1);
        m.cpu_mut().set_retire_corruption_for_tests(true);
        m.run(&program, &run_cfg(None));
    }));
    let msg = match caught {
        Ok(_) => panic!("oracle missed an injected retire-path corruption"),
        Err(e) => e
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into()),
    };
    assert!(
        msg.contains("divergence") || msg.contains("Rax"),
        "unexpected panic message: {msg}"
    );
}
