//! End-to-end tests of the structured trace stream: a Machine run with a
//! sink attached emits a consistent µop lifecycle, the stream agrees with
//! the legacy `uop_trace` adapter, attaching a sink does not perturb the
//! simulation, and the Chrome exporter over real events stays schema-valid.

use std::sync::Arc;

use tet_isa::{Asm, Reg};
use tet_obs::{ChromeTrace, EventKind, MemorySink, SinkHandle, TraceEvent};
use tet_uarch::{CpuConfig, Machine, RunConfig, RunExit};

fn meltdown_asm() -> (Asm, usize) {
    let mut a = Asm::new();
    a.load_abs(Reg::Rax, 0xffff_ffff_8000_0000) // faults at retire
        .add(Reg::Rax, 1u64) // transient dependents
        .add(Reg::Rax, 2u64);
    let handler = a.here();
    a.halt();
    (a, handler)
}

fn recorded_run(
    m: &mut Machine,
    a: &Asm,
    handler: usize,
) -> (tet_uarch::RunResult, Vec<TraceEvent>) {
    let rec = Arc::new(MemorySink::new());
    let r = m.run(
        &a.assemble().expect("assembles"),
        &RunConfig {
            handler_pc: Some(handler),
            trace_uops: true,
            sink: SinkHandle::attached(rec.clone()),
            ..RunConfig::default()
        },
    );
    (r, rec.drain())
}

#[test]
fn sink_stream_is_lifecycle_consistent() {
    let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 3);
    m.map_kernel_page(0xffff_ffff_8000_0000);
    let (a, handler) = meltdown_asm();
    let (r, events) = recorded_run(&mut m, &a, handler);
    assert_eq!(r.exit, RunExit::Halted);
    assert!(!events.is_empty());

    // Cycles are monotone non-decreasing along the stream.
    let mut last = 0;
    for ev in &events {
        assert!(ev.cycle >= last, "clock went backwards at {ev:?}");
        last = ev.cycle;
    }

    // Every retired or squashed µop was renamed first, and no µop gets
    // two fates.
    let mut renamed = std::collections::HashSet::new();
    let mut ended = std::collections::HashSet::new();
    for ev in &events {
        match ev.kind {
            EventKind::UopRenamed { id, .. } => {
                assert!(renamed.insert(id), "duplicate rename of µop {id}");
            }
            EventKind::UopRetired { id } | EventKind::UopSquashed { id, .. } => {
                assert!(renamed.contains(&id), "µop {id} ended without rename");
                assert!(ended.insert(id), "µop {id} ended twice");
            }
            _ => {}
        }
    }

    // The Meltdown gadget must show its signature in the stream: a raised
    // permission fault, its serialized delivery, and fault squashes.
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::FaultRaised { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e.kind, EventKind::FaultDelivered { .. })));
    assert!(events.iter().any(|e| matches!(
        e.kind,
        EventKind::UopSquashed {
            cause: tet_obs::SquashCause::Fault,
            ..
        }
    )));
}

#[test]
fn sink_stream_agrees_with_legacy_uop_trace() {
    let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 3);
    m.map_kernel_page(0xffff_ffff_8000_0000);
    let (a, handler) = meltdown_asm();
    let (r, events) = recorded_run(&mut m, &a, handler);
    let trace = r.uop_trace.expect("requested");

    let renames = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::UopRenamed { .. }))
        .count();
    assert_eq!(trace.len(), renames, "one trace row per renamed µop");
    for t in &trace {
        let rename = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::UopRenamed { id, .. } if id == t.id))
            .expect("rename event exists");
        assert_eq!(rename.cycle, t.renamed_at);
    }
}

#[test]
fn attaching_a_sink_does_not_perturb_the_run() {
    let (a, handler) = meltdown_asm();
    let bare = {
        let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 3);
        m.map_kernel_page(0xffff_ffff_8000_0000);
        m.run(
            &a.assemble().expect("assembles"),
            &RunConfig {
                handler_pc: Some(handler),
                ..RunConfig::default()
            },
        )
    };
    let (observed, events) = {
        let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 3);
        m.map_kernel_page(0xffff_ffff_8000_0000);
        recorded_run(&mut m, &a, handler)
    };
    assert_eq!(bare.exit, observed.exit);
    assert_eq!(
        bare.cycles, observed.cycles,
        "tracing must not change timing"
    );
    assert_eq!(bare.retired, observed.retired);
    assert!(!events.is_empty());
}

#[test]
fn chrome_export_of_a_real_run_is_schema_valid() {
    use tet_obs::json::Value;
    let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 3);
    m.map_kernel_page(0xffff_ffff_8000_0000);
    let (a, handler) = meltdown_asm();
    let (_, events) = recorded_run(&mut m, &a, handler);
    let doc = ChromeTrace::new("obs_stream", events).to_value();
    let list = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents");
    assert!(!list.is_empty());
    for e in list {
        assert!(e.get("name").and_then(Value::as_str).is_some());
        assert!(e.get("ph").and_then(Value::as_str).is_some());
        assert!(e.get("pid").and_then(Value::as_u64).is_some());
        assert!(e.get("tid").and_then(Value::as_u64).is_some());
        assert!(e.get("ts").and_then(Value::as_u64).is_some());
    }
}
