//! Wiring tests for the extended PMU events: executed-vs-retired branch
//! counts, DSB→MITE switches, and store-forward blocks.

use tet_isa::{Asm, Cond, Reg};
use tet_pmu::Event;
use tet_uarch::{CpuConfig, Machine, RunConfig, RunExit};

fn machine() -> Machine {
    let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 5);
    m.map_user_page(0x20_0000);
    m.map_user_page(0x60_0000);
    m
}

#[test]
fn executed_branches_exceed_retired_on_wrong_paths() {
    let mut m = machine();
    let mut a = Asm::new();
    let top = a.fresh_label();
    a.mov_imm(Reg::Rcx, 20);
    a.bind(top)
        .sub(Reg::Rcx, 1u64)
        .jcc(Cond::Ne, top) // mispredicts at loop exit
        .halt();
    let prog = a.assemble().unwrap();
    m.run(&prog, &RunConfig::default()); // warm
    let before = m.cpu().pmu.snapshot();
    let r = m.run(&prog, &RunConfig::default());
    assert_eq!(r.exit, RunExit::Halted);
    let d = m.cpu().pmu.snapshot().delta(&before);
    let executed = d.count(Event::BrInstExecAll);
    let retired = d.count(Event::BrInstRetiredAll);
    assert_eq!(retired, 20, "twenty architectural loop branches");
    assert!(
        executed >= retired,
        "speculative execution can only add branches ({executed} vs {retired})"
    );
}

#[test]
fn dsb2mite_switch_counts_cold_decode_entries() {
    let mut m = machine();
    let mut a = Asm::new();
    a.nops(8).halt();
    let prog = a.assemble().unwrap();
    let before = m.cpu().pmu.snapshot();
    m.run(&prog, &RunConfig::default());
    let cold = m.cpu().pmu.snapshot().delta(&before);
    // Cold run: everything decodes via MITE, but a switch needs a prior
    // DSB delivery; run again and the warm DSB serves everything.
    let before = m.cpu().pmu.snapshot();
    m.run(&prog, &RunConfig::default());
    let warm = m.cpu().pmu.snapshot().delta(&before);
    assert_eq!(
        warm.count(Event::Dsb2MiteSwitches),
        0,
        "a fully warm run never leaves the DSB"
    );
    assert!(warm.count(Event::IdqDsbUops) >= 9);
    let _ = cold;
}

#[test]
fn blocked_forwarding_is_counted() {
    let mut m = machine();
    let mut a = Asm::new();
    // Store, flush the line, then load it back: forwarding is blocked by
    // the clflush, the load must wait and go to memory (Listing 1's
    // ret slow-down in miniature).
    a.mov_imm(Reg::Rax, 7)
        .store_abs(Reg::Rax, 0x20_0040)
        .clflush_abs(0x20_0040)
        .load_abs(Reg::Rbx, 0x20_0040)
        .halt();
    let prog = a.assemble().unwrap();
    m.run(&prog, &RunConfig::default()); // warm code
    let before = m.cpu().pmu.snapshot();
    let r = m.run(&prog, &RunConfig::default());
    assert_eq!(r.exit, RunExit::Halted);
    assert_eq!(r.regs.get(Reg::Rbx), 7, "the value still arrives");
    let d = m.cpu().pmu.snapshot().delta(&before);
    assert!(
        d.count(Event::LdBlocksStoreForward) > 0,
        "the blocked load must be counted"
    );
}

#[test]
fn partial_overlap_also_blocks() {
    let mut m = machine();
    let mut a = Asm::new();
    a.mov_imm(Reg::Rax, 0x1111_2222_3333_4444)
        .store_abs(Reg::Rax, 0x20_0080) // 8-byte store
        .load_byte_abs(Reg::Rbx, 0x20_0083) // contained: forwards
        .mov_imm(Reg::Rcx, 0xff)
        .store_byte_abs(Reg::Rcx, 0x20_00c2) // byte store
        .load_abs(Reg::Rdx, 0x20_00c0) // partial overlap: blocks
        .halt();
    let prog = a.assemble().unwrap();
    m.run(&prog, &RunConfig::default());
    let before = m.cpu().pmu.snapshot();
    let r = m.run(&prog, &RunConfig::default());
    assert_eq!(r.exit, RunExit::Halted);
    // Contained byte load forwarded the right slice (little-endian
    // byte 3 of 0x1111_2222_3333_4444).
    assert_eq!(r.regs.get(Reg::Rbx), 0x33);
    // Partial overlap read memory after the byte store drained.
    assert_eq!(r.regs.get(Reg::Rdx) >> 16 & 0xff, 0xff);
    let d = m.cpu().pmu.snapshot().delta(&before);
    assert!(d.count(Event::LdBlocksStoreForward) > 0);
}
