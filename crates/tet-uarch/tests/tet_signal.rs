//! End-to-end validation that the three TET timing mechanisms emerge from
//! the pipeline — the substrate signals every attack in the paper rests on.
//!
//! * TET-MD sign: an in-window triggered Jcc *lengthens* ToTE (fault
//!   delivery serialises behind mispredict recovery).
//! * TET-ZBL sign: with an occupancy-asymmetric gadget, the triggered Jcc
//!   *shortens* ToTE (terminal machine clear scales with occupancy).
//! * TET-KASLR sign: unmapped probes take longer than mapped probes on
//!   Intel models (walk retry), and the differential vanishes on Zen 3.
//! * TET-RSB sign: an in-window triggered Jcc shortens the Spectre-RSB
//!   transient window's total time.

use tet_isa::{Asm, Cond, Program, Reg};
use tet_uarch::{CpuConfig, Machine, RunConfig, RunExit};

const KERNEL_SECRET: u64 = 0xffff_ffff_8100_0000;
const UNMAPPED: u64 = 0xffff_ffff_9000_0000;
const USER_SECRET: u64 = 0x50_0000;
const STACK_TOP: u64 = 0x60_0800;

/// Builds the Figure-1a style gadget: transient faulting load of `probe`,
/// compare against `rbx`, `je` over `sea` nops; measure with rdtsc around
/// the block. Returns `(program, handler_pc)`.
fn tet_gadget(probe: u64, sea: usize) -> (Program, usize) {
    let mut a = Asm::new();
    let matched = a.fresh_label();
    a.rdtsc() // 0
        .mov_reg(Reg::R8, Reg::Rax)
        .lfence()
        .load_byte_abs(Reg::Rax, probe) // faulting, transient forward
        .cmp(Reg::Rax, Reg::Rbx)
        .jcc(Cond::E, matched)
        .nops(sea)
        .bind(matched)
        .nop();
    let handler = a.here();
    a.rdtsc().sub(Reg::Rax, Reg::R8).halt();
    (a.assemble().expect("gadget assembles"), handler)
}

fn tote(m: &mut Machine, prog: &Program, handler: usize, test_value: u64) -> u64 {
    let r = m.run(
        prog,
        &RunConfig {
            handler_pc: Some(handler),
            init_regs: vec![(Reg::Rbx, test_value)],
            ..RunConfig::default()
        },
    );
    assert_eq!(
        r.exit,
        RunExit::Halted,
        "gadget must complete: {:?}",
        r.exit
    );
    assert_eq!(r.exceptions.len(), 1, "exactly one suppressed fault");
    r.regs.get(Reg::Rax)
}

#[test]
fn meltdown_sign_triggered_is_longer() {
    let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 11);
    let pa = m.map_kernel_page(KERNEL_SECRET);
    m.phys_mut().write_u8(pa, b'S');
    let (prog, handler) = tet_gadget(KERNEL_SECRET, 1);

    // Warm up (TLB walk, caches, predictor baseline).
    for _ in 0..4 {
        tote(&mut m, &prog, handler, 0);
    }
    let t_miss = tote(&mut m, &prog, handler, 0);
    let t_hit = tote(&mut m, &prog, handler, b'S' as u64);
    assert!(
        t_hit > t_miss + 5,
        "TET-MD: triggered Jcc must lengthen ToTE (hit {t_hit} vs miss {t_miss})"
    );
}

#[test]
fn meltdown_forwards_real_data_only_on_vulnerable_cores() {
    // On the vulnerable core the match at the secret byte is unique.
    let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 3);
    let pa = m.map_kernel_page(KERNEL_SECRET);
    m.phys_mut().write_u8(pa, 0xA7);
    let (prog, handler) = tet_gadget(KERNEL_SECRET, 1);
    for _ in 0..4 {
        tote(&mut m, &prog, handler, 0);
    }
    let baseline = tote(&mut m, &prog, handler, 1);
    let at_secret = tote(&mut m, &prog, handler, 0xA7);
    assert!(at_secret > baseline + 5);

    // On the fixed core (forwards zero), the secret byte looks like any
    // other nonzero test value.
    let mut m2 = Machine::new(CpuConfig::comet_lake_i9_10980xe(), 3);
    let pa2 = m2.map_kernel_page(KERNEL_SECRET);
    m2.phys_mut().write_u8(pa2, 0xA7);
    for _ in 0..4 {
        tote(&mut m2, &prog, handler, 1);
    }
    let b1 = tote(&mut m2, &prog, handler, 1);
    let b2 = tote(&mut m2, &prog, handler, 0xA7);
    assert!(
        b2 <= b1 + 5 && b1 <= b2 + 5,
        "fixed core must not leak the secret byte ({b1} vs {b2})"
    );
}

#[test]
fn zombieload_sign_triggered_is_shorter() {
    let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 13);
    // Victim data passes through the LFB.
    let mut line = [0u8; 64];
    line[0] = b'Z';
    m.mem_mut().lfb_mut().record_fill(0x7000, line);

    // Occupancy-asymmetric gadget: long nop sea on the fall-through path.
    let (prog, handler) = tet_gadget(UNMAPPED, 60);
    for _ in 0..4 {
        m.mem_mut().lfb_mut().record_fill(0x7000, line);
        tote(&mut m, &prog, handler, 1);
    }
    m.mem_mut().lfb_mut().record_fill(0x7000, line);
    let t_miss = tote(&mut m, &prog, handler, 1);
    m.mem_mut().lfb_mut().record_fill(0x7000, line);
    let t_hit = tote(&mut m, &prog, handler, b'Z' as u64);
    assert!(
        t_hit + 5 < t_miss,
        "TET-ZBL: triggered Jcc must shorten ToTE (hit {t_hit} vs miss {t_miss})"
    );
}

#[test]
fn kaslr_sign_unmapped_is_longer_on_intel() {
    let mut m = Machine::new(CpuConfig::comet_lake_i9_10980xe(), 17);
    m.map_kernel_page(KERNEL_SECRET);
    let (mapped_prog, h1) = tet_gadget(KERNEL_SECRET, 1);
    let (unmapped_prog, h2) = tet_gadget(UNMAPPED, 1);

    let mut t_mapped = 0;
    let mut t_unmapped = 0;
    for _ in 0..4 {
        m.flush_tlbs();
        t_mapped = tote(&mut m, &mapped_prog, h1, 1);
        m.flush_tlbs();
        t_unmapped = tote(&mut m, &unmapped_prog, h2, 1);
    }
    assert!(
        t_unmapped > t_mapped + 10,
        "TET-KASLR: unmapped {t_unmapped} must exceed mapped {t_mapped}"
    );
}

#[test]
fn kaslr_differential_vanishes_on_zen3() {
    let mut m = Machine::new(CpuConfig::zen3_ryzen5_5600g(), 17);
    m.map_kernel_page(KERNEL_SECRET);
    let (mapped_prog, h1) = tet_gadget(KERNEL_SECRET, 1);
    let (unmapped_prog, h2) = tet_gadget(UNMAPPED, 1);

    let mut t_mapped = 0;
    let mut t_unmapped = 0;
    for _ in 0..4 {
        m.flush_tlbs();
        t_mapped = tote(&mut m, &mapped_prog, h1, 1);
        m.flush_tlbs();
        t_unmapped = tote(&mut m, &unmapped_prog, h2, 1);
    }
    let delta = t_unmapped.abs_diff(t_mapped);
    assert!(
        delta <= 4,
        "Zen 3 must show no mapped/unmapped differential (got {delta}: \
         mapped {t_mapped}, unmapped {t_unmapped})"
    );
}

/// Listing-1 style Spectre-RSB gadget. The architectural return address is
/// redirected past the gadget; the RSB transiently returns into the
/// secret-dependent Jcc block.
fn rsb_gadget(secret_addr: u64, sea: usize) -> (Program, usize, usize) {
    // The `ret` target is redirected by a *store of an instruction
    // index*, so the done-label index must be known as an immediate:
    // assemble in two passes with identical layout.
    let build = |done_pc: u64| -> (Asm, usize, usize) {
        let mut a = Asm::new();
        let f = a.fresh_label();
        let matched = a.fresh_label();
        a.rdtsc().mov_reg(Reg::R8, Reg::Rax).lfence().call(f);
        let transient_entry = a.here();
        // On a match the Jcc escapes straight to the measurement tail,
        // keeping the squashed window empty until `ret` resolves.
        a.load_byte_abs(Reg::Rax, secret_addr) // transient return path
            .cmp(Reg::Rax, Reg::Rbx)
            .jcc(Cond::E, matched)
            .nops(sea);
        a.bind(f); // architectural callee: redirect the return address
        a.mov_imm(Reg::R9, done_pc)
            .store(Reg::R9, Reg::Rsp, 0)
            .clflush(Reg::Rsp, 0)
            .ret();
        let done = a.here();
        a.bind(matched);
        a.lfence().rdtsc().sub(Reg::Rax, Reg::R8).halt();
        (a, done, transient_entry)
    };
    let (_, done_pc, _) = build(0);
    let (a, done2, transient_entry) = build(done_pc as u64);
    assert_eq!(done_pc, done2, "two-pass layout must agree");
    (
        a.assemble().expect("gadget assembles"),
        done_pc,
        transient_entry,
    )
}

fn rsb_tote(m: &mut Machine, prog: &Program, test_value: u64) -> u64 {
    let r = m.run(
        prog,
        &RunConfig {
            init_regs: vec![(Reg::Rbx, test_value), (Reg::Rsp, STACK_TOP)],
            ..RunConfig::default()
        },
    );
    assert_eq!(r.exit, RunExit::Halted, "{:?}", r.exit);
    assert!(r.exceptions.is_empty(), "RSB gadget must not fault");
    r.regs.get(Reg::Rax)
}

#[test]
fn rsb_sign_triggered_is_shorter() {
    let mut m = Machine::new(CpuConfig::raptor_lake_i9_13900k(), 23);
    let pa = m.map_user_page(USER_SECRET);
    m.phys_mut().write_u8(pa, b'R');
    m.map_user_page(STACK_TOP - 8);
    let (prog, _done, _entry) = rsb_gadget(USER_SECRET, 96);

    // Warm the secret into L1 so the inner Jcc resolves inside the window.
    for _ in 0..4 {
        rsb_tote(&mut m, &prog, 1);
    }
    let t_miss = rsb_tote(&mut m, &prog, 1);
    let t_hit = rsb_tote(&mut m, &prog, b'R' as u64);
    assert!(
        t_hit + 5 < t_miss,
        "TET-RSB: triggered Jcc must shorten ToTE (hit {t_hit} vs miss {t_miss})"
    );
}

#[test]
fn tote_is_deterministic_per_seed() {
    let run = || {
        let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 77);
        let pa = m.map_kernel_page(KERNEL_SECRET);
        m.phys_mut().write_u8(pa, b'S');
        let (prog, handler) = tet_gadget(KERNEL_SECRET, 1);
        (0..6)
            .map(|i| tote(&mut m, &prog, handler, i as u64))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
