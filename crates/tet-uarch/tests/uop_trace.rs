//! Tests of the per-µop lifecycle trace: retired vs squashed fates, and
//! the visibility of transient execution.

use tet_isa::{Asm, Cond, Reg};
use tet_uarch::{CpuConfig, Machine, RunConfig, RunExit, SquashReason, UopFate};

fn traced_run(m: &mut Machine, a: &Asm, handler: Option<usize>) -> tet_uarch::RunResult {
    m.run(
        &a.assemble().expect("assembles"),
        &RunConfig {
            handler_pc: handler,
            trace_uops: true,
            ..RunConfig::default()
        },
    )
}

#[test]
fn straight_line_uops_all_retire_in_order() {
    let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 3);
    let mut a = Asm::new();
    a.mov_imm(Reg::Rax, 1).add(Reg::Rax, 2u64).nop().halt();
    let r = traced_run(&mut m, &a, None);
    assert_eq!(r.exit, RunExit::Halted);
    let trace = r.uop_trace.expect("requested");
    assert_eq!(trace.len(), 4);
    let mut last_retire = 0;
    for t in &trace {
        match t.fate {
            UopFate::Retired { at } => {
                assert!(at >= last_retire, "in-order retirement");
                last_retire = at;
            }
            other => panic!("{:?} did not retire: {other:?}", t.inst),
        }
        assert!(t.started_at.is_some());
        assert!(t.done_at.unwrap() >= t.started_at.unwrap());
        assert!(t.renamed_at <= t.started_at.unwrap());
        assert!(!t.transient());
    }
}

#[test]
fn transient_uops_are_visible_in_the_trace() {
    let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 3);
    m.map_kernel_page(0xffff_ffff_8000_0000);
    let mut a = Asm::new();
    a.load_abs(Reg::Rax, 0xffff_ffff_8000_0000) // faults at retire
        .add(Reg::Rax, 1u64) // transient dependents
        .add(Reg::Rax, 2u64);
    let handler = a.here();
    a.halt();
    // Warm the code path so the shadow µops get fetched in the window.
    traced_run(&mut m, &a, Some(handler));
    let r = traced_run(&mut m, &a, Some(handler));
    assert_eq!(r.exit, RunExit::Halted);
    let trace = r.uop_trace.expect("requested");

    let transient: Vec<_> = trace.iter().filter(|t| t.transient()).collect();
    assert!(
        transient.len() >= 2,
        "the dependent adds must show as transient: {trace:#?}"
    );
    for t in &transient {
        assert_eq!(
            t.fate,
            match t.fate {
                UopFate::Squashed { at, .. } => UopFate::Squashed {
                    at,
                    reason: SquashReason::Fault
                },
                other => other,
            },
            "fault squash reason"
        );
    }
    // The halt retired architecturally.
    assert!(trace.iter().any(
        |t| matches!(t.fate, UopFate::Retired { .. }) && matches!(t.inst, tet_isa::Inst::Halt)
    ));
}

#[test]
fn mispredict_squashes_carry_the_branch_reason() {
    let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 3);
    m.map_user_page(0x20_0000);
    let mut a = Asm::new();
    let skip = a.fresh_label();
    // The branch depends on a cold DRAM load, so it resolves long after
    // the wrong path has been fetched and renamed.
    a.load_abs(Reg::Rax, 0x20_0000) // 0 from fresh memory
        .cmp_imm(Reg::Rax, 0)
        .jcc(Cond::E, skip) // taken, predicted not-taken when cold
        .mov_imm(Reg::Rbx, 0xbad) // wrong path
        .mov_imm(Reg::Rcx, 0xbad)
        .bind(skip)
        .halt();
    let r = traced_run(&mut m, &a, None);
    assert_eq!(r.exit, RunExit::Halted);
    let trace = r.uop_trace.expect("requested");
    let squashed: Vec<_> = trace
        .iter()
        .filter(|t| {
            matches!(
                t.fate,
                UopFate::Squashed {
                    reason: SquashReason::BranchMispredict,
                    ..
                }
            )
        })
        .collect();
    assert!(
        !squashed.is_empty(),
        "the wrong path must be traced as mispredict-squashed"
    );
    assert!(squashed.iter().all(|t| matches!(
        t.inst,
        tet_isa::Inst::MovImm { imm: 0xbad, .. } | tet_isa::Inst::Halt
    )));
}

#[test]
fn tsx_abort_reason_is_recorded() {
    let mut m = Machine::new(CpuConfig::skylake_i7_6700(), 3);
    m.map_kernel_page(0xffff_ffff_8000_0000);
    let mut a = Asm::new();
    let abort = a.fresh_label();
    a.xbegin(abort)
        .load_abs(Reg::Rax, 0xffff_ffff_8000_0000)
        .xend()
        .bind(abort)
        .halt();
    // Warm then trace.
    traced_run(&mut m, &a, None);
    let r = traced_run(&mut m, &a, None);
    assert_eq!(r.exit, RunExit::Halted);
    let trace = r.uop_trace.expect("requested");
    assert!(trace.iter().any(|t| matches!(
        t.fate,
        UopFate::Squashed {
            reason: SquashReason::TxnAbort,
            ..
        }
    )));
}
