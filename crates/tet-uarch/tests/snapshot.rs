//! Property tests for the snapshot/fork layer and event-driven
//! fast-forward (DESIGN.md §11).
//!
//! Two equivalences are pinned over random gadget-shaped programs on
//! every Table 2 preset:
//!
//! * **snapshot → restore → run ≡ run**: restoring a warmed machine's
//!   snapshot into a *different, polluted* machine and running must
//!   reproduce the live machine's run bit-for-bit (exit, cycles,
//!   registers, flags, retired count, PMU deltas, exceptions) — both
//!   through an in-place [`Machine::restore`] and a fresh
//!   [`Machine::from_snapshot`];
//! * **fast-forward on ≡ off**: skipping idle cycles must leave every
//!   observable of the run unchanged, including on timer-interrupt-noisy
//!   configurations.
//!
//! Deterministic: fixed RNG seeds, `TET_SNAPSHOT_CASES` scales the
//! per-preset program count (default 200).

use proptest::test_runner::TestRng;
use tet_check::gen::{self, layout, GenConfig};
use tet_isa::{Inst, Reg};
use tet_uarch::{CpuConfig, Machine, RunConfig, RunResult};

const MAX_CYCLES: u64 = 5_000;

fn cases_per_preset() -> usize {
    std::env::var("TET_SNAPSHOT_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// A machine with the generator's layout mapped: data + stack pages
/// (user) and one kernel page holding a secret.
fn machine_for(cfg: CpuConfig, seed: u64) -> Machine {
    let mut m = Machine::new(cfg, seed);
    m.map_user_page(layout::DATA_PAGE);
    m.map_user_page(layout::STACK_PAGE);
    let kpa = m.map_kernel_page(layout::KERNEL_PAGE);
    m.phys_mut().write_u64(kpa, 0x5ec2e7_5ec2e7);
    m
}

fn run_cfg() -> RunConfig {
    RunConfig {
        max_cycles: MAX_CYCLES,
        init_regs: vec![(Reg::Rsp, layout::STACK_TOP)],
        ..RunConfig::default()
    }
}

/// Every observable of a run, as one comparable value. `RunResult`
/// carries all of them in `Debug` form (registers, flags, PMU deltas,
/// exception records), so a string compare is a full-state compare with
/// a readable diff on failure.
fn fingerprint(r: &RunResult) -> String {
    format!("{r:?}")
}

/// Presets with and without timer-interrupt noise, so the fast-forward
/// timer bound and the snapshot of the interrupt phase both get
/// exercised.
fn preset_variants() -> Vec<CpuConfig> {
    let mut out = Vec::new();
    for cfg in CpuConfig::table2_presets() {
        out.push(cfg.clone());
        let mut noisy = cfg.clone();
        noisy.timing.interrupt_period = 700;
        out.push(noisy);
    }
    out
}

#[test]
fn snapshot_restore_run_matches_live_run() {
    let gen_cfg = GenConfig::default();
    let cases = cases_per_preset();
    for (pi, preset) in preset_variants().into_iter().enumerate() {
        let mut rng = TestRng::deterministic(&format!("snapshot-equiv-{pi}"));
        // One long-lived "polluted" machine: restores land on whatever
        // allocations/state the previous case left behind, which is
        // exactly the reuse pattern trial loops hit.
        let mut polluted = machine_for(preset.clone(), 0xbad + pi as u64);
        for case in 0..cases {
            let insts = gen::gen_program(&mut rng, &gen_cfg);
            let program = gen::to_program(&insts);
            let seed = (pi as u64) << 32 | case as u64;

            let mut live = machine_for(preset.clone(), seed);
            // Warm-up run: BPU/DSB/TLB/cache/PMU state is non-trivial at
            // the snapshot point.
            live.run(&program, &run_cfg());
            let snap = live.snapshot();
            let want = fingerprint(&live.run(&program, &run_cfg()));

            // In-place restore into the polluted machine.
            polluted.restore(&snap);
            let got = fingerprint(&polluted.run(&program, &run_cfg()));
            assert_eq!(
                got,
                want,
                "restore-then-run diverged from live run \
                 (preset {pi} case {case}):\n{}",
                gen::render(&insts)
            );

            // Fresh machine from the same snapshot.
            if case % 16 == 0 {
                let mut fresh = Machine::from_snapshot(&snap);
                let got = fingerprint(&fresh.run(&program, &run_cfg()));
                assert_eq!(got, want, "from_snapshot run diverged (case {case})");
            }
        }
    }
}

/// **delta ≡ full ≡ fresh**: a journal-driven delta restore
/// ([`Machine::set_delta_restore`] on, DESIGN.md §16), an exhaustive
/// field-by-field restore (delta off — the differential reference), and
/// a fresh [`Machine::from_snapshot`] must all rebuild the same state,
/// pinned by bit-identical re-runs of the snapshotted program. The
/// delta machine restores *twice* per case — the first restore from a
/// foreign snapshot falls back per structure and adopts the seal, the
/// second exercises the journal-replay path proper.
#[test]
fn delta_full_and_fresh_restores_are_equivalent() {
    let gen_cfg = GenConfig::default();
    let cases = cases_per_preset();
    for (pi, preset) in preset_variants().into_iter().enumerate() {
        let mut rng = TestRng::deterministic(&format!("delta-three-way-{pi}"));
        // Long-lived machines, like a trial loop: every restore lands on
        // the previous case's leftover state and journals.
        let mut via_delta = machine_for(preset.clone(), 0xde17a + pi as u64);
        via_delta.set_delta_restore(true);
        let mut via_full = machine_for(preset.clone(), 0xf011 + pi as u64);
        via_full.set_delta_restore(false);
        for case in 0..cases {
            let insts = gen::gen_program(&mut rng, &gen_cfg);
            let program = gen::to_program(&insts);
            let seed = (pi as u64) << 32 | case as u64;

            let mut live = machine_for(preset.clone(), seed);
            live.run(&program, &run_cfg());
            let snap = live.snapshot();
            let want = fingerprint(&live.run(&program, &run_cfg()));

            via_delta.restore(&snap);
            // Dirty-set spot checks: a restore leaves physical memory
            // clean relative to the seal, and the run's dirtying is
            // fully undone by the next restore (same resident set).
            assert_eq!(
                via_delta.phys().dirty_pages(),
                0,
                "restore must clear the dirty set (preset {pi} case {case})"
            );
            let resident = via_delta.phys().resident_pages();
            let got = fingerprint(&via_delta.run(&program, &run_cfg()));
            assert_eq!(
                got,
                want,
                "first delta restore diverged (preset {pi} case {case}):\n{}",
                gen::render(&insts)
            );
            via_delta.restore(&snap); // journal-replay path proper
            assert_eq!(via_delta.phys().dirty_pages(), 0);
            assert_eq!(
                via_delta.phys().resident_pages(),
                resident,
                "delta restore must drop pages allocated since the seal \
                 (preset {pi} case {case})"
            );
            let got = fingerprint(&via_delta.run(&program, &run_cfg()));
            assert_eq!(
                got,
                want,
                "journaled delta restore diverged (preset {pi} case {case}):\n{}",
                gen::render(&insts)
            );

            via_full.restore(&snap);
            let got = fingerprint(&via_full.run(&program, &run_cfg()));
            assert_eq!(
                got,
                want,
                "exhaustive restore diverged (preset {pi} case {case}):\n{}",
                gen::render(&insts)
            );

            if case % 16 == 0 {
                let mut fresh = Machine::from_snapshot(&snap);
                let got = fingerprint(&fresh.run(&program, &run_cfg()));
                assert_eq!(
                    got, want,
                    "from_snapshot run diverged (preset {pi} case {case})"
                );
            }
        }
    }
}

#[test]
fn fast_forward_is_cycle_exact() {
    let gen_cfg = GenConfig::default();
    let cases = cases_per_preset();
    let mut total_skipped = 0u64;
    for (pi, preset) in preset_variants().into_iter().enumerate() {
        let mut rng = TestRng::deterministic(&format!("ff-differential-{pi}"));
        for case in 0..cases {
            let insts = gen::gen_program(&mut rng, &gen_cfg);
            let program = gen::to_program(&insts);
            let seed = (pi as u64) << 32 | case as u64;

            let mut slow = machine_for(preset.clone(), seed);
            slow.set_fast_forward(false);
            let want = fingerprint(&slow.run(&program, &run_cfg()));

            let mut fast = machine_for(preset.clone(), seed);
            fast.set_fast_forward(true);
            let got = fingerprint(&fast.run(&program, &run_cfg()));
            assert_eq!(
                got,
                want,
                "fast-forward changed an observable \
                 (preset {pi} case {case}):\n{}",
                gen::render(&insts)
            );
            total_skipped += fast.stats().ff_skipped_cycles;
        }
    }
    assert!(
        total_skipped > 0,
        "fast-forward never engaged across the whole sweep — \
         the optimization is silently dead"
    );
}

/// Restoring must also reproduce *memory* state exactly: a run that
/// stores to the data page, snapshotted and restored elsewhere, sees
/// the same bytes.
#[test]
fn restore_carries_physical_memory_and_mappings() {
    let cfg = CpuConfig::kaby_lake_i7_7700();
    let mut m = machine_for(cfg.clone(), 42);
    let insts = vec![
        Inst::MovImm {
            dst: Reg::Rax,
            imm: 0x77,
        },
        Inst::Store {
            src: Reg::Rax,
            addr: tet_isa::Addr::abs(layout::DATA_PAGE + 0x40),
        },
        Inst::Halt,
    ];
    let program = gen::to_program(&insts);
    m.run(&program, &run_cfg());
    let snap = m.snapshot();

    // Pollute a victim machine's memory at the same virtual address.
    let mut victim = machine_for(cfg, 43);
    let pa = victim.aspace().translate(layout::DATA_PAGE + 0x40).unwrap();
    victim.phys_mut().write_u64(pa, 0xdead_beef);
    victim.restore(&snap);
    let pa = victim.aspace().translate(layout::DATA_PAGE + 0x40).unwrap();
    assert_eq!(victim.phys().read_u64(pa), 0x77);
    assert_eq!(victim.stats().snapshot_restores, 1);
}
