//! Microbehaviour tests of the pipeline: store-to-load forwarding,
//! fence ordering, TSX semantics, stack discipline, indirect jumps, and
//! the speculative side effects that the attacks build on.

use tet_isa::{Asm, Cond, Reg};
use tet_uarch::{CpuConfig, FaultKind, Machine, RunConfig, RunExit};

fn machine() -> Machine {
    let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 5);
    m.map_user_page(0x20_0000); // data
    m.map_user_page(0x60_0000); // stack
    m
}

fn run(m: &mut Machine, a: &Asm) -> tet_uarch::RunResult {
    m.run(&a.assemble().expect("assembles"), &RunConfig::default())
}

#[test]
fn store_to_load_forwarding_returns_the_stored_value() {
    let mut m = machine();
    let mut a = Asm::new();
    a.mov_imm(Reg::Rax, 0xabcd)
        .store_abs(Reg::Rax, 0x20_0010)
        .load_abs(Reg::Rbx, 0x20_0010) // forwarded, not from memory
        .halt();
    let r = run(&mut m, &a);
    assert_eq!(r.exit, RunExit::Halted);
    assert_eq!(r.regs.get(Reg::Rbx), 0xabcd);
}

#[test]
fn forwarding_is_faster_than_memory() {
    // Forwarded load (store in flight) vs a cold load from DRAM.
    let mut m = machine();
    let mut a = Asm::new();
    a.rdtsc()
        .mov_reg(Reg::R8, Reg::Rax)
        .lfence()
        .mov_imm(Reg::Rcx, 7)
        .store_abs(Reg::Rcx, 0x20_0100)
        .load_abs(Reg::Rbx, 0x20_0100)
        .lfence()
        .rdtsc()
        .sub(Reg::Rax, Reg::R8)
        .halt();
    let forwarded = run(&mut m, &a).regs.get(Reg::Rax);

    let mut m2 = machine();
    let mut b = Asm::new();
    b.rdtsc()
        .mov_reg(Reg::R8, Reg::Rax)
        .lfence()
        .mov_imm(Reg::Rcx, 7)
        .load_abs(Reg::Rbx, 0x20_0200) // cold: DRAM
        .lfence()
        .rdtsc()
        .sub(Reg::Rax, Reg::R8)
        .halt();
    let cold = run(&mut m2, &b).regs.get(Reg::Rax);
    assert!(
        forwarded + 50 < cold,
        "forwarding {forwarded} must beat DRAM {cold}"
    );
}

#[test]
fn lfence_orders_rdtsc_after_slow_loads() {
    // Without the fence, rdtsc executes out of order and undercounts.
    let build = |fenced: bool| {
        let mut a = Asm::new();
        a.rdtsc().mov_reg(Reg::R8, Reg::Rax).lfence();
        a.load_abs(Reg::Rbx, 0x20_0300); // cold load
        if fenced {
            a.lfence();
        }
        a.rdtsc().sub(Reg::Rax, Reg::R8).halt();
        a
    };
    let mut m = machine();
    let fenced = run(&mut m, &build(true)).regs.get(Reg::Rax);
    let mut m = machine();
    let unfenced = run(&mut m, &build(false)).regs.get(Reg::Rax);
    assert!(
        fenced > unfenced + 100,
        "the fence must expose the load latency ({fenced} vs {unfenced})"
    );
}

#[test]
fn committed_tsx_transaction_keeps_its_writes() {
    let mut m = machine();
    let mut a = Asm::new();
    let abort = a.fresh_label();
    a.mov_imm(Reg::Rax, 0x11)
        .xbegin(abort)
        .mov_imm(Reg::Rax, 0x22)
        .store_abs(Reg::Rax, 0x20_0400)
        .xend()
        .bind(abort)
        .halt();
    let r = run(&mut m, &a);
    assert_eq!(r.exit, RunExit::Halted);
    assert_eq!(r.regs.get(Reg::Rax), 0x22, "committed txn state persists");
    let pa = m.aspace().translate(0x20_0400).unwrap();
    assert_eq!(m.phys().read_u64(pa), 0x22);
}

#[test]
fn aborted_tsx_transaction_discards_everything() {
    let mut m = machine();
    m.map_kernel_page(0xffff_ffff_8000_0000);
    let mut a = Asm::new();
    let abort = a.fresh_label();
    a.mov_imm(Reg::Rax, 0x11)
        .xbegin(abort)
        .mov_imm(Reg::Rax, 0x22)
        .store_abs(Reg::Rax, 0x20_0500)
        .load_abs(Reg::Rbx, 0xffff_ffff_8000_0000) // faults → abort
        .mov_imm(Reg::Rcx, 0x33)
        .xend()
        .bind(abort)
        .halt();
    let r = run(&mut m, &a);
    assert_eq!(r.exit, RunExit::Halted, "abort is not an error");
    assert_eq!(r.regs.get(Reg::Rax), 0x11, "txn writes must roll back");
    assert_eq!(r.regs.get(Reg::Rcx), 0, "post-fault code never commits");
    let pa = m.aspace().translate(0x20_0500).unwrap();
    assert_eq!(m.phys().read_u64(pa), 0, "txn stores must not drain");
    assert_eq!(r.exceptions.len(), 1);
    assert_eq!(r.exceptions[0].route, tet_uarch::uop::FaultRoute::TxnAbort);
}

#[test]
fn nested_call_chains_return_correctly() {
    let mut m = machine();
    let mut a = Asm::new();
    let f = a.fresh_label();
    let g = a.fresh_label();
    let end = a.fresh_label();
    a.mov_imm(Reg::Rsp, 0x60_0800)
        .call(f)
        .add(Reg::Rax, 1000u64)
        .jmp(end);
    a.bind(f).call(g).add(Reg::Rax, 100u64).ret();
    a.bind(g).mov_imm(Reg::Rax, 1).ret();
    a.bind(end).halt();
    let r = run(&mut m, &a);
    assert_eq!(r.exit, RunExit::Halted);
    assert_eq!(r.regs.get(Reg::Rax), 1101);
    assert_eq!(r.regs.get(Reg::Rsp), 0x60_0800, "stack must balance");
}

#[test]
fn push_pop_reverse_order() {
    let mut m = machine();
    let mut a = Asm::new();
    a.mov_imm(Reg::Rsp, 0x60_0800)
        .mov_imm(Reg::Rax, 1)
        .mov_imm(Reg::Rbx, 2)
        .push(Reg::Rax)
        .push(Reg::Rbx)
        .pop(Reg::Rcx)
        .pop(Reg::Rdx)
        .halt();
    let r = run(&mut m, &a);
    assert_eq!(r.regs.get(Reg::Rcx), 2);
    assert_eq!(r.regs.get(Reg::Rdx), 1);
    assert_eq!(r.regs.get(Reg::Rsp), 0x60_0800);
}

#[test]
fn indirect_jump_reaches_a_computed_target() {
    let mut m = machine();
    let mut a = Asm::new();
    // Target index 5 computed in a register.
    a.mov_imm(Reg::Rax, 5)
        .jmp_reg(Reg::Rax)
        .mov_imm(Reg::Rbx, 0xbad) // skipped
        .nop()
        .nop()
        .mov_imm(Reg::Rcx, 0x60d) // index 5
        .halt();
    let r = run(&mut m, &a);
    assert_eq!(r.exit, RunExit::Halted);
    assert_eq!(r.regs.get(Reg::Rbx), 0);
    assert_eq!(r.regs.get(Reg::Rcx), 0x60d);
}

#[test]
fn speculative_loads_pollute_the_cache_across_squash() {
    // The Flush+Reload baseline depends on this: a transient load's fill
    // survives the squash.
    let mut m = machine();
    m.map_kernel_page(0xffff_ffff_8000_0000);
    m.map_user_page(0x30_0000);
    let target_pa = m.aspace().translate(0x30_0000).unwrap();

    let mut a = Asm::new();
    a.load_abs(Reg::Rax, 0xffff_ffff_8000_0000) // faults at retire
        .load_abs(Reg::Rbx, 0x30_0000); // transient shadow
    let handler = a.here();
    a.halt();
    // Warm the code path first: on a cold I-cache the shadow never even
    // fetches before the fault delivers (attacks warm up for the same
    // reason).
    let cfg = RunConfig {
        handler_pc: Some(handler),
        ..RunConfig::default()
    };
    let prog = a.assemble().unwrap();
    m.run(&prog, &cfg);

    m.clflush_virt(0x30_0000);
    assert!(!m.mem().probe_l1d(target_pa));
    let r = m.run(&prog, &cfg);
    assert_eq!(r.exit, RunExit::Halted);
    assert_eq!(r.regs.get(Reg::Rbx), 0, "shadow never commits");
    assert!(
        m.mem().probe_l1d(target_pa),
        "but its cache fill survives the squash"
    );
}

#[test]
fn fault_kinds_route_correctly() {
    let mut m = machine();
    m.map_kernel_page(0xffff_ffff_8000_0000);
    let cases = [
        (0xffff_ffff_8000_0000u64, FaultKind::Permission),
        (0xdead_0000u64, FaultKind::NotPresent),
    ];
    for (addr, kind) in cases {
        let mut a = Asm::new();
        a.load_abs(Reg::Rax, addr);
        let handler = a.here();
        a.halt();
        let r = m.run(
            &a.assemble().unwrap(),
            &RunConfig {
                handler_pc: Some(handler),
                ..RunConfig::default()
            },
        );
        assert_eq!(r.exit, RunExit::Halted);
        assert_eq!(r.exceptions.len(), 1);
        assert_eq!(r.exceptions[0].kind, kind, "addr {addr:#x}");
        assert_eq!(r.exceptions[0].vaddr, addr);
    }
}

#[test]
fn wrong_path_stores_never_commit() {
    let mut m = machine();
    let mut a = Asm::new();
    let skip = a.fresh_label();
    a.mov_imm(Reg::Rax, 1)
        .cmp_imm(Reg::Rax, 1)
        .jcc(Cond::E, skip) // taken; the fall-through is wrong-path
        .mov_imm(Reg::Rbx, 0x77)
        .store_abs(Reg::Rbx, 0x20_0600)
        .bind(skip)
        .halt();
    // Train the branch not-taken first so the wrong path gets fetched.
    for _ in 0..2 {
        run(&mut m, &a);
    }
    let r = run(&mut m, &a);
    assert_eq!(r.exit, RunExit::Halted);
    let pa = m.aspace().translate(0x20_0600).unwrap();
    assert_eq!(
        m.phys().read_u64(pa),
        0,
        "wrong-path store leaked to memory"
    );
}

#[test]
fn deep_rsb_nesting_survives() {
    // 8-deep call chain: the RSB (16 entries) predicts every return.
    let mut m = machine();
    let mut a = Asm::new();
    let labels: Vec<_> = (0..8).map(|_| a.fresh_label()).collect();
    let end = a.fresh_label();
    a.mov_imm(Reg::Rsp, 0x60_0800).call(labels[0]).jmp(end);
    for (i, l) in labels.iter().enumerate() {
        a.bind(*l);
        a.add(Reg::Rax, 1u64);
        if i + 1 < labels.len() {
            a.call(labels[i + 1]);
        }
        a.ret();
    }
    a.bind(end).halt();
    let r = run(&mut m, &a);
    assert_eq!(r.exit, RunExit::Halted);
    assert_eq!(r.regs.get(Reg::Rax), 8);
    // With a warm predictor, returns should all be RSB hits (no
    // mispredicted rets → no indirect mispredicts).
    let r2 = {
        let before = m.cpu().pmu.snapshot();
        let r2 = run(&mut m, &a);
        let d = m.cpu().pmu.snapshot().delta(&before);
        assert_eq!(
            d.count(tet_pmu::Event::BrMispExecIndirect),
            0,
            "warm RSB must predict all returns"
        );
        r2
    };
    assert_eq!(r2.regs.get(Reg::Rax), 8);
}

#[test]
fn byte_stores_do_not_clobber_neighbours() {
    let mut m = machine();
    let mut a = Asm::new();
    a.mov_imm(Reg::Rax, 0x1122_3344_5566_7788)
        .store_abs(Reg::Rax, 0x20_0700)
        .mov_imm(Reg::Rbx, 0xff)
        .store_byte_abs(Reg::Rbx, 0x20_0702)
        .load_abs(Reg::Rcx, 0x20_0700)
        .halt();
    let r = run(&mut m, &a);
    assert_eq!(r.regs.get(Reg::Rcx), 0x1122_3344_55ff_7788);
}

#[test]
fn smaller_rob_is_slower_on_parallel_loads() {
    // A structural check: halving the ROB throttles memory parallelism.
    let build = |rob: usize| {
        let mut cfg = CpuConfig::kaby_lake_i7_7700();
        cfg.rob_size = rob;
        let mut m = Machine::new(cfg, 9);
        for i in 0..24u64 {
            m.map_user_page(0x40_0000 + i * 4096);
        }
        let mut a = Asm::new();
        for i in 0..24u64 {
            a.load_abs(Reg::Rax, 0x40_0000 + i * 4096);
        }
        a.halt();
        m.run(&a.assemble().unwrap(), &RunConfig::default()).cycles
    };
    let big = build(224);
    let tiny = build(4);
    assert!(
        tiny > big,
        "a 4-entry ROB must serialise the loads ({tiny} vs {big})"
    );
}
