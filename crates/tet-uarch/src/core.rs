//! The out-of-order core: fetch → rename → schedule/execute → resolve →
//! retire, with full speculative squash and delayed fault handling.
//!
//! The cycle loop implements the three calibrated mechanisms of
//! DESIGN.md §1:
//!
//! 1. **Exception-entry serialization** — retirement delays delivery of
//!    a permission fault until any in-progress branch-recovery window
//!    ends, so an in-window mispredicted Jcc *lengthens* the measured
//!    transient time (TET-Meltdown).
//! 2. **Occupancy-proportional squash** — machine clears and branch
//!    resteers pay `clear_cost_per_uop` per in-flight µop, so an inner
//!    squash that already emptied the window makes the terminal squash
//!    cheaper and *shortens* the measured time (TET-ZBL, TET-RSB).
//! 3. **Walk-retry on failing translations** — failing page walks retried
//!    per [`tet_mem::WalkConfig`] make unmapped probes slower than mapped
//!    ones (TET-KASLR).

use std::collections::VecDeque;
use std::sync::Arc;

use tet_isa::reg::RegFile;
use tet_isa::{Flags, Inst, Opcode, Program, Reg};
use tet_mem::{AddressSpace, HitLevel, MemorySystem, PageWalker, PhysMem, Pte, Tlb, WalkOutcome};
use tet_metrics::{ProfHandle, Stage as ProfStage};
use tet_obs::{EventKind, SinkHandle, TlbKind};
use tet_pmu::{Event, Pmu};

use crate::config::{CpuConfig, ForwardPolicy};
use crate::frontend::{Dsb, FetchedUop};
use crate::template::ProgramTemplate;
use crate::uop::FaultRoute;
use crate::uop::{
    Dep, DepKind, DepList, Fault, FaultKind, ResultList, RobEntry, SquashReason, StoreInfo,
};
use crate::Bpu;

/// Borrowed environment a core steps against (shared by both SMT threads).
#[derive(Debug)]
pub struct Env<'a> {
    /// The (core-shared) cache hierarchy and fill buffers.
    pub mem: &'a mut MemorySystem,
    /// Physical memory contents.
    pub phys: &'a mut PhysMem,
    /// The active address space of this thread.
    pub aspace: &'a AddressSpace,
    /// Retirement differential oracle, when the run is in check mode
    /// (`None` costs one branch per commit). SMT runs are not checked.
    pub check: Option<&'a mut tet_check::Oracle>,
}

/// The `tet-check` spelling of a fault class.
pub(crate) fn check_fault_kind(k: FaultKind) -> tet_check::ArchFaultKind {
    match k {
        FaultKind::Permission => tet_check::ArchFaultKind::Permission,
        FaultKind::NotPresent => tet_check::ArchFaultKind::NotPresent,
        FaultKind::ReservedBit => tet_check::ArchFaultKind::ReservedBit,
    }
}

/// Architectural result of one µop's execute step, produced by a
/// dispatch-table handler and applied by `Cpu::execute_uop`'s shared
/// tail (forward/done timing, ROB bookkeeping, waiter wakeup, events).
struct ExecOut {
    latency: u64,
    results: ResultList,
    flags_out: Option<Flags>,
    fault: Option<Fault>,
    store: Option<StoreInfo>,
    actual_next: Option<usize>,
}

impl ExecOut {
    fn new(latency: u64) -> ExecOut {
        ExecOut {
            latency,
            results: ResultList::new(),
            flags_out: None,
            fault: None,
            store: None,
            actual_next: None,
        }
    }
}

/// One execute handler. `None` means the µop could not start (blocked
/// store-to-load forwarding) and the handler re-parked it.
type ExecFn = fn(&mut Cpu, usize, u64, &mut Env<'_>) -> Option<ExecOut>;

/// Threaded-code execute dispatch: one handler per opcode, indexed by
/// `RobEntry::op`. Slot order must match `Opcode`'s declaration order.
static EXEC_TABLE: [ExecFn; Opcode::COUNT] = [
    Cpu::exec_simple,   // Nop
    Cpu::exec_mov_imm,  // MovImm
    Cpu::exec_mov_reg,  // MovReg
    Cpu::exec_load,     // Load
    Cpu::exec_load,     // LoadByte
    Cpu::exec_store,    // Store
    Cpu::exec_store,    // StoreByte
    Cpu::exec_lea,      // Lea
    Cpu::exec_alu,      // Alu
    Cpu::exec_cmp,      // Cmp
    Cpu::exec_test,     // Test
    Cpu::exec_jcc,      // Jcc
    Cpu::exec_jmp,      // Jmp
    Cpu::exec_jmp_reg,  // JmpReg
    Cpu::exec_call,     // Call
    Cpu::exec_ret,      // Ret
    Cpu::exec_push,     // Push
    Cpu::exec_pop,      // Pop
    Cpu::exec_clflush,  // Clflush
    Cpu::exec_prefetch, // Prefetch
    Cpu::exec_fence,    // Lfence
    Cpu::exec_fence,    // Mfence
    Cpu::exec_fence,    // Sfence
    Cpu::exec_rdtsc,    // Rdtsc
    Cpu::exec_simple,   // XBegin
    Cpu::exec_simple,   // XEnd
    Cpu::exec_syscall,  // Syscall
    Cpu::exec_simple,   // Halt
];

/// Core invariant checks (DESIGN.md §9): active in every debug build,
/// and in release builds when check mode is on (`TET_CHECK=1` or
/// `tet_check::enable()`). Release runs without check mode pay only the
/// (predictable) branch.
macro_rules! tet_invariant {
    ($cond:expr, $($msg:tt)+) => {
        if (cfg!(debug_assertions) || tet_check::enabled()) && !$cond {
            panic!($($msg)+);
        }
    };
}

/// How a program run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunExit {
    /// A `Halt` instruction retired.
    Halted,
    /// The cycle budget was exhausted.
    CycleLimit,
    /// A fault was raised with no signal handler and no transaction.
    UnhandledFault(ExceptionRecord),
    /// Control flow ran past the last instruction.
    RanOffEnd,
}

/// One delivered fault (exception, machine clear, or TSX abort).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExceptionRecord {
    /// Instruction index of the faulting µop.
    pub pc: usize,
    /// Faulting virtual address.
    pub vaddr: u64,
    /// Fault class.
    pub kind: FaultKind,
    /// Delivery route.
    pub route: FaultRoute,
    /// Cycle the fault reached retirement.
    pub detected_at: u64,
    /// Cycle architectural execution resumed (handler / abort target).
    pub delivered_at: u64,
}

/// Per-step notifications for the SMT wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepEvents {
    /// Set when this thread initiated a whole-pipeline flush
    /// (exception / machine clear / TSX abort) lasting until the given
    /// cycle — the sibling thread observes the bubble (§4.4).
    pub flush_until: Option<u64>,
}

struct LoadResult {
    latency: u64,
    value: u64,
    fault: Option<Fault>,
}

/// Outcome of one scheduler source-readiness evaluation.
enum DepVerdict {
    /// All sources are forward-ready now.
    Ready,
    /// All producers executed; the last one forwards at this cycle.
    WakeAt(u64),
    /// This producer has not executed yet — park on its waiter list.
    Park(u64),
}

/// One logical thread of the simulated core.
#[derive(Debug, Clone)]
pub struct Cpu {
    cfg: CpuConfig,
    /// Performance counters (public so callers can snapshot around
    /// regions of interest).
    pub pmu: Pmu,

    // ----- frontend -----
    bpu: Bpu,
    dsb: Dsb,
    idq: VecDeque<FetchedUop>,
    fetch_pc: usize,
    fetch_stall_until: u64,
    fetch_enabled: bool,
    last_fetch_page: Option<u64>,
    /// Whether the previous delivered fetch group came from the DSB
    /// (drives `DSB2MITE_SWITCHES.COUNT`).
    last_fetch_from_dsb: bool,
    itlb: Tlb,

    // ----- backend -----
    rob: VecDeque<RobEntry>,
    next_uop_id: u64,
    rat: [Option<u64>; 16],
    flags_rat: Option<u64>,
    regs: RegFile,
    flags: Flags,
    ports_busy: Vec<u64>,
    recovery_busy_until: u64,
    pipeline_flush_until: u64,
    /// Stall imposed by the sibling SMT thread's flushes.
    external_stall_until: u64,
    txn_stack: Vec<usize>,
    /// Shared snapshot of `txn_stack`, regenerated only when the stack
    /// changes, so every renamed µop clones an `Arc` instead of a `Vec`.
    txn_snapshot_cache: Arc<[usize]>,
    /// The empty snapshot, kept around so clearing never reallocates.
    empty_snapshot: Arc<[usize]>,

    // ----- scheduler bookkeeping -----
    // Derived counters that make the per-cycle scheduler loops O(1) per
    // entry instead of O(ROB). All are recomputed from scratch on any
    // squash (`recompute_sched_state`) and zeroed with the ROB.
    /// ROB entries that have not started executing (reservation-station
    /// occupancy).
    unstarted_count: usize,
    /// Unstarted entries that are stores (`Store`/`StoreByte`/`Push`/
    /// `Call`) — the loads' memory-order scan is skipped when zero.
    unstarted_store_count: usize,
    /// Entries carrying in-flight store data — the store-to-load
    /// forwarding scan is skipped when zero.
    inflight_store_data: usize,
    /// Executed-but-unresolved branches — branch resolution is skipped
    /// when zero.
    exec_unresolved_branches: usize,
    /// Max `done_at` over started entries still in the ROB (an entry
    /// with a larger stored value can never have retired, so the max is
    /// exact — see `account_cycle`).
    exec_max_done: u64,
    /// Same, restricted to memory µops.
    mem_max_done: u64,

    // ----- memory -----
    dtlb: Tlb,
    walker: PageWalker,
    /// TLB entries a `syscall` warms (set from the OS model: the KPTI
    /// trampoline pages).
    syscall_pages: Vec<u64>,

    // ----- TSX architectural checkpoint -----
    /// Committed register/flag state at the retirement of the outermost
    /// `xbegin`; restored on abort.
    txn_checkpoint: Option<(RegFile, Flags)>,
    /// Undo log of committed stores inside the transaction
    /// (`(pa, old_value, was_byte)`), applied in reverse on abort.
    txn_undo: Vec<(u64, u64, bool)>,
    /// Committed transaction nesting depth (checkpoint covers the
    /// outermost transaction).
    txn_depth: usize,

    // ----- run state -----
    cycle: u64,
    /// Monotonic across runs; drives the timer-interrupt phase so noise
    /// varies between attack iterations.
    global_cycle: u64,
    /// Global cycle of the next timer interrupt.
    next_interrupt: u64,
    /// xorshift state for interrupt phase jitter (deterministic).
    interrupt_rng: u64,
    halted: bool,
    retired_insts: u64,
    handler_pc: Option<usize>,
    exceptions: Vec<ExceptionRecord>,
    unhandled: Option<ExceptionRecord>,
    /// Highest µop id committed this run (the monotone-retire invariant).
    last_retired_id: Option<u64>,
    /// Test-only retire-path corruption (the oracle mutation test).
    mutate_retire: bool,
    /// Structured-event sink (disabled by default: one branch per event
    /// site). Installed per run by [`crate::Machine`] / [`crate::SmtMachine`].
    sink: SinkHandle,
    /// Cycles skipped by event-driven fast-forward, over this core's
    /// lifetime (diagnostic; survives `reset_run` and snapshot restore).
    ff_skipped_cycles: u64,
    /// Number of fast-forward sprints taken (each skips ≥ 1 cycle).
    ff_sprints: u64,
    /// Host wall-time profiler (disabled = one branch per step). Pure
    /// host-side observation: nothing simulated ever reads it, so
    /// results are byte-identical with profiling on or off. Installed by
    /// [`crate::Machine::set_profiler`].
    prof: ProfHandle,
    /// Steps until the next timed sample (counts up to `sample_every`).
    prof_tick: u32,
    /// Whether the step in progress is the timed 1-in-N sample.
    prof_sampling: bool,
    /// Scratch for the sampled step: measured execute/memory
    /// nanoseconds, split out of the scheduler's elapsed time.
    prof_exec_ns: u64,
    prof_mem_ns: u64,
}

impl Cpu {
    /// Creates a core in reset state.
    pub fn new(cfg: CpuConfig) -> Self {
        let ports = cfg.ports;
        let empty_snapshot: Arc<[usize]> = Arc::from(Vec::new());
        Cpu {
            pmu: Pmu::new(),
            bpu: Bpu::new(cfg.bpu),
            dsb: Dsb::new(cfg.dsb_capacity),
            idq: VecDeque::new(),
            fetch_pc: 0,
            fetch_stall_until: 0,
            fetch_enabled: true,
            last_fetch_page: None,
            last_fetch_from_dsb: false,
            itlb: Tlb::new(cfg.itlb),
            rob: VecDeque::new(),
            next_uop_id: 0,
            rat: [None; 16],
            flags_rat: None,
            regs: RegFile::new(),
            flags: Flags::default(),
            ports_busy: vec![0; ports],
            recovery_busy_until: 0,
            pipeline_flush_until: 0,
            external_stall_until: 0,
            txn_stack: Vec::new(),
            txn_snapshot_cache: empty_snapshot.clone(),
            empty_snapshot,
            unstarted_count: 0,
            unstarted_store_count: 0,
            inflight_store_data: 0,
            exec_unresolved_branches: 0,
            exec_max_done: 0,
            mem_max_done: 0,
            dtlb: Tlb::new(cfg.dtlb),
            walker: PageWalker::new(cfg.walk),
            syscall_pages: Vec::new(),
            txn_checkpoint: None,
            txn_undo: Vec::new(),
            txn_depth: 0,
            cycle: 0,
            global_cycle: 0,
            next_interrupt: cfg.timing.interrupt_period,
            interrupt_rng: 0x9e37_79b9_7f4a_7c15,
            halted: false,
            retired_insts: 0,
            handler_pc: None,
            exceptions: Vec::new(),
            unhandled: None,
            last_retired_id: None,
            mutate_retire: false,
            sink: SinkHandle::disabled(),
            ff_skipped_cycles: 0,
            ff_sprints: 0,
            prof: ProfHandle::disabled(),
            prof_tick: 0,
            prof_sampling: false,
            prof_exec_ns: 0,
            prof_mem_ns: 0,
            cfg,
        }
    }

    /// Installs (or removes) the host-time profiler handle. Host-side
    /// only; the simulation never observes it.
    pub(crate) fn set_profiler(&mut self, prof: ProfHandle) {
        self.prof = prof;
        self.prof_tick = 0;
        self.prof_sampling = false;
    }

    /// The configuration this core was built with.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Resets per-run state (pipeline, registers, cycle counter) while
    /// keeping the *persistent* microarchitectural state: BPU, DSB, TLBs
    /// and the PMU — exactly the state the paper's attacks train and
    /// probe across iterations.
    pub fn reset_run(
        &mut self,
        init_regs: &[(Reg, u64)],
        handler_pc: Option<usize>,
        sink: SinkHandle,
    ) {
        self.idq.clear();
        self.rob.clear();
        self.rat = [None; 16];
        self.flags_rat = None;
        self.regs = RegFile::new();
        for &(r, v) in init_regs {
            self.regs.set(r, v);
        }
        self.flags = Flags::default();
        for p in &mut self.ports_busy {
            *p = 0;
        }
        self.recovery_busy_until = 0;
        self.pipeline_flush_until = 0;
        self.external_stall_until = 0;
        self.txn_stack.clear();
        self.txn_snapshot_cache = self.empty_snapshot.clone();
        self.unstarted_count = 0;
        self.unstarted_store_count = 0;
        self.inflight_store_data = 0;
        self.exec_unresolved_branches = 0;
        self.exec_max_done = 0;
        self.mem_max_done = 0;
        self.txn_checkpoint = None;
        self.txn_undo.clear();
        self.txn_depth = 0;
        self.fetch_pc = 0;
        self.fetch_stall_until = 0;
        self.fetch_enabled = true;
        self.last_fetch_page = None;
        self.cycle = 0;
        self.halted = false;
        self.retired_insts = 0;
        self.handler_pc = handler_pc;
        self.exceptions.clear();
        self.unhandled = None;
        self.last_retired_id = None;
        self.sink = sink;
    }

    /// Overwrites this core with the state of `src`, reusing every heap
    /// allocation this core already owns (ROB, IDQ, TLBs, predictor
    /// tables, PMU bank, port table) — the restore half of the machine
    /// snapshot layer. Both cores must come from the same `CpuConfig`.
    ///
    /// The exhaustive destructuring below is deliberate: adding a field
    /// to `Cpu` without deciding how it restores becomes a compile
    /// error, not a silent state leak.
    ///
    /// The fast-forward diagnostic counters are *not* copied: they
    /// describe this core's lifetime (like the PMU describes a run), so
    /// a workload forking many trials from one snapshot accumulates its
    /// totals across restores.
    pub fn restore_from(&mut self, src: &Cpu) {
        self.restore_impl(src, false);
    }

    /// Seals the journaled core structures (branch predictor, µop cache,
    /// both TLBs) so later [`Cpu::restore_delta`] calls against clones of
    /// this state repair only journaled slots (DESIGN.md §16).
    pub fn seal(&mut self) {
        self.bpu.seal();
        self.dsb.seal();
        self.itlb.seal();
        self.dtlb.seal();
    }

    /// Like [`Cpu::restore_from`], but rolls the journaled structures
    /// back via their touched-set journals when they share a seal with
    /// `src`, falling back to the exhaustive copy per structure when
    /// they do not. All scalar and queue state restores identically to
    /// the full path; only the repair strategy differs.
    pub fn restore_delta(&mut self, src: &Cpu) {
        self.restore_impl(src, true);
    }

    fn restore_impl(&mut self, src: &Cpu, delta: bool) {
        let Cpu {
            cfg,
            pmu,
            bpu,
            dsb,
            idq,
            fetch_pc,
            fetch_stall_until,
            fetch_enabled,
            last_fetch_page,
            last_fetch_from_dsb,
            itlb,
            rob,
            next_uop_id,
            rat,
            flags_rat,
            regs,
            flags,
            ports_busy,
            recovery_busy_until,
            pipeline_flush_until,
            external_stall_until,
            txn_stack,
            txn_snapshot_cache,
            empty_snapshot,
            unstarted_count,
            unstarted_store_count,
            inflight_store_data,
            exec_unresolved_branches,
            exec_max_done,
            mem_max_done,
            dtlb,
            walker,
            syscall_pages,
            txn_checkpoint,
            txn_undo,
            txn_depth,
            cycle,
            global_cycle,
            next_interrupt,
            interrupt_rng,
            halted,
            retired_insts,
            handler_pc,
            exceptions,
            unhandled,
            last_retired_id,
            mutate_retire,
            sink,
            ff_skipped_cycles: _,
            ff_sprints: _,
            // Host-profiler state is this core's own, like the ff
            // diagnostics: never copied from a snapshot.
            prof: _,
            prof_tick: _,
            prof_sampling: _,
            prof_exec_ns: _,
            prof_mem_ns: _,
        } = src;
        debug_assert_eq!(
            self.cfg.ports, cfg.ports,
            "snapshot restore across core configurations"
        );
        if !delta {
            // The config never mutates between a snapshot and its
            // restores, so the delta path skips re-cloning it (it may
            // own heap state, e.g. strings).
            self.cfg = cfg.clone();
        }
        self.pmu.copy_from(pmu);
        if !delta || !self.bpu.restore_delta(bpu) {
            self.bpu.restore_from(bpu);
        }
        if !delta || !self.dsb.restore_delta(dsb) {
            self.dsb.restore_from(dsb);
        }
        self.idq.clone_from(idq);
        self.fetch_pc = *fetch_pc;
        self.fetch_stall_until = *fetch_stall_until;
        self.fetch_enabled = *fetch_enabled;
        self.last_fetch_page = *last_fetch_page;
        self.last_fetch_from_dsb = *last_fetch_from_dsb;
        if !delta || !self.itlb.restore_delta(itlb) {
            self.itlb.restore_from(itlb);
        }
        self.rob.clone_from(rob);
        self.next_uop_id = *next_uop_id;
        self.rat = *rat;
        self.flags_rat = *flags_rat;
        self.regs = *regs;
        self.flags = *flags;
        self.ports_busy.clear();
        self.ports_busy.extend_from_slice(ports_busy);
        self.recovery_busy_until = *recovery_busy_until;
        self.pipeline_flush_until = *pipeline_flush_until;
        self.external_stall_until = *external_stall_until;
        self.txn_stack.clear();
        self.txn_stack.extend_from_slice(txn_stack);
        self.txn_snapshot_cache = txn_snapshot_cache.clone();
        self.empty_snapshot = empty_snapshot.clone();
        self.unstarted_count = *unstarted_count;
        self.unstarted_store_count = *unstarted_store_count;
        self.inflight_store_data = *inflight_store_data;
        self.exec_unresolved_branches = *exec_unresolved_branches;
        self.exec_max_done = *exec_max_done;
        self.mem_max_done = *mem_max_done;
        if !delta || !self.dtlb.restore_delta(dtlb) {
            self.dtlb.restore_from(dtlb);
        }
        self.walker = *walker;
        self.syscall_pages.clear();
        self.syscall_pages.extend_from_slice(syscall_pages);
        self.txn_checkpoint = *txn_checkpoint;
        self.txn_undo.clear();
        self.txn_undo.extend_from_slice(txn_undo);
        self.txn_depth = *txn_depth;
        self.cycle = *cycle;
        self.global_cycle = *global_cycle;
        self.next_interrupt = *next_interrupt;
        self.interrupt_rng = *interrupt_rng;
        self.halted = *halted;
        self.retired_insts = *retired_insts;
        self.handler_pc = *handler_pc;
        self.exceptions.clear();
        self.exceptions.extend_from_slice(exceptions);
        self.unhandled = *unhandled;
        self.last_retired_id = *last_retired_id;
        self.mutate_retire = *mutate_retire;
        self.sink = sink.clone();
    }

    /// Re-randomizes the timer-interrupt phase from `salt`, keeping the
    /// schedule fully deterministic in `salt`. Trial runners forking
    /// many trials from one snapshot call this with the trial index so
    /// interrupt noise decorrelates across trials exactly as it would
    /// across sequential runs — and identically at any thread count.
    /// No-op when the timer is disabled.
    pub fn reseed_interrupt_phase(&mut self, salt: u64) {
        let period = self.cfg.timing.interrupt_period;
        if period == 0 {
            return;
        }
        let mut x = self.interrupt_rng ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for _ in 0..3 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        self.interrupt_rng = x;
        self.next_interrupt = self.global_cycle + period / 2 + x % period;
    }

    /// Cycles skipped by event-driven fast-forward and the number of
    /// sprints taken, over this core's lifetime.
    pub fn ff_stats(&self) -> (u64, u64) {
        (self.ff_skipped_cycles, self.ff_sprints)
    }

    /// Zeroes the fast-forward diagnostics (a freshly forked worker
    /// machine starts its lifetime clean).
    pub(crate) fn reset_ff_stats(&mut self) {
        self.ff_skipped_cycles = 0;
        self.ff_sprints = 0;
    }

    /// Credits this core with the lifetime effects of runs that were
    /// replayed instead of executed (divergence-aware trial batching):
    /// the global cycle clock, the fast-forward diagnostics and the live
    /// PMU bank advance exactly as the recorded runs would have advanced
    /// them, so batched and unbatched loops report identical counters.
    pub(crate) fn absorb_replayed(
        &mut self,
        cycles: u64,
        ff_skipped: u64,
        ff_sprints: u64,
        pmu: &tet_pmu::PmuSnapshot,
    ) {
        self.global_cycle += cycles;
        self.ff_skipped_cycles += ff_skipped;
        self.ff_sprints += ff_sprints;
        for (ev, n) in pmu.iter_nonzero() {
            self.pmu.bump(ev, n);
        }
    }

    /// Test-only retire-path bug injection: when on, every committed
    /// register value is XORed with 1. Exists so the suite can prove the
    /// retirement oracle catches a real commit corruption — the mutation
    /// test of DESIGN.md §9. Never enable outside tests.
    #[doc(hidden)]
    pub fn set_retire_corruption_for_tests(&mut self, on: bool) {
        self.mutate_retire = on;
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether a `Halt` retired or an unhandled fault ended the run.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Committed architectural registers.
    pub fn regs(&self) -> &RegFile {
        &self.regs
    }

    /// Committed architectural flags.
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// Instructions retired in the current run.
    pub fn retired_insts(&self) -> u64 {
        self.retired_insts
    }

    /// Delivered faults of the current run.
    pub fn exceptions(&self) -> &[ExceptionRecord] {
        &self.exceptions
    }

    /// Takes the delivered-fault list, leaving it empty — the move-based
    /// variant of [`Cpu::exceptions`] for building a run result without
    /// copying (the next `reset_run` clears the list anyway).
    pub fn take_exceptions(&mut self) -> Vec<ExceptionRecord> {
        std::mem::take(&mut self.exceptions)
    }

    /// The unhandled fault that terminated the run, if any.
    pub fn unhandled_fault(&self) -> Option<&ExceptionRecord> {
        self.unhandled.as_ref()
    }

    /// The structured-event sink currently installed on this core.
    pub fn sink(&self) -> &SinkHandle {
        &self.sink
    }

    /// Emits a squash event for every ROB entry at index `from` onward.
    /// The disabled path is a single branch — no id collection, no
    /// allocation.
    fn emit_squash_from(&self, from: usize, at: u64, reason: SquashReason) {
        if !self.sink.enabled() {
            return;
        }
        let cause = reason.to_obs();
        for e in self.rob.iter().skip(from) {
            self.sink
                .emit_at(at, EventKind::UopSquashed { id: e.id, cause });
        }
    }

    /// The branch prediction unit (for stealth fingerprinting).
    pub fn bpu(&self) -> &Bpu {
        &self.bpu
    }

    /// The data TLB (for stealth fingerprinting and eviction).
    pub fn dtlb(&self) -> &Tlb {
        &self.dtlb
    }

    /// Flushes both TLBs, optionally keeping global entries — the
    /// attacker-controlled TLB eviction step of TET-KASLR.
    pub fn flush_tlbs(&mut self, keep_global: bool) {
        self.dtlb.flush_all(keep_global);
        self.itlb.flush_all(keep_global);
        self.sink.emit(EventKind::TlbFlush {
            kind: TlbKind::Data,
            kept_global: keep_global,
        });
        self.sink.emit(EventKind::TlbFlush {
            kind: TlbKind::Inst,
            kept_global: keep_global,
        });
    }

    /// Sets the pages a `syscall` warms in the DTLB (the KPTI trampoline).
    pub fn set_syscall_pages(&mut self, pages: Vec<u64>) {
        self.syscall_pages = pages;
    }

    /// Imposes a stall from the sibling SMT thread until `cycle`.
    pub fn impose_external_stall(&mut self, until: u64) {
        self.external_stall_until = self.external_stall_until.max(until);
        self.sink.emit(EventKind::SmtContention { until });
    }

    /// Whether every pipeline structure is drained.
    pub fn pipeline_empty(&self) -> bool {
        self.rob.is_empty() && self.idq.is_empty()
    }

    /// Whether the frontend has run past the end of the program with an
    /// empty pipeline (no `Halt` will ever retire).
    pub fn ran_off_end(&self, program: &Program) -> bool {
        self.pipeline_empty() && self.fetch_pc >= program.len() && !self.halted
    }

    // =====================================================================
    // The cycle loop
    // =====================================================================

    /// Advances the core by one cycle.
    pub fn step(&mut self, template: &ProgramTemplate, env: &mut Env<'_>) -> StepEvents {
        // Host-profiler sampling gate: time one full step in every
        // `sample_every`. The decision depends only on a host-side
        // counter, never on simulated state.
        if self.prof.enabled() {
            self.prof_tick += 1;
            if self.prof_tick >= self.prof.sample_every() {
                self.prof_tick = 0;
                self.prof_sampling = true;
                self.prof_exec_ns = 0;
                self.prof_mem_ns = 0;
            }
        }
        let mut events = StepEvents::default();
        let now = self.cycle;
        self.sink.tick(now);
        self.pmu.bump(Event::CpuClkUnhalted, 1);

        // OS timer interrupt: a whole-pipeline bubble. The schedule runs
        // on the global (never-reset) cycle counter with deterministic
        // phase jitter, so the noise decorrelates across attack
        // iterations like real timer ticks do.
        let t = self.cfg.timing;
        if t.interrupt_period > 0 && self.global_cycle >= self.next_interrupt {
            self.external_stall_until = self.external_stall_until.max(now + t.interrupt_cost);
            self.fetch_stall_until = self.fetch_stall_until.max(now + t.interrupt_cost);
            // xorshift64 jitter: the gap varies in [period/2, 3*period/2).
            let mut x = self.interrupt_rng;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.interrupt_rng = x;
            self.next_interrupt =
                self.global_cycle + t.interrupt_period / 2 + x % t.interrupt_period.max(1);
            self.sink.emit_at(
                now,
                EventKind::TimerInterrupt {
                    until: now + t.interrupt_cost,
                },
            );
        }
        self.global_cycle += 1;

        // On the sampled step each stage call is bracketed by `Instant`
        // reads; `t*` are all `None` otherwise (one branch each).
        let clock = |on: bool| on.then(std::time::Instant::now);
        let t0 = clock(self.prof_sampling);
        self.resolve_branches(now);
        if let Some(flush) = self.retire_cycle(now, env) {
            events.flush_until = Some(flush);
        }
        let t1 = clock(self.prof_sampling);
        let exec_started = self.schedule_cycle(now, env);
        let t2 = clock(self.prof_sampling);
        let issued = self.rename_cycle(now, template);
        let t3 = clock(self.prof_sampling);
        let (dsb_uops, mite_uops, fetch_stalled) = self.fetch_cycle(now, template, env);
        let t4 = clock(self.prof_sampling);

        self.account_cycle(
            now,
            exec_started,
            issued,
            dsb_uops,
            mite_uops,
            fetch_stalled,
        );
        if let (Some(t0), Some(t1), Some(t2), Some(t3), Some(t4)) = (t0, t1, t2, t3, t4) {
            let ns = |a: std::time::Instant, b: std::time::Instant| {
                b.duration_since(a).as_nanos() as u64
            };
            self.prof.add_ns(ProfStage::Retire, ns(t0, t1));
            // The scheduler's elapsed time minus what execute_uop spent
            // is wakeup/select overhead; execute splits into compute vs
            // memory µops at the call site.
            let sched = ns(t1, t2);
            self.prof.add_ns(ProfStage::Execute, self.prof_exec_ns);
            self.prof.add_ns(ProfStage::Memory, self.prof_mem_ns);
            self.prof.add_ns(
                ProfStage::Issue,
                sched.saturating_sub(self.prof_exec_ns + self.prof_mem_ns),
            );
            self.prof.add_ns(ProfStage::Rename, ns(t2, t3));
            self.prof.add_ns(ProfStage::Fetch, ns(t3, t4));
            self.prof_sampling = false;
        }
        self.cycle += 1;
        events
    }

    // ----- event-driven fast-forward --------------------------------------

    /// Attempts to skip ahead to the next cycle at which anything can
    /// happen, bulk-applying exactly the per-cycle PMU accounting the
    /// skipped idle `step()`s would have produced. Returns the number of
    /// cycles skipped (0 = something can happen right now, take a real
    /// step).
    ///
    /// The contract is *cycle-exactness*: calling this before every
    /// `step()` must leave architectural state, µarch state and every
    /// PMU counter identical to never calling it. The implementation
    /// leans on two facts:
    ///
    /// * every stage is gated by monotone "until"-style windows
    ///   (`pipeline_flush_until`, `external_stall_until`,
    ///   `recovery_busy_until`, `fetch_stall_until`) and by readiness
    ///   times (`done_at`, `forward_at`, `wake_at`) that only a real
    ///   event can move — so bounding the skip by the minimum of all
    ///   such future times keeps every stage's predicate constant over
    ///   the skipped range;
    /// * on a cycle where nothing executes, every execution port is
    ///   free (`ports_busy` is only ever set to `execute cycle + 1`),
    ///   so a source-ready, order-ready µop always implies activity.
    ///
    /// Callers must not fast-forward when a structured-event sink is
    /// installed (skipped cycles would drop `FrontendCycle` events);
    /// [`crate::Machine`] gates on that.
    ///
    /// One observable difference is permitted and harmless: scheduler
    /// *wake hints* (`wake_at`, waiter lists) that an idle `step()`
    /// would have refreshed are left stale. Hints are lower bounds on
    /// issue cycles, never issue decisions, so every µop still starts
    /// executing on exactly the same cycle.
    pub(crate) fn try_fast_forward(&mut self, limit: u64) -> u64 {
        let now = self.cycle;
        if self.halted || limit <= now {
            return 0;
        }
        // An executed-but-unresolved branch resolves (trains the BPU,
        // possibly squashes and resteers) exactly at its `done_at`
        // cycle; `resolve_branches` is a no-op before that. Idle cycles
        // *before* the earliest resolution are safe to skip, but never
        // skip across one — clip the sprint to the earliest `done_at`
        // and treat a due resolution as activity.
        let mut branch_done = u64::MAX;
        if self.exec_unresolved_branches > 0 {
            let mut remaining = self.exec_unresolved_branches;
            for e in &self.rob {
                if e.started && e.kind.is_branch() && !e.resolved {
                    let done = e.done_at.expect("started µop has a completion time");
                    if done <= now {
                        return 0;
                    }
                    branch_done = branch_done.min(done);
                    remaining -= 1;
                    if remaining == 0 {
                        break;
                    }
                }
            }
        }
        let t = self.cfg.timing;
        // A due timer interrupt mutates stall windows and the RNG: let
        // the real step take it.
        if t.interrupt_period > 0 && self.global_cycle >= self.next_interrupt {
            return 0;
        }

        let p_flush = now < self.pipeline_flush_until;
        let p_ext = now < self.external_stall_until;
        let p_rec = now < self.recovery_busy_until;

        // --- activity checks: would the real step() do anything at `now`?
        if !(p_flush || p_ext) {
            if let Some(front) = self.rob.front() {
                if front.retire_ready(now) {
                    // Retirement or fault delivery happens this cycle.
                    return 0;
                }
            }
        }
        let mut bound = limit;
        if !p_flush {
            match self.sched_quiet_until(now) {
                None => return 0, // scheduler starts a µop this cycle
                Some(b) => bound = bound.min(b),
            }
        }
        if !(p_flush || p_ext || p_rec || self.idq.is_empty())
            && self.rob.len() < self.cfg.rob_size
            && self.unstarted_count < self.cfg.rs_size
        {
            return 0; // rename issues this cycle
        }
        if self.fetch_enabled && now >= self.fetch_stall_until && self.idq.len() < self.cfg.idq_size
        {
            // Fetch delivers µops, walks the ITLB, or discovers the end
            // of the program (which mutates `fetch_enabled`).
            return 0;
        }

        // --- bound: first future cycle any predicate above can change.
        if branch_done != u64::MAX {
            bound = bound.min(branch_done);
        }
        if let Some(front) = self.rob.front() {
            if let Some(done) = front.done_at {
                if done > now {
                    bound = bound.min(done);
                }
            }
        }
        if t.interrupt_period > 0 {
            bound = bound.min(now + (self.next_interrupt - self.global_cycle));
        }
        for w in [
            self.pipeline_flush_until,
            self.external_stall_until,
            self.recovery_busy_until,
            self.fetch_stall_until,
            self.exec_max_done,
            self.mem_max_done,
        ] {
            if w > now {
                bound = bound.min(w);
            }
        }
        if bound <= now {
            return 0;
        }
        let skip = bound - now;

        // --- bulk accounting: exactly `skip` idle step()s' worth.
        let idq_empty = self.idq.is_empty();
        self.pmu.bump(Event::CpuClkUnhalted, skip);
        if !(p_flush || p_ext) {
            if p_rec {
                self.pmu.bump(Event::IntMiscRecoveryCycles, skip);
                self.pmu.bump(Event::IntMiscRecoveryCyclesAny, skip);
            } else if !idq_empty {
                // Rename not blocked by any window and the IDQ has µops,
                // yet nothing issues: necessarily resource-blocked
                // (checked above), and the block persists — nothing
                // retires or starts during the skipped range.
                self.pmu.bump(Event::ResourceStallsAny, skip);
                if self.rob.len() >= self.cfg.rob_size {
                    self.pmu
                        .bump(Event::DeDisDispatchTokenStalls2RetireTokenStall, skip);
                }
            }
        }
        self.pmu.bump(Event::UopsExecutedStallCycles, skip);
        if self.exec_max_done <= now {
            self.pmu.bump(Event::UopsExecutedCoreCyclesNone, skip);
            if !self.rob.is_empty() {
                self.pmu.bump(Event::CycleActivityStallsTotal, skip);
            }
        }
        if self.mem_max_done > now {
            self.pmu.bump(Event::CycleActivityCyclesMemAny, skip);
        }
        if self.unstarted_count == 0 {
            self.pmu.bump(Event::RsEventsEmptyCycles, skip);
        }
        self.pmu.bump(Event::UopsIssuedStallCycles, skip);
        if idq_empty {
            self.pmu.bump(Event::IdqEmptyCycles, skip);
            self.pmu.bump(Event::DeDisUopQueueEmptyDi0, skip);
        }
        self.cycle += skip;
        self.global_cycle += skip;
        self.ff_skipped_cycles += skip;
        self.ff_sprints += 1;
        skip
    }

    /// Read-only mirror of [`Cpu::schedule_cycle`]'s walk: returns
    /// `None` when the scheduler would start some µop at `now`, else
    /// the earliest future cycle at which it could (`u64::MAX` when no
    /// in-flight µop bounds it — retire/fetch/timer bounds then apply).
    fn sched_quiet_until(&self, now: u64) -> Option<u64> {
        let mut bound = u64::MAX;
        for (i, e) in self.rob.iter().enumerate() {
            if e.started {
                // A not-yet-done fence blocks all younger execution.
                if e.kind.is_fence() && !e.retire_ready(now) {
                    return Some(bound.min(e.done_at.unwrap_or(u64::MAX)));
                }
                continue;
            }
            if e.kind.is_fence() {
                if self.exec_max_done <= now {
                    if self.rob.iter().take(i).all(|o| o.retire_ready(now)) {
                        return None; // the fence starts this cycle
                    }
                    // Blocked on an older *unstarted* µop: its own walk
                    // entry above already produced a bound or activity.
                } else {
                    bound = bound.min(self.exec_max_done);
                }
                return Some(bound);
            }
            if now < e.wake_at {
                if e.wake_at != u64::MAX {
                    bound = bound.min(e.wake_at);
                }
                continue;
            }
            match self.eval_deps(i, now) {
                // Parked-on-producer: the producer's own start bounds
                // it, and the producer is an older entry this walk
                // already covered.
                DepVerdict::Park(_) => {}
                DepVerdict::WakeAt(at) => bound = bound.min(at),
                DepVerdict::Ready => {
                    // A port is always free on a cycle where nothing has
                    // executed (see `try_fast_forward`), so an unblocked
                    // ready µop means the scheduler acts now; a blocked
                    // load is bounded by the blocking store, an older
                    // unstarted entry already walked.
                    self.mem_order_blocker(i)?;
                }
            }
        }
        Some(bound)
    }

    // ----- per-cycle accounting -------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn account_cycle(
        &mut self,
        now: u64,
        exec_started: usize,
        issued: usize,
        dsb_uops: usize,
        mite_uops: usize,
        fetch_stalled: bool,
    ) {
        // Counter-based equivalents of the old whole-ROB sweeps. The
        // maxima are exact: a started entry with `done_at > now` cannot
        // have retired (retirement requires `done_at <= now`), and any
        // squash recomputes the maxima from the survivors.
        let in_flight_exec = self.exec_max_done > now;
        let mem_in_flight = self.mem_max_done > now;
        let rs_occupied = self.unstarted_count > 0;

        if exec_started == 0 {
            self.pmu.bump(Event::UopsExecutedStallCycles, 1);
            if !in_flight_exec {
                self.pmu.bump(Event::UopsExecutedCoreCyclesNone, 1);
                if !self.rob.is_empty() {
                    self.pmu.bump(Event::CycleActivityStallsTotal, 1);
                }
            }
        }
        if mem_in_flight {
            self.pmu.bump(Event::CycleActivityCyclesMemAny, 1);
        }
        if !rs_occupied {
            self.pmu.bump(Event::RsEventsEmptyCycles, 1);
        }
        if issued == 0 {
            self.pmu.bump(Event::UopsIssuedStallCycles, 1);
        }
        if self.idq.is_empty() {
            self.pmu.bump(Event::IdqEmptyCycles, 1);
            self.pmu.bump(Event::DeDisUopQueueEmptyDi0, 1);
        }
        self.sink.emit_at(
            now,
            EventKind::FrontendCycle {
                dsb_uops: dsb_uops as u32,
                mite_uops: mite_uops as u32,
                stalled: fetch_stalled,
            },
        );
    }

    // ----- branch resolution ----------------------------------------------

    fn resolve_branches(&mut self, now: u64) {
        // Nothing to do unless some branch has executed and not yet been
        // resolved — the common straight-line cycle skips the scan.
        if self.exec_unresolved_branches == 0 {
            return;
        }
        // Resolve in age order; stop after the first mispredict (it
        // squashes everything younger).
        let mut mispredict_at: Option<usize> = None;
        for i in 0..self.rob.len() {
            let e = &self.rob[i];
            if !e.kind.is_branch() || e.resolved || !e.retire_ready(now) {
                continue;
            }
            let actual = e
                .actual_next
                .expect("executed branch must have a resolved target");
            let pc = e.pc;
            let inst = e.inst;
            let pred_next = e.pred_next;

            // Train the predictor at resolution (transient included).
            match inst {
                Inst::Jcc { target, .. } => {
                    self.bpu.resolve_cond(pc, actual == target, target);
                }
                Inst::Ret | Inst::JmpReg { .. } => self.bpu.resolve_indirect(pc, actual),
                _ => {}
            }

            self.pmu.bump(Event::BrInstExecAll, 1);
            let mispredicted = actual != pred_next;
            self.sink.emit_at(
                now,
                EventKind::BranchResolved {
                    pc: pc as u64,
                    mispredicted,
                },
            );
            self.exec_unresolved_branches -= 1;
            let entry = &mut self.rob[i];
            entry.resolved = true;
            if mispredicted {
                entry.mispredicted = true;
                mispredict_at = Some(i);
                break;
            }
        }

        if let Some(i) = mispredict_at {
            let inst = self.rob[i].inst;
            let actual = self.rob[i].actual_next.expect("resolved");
            self.pmu.bump(Event::BrMispExecAllBranches, 1);
            if matches!(inst, Inst::Ret | Inst::JmpReg { .. }) {
                self.pmu.bump(Event::BrMispExecIndirect, 1);
            }
            self.pmu.bump(Event::BpL1BtbCorrect, 1);

            let flushed = self.rob.len() - (i + 1);
            self.squash_younger_than(i, now, SquashReason::BranchMispredict);
            self.sink.emit_at(
                now,
                EventKind::Resteer {
                    target_pc: actual as u64,
                    flushed_uops: flushed as u32,
                },
            );
            self.idq.clear();

            // Mechanism 2: the resteer penalty scales with the number of
            // in-flight µops the squash had to clear.
            let stall = self.cfg.timing.resteer_cycles
                + self.cfg.timing.resteer_cost_per_uop * flushed as u64;
            self.fetch_pc = actual;
            self.fetch_enabled = true;
            self.last_fetch_page = None;
            self.fetch_stall_until = self.fetch_stall_until.max(now + stall);
            self.pmu.bump(Event::IntMiscClearResteerCycles, stall);

            // Mechanism 1: open a recovery window that exception entry
            // must serialise behind.
            self.recovery_busy_until = self
                .recovery_busy_until
                .max(now + self.cfg.timing.recovery_cycles);
        }
    }

    /// Removes all ROB entries younger than index `keep` (emitting their
    /// squash events) and rebuilds the rename state from the survivors.
    fn squash_younger_than(&mut self, keep: usize, now: u64, reason: SquashReason) {
        self.emit_squash_from(keep + 1, now, reason);
        self.rob.truncate(keep + 1);
        self.rebuild_rename_state();
    }

    fn rebuild_rename_state(&mut self) {
        self.rat = [None; 16];
        self.flags_rat = None;
        self.txn_snapshot_cache = self
            .rob
            .back()
            .map(|e| e.txn_snapshot.clone())
            .unwrap_or_else(|| self.empty_snapshot.clone());
        self.txn_stack.clear();
        self.txn_stack.extend_from_slice(&self.txn_snapshot_cache);
        // `dests` is an inline Copy list, so the survivors can be walked
        // by index without buffering (or allocating) anything.
        for k in 0..self.rob.len() {
            let (id, dests, wf) = (
                self.rob[k].id,
                self.rob[k].dests,
                self.rob[k].kind.writes_flags(),
            );
            for r in dests {
                self.rat[r as usize] = Some(id);
            }
            if wf {
                self.flags_rat = Some(id);
            }
        }
        self.recompute_sched_state();
        if tet_check::enabled() {
            self.validate_rename_state();
        }
    }

    /// Rebuilds every derived scheduler counter and wake/waiter field
    /// from the ROB contents. Called after any squash; surviving
    /// unstarted entries are re-evaluated from scratch next cycle.
    fn recompute_sched_state(&mut self) {
        self.unstarted_count = 0;
        self.unstarted_store_count = 0;
        self.inflight_store_data = 0;
        self.exec_unresolved_branches = 0;
        self.exec_max_done = 0;
        self.mem_max_done = 0;
        for e in &mut self.rob {
            e.waiter_head = None;
            e.next_waiter = None;
            if e.started {
                let done = e.done_at.expect("started µop has a completion time");
                self.exec_max_done = self.exec_max_done.max(done);
                if e.kind.is_memory() {
                    self.mem_max_done = self.mem_max_done.max(done);
                }
                if e.kind.is_branch() && !e.resolved {
                    self.exec_unresolved_branches += 1;
                }
                if e.store.is_some() {
                    self.inflight_store_data += 1;
                }
            } else {
                e.wake_at = 0;
                self.unstarted_count += 1;
                if e.kind.is_store_kind() {
                    self.unstarted_store_count += 1;
                }
            }
        }
    }

    /// Expensive post-squash consistency sweep, run only in check mode:
    /// a squash must leave no dangling dependency edges or stale rename
    /// entries behind.
    fn validate_rename_state(&self) {
        let mut prev: Option<u64> = None;
        for e in &self.rob {
            assert!(
                prev.is_none_or(|p| e.id > p),
                "ROB ids must be strictly ascending: {} after {:?}",
                e.id,
                prev
            );
            prev = Some(e.id);
        }
        let in_rob = |id: u64| self.rob.iter().any(|e| e.id == id);
        for (r, slot) in self.rat.iter().enumerate() {
            if let Some(id) = *slot {
                assert!(
                    in_rob(id),
                    "RAT[{r}] names µop {id} which is no longer in the ROB"
                );
            }
        }
        if let Some(id) = self.flags_rat {
            assert!(
                in_rob(id),
                "flags RAT names µop {id} which is no longer in the ROB"
            );
        }
        let front_id = self.rob.front().map(|e| e.id);
        for e in &self.rob {
            for d in &e.deps {
                let Some(p) = d.producer else { continue };
                assert!(
                    p < e.id,
                    "µop {} depends on younger/equal producer {p}",
                    e.id
                );
                assert!(
                    in_rob(p) || front_id.is_none_or(|f| p < f),
                    "µop {} has dangling dependency on squashed µop {p}",
                    e.id
                );
            }
        }
    }

    // ----- retirement -----------------------------------------------------

    /// Retires up to `retire_width` µops; returns a flush horizon when a
    /// fault was delivered this cycle.
    fn retire_cycle(&mut self, now: u64, env: &mut Env<'_>) -> Option<u64> {
        if now < self.pipeline_flush_until || now < self.external_stall_until || self.halted {
            return None;
        }
        let mut flush = None;
        for _ in 0..self.cfg.retire_width {
            let Some(front) = self.rob.front() else { break };
            if !front.retire_ready(now) {
                break;
            }
            if front.fault.is_some() {
                flush = Some(self.deliver_fault(now, env));
                break;
            }
            let entry = self.rob.pop_front().expect("front exists");
            self.commit(entry, env, now);
            if self.halted {
                break;
            }
        }
        flush
    }

    fn commit(&mut self, entry: RobEntry, env: &mut Env<'_>, _now_retire: u64) {
        tet_invariant!(
            entry.fault.is_none(),
            "µop {} (pc {}) carries an unresolved fault {:?} but reached commit",
            entry.id,
            entry.pc,
            entry.fault
        );
        tet_invariant!(
            self.last_retired_id.is_none_or(|last| entry.id > last),
            "retire ids must be monotone: µop {} after {:?}",
            entry.id,
            self.last_retired_id
        );
        self.last_retired_id = Some(entry.id);
        if entry.store.is_some() {
            self.inflight_store_data -= 1;
        }
        for &(r, v) in entry.results.iter() {
            let v = if self.mutate_retire { v ^ 1 } else { v };
            self.regs.set(r, v);
        }
        if let Some(f) = entry.flags_out {
            self.flags = f;
        }
        // The oracle observes the commit between the register update and
        // the store write: registers already reflect this µop, memory
        // does not yet (the reference logs pre-store bytes for TSX undo).
        if env.check.is_some() {
            self.oracle_check_retire(&entry, env);
        }
        if let Some(store) = entry.store {
            if let Some(pa) = store.pa {
                // The architectural write happens at commit; inside a
                // transaction the old value is logged for abort undo.
                if self.txn_checkpoint.is_some() {
                    let old = if store.byte {
                        env.phys.read_u8(pa) as u64
                    } else {
                        env.phys.read_u64(pa)
                    };
                    self.txn_undo.push((pa, old, store.byte));
                }
                if store.byte {
                    env.phys.write_u8(pa, store.value as u8);
                } else {
                    env.phys.write_u64(pa, store.value);
                }
            }
        }
        // TSX boundaries: checkpoint at the outermost xbegin's
        // retirement, release at the matching xend's.
        match entry.inst {
            Inst::XBegin { .. } if self.cfg.vuln.has_tsx => {
                if self.txn_depth == 0 {
                    self.txn_checkpoint = Some((self.regs, self.flags));
                    self.txn_undo.clear();
                }
                self.txn_depth += 1;
            }
            Inst::XEnd => {
                self.txn_depth = self.txn_depth.saturating_sub(1);
                if self.txn_depth == 0 {
                    self.txn_checkpoint = None;
                    self.txn_undo.clear();
                }
            }
            _ => {}
        }
        // Free the RAT mapping if this µop was still the newest producer.
        for r in entry.dests {
            if self.rat[r as usize] == Some(entry.id) {
                self.rat[r as usize] = None;
            }
        }
        if self.flags_rat == Some(entry.id) {
            self.flags_rat = None;
        }

        self.sink
            .emit_at(_now_retire, EventKind::UopRetired { id: entry.id });
        self.retired_insts += 1;
        self.pmu.bump(Event::InstRetiredAny, 1);
        self.pmu.bump(Event::UopsRetiredAll, 1);
        if entry.kind.is_branch() {
            self.pmu.bump(Event::BrInstRetiredAll, 1);
            if entry.mispredicted {
                self.pmu.bump(Event::BrMispRetiredAll, 1);
            }
        }
        if entry.kind.is_halt() {
            self.halted = true;
        }
    }

    /// Feeds one committed µop to the retirement oracle (check mode).
    fn oracle_check_retire(&self, entry: &RobEntry, env: &mut Env<'_>) {
        let Env {
            check,
            phys,
            aspace,
            ..
        } = env;
        if let Some(oracle) = check.as_deref_mut() {
            let store = entry.store.map(|s| tet_check::CommittedStore {
                vaddr: s.vaddr,
                pa: s.pa,
                value: s.value,
                byte: s.byte,
            });
            oracle.on_retire(
                &tet_check::RetiredUop {
                    pc: entry.pc,
                    regs: &self.regs,
                    flags: self.flags,
                    store,
                },
                aspace,
                phys,
            );
        }
    }

    /// Feeds one delivered fault to the retirement oracle (check mode).
    /// Called after any transaction rollback, so registers and physical
    /// memory are already in their post-delivery state.
    fn oracle_check_fault(
        &self,
        pc: usize,
        fault: Fault,
        resume: Option<usize>,
        env: &mut Env<'_>,
    ) {
        let Env {
            check,
            phys,
            aspace,
            ..
        } = env;
        if let Some(oracle) = check.as_deref_mut() {
            oracle.on_fault(
                &tet_check::DeliveredFault {
                    pc,
                    vaddr: fault.vaddr,
                    kind: check_fault_kind(fault.kind),
                    resume,
                    regs: &self.regs,
                    flags: self.flags,
                },
                aspace,
                phys,
            );
        }
    }

    fn deliver_fault(&mut self, now: u64, env: &mut Env<'_>) -> u64 {
        // Only three Copy fields of the faulting entry matter here — no
        // need to clone the whole ROB entry.
        let front = self.rob.front().expect("caller checked");
        let entry_pc = front.pc;
        let entry_txn_abort = front.txn_abort;
        let fault = front.fault.expect("caller checked");
        let occupancy = self.rob.len() as u64;
        let t = &self.cfg.timing;

        // Mechanism 1: fault delivery serialises behind an in-progress
        // branch-misprediction recovery window on every route, so an
        // in-window triggered Jcc delays delivery and lengthens ToTE.
        let start = now.max(self.recovery_busy_until);

        // Route selection. Non-present / reserved-bit faults go through a
        // microcode assist (machine clear) on the Intel models; the AMD
        // model detected the fault early and raises a plain exception for
        // every kind, which is what removes the mapped/unmapped timing
        // differential of TET-KASLR on Zen 3.
        let assist = !self.cfg.vuln.early_fault_abort
            && matches!(fault.kind, FaultKind::NotPresent | FaultKind::ReservedBit)
            && entry_txn_abort.is_none();

        // Mechanism 2: squash cost scales with in-flight occupancy — an
        // inner squash that already emptied the transient window makes
        // this terminal flush cheaper.
        let (route, cost, target) = if let Some(abort_target) = entry_txn_abort {
            (
                FaultRoute::TxnAbort,
                t.txn_abort_cycles + t.fault_squash_cost_per_uop * occupancy,
                Some(abort_target),
            )
        } else if assist {
            self.pmu.bump(Event::MachineClearsCount, 1);
            (
                FaultRoute::MachineClear,
                t.machine_clear_base + t.clear_cost_per_uop * occupancy,
                self.handler_pc,
            )
        } else {
            (
                FaultRoute::Exception,
                t.exception_entry_cycles + t.fault_squash_cost_per_uop * occupancy,
                self.handler_pc,
            )
        };
        let delivered_at = start + cost;

        let Some(target) = target else {
            let record = ExceptionRecord {
                pc: entry_pc,
                vaddr: fault.vaddr,
                kind: fault.kind,
                route,
                detected_at: now,
                delivered_at,
            };
            self.unhandled = Some(record);
            self.halted = true;
            self.sink.emit_at(
                now,
                EventKind::FaultDelivered {
                    pc: entry_pc as u64,
                    class: fault.kind.to_obs(),
                    route: route.to_obs(),
                    squashed_uops: occupancy as u32,
                },
            );
            if env.check.is_some() {
                self.oracle_check_fault(entry_pc, fault, None, env);
            }
            return delivered_at;
        };

        self.exceptions.push(ExceptionRecord {
            pc: entry_pc,
            vaddr: fault.vaddr,
            kind: fault.kind,
            route,
            detected_at: now,
            delivered_at,
        });

        // A transaction abort rolls architectural state back to the
        // xbegin checkpoint: registers, flags, and committed stores.
        if route == FaultRoute::TxnAbort {
            if let Some((regs, flags)) = self.txn_checkpoint.take() {
                self.regs = regs;
                self.flags = flags;
                for (pa, old, byte) in self.txn_undo.drain(..).rev() {
                    if byte {
                        env.phys.write_u8(pa, old as u8);
                    } else {
                        env.phys.write_u64(pa, old);
                    }
                }
            }
            self.txn_depth = 0;
        }

        // Check mode: the oracle sees the fault after rollback, with
        // registers and memory in their post-delivery state.
        if env.check.is_some() {
            self.oracle_check_fault(entry_pc, fault, Some(target), env);
        }

        // Full pipeline flush; architectural state stays at the last
        // commit (the faulting µop and everything younger vanish).
        let squash_reason = match route {
            FaultRoute::TxnAbort => SquashReason::TxnAbort,
            _ => SquashReason::Fault,
        };
        self.emit_squash_from(0, now, squash_reason);
        self.sink.emit_at(
            now,
            EventKind::FaultDelivered {
                pc: entry_pc as u64,
                class: fault.kind.to_obs(),
                route: route.to_obs(),
                squashed_uops: occupancy as u32,
            },
        );
        self.rob.clear();
        self.idq.clear();
        self.rebuild_rename_state();
        self.txn_stack.clear();
        self.fetch_pc = target;
        self.fetch_enabled = true;
        self.last_fetch_page = None;
        self.fetch_stall_until = delivered_at;
        self.pipeline_flush_until = delivered_at;
        self.recovery_busy_until = self.recovery_busy_until.max(delivered_at);
        delivered_at
    }

    // ----- scheduling / execution -----------------------------------------

    fn schedule_cycle(&mut self, now: u64, env: &mut Env<'_>) -> usize {
        if now < self.pipeline_flush_until {
            return 0;
        }
        let mut started = 0usize;
        let mut i = 0usize;
        while i < self.rob.len() {
            if self.rob[i].started {
                // A not-yet-done fence blocks all younger execution.
                if self.rob[i].kind.is_fence() && !self.rob[i].retire_ready(now) {
                    break;
                }
                i += 1;
                continue;
            }
            // Fences wait until all older µops are done, then "execute"
            // instantly; they block everything younger meanwhile. While
            // a fence sits unstarted, nothing younger can have started,
            // so `exec_max_done > now` proves an *older* in-flight µop
            // and skips the prefix scan.
            if self.rob[i].kind.is_fence() {
                let older_done = self.exec_max_done <= now
                    && self.rob.iter().take(i).all(|e| e.retire_ready(now));
                if older_done {
                    let e = &mut self.rob[i];
                    debug_assert!(e.waiter_head.is_none(), "fences produce nothing");
                    e.started = true;
                    e.forward_at = Some(now);
                    e.done_at = Some(now);
                    let id = e.id;
                    self.unstarted_count -= 1;
                    self.exec_max_done = self.exec_max_done.max(now);
                    self.sink.emit_at(
                        now,
                        EventKind::UopExecuted {
                            id,
                            started_at: now,
                            done_at: now,
                        },
                    );
                    i += 1;
                    continue;
                }
                break;
            }
            // Entries waiting on a known future time (or parked on a
            // producer's waiter list, `wake_at == u64::MAX`) are skipped
            // in O(1); the issue decisions are identical to the old
            // every-cycle re-poll because `wake_at` is always a lower
            // bound on the entry's first possible issue cycle.
            if now < self.rob[i].wake_at {
                i += 1;
                continue;
            }
            match self.eval_deps(i, now) {
                DepVerdict::Park(pid) => self.park_on(i, pid),
                DepVerdict::WakeAt(at) => self.rob[i].wake_at = at,
                DepVerdict::Ready => {
                    if let Some(blocker) = self.mem_order_blocker(i) {
                        // Unknown older store address: woken the cycle
                        // that store starts (it may issue the same
                        // cycle, exactly like the old in-order re-poll).
                        self.park_on(i, blocker);
                    } else if let Some(port) = self.free_port(now) {
                        self.ports_busy[port] = now + 1;
                        if self.prof_sampling {
                            let kind = self.rob[i].kind;
                            let is_mem = kind.is_load_kind() || kind.is_store_kind();
                            let t = std::time::Instant::now();
                            self.execute_uop(i, now, env);
                            let ns = t.elapsed().as_nanos() as u64;
                            if is_mem {
                                self.prof_mem_ns += ns;
                            } else {
                                self.prof_exec_ns += ns;
                            }
                        } else {
                            self.execute_uop(i, now, env);
                        }
                        started += 1;
                        self.pmu.bump(Event::UopsExecutedAny, 1);
                    } else {
                        // Port starvation: every busy port frees by the
                        // next cycle.
                        self.rob[i].wake_at = now + 1;
                    }
                }
            }
            i += 1;
        }
        started
    }

    fn free_port(&self, now: u64) -> Option<usize> {
        self.ports_busy.iter().position(|&b| b <= now)
    }

    /// ROB index of the in-flight µop `id`, or `None` if it is gone
    /// (retired, or — for ids a squash discarded — never referenced).
    ///
    /// µop ids are assigned sequentially at rename, so absent squashes
    /// the resident ids are contiguous and the position is simply
    /// `id - front.id` (the O(1) fast path). A squash leaves a gap
    /// (`next_uop_id` does not roll back), but ids stay strictly
    /// ascending, so the fallback is a binary search, not a linear scan.
    fn rob_index(&self, id: u64) -> Option<usize> {
        let front = self.rob.front()?.id;
        if id < front {
            return None;
        }
        let guess = (id - front) as usize;
        if let Some(e) = self.rob.get(guess) {
            if e.id == id {
                return Some(guess);
            }
        }
        let (a, b) = self.rob.as_slices();
        let search = |s: &[RobEntry], off: usize| {
            s.binary_search_by_key(&id, |e| e.id).ok().map(|k| k + off)
        };
        if b.first().is_some_and(|e| e.id <= id) {
            search(b, a.len())
        } else {
            search(a, 0)
        }
    }

    fn producer(&self, id: u64) -> Option<&RobEntry> {
        self.rob_index(id).map(|i| &self.rob[i])
    }

    fn deps_ready(&self, entry: &RobEntry, now: u64) -> bool {
        entry.deps.iter().all(|d| match d.producer {
            None => true,
            Some(id) => match self.producer(id) {
                Some(p) => p.forward_ready(now),
                None => true, // retired → committed state is current
            },
        })
    }

    /// One source-readiness evaluation of the unstarted µop at `i`,
    /// deciding how the scheduler hears about it next:
    ///
    /// * [`DepVerdict::Ready`] — all sources forward-ready at `now`;
    /// * [`DepVerdict::WakeAt`] — every producer has executed, the last
    ///   forwards at the returned (exact) cycle;
    /// * [`DepVerdict::Park`] — some producer has not executed yet, so
    ///   no bound exists: park on that producer's waiter list and let
    ///   its execution wake us (O(woken), not O(ROB) per cycle).
    fn eval_deps(&self, i: usize, now: u64) -> DepVerdict {
        let mut wake = now;
        for d in &self.rob[i].deps {
            let Some(pid) = d.producer else { continue };
            let Some(pidx) = self.rob_index(pid) else {
                continue; // retired → committed state is current
            };
            let p = &self.rob[pidx];
            if !p.started {
                return DepVerdict::Park(pid);
            }
            let fwd = p.forward_at.expect("started µop has a forward time");
            if fwd > wake {
                wake = fwd;
            }
        }
        if wake > now {
            DepVerdict::WakeAt(wake)
        } else {
            DepVerdict::Ready
        }
    }

    /// Parks the unstarted µop at index `i` on the waiter list of the
    /// older unstarted µop `pid`; `execute_uop` of that producer resets
    /// `wake_at` so the waiter re-evaluates (same cycle — waiters are
    /// younger, so the age-ordered sweep has not passed them yet).
    fn park_on(&mut self, i: usize, pid: u64) {
        let pidx = self.rob_index(pid).expect("blocking µop is in flight");
        debug_assert!(pidx < i, "can only wait on an older µop");
        debug_assert!(!self.rob[pidx].started);
        let head = self.rob[pidx].waiter_head;
        let e = &mut self.rob[i];
        debug_assert!(e.next_waiter.is_none(), "µop parked twice");
        e.next_waiter = head;
        e.wake_at = u64::MAX;
        let id = e.id;
        self.rob[pidx].waiter_head = Some(id);
    }

    /// Loads must wait for older stores with unknown addresses, and for
    /// forwarding-blocked stores (clflush between store and load) to
    /// retire. Stores and non-memory µops are always order-ready.
    /// Returns the youngest blocking store's id, or `None` when ready;
    /// the scan is skipped entirely while no unstarted store exists.
    fn mem_order_blocker(&self, i: usize) -> Option<u64> {
        if self.unstarted_store_count == 0 || !self.rob[i].kind.is_load_kind() {
            return None;
        }
        for j in (0..i).rev() {
            let e = &self.rob[j];
            if e.kind.is_store_kind() && !e.started {
                return Some(e.id); // unknown older store address
            }
        }
        None
    }

    fn dep_reg_value(&self, entry: &RobEntry, r: Reg) -> u64 {
        for d in &entry.deps {
            if let DepKind::Reg(reg) = d.kind {
                if reg == r {
                    if let Some(id) = d.producer {
                        if let Some(p) = self.producer(id) {
                            if let Some(v) = p.result_for(r) {
                                return v;
                            }
                        }
                    }
                    return self.regs.get(r);
                }
            }
        }
        self.regs.get(r)
    }

    fn dep_flags_value(&self, entry: &RobEntry) -> Flags {
        for d in &entry.deps {
            if matches!(d.kind, DepKind::Flags) {
                if let Some(id) = d.producer {
                    if let Some(p) = self.producer(id) {
                        if let Some(f) = p.flags_out {
                            return f;
                        }
                    }
                }
                return self.flags;
            }
        }
        self.flags
    }

    fn eff_addr(&self, entry: &RobEntry, addr: &tet_isa::Addr) -> u64 {
        let mut a = addr.disp as u64;
        if let Some(b) = addr.base {
            a = a.wrapping_add(self.dep_reg_value(entry, b));
        }
        if let Some((idx, scale)) = addr.index {
            a = a.wrapping_add(self.dep_reg_value(entry, idx).wrapping_mul(scale as u64));
        }
        a
    }

    fn src_value(&self, entry: &RobEntry, s: &tet_isa::Src) -> u64 {
        match s {
            tet_isa::Src::Reg(r) => self.dep_reg_value(entry, *r),
            tet_isa::Src::Imm(v) => *v,
        }
    }

    /// Store-to-load forwarding scan for a load of width `byte_load`.
    /// Returns:
    /// * `Some(Ok(value))` — forward from an older in-flight store;
    /// * `Some(Err(()))` — forwarding blocked (partial overlap, or an
    ///   intervening `clflush`): the load must wait until the store
    ///   drains and read memory;
    /// * `None` — no older in-flight store overlapping this address.
    fn forwarding(&self, i: usize, vaddr: u64, byte_load: bool) -> Option<Result<u64, ()>> {
        if self.inflight_store_data == 0 {
            return None; // no in-flight store anywhere in the ROB
        }
        let load_len: u64 = if byte_load { 1 } else { 8 };
        for j in (0..i).rev() {
            let e = &self.rob[j];
            if let Some(store) = &e.store {
                let store_len: u64 = if store.byte { 1 } else { 8 };
                let overlap = store.vaddr < vaddr + load_len && vaddr < store.vaddr + store_len;
                if !overlap {
                    continue;
                }
                // Loads fully contained in the store can forward; partial
                // overlaps stall until the store drains (real store
                // buffers behave the same way).
                let contained = vaddr >= store.vaddr && vaddr + load_len <= store.vaddr + store_len;
                if !contained {
                    return Some(Err(()));
                }
                // clflush of the same line between store and load blocks
                // forwarding (the Listing 1 trick that slows `ret`).
                let line = tet_mem::line_addr(vaddr);
                let blocked = self.rob.iter().take(i).skip(j + 1).any(|c| {
                    c.kind.is_clflush() && c.started && {
                        if let Inst::Clflush { addr } = &c.inst {
                            tet_mem::line_addr(self.eff_addr(c, addr)) == line
                        } else {
                            false
                        }
                    }
                });
                if blocked {
                    return Some(Err(()));
                }
                let shift = 8 * (vaddr - store.vaddr);
                let value = if byte_load {
                    (store.value >> shift) & 0xff
                } else {
                    store.value
                };
                return Some(Ok(value));
            }
        }
        None
    }

    // ----- the execute step -------------------------------------------------

    fn execute_uop(&mut self, i: usize, now: u64, env: &mut Env<'_>) {
        tet_invariant!(
            self.deps_ready(&self.rob[i], now),
            "scheduler issued µop {} (pc {}) with unready sources",
            self.rob[i].id,
            self.rob[i].pc
        );
        // Threaded-code dispatch: the opcode was resolved once at
        // template build, so the execute step is a single indexed call.
        let handler = EXEC_TABLE[self.rob[i].op as usize];
        let Some(out) = handler(self, i, now, env) else {
            return; // blocked store-to-load forwarding, re-parked
        };
        let ExecOut {
            latency,
            results,
            flags_out,
            fault,
            store,
            actual_next,
        } = out;
        let t = self.cfg.timing;

        let fault_info = fault.as_ref().map(|f| (f.kind, f.vaddr));
        let has_store = store.is_some();
        let e = &mut self.rob[i];
        e.started = true;
        let forward_at = now + latency;
        e.forward_at = Some(forward_at);
        let done_at = if fault.is_some() {
            forward_at + t.fault_confirm_cycles
        } else {
            forward_at
        };
        e.done_at = Some(done_at);
        e.results = results;
        e.flags_out = flags_out;
        e.fault = fault;
        e.store = store;
        e.actual_next = actual_next;
        let id = e.id;
        let pc = e.pc;
        let kind = e.kind;
        let is_mem = kind.is_memory();

        // Scheduler bookkeeping for the start of execution.
        self.unstarted_count -= 1;
        if kind.is_store_kind() {
            self.unstarted_store_count -= 1;
        }
        if has_store {
            self.inflight_store_data += 1;
        }
        if kind.is_branch() {
            self.exec_unresolved_branches += 1;
        }
        self.exec_max_done = self.exec_max_done.max(done_at);
        if is_mem {
            self.mem_max_done = self.mem_max_done.max(done_at);
        }
        // Wake everything parked on this µop: dependents re-evaluate
        // this same cycle (they sit later in the age-ordered sweep) and
        // either issue or compute their exact forward-time wake-up.
        let mut waiter = self.rob[i].waiter_head.take();
        while let Some(wid) = waiter {
            let widx = self
                .rob_index(wid)
                .expect("waiters die with their producer");
            let w = &mut self.rob[widx];
            waiter = w.next_waiter.take();
            w.wake_at = now;
        }

        self.sink.emit_at(
            now,
            EventKind::UopExecuted {
                id,
                started_at: now,
                done_at,
            },
        );
        if let Some((kind, vaddr)) = fault_info {
            self.sink.emit_at(
                now,
                EventKind::FaultRaised {
                    pc: pc as u64,
                    vaddr,
                    class: kind.to_obs(),
                },
            );
        }
    }

    // ----- execute handlers (one per opcode, see EXEC_TABLE) ----------------

    /// Store-to-load forwarding blocked: retry next cycle unless the
    /// store has drained; model as a stalled start.
    fn block_forwarding(&mut self, i: usize, now: u64) -> Option<ExecOut> {
        self.pmu.bump(Event::LdBlocksStoreForward, 1);
        self.rob[i].started = false;
        self.rob[i].wake_at = now + 1;
        None
    }

    /// Nop / Halt / XBegin / XEnd: no architectural effect at execute.
    fn exec_simple(&mut self, _i: usize, _now: u64, _env: &mut Env<'_>) -> Option<ExecOut> {
        Some(ExecOut::new(self.cfg.timing.alu_latency))
    }

    fn exec_mov_imm(&mut self, i: usize, _now: u64, _env: &mut Env<'_>) -> Option<ExecOut> {
        let Inst::MovImm { dst, imm } = self.rob[i].inst else {
            unreachable!()
        };
        let mut out = ExecOut::new(self.cfg.timing.alu_latency);
        out.results.push(dst, imm);
        Some(out)
    }

    fn exec_mov_reg(&mut self, i: usize, _now: u64, _env: &mut Env<'_>) -> Option<ExecOut> {
        let Inst::MovReg { dst, src } = self.rob[i].inst else {
            unreachable!()
        };
        let v = self.dep_reg_value(&self.rob[i], src);
        let mut out = ExecOut::new(self.cfg.timing.alu_latency);
        out.results.push(dst, v);
        Some(out)
    }

    fn exec_lea(&mut self, i: usize, _now: u64, _env: &mut Env<'_>) -> Option<ExecOut> {
        let Inst::Lea { dst, addr } = self.rob[i].inst else {
            unreachable!()
        };
        let v = self.eff_addr(&self.rob[i], &addr);
        let mut out = ExecOut::new(self.cfg.timing.alu_latency);
        out.results.push(dst, v);
        Some(out)
    }

    fn exec_alu(&mut self, i: usize, _now: u64, _env: &mut Env<'_>) -> Option<ExecOut> {
        let Inst::Alu { op, dst, src } = self.rob[i].inst else {
            unreachable!()
        };
        let entry = &self.rob[i];
        let a = self.dep_reg_value(entry, dst);
        let b = self.src_value(entry, &src);
        let r = op.apply(a, b);
        let mut out = ExecOut::new(self.cfg.timing.alu_latency);
        out.results.push(dst, r);
        out.flags_out = Some(match op {
            tet_isa::inst::AluOp::Add => Flags::from_add(a, b),
            tet_isa::inst::AluOp::Sub => Flags::from_sub(a, b),
            _ => Flags::from_logic(r),
        });
        Some(out)
    }

    fn exec_cmp(&mut self, i: usize, _now: u64, _env: &mut Env<'_>) -> Option<ExecOut> {
        let Inst::Cmp { a, b } = self.rob[i].inst else {
            unreachable!()
        };
        let entry = &self.rob[i];
        let mut out = ExecOut::new(self.cfg.timing.alu_latency);
        out.flags_out = Some(Flags::from_sub(
            self.dep_reg_value(entry, a),
            self.src_value(entry, &b),
        ));
        Some(out)
    }

    fn exec_test(&mut self, i: usize, _now: u64, _env: &mut Env<'_>) -> Option<ExecOut> {
        let Inst::Test { a, b } = self.rob[i].inst else {
            unreachable!()
        };
        let entry = &self.rob[i];
        let mut out = ExecOut::new(self.cfg.timing.alu_latency);
        out.flags_out = Some(Flags::from_and(
            self.dep_reg_value(entry, a),
            self.src_value(entry, &b),
        ));
        Some(out)
    }

    fn exec_rdtsc(&mut self, _i: usize, now: u64, _env: &mut Env<'_>) -> Option<ExecOut> {
        let mut out = ExecOut::new(self.cfg.timing.alu_latency);
        out.results.push(Reg::Rax, now);
        Some(out)
    }

    /// Load and LoadByte share a handler (width from the opcode).
    fn exec_load(&mut self, i: usize, now: u64, env: &mut Env<'_>) -> Option<ExecOut> {
        let (dst, addr, byte) = match self.rob[i].inst {
            Inst::Load { dst, addr } => (dst, addr, false),
            Inst::LoadByte { dst, addr } => (dst, addr, true),
            _ => unreachable!(),
        };
        let vaddr = self.eff_addr(&self.rob[i], &addr);
        match self.forwarding(i, vaddr, byte) {
            Some(Ok(v)) => {
                let mut out = ExecOut::new(self.cfg.timing.store_forward_cycles);
                out.results.push(dst, if byte { v & 0xff } else { v });
                Some(out)
            }
            Some(Err(())) => self.block_forwarding(i, now),
            None => {
                let lr = self.do_load(env, vaddr, byte);
                let mut out = ExecOut::new(lr.latency);
                out.fault = lr.fault;
                out.results.push(dst, lr.value);
                Some(out)
            }
        }
    }

    /// Store and StoreByte share a handler (width from the opcode).
    fn exec_store(&mut self, i: usize, _now: u64, env: &mut Env<'_>) -> Option<ExecOut> {
        let (src, addr, byte) = match self.rob[i].inst {
            Inst::Store { src, addr } => (src, addr, false),
            Inst::StoreByte { src, addr } => (src, addr, true),
            _ => unreachable!(),
        };
        let entry = &self.rob[i];
        let vaddr = self.eff_addr(entry, &addr);
        let value = self.dep_reg_value(entry, src);
        let (lat, pa, f) = self.do_store(env, vaddr);
        let mut out = ExecOut::new(lat);
        out.fault = f;
        out.store = Some(StoreInfo {
            vaddr,
            pa,
            value,
            byte,
        });
        Some(out)
    }

    fn exec_push(&mut self, i: usize, _now: u64, env: &mut Env<'_>) -> Option<ExecOut> {
        let Inst::Push { src } = self.rob[i].inst else {
            unreachable!()
        };
        let entry = &self.rob[i];
        let rsp = self.dep_reg_value(entry, Reg::Rsp).wrapping_sub(8);
        let value = self.dep_reg_value(entry, src);
        let (lat, pa, f) = self.do_store(env, rsp);
        let mut out = ExecOut::new(lat);
        out.fault = f;
        out.results.push(Reg::Rsp, rsp);
        out.store = Some(StoreInfo {
            vaddr: rsp,
            pa,
            value,
            byte: false,
        });
        Some(out)
    }

    fn exec_pop(&mut self, i: usize, now: u64, env: &mut Env<'_>) -> Option<ExecOut> {
        let Inst::Pop { dst } = self.rob[i].inst else {
            unreachable!()
        };
        let rsp = self.dep_reg_value(&self.rob[i], Reg::Rsp);
        let mut out;
        match self.forwarding(i, rsp, false) {
            Some(Ok(v)) => {
                out = ExecOut::new(self.cfg.timing.store_forward_cycles);
                out.results.push(dst, v);
            }
            Some(Err(())) => return self.block_forwarding(i, now),
            None => {
                let lr = self.do_load(env, rsp, false);
                out = ExecOut::new(lr.latency);
                out.fault = lr.fault;
                out.results.push(dst, lr.value);
            }
        }
        out.results.push(Reg::Rsp, rsp.wrapping_add(8));
        Some(out)
    }

    fn exec_call(&mut self, i: usize, _now: u64, env: &mut Env<'_>) -> Option<ExecOut> {
        let Inst::Call { target } = self.rob[i].inst else {
            unreachable!()
        };
        let rsp = self.dep_reg_value(&self.rob[i], Reg::Rsp).wrapping_sub(8);
        let (lat, pa, f) = self.do_store(env, rsp);
        let mut out = ExecOut::new(lat);
        out.fault = f;
        out.results.push(Reg::Rsp, rsp);
        out.store = Some(StoreInfo {
            vaddr: rsp,
            pa,
            value: (self.rob[i].pc + 1) as u64,
            byte: false,
        });
        out.actual_next = Some(target);
        Some(out)
    }

    fn exec_ret(&mut self, i: usize, now: u64, env: &mut Env<'_>) -> Option<ExecOut> {
        let rsp = self.dep_reg_value(&self.rob[i], Reg::Rsp);
        let mut out;
        let ret_target;
        match self.forwarding(i, rsp, false) {
            Some(Ok(v)) => {
                out = ExecOut::new(self.cfg.timing.store_forward_cycles);
                ret_target = v;
            }
            Some(Err(())) => return self.block_forwarding(i, now),
            None => {
                let lr = self.do_load(env, rsp, false);
                out = ExecOut::new(lr.latency);
                out.fault = lr.fault;
                ret_target = lr.value;
            }
        }
        out.results.push(Reg::Rsp, rsp.wrapping_add(8));
        out.actual_next = Some(ret_target as usize);
        Some(out)
    }

    fn exec_jmp(&mut self, i: usize, _now: u64, _env: &mut Env<'_>) -> Option<ExecOut> {
        let Inst::Jmp { target } = self.rob[i].inst else {
            unreachable!()
        };
        let mut out = ExecOut::new(self.cfg.timing.alu_latency);
        out.actual_next = Some(target);
        Some(out)
    }

    fn exec_jmp_reg(&mut self, i: usize, _now: u64, _env: &mut Env<'_>) -> Option<ExecOut> {
        let Inst::JmpReg { reg } = self.rob[i].inst else {
            unreachable!()
        };
        let mut out = ExecOut::new(self.cfg.timing.alu_latency);
        out.actual_next = Some(self.dep_reg_value(&self.rob[i], reg) as usize);
        Some(out)
    }

    fn exec_jcc(&mut self, i: usize, _now: u64, _env: &mut Env<'_>) -> Option<ExecOut> {
        let Inst::Jcc { cond, target } = self.rob[i].inst else {
            unreachable!()
        };
        let entry = &self.rob[i];
        let f = self.dep_flags_value(entry);
        let taken = cond.eval(f);
        let mut out = ExecOut::new(self.cfg.timing.alu_latency);
        out.actual_next = Some(if taken { target } else { entry.pc + 1 });
        Some(out)
    }

    fn exec_clflush(&mut self, i: usize, _now: u64, env: &mut Env<'_>) -> Option<ExecOut> {
        let Inst::Clflush { addr } = self.rob[i].inst else {
            unreachable!()
        };
        let vaddr = self.eff_addr(&self.rob[i], &addr);
        if let Some(pa) = env.aspace.translate(vaddr) {
            env.mem.clflush(pa);
        }
        self.pmu.bump(Event::ClflushExecuted, 1);
        Some(ExecOut::new(2))
    }

    fn exec_prefetch(&mut self, i: usize, _now: u64, env: &mut Env<'_>) -> Option<ExecOut> {
        let Inst::Prefetch { addr } = self.rob[i].inst else {
            unreachable!()
        };
        let vaddr = self.eff_addr(&self.rob[i], &addr);
        let lat = self.do_prefetch(env, vaddr);
        Some(ExecOut::new(lat))
    }

    fn exec_fence(&mut self, _i: usize, _now: u64, _env: &mut Env<'_>) -> Option<ExecOut> {
        unreachable!("fences handled earlier")
    }

    fn exec_syscall(&mut self, _i: usize, _now: u64, env: &mut Env<'_>) -> Option<ExecOut> {
        let t = self.cfg.timing;
        for k in 0..self.syscall_pages.len() {
            let page = self.syscall_pages[k];
            if let Some(pte) = env.aspace.pte(page) {
                if !pte.reserved && pte.present {
                    self.dtlb.fill(page, pte);
                    self.itlb.fill(page, pte);
                    self.pmu.bump(Event::DtlbFills, 1);
                    self.sink.emit(EventKind::TlbFill {
                        kind: TlbKind::Data,
                        vaddr: page,
                    });
                }
            }
        }
        Some(ExecOut::new(t.syscall_cycles))
    }

    // ----- memory access paths ----------------------------------------------

    /// Translates `vaddr` for a demand access: TLB → page walk with the
    /// configured retry/fill/abort policies. Returns the latency, the
    /// leaf PTE if the walk succeeded, and the fault, if any.
    fn mem_translate(&mut self, env: &Env<'_>, vaddr: u64) -> (u64, Option<Pte>, Option<Fault>) {
        if let Some(e) = self.dtlb.lookup(vaddr) {
            self.sink.emit(EventKind::TlbLookup {
                kind: TlbKind::Data,
                vaddr,
                hit: true,
            });
            let pte = e.pte;
            let fault = (!pte.user).then_some(Fault {
                kind: FaultKind::Permission,
                vaddr,
            });
            return (1, Some(pte), fault);
        }
        self.sink.emit(EventKind::TlbLookup {
            kind: TlbKind::Data,
            vaddr,
            hit: false,
        });

        if self.cfg.vuln.early_fault_abort {
            // AMD model: accesses that will fault abort before the walk
            // completes — no forwarding, no TLB fill, flat cost.
            return match env.aspace.walk(vaddr).0 {
                WalkOutcome::Mapped(pte) if pte.user => {
                    let wr = self.walker.walk(env.aspace, vaddr);
                    self.pmu
                        .bump(Event::DtlbLoadMissesMissCausesAWalk, wr.walks as u64);
                    self.pmu.bump(Event::DtlbLoadMissesWalkActive, wr.cycles);
                    self.pmu.bump(Event::DtlbLoadMissesWalkCompleted, 1);
                    self.sink.emit(EventKind::PageWalk {
                        vaddr,
                        cycles: wr.cycles,
                        mapped: true,
                    });
                    self.dtlb.fill(vaddr, pte);
                    self.sink.emit(EventKind::TlbFill {
                        kind: TlbKind::Data,
                        vaddr,
                    });
                    self.pmu.bump(Event::DtlbFills, 1);
                    (wr.cycles, Some(pte), None)
                }
                outcome => {
                    let kind = match outcome {
                        WalkOutcome::Mapped(_) => FaultKind::Permission,
                        WalkOutcome::NotPresent { .. } => FaultKind::NotPresent,
                        WalkOutcome::ReservedBit => FaultKind::ReservedBit,
                    };
                    self.pmu.bump(Event::DtlbLoadMissesMissCausesAWalk, 1);
                    self.sink.emit(EventKind::PageWalk {
                        vaddr,
                        cycles: self.cfg.walk.abort_cost,
                        mapped: matches!(outcome, WalkOutcome::Mapped(_)),
                    });
                    (self.cfg.walk.abort_cost, None, Some(Fault { kind, vaddr }))
                }
            };
        }

        let wr = self.walker.walk(env.aspace, vaddr);
        self.pmu
            .bump(Event::DtlbLoadMissesMissCausesAWalk, wr.walks as u64);
        self.pmu.bump(Event::DtlbLoadMissesWalkActive, wr.cycles);
        self.sink.emit(EventKind::PageWalk {
            vaddr,
            cycles: wr.cycles,
            mapped: matches!(wr.outcome, WalkOutcome::Mapped(_)),
        });
        match wr.outcome {
            WalkOutcome::Mapped(pte) => {
                self.pmu.bump(Event::DtlbLoadMissesWalkCompleted, 1);
                // Intel behaviour: the completed walk installs a TLB entry
                // even when the access itself will fault (TET-KASLR root
                // cause, paper §4.5 / §6.3).
                if pte.user || self.cfg.vuln.tlb_fill_on_fault {
                    self.dtlb.fill(vaddr, pte);
                    self.sink.emit(EventKind::TlbFill {
                        kind: TlbKind::Data,
                        vaddr,
                    });
                    self.pmu.bump(Event::DtlbFills, 1);
                }
                let fault = (!pte.user).then_some(Fault {
                    kind: FaultKind::Permission,
                    vaddr,
                });
                (wr.cycles, Some(pte), fault)
            }
            WalkOutcome::NotPresent { .. } => (
                wr.cycles,
                None,
                Some(Fault {
                    kind: FaultKind::NotPresent,
                    vaddr,
                }),
            ),
            WalkOutcome::ReservedBit => (
                wr.cycles,
                None,
                Some(Fault {
                    kind: FaultKind::ReservedBit,
                    vaddr,
                }),
            ),
        }
    }

    fn do_load(&mut self, env: &mut Env<'_>, vaddr: u64, byte: bool) -> LoadResult {
        let (tlat, pte, fault) = self.mem_translate(env, vaddr);
        match (&fault, pte) {
            (None, Some(pte)) => {
                let pa = pte.frame * tet_mem::PAGE_SIZE + (vaddr % tet_mem::PAGE_SIZE);
                let da = env.mem.data_load(pa, env.phys);
                self.bump_hit_level(da.level);
                let value = if byte {
                    env.phys.read_u8(pa) as u64
                } else {
                    env.phys.read_u64(pa)
                };
                LoadResult {
                    latency: tlat + da.latency,
                    value,
                    fault: None,
                }
            }
            (Some(f), pte_opt) if f.kind == FaultKind::Permission => {
                // Meltdown path: data may be transiently forwarded — but
                // only when the line is already resident in the cache
                // hierarchy, as on real silicon (the fault microcode has
                // no time to wait for DRAM). An uncached target forwards
                // zero; the access still *initiates* a fill, so a later
                // retry succeeds once the kernel's data is resident.
                match (self.cfg.vuln.meltdown_forward, pte_opt) {
                    (ForwardPolicy::Data, Some(pte)) => {
                        let pa = pte.frame * tet_mem::PAGE_SIZE + (vaddr % tet_mem::PAGE_SIZE);
                        let cached = env.mem.probe_level(pa).is_some();
                        let da = env.mem.data_load(pa, env.phys);
                        if cached {
                            let value = if byte {
                                env.phys.read_u8(pa) as u64
                            } else {
                                env.phys.read_u64(pa)
                            };
                            LoadResult {
                                latency: tlat + da.latency,
                                value,
                                fault,
                            }
                        } else {
                            LoadResult {
                                latency: tlat + self.cfg.mem.l1d.latency,
                                value: 0,
                                fault,
                            }
                        }
                    }
                    _ => LoadResult {
                        latency: tlat + self.cfg.mem.l1d.latency,
                        value: 0,
                        fault,
                    },
                }
            }
            (Some(_), _) => {
                // NotPresent / ReservedBit: the Zombieload path — a
                // microcode-assisted load may forward stale LFB data.
                let value = if self.cfg.vuln.lfb_forward {
                    let off = (vaddr % tet_mem::LINE_SIZE) as usize;
                    if byte {
                        env.mem.lfb().stale_byte(off).unwrap_or(0) as u64
                    } else {
                        env.mem.lfb().stale_u64(off).unwrap_or(0)
                    }
                } else {
                    0
                };
                LoadResult {
                    latency: tlat + self.cfg.mem.l1d.latency,
                    value,
                    fault,
                }
            }
            (None, None) => unreachable!("no fault implies a PTE"),
        }
    }

    fn do_store(&mut self, env: &mut Env<'_>, vaddr: u64) -> (u64, Option<u64>, Option<Fault>) {
        let (tlat, pte, fault) = self.mem_translate(env, vaddr);
        match (&fault, pte) {
            (None, Some(pte)) => {
                let pa = pte.frame * tet_mem::PAGE_SIZE + (vaddr % tet_mem::PAGE_SIZE);
                // The write-allocate fill proceeds in the background; the
                // store itself completes into the store buffer without
                // waiting for it (so fences don't absorb DRAM latency).
                let _ = env.mem.data_store(pa, env.phys);
                (tlat + 1, Some(pa), None)
            }
            _ => (tlat + 1, None, fault),
        }
    }

    fn do_prefetch(&mut self, env: &mut Env<'_>, vaddr: u64) -> u64 {
        // Prefetches never fault and never retry failing walks: they are
        // dropped at the first irregularity. That walk-depth-only timing
        // is what FLARE's dummy mappings flatten (DESIGN.md §1).
        if let Some(e) = self.dtlb.lookup(vaddr) {
            self.sink.emit(EventKind::TlbLookup {
                kind: TlbKind::Data,
                vaddr,
                hit: true,
            });
            if e.pte.user {
                if let Some(pa) = env.aspace.translate(vaddr) {
                    let da = env.mem.data_load(pa, env.phys);
                    return 1 + da.latency;
                }
            }
            return 1;
        }
        self.sink.emit(EventKind::TlbLookup {
            kind: TlbKind::Data,
            vaddr,
            hit: false,
        });
        let (outcome, levels) = env.aspace.walk(vaddr);
        let walk_cost = levels as u64 * self.cfg.walk.level_cost;
        self.pmu.bump(Event::DtlbLoadMissesMissCausesAWalk, 1);
        self.pmu.bump(Event::DtlbLoadMissesWalkActive, walk_cost);
        self.sink.emit(EventKind::PageWalk {
            vaddr,
            cycles: walk_cost,
            mapped: matches!(outcome, WalkOutcome::Mapped(_)),
        });
        match outcome {
            WalkOutcome::Mapped(pte) if pte.user => {
                self.dtlb.fill(vaddr, pte);
                self.pmu.bump(Event::DtlbFills, 1);
                let pa = pte.frame * tet_mem::PAGE_SIZE + (vaddr % tet_mem::PAGE_SIZE);
                let da = env.mem.data_load(pa, env.phys);
                walk_cost + da.latency
            }
            _ => walk_cost,
        }
    }

    fn bump_hit_level(&mut self, level: HitLevel) {
        match level {
            HitLevel::L1 => self.pmu.bump(Event::MemLoadRetiredL1Hit, 1),
            HitLevel::L2 => {
                self.pmu.bump(Event::MemLoadRetiredL1Miss, 1);
                self.pmu.bump(Event::MemLoadRetiredL2Hit, 1);
            }
            HitLevel::Llc => {
                self.pmu.bump(Event::MemLoadRetiredL1Miss, 1);
                self.pmu.bump(Event::MemLoadRetiredL3Hit, 1);
            }
            HitLevel::Dram => {
                self.pmu.bump(Event::MemLoadRetiredL1Miss, 1);
                self.pmu.bump(Event::MemLoadRetiredL3Miss, 1);
            }
        }
    }

    // ----- rename / issue -----------------------------------------------------

    fn rename_cycle(&mut self, now: u64, template: &ProgramTemplate) -> usize {
        if now < self.pipeline_flush_until || now < self.external_stall_until {
            return 0;
        }
        if now < self.recovery_busy_until {
            self.pmu.bump(Event::IntMiscRecoveryCycles, 1);
            self.pmu.bump(Event::IntMiscRecoveryCyclesAny, 1);
            return 0;
        }
        let mut issued = 0usize;
        for _ in 0..self.cfg.issue_width {
            if self.idq.is_empty() {
                break;
            }
            let rs_occupancy = self.unstarted_count;
            if self.rob.len() >= self.cfg.rob_size || rs_occupancy >= self.cfg.rs_size {
                self.pmu.bump(Event::ResourceStallsAny, 1);
                if self.rob.len() >= self.cfg.rob_size {
                    self.pmu
                        .bump(Event::DeDisDispatchTokenStalls2RetireTokenStall, 1);
                }
                break;
            }
            let f = self.idq.pop_front().expect("checked non-empty");
            let meta = template.meta(f.pc).expect("fetched pc within program");

            // Build dependencies from the RAT using the pre-cracked
            // source list (no per-rename instruction re-matching).
            let mut deps = DepList::new();
            for r in meta.srcs {
                deps.push(Dep {
                    kind: DepKind::Reg(r),
                    producer: self.rat[r as usize],
                });
            }
            if meta.kind.reads_flags() {
                deps.push(Dep {
                    kind: DepKind::Flags,
                    producer: self.flags_rat,
                });
            }

            let txn_abort = self.txn_stack.last().copied();
            match f.inst {
                Inst::XBegin { abort_target } if self.cfg.vuln.has_tsx => {
                    self.txn_stack.push(abort_target);
                    self.txn_snapshot_cache = Arc::from(self.txn_stack.as_slice());
                }
                Inst::XEnd => {
                    self.txn_stack.pop();
                    self.txn_snapshot_cache = if self.txn_stack.is_empty() {
                        self.empty_snapshot.clone()
                    } else {
                        Arc::from(self.txn_stack.as_slice())
                    };
                }
                _ => {}
            }

            let id = self.next_uop_id;
            self.next_uop_id += 1;
            for r in meta.dests {
                self.rat[r as usize] = Some(id);
            }
            if meta.kind.writes_flags() {
                self.flags_rat = Some(id);
            }

            self.sink.emit_at(
                now,
                EventKind::UopRenamed {
                    id,
                    pc: f.pc as u64,
                    op: meta.mnemonic,
                },
            );
            self.rob.push_back(RobEntry {
                id,
                pc: f.pc,
                inst: f.inst,
                pred_next: f.pred_next,
                pred_taken: f.pred_taken,
                deps,
                issued_at: now,
                started: false,
                forward_at: None,
                done_at: None,
                results: ResultList::new(),
                flags_out: None,
                fault: None,
                actual_next: None,
                resolved: false,
                mispredicted: false,
                store: None,
                txn_abort,
                txn_snapshot: self.txn_snapshot_cache.clone(),
                kind: meta.kind,
                dests: meta.dests,
                op: meta.op,
                wake_at: 0,
                waiter_head: None,
                next_waiter: None,
            });
            self.unstarted_count += 1;
            if meta.kind.is_store_kind() {
                self.unstarted_store_count += 1;
            }
            self.pmu.bump(Event::UopsIssuedAny, 1);
            issued += 1;
        }
        issued
    }

    // ----- fetch ------------------------------------------------------------

    fn fetch_cycle(
        &mut self,
        now: u64,
        template: &ProgramTemplate,
        env: &mut Env<'_>,
    ) -> (usize, usize, bool) {
        if now < self.fetch_stall_until || !self.fetch_enabled {
            return (0, 0, true);
        }
        let mut dsb_uops = 0usize;
        let mut mite_uops = 0usize;
        let mut budget = self.cfg.fetch_width;

        while budget > 0 && self.idq.len() < self.cfg.idq_size {
            let pc = self.fetch_pc;
            let Some(meta) = template.meta(pc) else {
                // Ran past the end: stop fetching until redirected.
                self.fetch_enabled = false;
                break;
            };
            let inst = meta.inst;
            let vaddr = meta.vaddr;

            // ITLB check when crossing into a new code page.
            let page = meta.page;
            if self.last_fetch_page != Some(page) {
                self.last_fetch_page = Some(page);
                if self.itlb.lookup(vaddr).is_none() {
                    self.sink.emit_at(
                        now,
                        EventKind::TlbLookup {
                            kind: TlbKind::Inst,
                            vaddr,
                            hit: false,
                        },
                    );
                    let wr = self.walker.walk(env.aspace, vaddr);
                    self.pmu
                        .bump(Event::ItlbMissesMissCausesAWalk, wr.walks as u64);
                    self.pmu.bump(Event::ItlbMissesWalkActive, wr.cycles);
                    let mapped = matches!(wr.outcome, WalkOutcome::Mapped(_));
                    self.sink.emit_at(
                        now,
                        EventKind::PageWalk {
                            vaddr,
                            cycles: wr.cycles,
                            mapped,
                        },
                    );
                    if let WalkOutcome::Mapped(pte) = wr.outcome {
                        self.itlb.fill(vaddr, pte);
                        self.sink.emit_at(
                            now,
                            EventKind::TlbFill {
                                kind: TlbKind::Inst,
                                vaddr,
                            },
                        );
                    }
                    self.fetch_stall_until = now + wr.cycles;
                    break;
                } else {
                    self.pmu.bump(Event::BpL1TlbFetchHit, 1);
                    self.sink.emit_at(
                        now,
                        EventKind::TlbLookup {
                            kind: TlbKind::Inst,
                            vaddr,
                            hit: true,
                        },
                    );
                }
            }

            let from_dsb = self.dsb.lookup(pc);
            if self.last_fetch_from_dsb && !from_dsb {
                self.pmu.bump(Event::Dsb2MiteSwitches, 1);
            }
            self.last_fetch_from_dsb = from_dsb;
            if !from_dsb {
                // Legacy MITE decode: timed I-cache fetch plus decode
                // penalty; ends this cycle's fetch group.
                self.pmu.bump(Event::IcFw32, 1);
                if let Some(pa) = env.aspace.translate(vaddr) {
                    let da = env.mem.inst_fetch(pa, env.phys);
                    if da.level != HitLevel::L1 {
                        let extra = da.latency - self.cfg.mem.l1i.latency;
                        self.pmu.bump(Event::Icache16bIfdataStall, extra);
                        self.fetch_stall_until = now + extra;
                    }
                }
                self.fetch_stall_until = self
                    .fetch_stall_until
                    .max(now + self.cfg.timing.mite_penalty);
                self.dsb.insert(pc);
            }

            // Predict next pc.
            let (pred_next, pred_taken) = match inst {
                Inst::Jcc { target, .. } => {
                    let p = self.bpu.predict_cond(pc, pc + 1, target);
                    if p.from_btb {
                        self.pmu.bump(Event::BtbHits, 1);
                    }
                    (p.next_pc, p.taken)
                }
                Inst::Jmp { target } => (target, true),
                Inst::JmpReg { .. } => {
                    let p = self.bpu.predict_indirect(pc, pc + 1);
                    (p.next_pc, p.taken)
                }
                Inst::Call { target } => {
                    let p = self.bpu.predict_call(target, pc + 1);
                    (p.next_pc, true)
                }
                Inst::Ret => {
                    let p = self.bpu.predict_ret(pc + 1);
                    (p.next_pc, p.taken)
                }
                _ => (pc + 1, false),
            };
            if meta.kind.is_branch() {
                self.sink.emit_at(
                    now,
                    EventKind::BranchPredicted {
                        pc: pc as u64,
                        taken: pred_taken,
                    },
                );
            }

            self.idq.push_back(FetchedUop {
                pc,
                inst,
                pred_next,
                pred_taken,
                from_dsb,
            });
            if from_dsb {
                dsb_uops += 1;
                self.pmu.bump(Event::IdqDsbUops, 1);
            } else {
                mite_uops += 1;
                self.pmu.bump(Event::IdqMsMiteUops, 1);
                self.pmu.bump(Event::IdqMsUops, 1);
            }

            self.fetch_pc = pred_next;
            budget -= 1;

            if meta.kind.is_halt() {
                // Stop fetching past a halt on the predicted path.
                self.fetch_enabled = false;
                break;
            }
            if !from_dsb {
                break; // MITE group ends the cycle.
            }
        }

        if dsb_uops > 0 {
            self.pmu.bump(Event::IdqDsbCyclesAny, 1);
            if dsb_uops == self.cfg.fetch_width {
                self.pmu.bump(Event::IdqDsbCyclesOk, 1);
            }
            if mite_uops > 0 {
                self.pmu.bump(Event::IdqMsDsbCycles, 1);
            }
        }
        if mite_uops > 0 {
            self.pmu.bump(Event::IdqAllMiteCyclesAnyUops, 1);
        }
        (dsb_uops, mite_uops, false)
    }
}
