//! CPU configuration and the per-model presets of Table 2.

use tet_mem::{MemoryConfig, TlbConfig, WalkConfig};

use crate::bpu::BpuConfig;

/// What value a Meltdown-style permission-faulting load forwards to its
/// transient dependents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardPolicy {
    /// Forward the real data (Meltdown-vulnerable cores: Skylake,
    /// Kaby Lake).
    Data,
    /// Forward zero (silicon-fixed cores: Comet Lake, Raptor Lake,
    /// Zen 3).
    Zero,
}

/// The per-model vulnerability profile — the knobs that decide which
/// attacks succeed in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VulnProfile {
    /// Data forwarded by permission-faulting loads (Meltdown).
    pub meltdown_forward: ForwardPolicy,
    /// Whether microcode-assisted faulting loads forward stale line-fill
    /// buffer data (Zombieload / MDS).
    pub lfb_forward: bool,
    /// Whether a successful page walk installs a TLB entry even when the
    /// access itself faults on permissions — the Intel behaviour behind
    /// TET-KASLR (paper §4.5).
    pub tlb_fill_on_fault: bool,
    /// Whether faulting user accesses abort early, before the walk
    /// completes and without forwarding — the modelled AMD behaviour that
    /// removes the TET-KASLR differential on Zen 3.
    pub early_fault_abort: bool,
    /// Whether TSX (`xbegin`/`xend`) is available for fault suppression.
    pub has_tsx: bool,
}

/// Pipeline timing constants.
///
/// Three of these implement the calibrated mechanisms of DESIGN.md §1:
/// `recovery_cycles` (mechanism 1, exception-entry serialization),
/// `clear_cost_per_uop` (mechanism 2, occupancy-proportional squash), and
/// the walker's retry policy in [`CpuConfig::walk`] (mechanism 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingConfig {
    /// Frontend refill delay after a mispredict resteer.
    pub resteer_cycles: u64,
    /// Allocation-stall window after a branch misprediction
    /// (`INT_MISC.RECOVERY_CYCLES`); fault delivery serialises behind it.
    /// It must exceed `fault_confirm_cycles` for the in-window Jcc of the
    /// TET gadget to delay exception entry (the TET-MD signal).
    pub recovery_cycles: u64,
    /// Delay between a faulting load producing (forwarding) its value and
    /// becoming retirement-eligible — the transient window length.
    pub fault_confirm_cycles: u64,
    /// Fixed cost of entering the exception/signal microcode.
    pub exception_entry_cycles: u64,
    /// Per-in-flight-µop cost added to exception and TSX-abort squashes.
    pub fault_squash_cost_per_uop: u64,
    /// Fixed cost of a machine clear (microcode-assist path).
    pub machine_clear_base: u64,
    /// Per-in-flight-µop cost of a machine clear — the mechanism that
    /// *shortens* ToTE when an inner Jcc has already emptied the window
    /// (TET-ZBL).
    pub clear_cost_per_uop: u64,
    /// Per-flushed-µop cost of a branch-resolution resteer (smaller than
    /// the machine-clear coefficient; carries the TET-RSB sign).
    pub resteer_cost_per_uop: u64,
    /// Fixed cost of a TSX abort.
    pub txn_abort_cycles: u64,
    /// Store-to-load forwarding latency.
    pub store_forward_cycles: u64,
    /// ALU operation latency.
    pub alu_latency: u64,
    /// Extra decode penalty per instruction on the MITE (legacy) path.
    pub mite_penalty: u64,
    /// Cost of a minimal `syscall` round trip through the trampoline.
    pub syscall_cycles: u64,
    /// OS timer-interrupt period in cycles (`0` disables interrupts).
    /// Interrupts are the dominant noise source the paper's batched
    /// argmax analysis has to average away; they fire on the *global*
    /// cycle counter, so their phase varies across attack iterations.
    pub interrupt_period: u64,
    /// Pipeline bubble per timer interrupt.
    pub interrupt_cost: u64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            resteer_cycles: 12,
            recovery_cycles: 60,
            fault_confirm_cycles: 40,
            exception_entry_cycles: 60,
            fault_squash_cost_per_uop: 2,
            machine_clear_base: 50,
            clear_cost_per_uop: 3,
            resteer_cost_per_uop: 1,
            txn_abort_cycles: 40,
            store_forward_cycles: 5,
            alu_latency: 1,
            mite_penalty: 2,
            syscall_cycles: 120,
            interrupt_period: 0,
            interrupt_cost: 400,
        }
    }
}

/// Full configuration of one simulated CPU model.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuConfig {
    /// Marketing name, e.g. `"Intel Core i7-7700"`.
    pub name: &'static str,
    /// Microarchitecture name, e.g. `"Kaby Lake"`.
    pub uarch: &'static str,
    /// Nominal frequency in GHz (converts cycles to seconds for the
    /// throughput numbers of §4.1).
    pub freq_ghz: f64,
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// µops renamed/issued per cycle.
    pub issue_width: usize,
    /// µops retired per cycle.
    pub retire_width: usize,
    /// Reorder buffer capacity.
    pub rob_size: usize,
    /// Reservation station capacity.
    pub rs_size: usize,
    /// IDQ capacity.
    pub idq_size: usize,
    /// DSB (µop cache) capacity in instructions.
    pub dsb_capacity: usize,
    /// Number of (generic) execution ports.
    pub ports: usize,
    /// Branch predictor geometry.
    pub bpu: BpuConfig,
    /// Data TLB geometry.
    pub dtlb: TlbConfig,
    /// Instruction TLB geometry.
    pub itlb: TlbConfig,
    /// Page walker policy (mechanism 3 of DESIGN.md).
    pub walk: WalkConfig,
    /// Cache hierarchy geometry.
    pub mem: MemoryConfig,
    /// Pipeline timing constants.
    pub timing: TimingConfig,
    /// Vulnerability profile (decides Table 2's ✓/✗ pattern).
    pub vuln: VulnProfile,
}

impl CpuConfig {
    fn intel_base() -> CpuConfig {
        CpuConfig {
            name: "generic",
            uarch: "generic",
            freq_ghz: 4.0,
            fetch_width: 4,
            issue_width: 4,
            retire_width: 4,
            rob_size: 224,
            rs_size: 97,
            idq_size: 64,
            dsb_capacity: 1536,
            ports: 8,
            bpu: BpuConfig::default(),
            dtlb: TlbConfig::new(16, 4),
            itlb: TlbConfig::new(16, 8),
            walk: WalkConfig::intel(),
            mem: MemoryConfig::skylake_class(),
            timing: TimingConfig::default(),
            vuln: VulnProfile {
                meltdown_forward: ForwardPolicy::Data,
                lfb_forward: true,
                tlb_fill_on_fault: true,
                early_fault_abort: false,
                has_tsx: true,
            },
        }
    }

    /// Intel Core i7-6700 (Skylake): Meltdown- and MDS-vulnerable, TSX.
    pub fn skylake_i7_6700() -> CpuConfig {
        CpuConfig {
            name: "Intel Core i7-6700",
            uarch: "Skylake",
            freq_ghz: 3.4,
            ..Self::intel_base()
        }
    }

    /// Intel Core i7-7700 (Kaby Lake): Meltdown- and MDS-vulnerable, TSX.
    pub fn kaby_lake_i7_7700() -> CpuConfig {
        CpuConfig {
            name: "Intel Core i7-7700",
            uarch: "Kaby Lake",
            freq_ghz: 3.6,
            ..Self::intel_base()
        }
    }

    /// Intel Core i9-10980XE (Comet Lake / Cascade Lake-X): silicon fixes
    /// for Meltdown and MDS, but the TLB still fills on faulting walks —
    /// TET-KASLR works (Table 2).
    pub fn comet_lake_i9_10980xe() -> CpuConfig {
        CpuConfig {
            name: "Intel Core i9-10980XE",
            uarch: "Comet Lake",
            freq_ghz: 3.0,
            rob_size: 352,
            rs_size: 160,
            vuln: VulnProfile {
                meltdown_forward: ForwardPolicy::Zero,
                lfb_forward: false,
                tlb_fill_on_fault: true,
                early_fault_abort: false,
                has_tsx: true,
            },
            ..Self::intel_base()
        }
    }

    /// Intel Core i9-13900K (Raptor Lake): Meltdown/MDS fixed, TSX
    /// removed; Spectre-RSB still works (Table 2).
    pub fn raptor_lake_i9_13900k() -> CpuConfig {
        CpuConfig {
            name: "Intel Core i9-13900K",
            uarch: "Raptor Lake",
            freq_ghz: 5.8,
            fetch_width: 6,
            issue_width: 6,
            retire_width: 8,
            rob_size: 512,
            rs_size: 200,
            vuln: VulnProfile {
                meltdown_forward: ForwardPolicy::Zero,
                lfb_forward: false,
                tlb_fill_on_fault: true,
                early_fault_abort: false,
                has_tsx: false,
            },
            ..Self::intel_base()
        }
    }

    /// AMD Ryzen 5 5600G (Zen 3): no Meltdown/MDS forwarding, faulting
    /// accesses abort early without completing the walk — TET-CC works,
    /// every data-leak variant and TET-KASLR fail (Table 2).
    pub fn zen3_ryzen5_5600g() -> CpuConfig {
        CpuConfig {
            name: "AMD Ryzen 5 5600G",
            uarch: "Zen 3",
            freq_ghz: 3.9,
            fetch_width: 4,
            issue_width: 6,
            retire_width: 8,
            rob_size: 256,
            rs_size: 96,
            walk: WalkConfig::amd(),
            vuln: VulnProfile {
                meltdown_forward: ForwardPolicy::Zero,
                lfb_forward: false,
                tlb_fill_on_fault: false,
                early_fault_abort: true,
                has_tsx: false,
            },
            ..Self::intel_base()
        }
    }

    /// AMD Ryzen 9 5900 (Zen 3) — the paper's Table 2 row covers the
    /// 5600G and the 5900 together; same vulnerability profile, bigger
    /// core.
    pub fn zen3_ryzen9_5900() -> CpuConfig {
        CpuConfig {
            name: "AMD Ryzen 9 5900",
            freq_ghz: 4.7,
            ..Self::zen3_ryzen5_5600g()
        }
    }

    /// All five presets evaluated in Table 2 of the paper (the Zen 3 row
    /// is represented by the 5600G; `zen3_ryzen9_5900` shares its
    /// profile).
    pub fn table2_presets() -> Vec<CpuConfig> {
        vec![
            Self::skylake_i7_6700(),
            Self::kaby_lake_i7_7700(),
            Self::comet_lake_i9_10980xe(),
            Self::raptor_lake_i9_13900k(),
            Self::zen3_ryzen5_5600g(),
        ]
    }

    /// Looks a preset up by marketing name (`"Intel Core i7-7700"`) or
    /// by slug (`"intel-core-i7-7700"` — lowercase, runs of non-
    /// alphanumerics collapsed to `-`). Covers every named preset,
    /// including `zen3_ryzen9_5900` (not a Table 2 row of its own).
    pub fn by_name(name: &str) -> Option<CpuConfig> {
        let mut all = Self::table2_presets();
        all.push(Self::zen3_ryzen9_5900());
        let want = Self::slug_of(name);
        all.into_iter().find(|p| Self::slug_of(p.name) == want)
    }

    /// The canonical slug of a preset name (see [`CpuConfig::by_name`]).
    pub fn slug_of(name: &str) -> String {
        let mut out = String::with_capacity(name.len());
        for c in name.chars() {
            if c.is_ascii_alphanumeric() {
                out.push(c.to_ascii_lowercase());
            } else if !out.ends_with('-') {
                out.push('-');
            }
        }
        out.trim_matches('-').to_string()
    }

    /// Converts a cycle count to seconds at this model's frequency.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_accepts_names_and_slugs() {
        for p in CpuConfig::table2_presets() {
            assert_eq!(CpuConfig::by_name(p.name).unwrap().name, p.name);
            let slug = CpuConfig::slug_of(p.name);
            assert_eq!(CpuConfig::by_name(&slug).unwrap().name, p.name);
        }
        assert_eq!(
            CpuConfig::slug_of("Intel Core i7-7700"),
            "intel-core-i7-7700"
        );
        assert!(CpuConfig::by_name("Pentium III").is_none());
    }

    #[test]
    fn presets_have_distinct_names() {
        let presets = CpuConfig::table2_presets();
        let names: std::collections::HashSet<_> = presets.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), presets.len());
    }

    #[test]
    fn vulnerability_pattern_matches_table2() {
        let p = CpuConfig::table2_presets();
        // Meltdown data forwarding only on Skylake/Kaby Lake.
        assert_eq!(p[0].vuln.meltdown_forward, ForwardPolicy::Data);
        assert_eq!(p[1].vuln.meltdown_forward, ForwardPolicy::Data);
        assert_eq!(p[2].vuln.meltdown_forward, ForwardPolicy::Zero);
        assert_eq!(p[3].vuln.meltdown_forward, ForwardPolicy::Zero);
        assert_eq!(p[4].vuln.meltdown_forward, ForwardPolicy::Zero);
        // LFB forwarding mirrors Meltdown here.
        assert!(p[0].vuln.lfb_forward && p[1].vuln.lfb_forward);
        assert!(!p[2].vuln.lfb_forward && !p[3].vuln.lfb_forward && !p[4].vuln.lfb_forward);
        // TLB-fill-on-fault on all Intel models, not on Zen 3.
        assert!(p[..4].iter().all(|c| c.vuln.tlb_fill_on_fault));
        assert!(!p[4].vuln.tlb_fill_on_fault);
        assert!(p[4].vuln.early_fault_abort);
    }

    #[test]
    fn cycles_to_seconds_uses_frequency() {
        let c = CpuConfig::kaby_lake_i7_7700();
        assert!((c.cycles_to_seconds(3_600_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn both_zen3_parts_share_the_vulnerability_profile() {
        let a = CpuConfig::zen3_ryzen5_5600g();
        let b = CpuConfig::zen3_ryzen9_5900();
        assert_eq!(a.vuln, b.vuln);
        assert_eq!(a.walk, b.walk);
        assert_ne!(a.name, b.name);
    }

    #[test]
    fn amd_uses_early_abort_walker() {
        let c = CpuConfig::zen3_ryzen5_5600g();
        assert!(c.walk.abort_early_on_fail);
        let i = CpuConfig::skylake_i7_6700();
        assert!(!i.walk.abort_early_on_fail);
        assert_eq!(i.walk.fail_retries, 1);
    }
}
