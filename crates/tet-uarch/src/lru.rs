//! An O(1) exact-LRU index over small integer keys.
//!
//! The DSB ([`crate::frontend::Dsb`]) and the BTB ([`crate::Bpu`]) are
//! fully-associative MRU-first lists; the original implementations kept a
//! `VecDeque` and paid an O(n) position scan per fetch-time lookup. This
//! replaces the scan with a direct-mapped slot table (keys are small
//! instruction indices) threaded onto an intrusive doubly-linked list, so
//! lookup/insert/evict are all O(1) **while preserving the exact
//! recency order** of the list implementation: a hit moves the entry to
//! the front, an insert of a present key re-fronts it, and a full insert
//! evicts the back. Replacement decisions — and therefore every
//! predicted target and every DSB-vs-MITE fetch — are identical to the
//! linear version; the equivalence property tests in `frontend.rs` and
//! `bpu.rs` drive both representations with the same traces.

/// Sentinel for "no slot" in the intrusive list links.
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct LruSlot<V> {
    key: usize,
    val: V,
    prev: u32,
    next: u32,
}

/// An exact-LRU map from small `usize` keys to values, with O(1)
/// move-to-front lookup, deduplicating insert and back eviction.
#[derive(Debug, Clone)]
pub(crate) struct LruIndex<V> {
    /// Slot arena; indices are stable for a slot's lifetime.
    slots: Vec<LruSlot<V>>,
    /// Direct map: `key -> slot + 1` (0 = absent). Grows to the largest
    /// key seen; keys are instruction indices, so this stays small.
    index: Vec<u32>,
    /// Recycled arena slots.
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
    capacity: usize,
}

impl<V: Copy> LruIndex<V> {
    /// Creates an empty index holding at most `capacity` entries.
    pub(crate) fn new(capacity: usize) -> Self {
        LruIndex {
            slots: Vec::with_capacity(capacity),
            index: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
            capacity,
        }
    }

    /// Live entry count.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn slot_of(&self, key: usize) -> Option<u32> {
        match self.index.get(key) {
            Some(&s) if s != 0 => Some(s - 1),
            _ => None,
        }
    }

    #[inline]
    fn unlink(&mut self, s: u32) {
        let (prev, next) = {
            let slot = &self.slots[s as usize];
            (slot.prev, slot.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
    }

    #[inline]
    fn link_front(&mut self, s: u32) {
        self.slots[s as usize].prev = NIL;
        self.slots[s as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = s;
        }
        self.head = s;
        if self.tail == NIL {
            self.tail = s;
        }
    }

    /// Looks `key` up; on a hit moves it to the front (MRU) and returns
    /// its value.
    pub(crate) fn get_refresh(&mut self, key: usize) -> Option<V> {
        let s = self.slot_of(key)?;
        if self.head != s {
            self.unlink(s);
            self.link_front(s);
        }
        Some(self.slots[s as usize].val)
    }

    /// Presence check without perturbing recency.
    pub(crate) fn probe(&self, key: usize) -> bool {
        self.slot_of(key).is_some()
    }

    /// Inserts `key` at the front. A present key is re-fronted with the
    /// new value; at capacity the back (LRU) entry is evicted first —
    /// exactly the dedup-then-evict order of the `VecDeque` versions.
    pub(crate) fn insert(&mut self, key: usize, val: V) {
        if let Some(s) = self.slot_of(key) {
            self.slots[s as usize].val = val;
            if self.head != s {
                self.unlink(s);
                self.link_front(s);
            }
            return;
        }
        if self.len == self.capacity {
            let back = self.tail;
            debug_assert_ne!(back, NIL, "non-zero capacity");
            self.unlink(back);
            let old_key = self.slots[back as usize].key;
            self.index[old_key] = 0;
            self.free.push(back);
            self.len -= 1;
        }
        let s = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = LruSlot {
                    key,
                    val,
                    prev: NIL,
                    next: NIL,
                };
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(LruSlot {
                    key,
                    val,
                    prev: NIL,
                    next: NIL,
                });
                s
            }
        };
        if key >= self.index.len() {
            self.index.resize(key + 1, 0);
        }
        self.index[key] = s + 1;
        self.link_front(s);
        self.len += 1;
    }

    /// Entries front (MRU) to back (LRU) — the same iteration order the
    /// `VecDeque` representations exposed.
    pub(crate) fn iter(&self) -> LruIter<'_, V> {
        LruIter {
            lru: self,
            at: self.head,
        }
    }

    /// Overwrites this index with the state of `src`, reusing the slot
    /// arena and direct-map allocations (snapshot restore).
    pub(crate) fn restore_from(&mut self, src: &LruIndex<V>) {
        let LruIndex {
            slots,
            index,
            free,
            head,
            tail,
            len,
            capacity,
        } = src;
        self.slots.clone_from(slots);
        self.index.clear();
        self.index.extend_from_slice(index);
        self.free.clear();
        self.free.extend_from_slice(free);
        self.head = *head;
        self.tail = *tail;
        self.len = *len;
        self.capacity = *capacity;
    }
}

/// Front-to-back iterator over an [`LruIndex`].
pub(crate) struct LruIter<'a, V> {
    lru: &'a LruIndex<V>,
    at: u32,
}

impl<V: Copy> Iterator for LruIter<'_, V> {
    type Item = (usize, V);

    fn next(&mut self) -> Option<(usize, V)> {
        if self.at == NIL {
            return None;
        }
        let slot = &self.lru.slots[self.at as usize];
        self.at = slot.next;
        Some((slot.key, slot.val))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// The original linear representation, kept as the test oracle.
    struct RefLru {
        list: VecDeque<(usize, u64)>,
        capacity: usize,
    }

    impl RefLru {
        fn get_refresh(&mut self, key: usize) -> Option<u64> {
            let i = self.list.iter().position(|&(k, _)| k == key)?;
            let e = self.list.remove(i).unwrap();
            self.list.push_front(e);
            Some(e.1)
        }

        fn insert(&mut self, key: usize, val: u64) {
            if let Some(i) = self.list.iter().position(|&(k, _)| k == key) {
                self.list.remove(i);
            } else if self.list.len() == self.capacity {
                self.list.pop_back();
            }
            self.list.push_front((key, val));
        }
    }

    #[test]
    fn matches_linear_reference_on_random_traces() {
        // xorshift-driven op mix over a small key space so capacity
        // eviction and re-fronting both trigger constantly.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for capacity in [1usize, 2, 7, 32] {
            let mut lru = LruIndex::new(capacity);
            let mut reference = RefLru {
                list: VecDeque::new(),
                capacity,
            };
            for step in 0..20_000 {
                let r = rng();
                let key = (r >> 8) as usize % 48;
                match r % 3 {
                    0 => assert_eq!(
                        lru.get_refresh(key),
                        reference.get_refresh(key),
                        "step {step} cap {capacity}"
                    ),
                    1 => {
                        let val = r >> 32;
                        lru.insert(key, val);
                        reference.insert(key, val);
                    }
                    _ => assert_eq!(
                        lru.probe(key),
                        reference.list.iter().any(|&(k, _)| k == key)
                    ),
                }
                assert_eq!(lru.len(), reference.list.len());
            }
            let got: Vec<(usize, u64)> = lru.iter().collect();
            let want: Vec<(usize, u64)> = reference.list.iter().copied().collect();
            assert_eq!(got, want, "final order, cap {capacity}");
        }
    }

    #[test]
    fn capacity_one_always_holds_last_insert() {
        let mut lru = LruIndex::new(1);
        lru.insert(3, 30u64);
        lru.insert(4, 40);
        assert!(!lru.probe(3));
        assert_eq!(lru.get_refresh(4), Some(40));
        assert_eq!(lru.len(), 1);
    }
}
