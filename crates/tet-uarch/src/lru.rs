//! An O(1) exact-LRU index over small integer keys.
//!
//! The DSB ([`crate::frontend::Dsb`]) and the BTB ([`crate::Bpu`]) are
//! fully-associative MRU-first lists; the original implementations kept a
//! `VecDeque` and paid an O(n) position scan per fetch-time lookup. This
//! replaces the scan with a direct-mapped slot table (keys are small
//! instruction indices) threaded onto an intrusive doubly-linked list, so
//! lookup/insert/evict are all O(1) **while preserving the exact
//! recency order** of the list implementation: a hit moves the entry to
//! the front, an insert of a present key re-fronts it, and a full insert
//! evicts the back. Replacement decisions — and therefore every
//! predicted target and every DSB-vs-MITE fetch — are identical to the
//! linear version; the equivalence property tests in `frontend.rs` and
//! `bpu.rs` drive both representations with the same traces.
//!
//! For snapshot forks the index carries the same journal/epoch layer as
//! the caches (DESIGN.md §16): every slot or direct-map write journals
//! its position once per epoch, so [`LruIndex::restore_delta`] repairs
//! O(entries touched) instead of re-cloning the arena.

use std::sync::Arc;

/// Sentinel for "no slot" in the intrusive list links.
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct LruSlot<V> {
    key: usize,
    val: V,
    prev: u32,
    next: u32,
}

/// An exact-LRU map from small `usize` keys to values, with O(1)
/// move-to-front lookup, deduplicating insert and back eviction.
#[derive(Debug, Clone)]
pub(crate) struct LruIndex<V> {
    /// Slot arena; indices are stable for a slot's lifetime.
    slots: Vec<LruSlot<V>>,
    /// Direct map: `key -> slot + 1` (0 = absent). Grows to the largest
    /// key seen; keys are instruction indices, so this stays small.
    index: Vec<u32>,
    /// Recycled arena slots.
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
    capacity: usize,
    /// Seal identity shared with clones (delta restore trust anchor).
    seal: Option<Arc<()>>,
    /// Journal epoch: 0 = journaling off (never sealed).
    epoch: u32,
    /// Per-arena-slot journal stamps, parallel to `slots`.
    jslot: Vec<u32>,
    /// Per-key journal stamps, parallel to `index`.
    jkey: Vec<u32>,
    /// Arena slots written since the last seal/restore.
    journal_slots: Vec<u32>,
    /// Direct-map keys written since the last seal/restore.
    journal_keys: Vec<u32>,
}

impl<V: Copy> LruIndex<V> {
    /// Creates an empty index holding at most `capacity` entries.
    pub(crate) fn new(capacity: usize) -> Self {
        LruIndex {
            slots: Vec::with_capacity(capacity),
            index: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
            capacity,
            seal: None,
            epoch: 0,
            jslot: Vec::with_capacity(capacity),
            jkey: Vec::new(),
            journal_slots: Vec::new(),
            journal_keys: Vec::new(),
        }
    }

    /// Records arena slot `s` in the journal (once per epoch).
    #[inline]
    fn touch_slot(&mut self, s: u32) {
        if self.epoch != 0 && self.jslot[s as usize] != self.epoch {
            self.jslot[s as usize] = self.epoch;
            self.journal_slots.push(s);
        }
    }

    /// Records direct-map key `k` in the journal (once per epoch).
    #[inline]
    fn touch_key(&mut self, k: usize) {
        if self.epoch != 0 && self.jkey[k] != self.epoch {
            self.jkey[k] = self.epoch;
            self.journal_keys.push(k as u32);
        }
    }

    /// Starts a new journal epoch (wrap-safe).
    fn bump_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.jslot.fill(0);
            self.jkey.fill(0);
            self.epoch = 1;
        }
    }

    /// Live entry count.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn slot_of(&self, key: usize) -> Option<u32> {
        match self.index.get(key) {
            Some(&s) if s != 0 => Some(s - 1),
            _ => None,
        }
    }

    #[inline]
    fn unlink(&mut self, s: u32) {
        let (prev, next) = {
            let slot = &self.slots[s as usize];
            (slot.prev, slot.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.touch_slot(prev);
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.touch_slot(next);
            self.slots[next as usize].prev = prev;
        }
    }

    #[inline]
    fn link_front(&mut self, s: u32) {
        self.touch_slot(s);
        self.slots[s as usize].prev = NIL;
        self.slots[s as usize].next = self.head;
        if self.head != NIL {
            self.touch_slot(self.head);
            self.slots[self.head as usize].prev = s;
        }
        self.head = s;
        if self.tail == NIL {
            self.tail = s;
        }
    }

    /// Looks `key` up; on a hit moves it to the front (MRU) and returns
    /// its value.
    pub(crate) fn get_refresh(&mut self, key: usize) -> Option<V> {
        let s = self.slot_of(key)?;
        if self.head != s {
            self.unlink(s);
            self.link_front(s);
        }
        Some(self.slots[s as usize].val)
    }

    /// Presence check without perturbing recency.
    pub(crate) fn probe(&self, key: usize) -> bool {
        self.slot_of(key).is_some()
    }

    /// Inserts `key` at the front. A present key is re-fronted with the
    /// new value; at capacity the back (LRU) entry is evicted first —
    /// exactly the dedup-then-evict order of the `VecDeque` versions.
    pub(crate) fn insert(&mut self, key: usize, val: V) {
        if let Some(s) = self.slot_of(key) {
            self.touch_slot(s);
            self.slots[s as usize].val = val;
            if self.head != s {
                self.unlink(s);
                self.link_front(s);
            }
            return;
        }
        if self.len == self.capacity {
            let back = self.tail;
            debug_assert_ne!(back, NIL, "non-zero capacity");
            self.unlink(back);
            let old_key = self.slots[back as usize].key;
            self.touch_key(old_key);
            self.index[old_key] = 0;
            self.free.push(back);
            self.len -= 1;
        }
        let s = match self.free.pop() {
            Some(s) => {
                self.touch_slot(s);
                self.slots[s as usize] = LruSlot {
                    key,
                    val,
                    prev: NIL,
                    next: NIL,
                };
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(LruSlot {
                    key,
                    val,
                    prev: NIL,
                    next: NIL,
                });
                self.jslot.push(0);
                self.touch_slot(s);
                s
            }
        };
        if key >= self.index.len() {
            self.index.resize(key + 1, 0);
            self.jkey.resize(key + 1, 0);
        }
        self.touch_key(key);
        self.index[key] = s + 1;
        self.link_front(s);
        self.len += 1;
    }

    /// Entries front (MRU) to back (LRU) — the same iteration order the
    /// `VecDeque` representations exposed.
    pub(crate) fn iter(&self) -> LruIter<'_, V> {
        LruIter {
            lru: self,
            at: self.head,
        }
    }

    /// Marks the current state as a snapshot point: clones share this
    /// seal and later writes journal themselves (DESIGN.md §16).
    pub(crate) fn seal(&mut self) {
        self.seal = Some(Arc::new(()));
        self.journal_slots.clear();
        self.journal_keys.clear();
        self.bump_epoch();
    }

    /// Journal-driven rollback to the sealed state shared with `src`.
    /// The arena and direct map only grow within an epoch, so restore
    /// truncates them back to the source's lengths and repairs the
    /// journaled positions below that boundary. Returns `false` (self
    /// untouched) when the two sides do not share a seal.
    pub(crate) fn restore_delta(&mut self, src: &LruIndex<V>) -> bool {
        let shared = match (&self.seal, &src.seal) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        if !shared {
            return false;
        }
        debug_assert!(
            src.journal_slots.is_empty() && src.journal_keys.is_empty(),
            "restore source must be a sealed, unmutated snapshot"
        );
        debug_assert!(self.slots.len() >= src.slots.len(), "arena never shrinks");
        self.slots.truncate(src.slots.len());
        self.jslot.truncate(src.slots.len());
        for i in 0..self.journal_slots.len() {
            let s = self.journal_slots[i] as usize;
            if s < src.slots.len() {
                self.slots[s] = src.slots[s].clone();
            }
        }
        self.index.truncate(src.index.len());
        self.jkey.truncate(src.index.len());
        for i in 0..self.journal_keys.len() {
            let k = self.journal_keys[i] as usize;
            if k < src.index.len() {
                self.index[k] = src.index[k];
            }
        }
        self.free.clear();
        self.free.extend_from_slice(&src.free);
        self.head = src.head;
        self.tail = src.tail;
        self.len = src.len;
        debug_assert_eq!(self.capacity, src.capacity);
        self.journal_slots.clear();
        self.journal_keys.clear();
        self.bump_epoch();
        true
    }

    /// Overwrites this index with the state of `src`, reusing the slot
    /// arena and direct-map allocations (snapshot restore). Adopts the
    /// source's seal so subsequent delta restores succeed.
    pub(crate) fn restore_from(&mut self, src: &LruIndex<V>) {
        self.slots.clone_from(&src.slots);
        self.index.clear();
        self.index.extend_from_slice(&src.index);
        self.free.clear();
        self.free.extend_from_slice(&src.free);
        self.head = src.head;
        self.tail = src.tail;
        self.len = src.len;
        self.capacity = src.capacity;
        self.seal.clone_from(&src.seal);
        self.jslot.resize(self.slots.len(), 0);
        self.jkey.resize(self.index.len(), 0);
        self.journal_slots.clear();
        self.journal_keys.clear();
        self.bump_epoch();
    }
}

/// Front-to-back iterator over an [`LruIndex`].
pub(crate) struct LruIter<'a, V> {
    lru: &'a LruIndex<V>,
    at: u32,
}

impl<V: Copy> Iterator for LruIter<'_, V> {
    type Item = (usize, V);

    fn next(&mut self) -> Option<(usize, V)> {
        if self.at == NIL {
            return None;
        }
        let slot = &self.lru.slots[self.at as usize];
        self.at = slot.next;
        Some((slot.key, slot.val))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// The original linear representation, kept as the test oracle.
    struct RefLru {
        list: VecDeque<(usize, u64)>,
        capacity: usize,
    }

    impl RefLru {
        fn get_refresh(&mut self, key: usize) -> Option<u64> {
            let i = self.list.iter().position(|&(k, _)| k == key)?;
            let e = self.list.remove(i).unwrap();
            self.list.push_front(e);
            Some(e.1)
        }

        fn insert(&mut self, key: usize, val: u64) {
            if let Some(i) = self.list.iter().position(|&(k, _)| k == key) {
                self.list.remove(i);
            } else if self.list.len() == self.capacity {
                self.list.pop_back();
            }
            self.list.push_front((key, val));
        }
    }

    #[test]
    fn matches_linear_reference_on_random_traces() {
        // xorshift-driven op mix over a small key space so capacity
        // eviction and re-fronting both trigger constantly.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for capacity in [1usize, 2, 7, 32] {
            let mut lru = LruIndex::new(capacity);
            let mut reference = RefLru {
                list: VecDeque::new(),
                capacity,
            };
            for step in 0..20_000 {
                let r = rng();
                let key = (r >> 8) as usize % 48;
                match r % 3 {
                    0 => assert_eq!(
                        lru.get_refresh(key),
                        reference.get_refresh(key),
                        "step {step} cap {capacity}"
                    ),
                    1 => {
                        let val = r >> 32;
                        lru.insert(key, val);
                        reference.insert(key, val);
                    }
                    _ => assert_eq!(
                        lru.probe(key),
                        reference.list.iter().any(|&(k, _)| k == key)
                    ),
                }
                assert_eq!(lru.len(), reference.list.len());
            }
            let got: Vec<(usize, u64)> = lru.iter().collect();
            let want: Vec<(usize, u64)> = reference.list.iter().copied().collect();
            assert_eq!(got, want, "final order, cap {capacity}");
        }
    }

    /// Delta restore must reproduce the exact recency order and future
    /// behavior of an exhaustive restore.
    #[test]
    fn delta_restore_matches_exhaustive_restore() {
        let mut state = 0xc3a5c85c97cb3127u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for capacity in [1usize, 2, 7, 32] {
            let mut warm = LruIndex::new(capacity);
            for _ in 0..200 {
                let r = rng();
                warm.insert((r >> 8) as usize % 48, r >> 32);
            }
            warm.seal();
            let snap = warm.clone();
            let mut delta = warm.clone();
            let mut full = warm;
            for step in 0..3_000 {
                let r = rng();
                let key = (r >> 8) as usize % 48;
                match r % 3 {
                    0 => assert_eq!(
                        delta.get_refresh(key),
                        full.get_refresh(key),
                        "step {step} cap {capacity}"
                    ),
                    1 => {
                        delta.insert(key, r >> 32);
                        full.insert(key, r >> 32);
                    }
                    _ => assert_eq!(delta.probe(key), full.probe(key)),
                }
            }
            assert!(delta.restore_delta(&snap), "shared seal must go delta");
            full.restore_from(&snap);
            let d: Vec<(usize, u64)> = delta.iter().collect();
            let f: Vec<(usize, u64)> = full.iter().collect();
            let s: Vec<(usize, u64)> = snap.iter().collect();
            assert_eq!(d, f, "cap {capacity}");
            assert_eq!(d, s, "cap {capacity}");
            assert_eq!(delta.len(), snap.len());
            // Future behavior must agree too (free list, arena reuse).
            for step in 0..1_000 {
                let r = rng();
                let key = (r >> 8) as usize % 48;
                if r % 2 == 0 {
                    delta.insert(key, r >> 32);
                    full.insert(key, r >> 32);
                } else {
                    assert_eq!(
                        delta.get_refresh(key),
                        full.get_refresh(key),
                        "post step {step}"
                    );
                }
            }
            let d: Vec<(usize, u64)> = delta.iter().collect();
            let f: Vec<(usize, u64)> = full.iter().collect();
            assert_eq!(d, f, "post churn, cap {capacity}");
        }
    }

    #[test]
    fn delta_restore_refuses_foreign_seals() {
        let mut a = LruIndex::new(4);
        a.insert(1, 10u64);
        a.seal();
        let mut b = LruIndex::new(4);
        b.insert(2, 20u64);
        b.seal();
        assert!(!a.restore_delta(&b));
        assert_eq!(a.get_refresh(1), Some(10), "failed delta must not mutate");
        a.restore_from(&b);
        a.insert(3, 30);
        assert!(a.restore_delta(&b), "full restore adopts the seal");
        let got: Vec<(usize, u64)> = a.iter().collect();
        assert_eq!(got, vec![(2, 20)]);
    }

    #[test]
    fn capacity_one_always_holds_last_insert() {
        let mut lru = LruIndex::new(1);
        lru.insert(3, 30u64);
        lru.insert(4, 40);
        assert!(!lru.probe(3));
        assert_eq!(lru.get_refresh(4), Some(40));
        assert_eq!(lru.len(), 1);
    }
}
