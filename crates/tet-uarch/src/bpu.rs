//! The branch prediction unit: BTB, gshare conditional predictor and the
//! return stack buffer (RSB).
//!
//! Two properties of this unit carry the paper's attacks:
//!
//! * A conditional branch that has never been *taken* predicts
//!   not-taken (it is absent from the BTB), so a transient Jcc whose
//!   condition is met **mispredicts** — the stall that the TET channel
//!   times (paper §3.2).
//! * `ret` is predicted from the RSB. When the architectural return
//!   address has been redirected (Listing 1), the stale RSB entry
//!   transiently "returns" into attacker-chosen code — Spectre-RSB.

use crate::lru::LruIndex;

/// Branch predictor geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpuConfig {
    /// log2 of the gshare pattern-history-table size.
    pub pht_bits: u32,
    /// Global-history length in branches.
    pub ghr_bits: u32,
    /// BTB capacity in entries.
    pub btb_entries: usize,
    /// Return stack buffer depth.
    pub rsb_entries: usize,
}

impl Default for BpuConfig {
    fn default() -> Self {
        BpuConfig {
            pht_bits: 12,
            ghr_bits: 12,
            btb_entries: 512,
            rsb_entries: 16,
        }
    }
}

/// The outcome of a fetch-time prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted next instruction index.
    pub next_pc: usize,
    /// Whether the branch was predicted taken (always `true` for
    /// unconditional control flow).
    pub taken: bool,
    /// Whether the BTB supplied the target (feeds `bp_l1_btb_correct`).
    pub from_btb: bool,
}

/// The branch prediction unit of one logical thread.
///
/// # Examples
///
/// A never-taken conditional predicts not-taken; after enough taken
/// resolutions it flips:
///
/// ```
/// use tet_uarch::{Bpu, BpuConfig};
///
/// let mut bpu = Bpu::new(BpuConfig::default());
/// assert!(!bpu.predict_cond(10, 11, 42).taken);
/// for _ in 0..16 {
///     // Training shifts the global history, so saturate it.
///     bpu.resolve_cond(10, true, 42);
/// }
/// assert!(bpu.predict_cond(10, 11, 42).taken);
/// ```
#[derive(Debug, Clone)]
pub struct Bpu {
    cfg: BpuConfig,
    /// 2-bit saturating counters (0..=3; >=2 predicts taken).
    pht: Vec<u8>,
    ghr: u64,
    /// MRU-first BTB (`pc -> target`), indexed for O(1) fetch-time
    /// lookups; recency and eviction order are exactly those of the
    /// original `VecDeque` list (see the equivalence property test).
    btb: LruIndex<usize>,
    rsb: Vec<usize>,
    /// PHT indices written since the last seal/restore, duplicate-capped:
    /// once the journal outgrows the PHT itself, `pht_full_dirty` flips
    /// and the restore falls back to one 4 KiB memcpy (DESIGN.md §16).
    /// Duplicates are harmless — repairing an index twice is idempotent —
    /// so no per-index dedup stamp is needed for a table this small.
    pht_journal: Vec<u32>,
    /// Whether PHT journaling is live (set by the first seal).
    pht_sealed: bool,
    pht_full_dirty: bool,
}

impl Bpu {
    /// Creates a predictor initialised to strongly-not-taken.
    pub fn new(cfg: BpuConfig) -> Self {
        Bpu {
            pht: vec![0; 1 << cfg.pht_bits],
            ghr: 0,
            btb: LruIndex::new(cfg.btb_entries),
            rsb: Vec::with_capacity(cfg.rsb_entries),
            pht_journal: Vec::new(),
            pht_sealed: false,
            pht_full_dirty: false,
            cfg,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> BpuConfig {
        self.cfg
    }

    #[inline]
    fn pht_index(&self, pc: usize) -> usize {
        let mask = (1usize << self.cfg.pht_bits) - 1;
        (pc ^ (self.ghr as usize & ((1 << self.cfg.ghr_bits) - 1))) & mask
    }

    fn btb_lookup(&mut self, pc: usize) -> Option<usize> {
        self.btb.get_refresh(pc)
    }

    fn btb_insert(&mut self, pc: usize, target: usize) {
        self.btb.insert(pc, target);
    }

    /// Whether the BTB currently holds an entry for `pc` (non-perturbing;
    /// used by stealth fingerprinting).
    pub fn btb_probe(&self, pc: usize) -> bool {
        self.btb.probe(pc)
    }

    /// Sorted BTB fingerprint (pc, target) pairs, for Table 1's
    /// stateless-channel measurements.
    pub fn btb_fingerprint(&self) -> Vec<(usize, usize)> {
        let mut v: Vec<_> = self.btb.iter().collect();
        v.sort_unstable();
        v
    }

    // ----- fetch-time predictions ----------------------------------------

    /// Predicts a conditional branch at `pc` with the given fall-through
    /// and taken targets.
    pub fn predict_cond(&mut self, pc: usize, fallthrough: usize, target: usize) -> Prediction {
        let from_btb = self.btb_lookup(pc).is_some();
        let counter = self.pht[self.pht_index(pc)];
        let taken = from_btb && counter >= 2;
        Prediction {
            next_pc: if taken { target } else { fallthrough },
            taken,
            from_btb,
        }
    }

    /// Predicts an indirect jump at `pc` (BTB target or fall-through).
    pub fn predict_indirect(&mut self, pc: usize, fallthrough: usize) -> Prediction {
        match self.btb_lookup(pc) {
            Some(target) => Prediction {
                next_pc: target,
                taken: true,
                from_btb: true,
            },
            None => Prediction {
                next_pc: fallthrough,
                taken: false,
                from_btb: false,
            },
        }
    }

    /// Handles a `call` at fetch: pushes the return address on the RSB
    /// and redirects to the callee.
    pub fn predict_call(&mut self, target: usize, return_pc: usize) -> Prediction {
        if self.rsb.len() == self.cfg.rsb_entries {
            self.rsb.remove(0);
        }
        self.rsb.push(return_pc);
        Prediction {
            next_pc: target,
            taken: true,
            from_btb: false,
        }
    }

    /// Predicts a `ret` at fetch from the RSB top; an empty RSB falls
    /// through (which will almost certainly resteer at resolution).
    pub fn predict_ret(&mut self, fallthrough: usize) -> Prediction {
        match self.rsb.pop() {
            Some(target) => Prediction {
                next_pc: target,
                taken: true,
                from_btb: true,
            },
            None => Prediction {
                next_pc: fallthrough,
                taken: false,
                from_btb: false,
            },
        }
    }

    /// Current RSB depth.
    pub fn rsb_depth(&self) -> usize {
        self.rsb.len()
    }

    // ----- resolution-time updates ----------------------------------------
    //
    // Updates happen at branch *resolution*, i.e. transient branches train
    // the structures too — matching real cores, and required for the BTB
    // to ever learn the in-window Jcc of the TET gadget.

    /// Records a PHT write in the duplicate-capped journal.
    #[inline]
    fn pht_touch(&mut self, idx: usize) {
        if self.pht_sealed && !self.pht_full_dirty {
            if self.pht_journal.len() >= self.pht.len() {
                self.pht_full_dirty = true;
                self.pht_journal.clear();
            } else {
                self.pht_journal.push(idx as u32);
            }
        }
    }

    /// Updates predictor state after a conditional branch resolves.
    pub fn resolve_cond(&mut self, pc: usize, taken: bool, target: usize) {
        let idx = self.pht_index(pc);
        self.pht_touch(idx);
        let c = &mut self.pht[idx];
        if taken {
            *c = (*c + 1).min(3);
            self.btb_insert(pc, target);
        } else {
            *c = c.saturating_sub(1);
        }
        self.ghr = (self.ghr << 1) | u64::from(taken);
    }

    /// Updates the BTB after an indirect branch or `ret` resolves.
    pub fn resolve_indirect(&mut self, pc: usize, target: usize) {
        self.btb_insert(pc, target);
        self.ghr = (self.ghr << 1) | 1;
    }

    /// Seals the current state for delta restore (DESIGN.md §16).
    pub fn seal(&mut self) {
        self.btb.seal();
        self.pht_journal.clear();
        self.pht_sealed = true;
        self.pht_full_dirty = false;
    }

    /// Journal-driven rollback to the sealed state shared with `src`:
    /// journaled PHT counters are repaired individually (or the whole
    /// 4 KiB table on journal overflow), the BTB repairs through its own
    /// journal, and the GHR/RSB (a scalar and ≤16 entries) restore
    /// eagerly. Returns `false` (self untouched) when the BTB seals do
    /// not match — the trust anchor for the PHT journal too, since both
    /// are sealed together.
    pub fn restore_delta(&mut self, src: &Bpu) -> bool {
        if !self.pht_sealed || !self.btb.restore_delta(&src.btb) {
            return false;
        }
        if self.pht_full_dirty {
            self.pht.copy_from_slice(&src.pht);
            self.pht_full_dirty = false;
        } else {
            for i in 0..self.pht_journal.len() {
                let idx = self.pht_journal[i] as usize;
                self.pht[idx] = src.pht[idx];
            }
        }
        self.pht_journal.clear();
        self.ghr = src.ghr;
        self.rsb.clear();
        self.rsb.extend_from_slice(&src.rsb);
        true
    }

    /// Overwrites this predictor with the state of `src`, reusing the
    /// PHT/BTB/RSB allocations (snapshot restore). Adopts the source's
    /// seal so subsequent [`Bpu::restore_delta`] calls succeed.
    pub fn restore_from(&mut self, src: &Bpu) {
        self.cfg = src.cfg;
        self.pht.clear();
        self.pht.extend_from_slice(&src.pht);
        self.ghr = src.ghr;
        self.btb.restore_from(&src.btb);
        self.rsb.clear();
        self.rsb.extend_from_slice(&src.rsb);
        self.pht_journal.clear();
        self.pht_sealed = src.pht_sealed;
        self.pht_full_dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bpu() -> Bpu {
        Bpu::new(BpuConfig::default())
    }

    #[test]
    fn cold_conditional_predicts_not_taken() {
        let mut b = bpu();
        let p = b.predict_cond(100, 101, 200);
        assert!(!p.taken);
        assert_eq!(p.next_pc, 101);
        assert!(!p.from_btb);
    }

    #[test]
    fn one_transient_taken_does_not_flip_prediction() {
        // The TET gadget relies on this: the rare in-window taken
        // resolution must not teach the predictor to predict taken.
        let mut b = bpu();
        b.resolve_cond(100, true, 200);
        let p = b.predict_cond(100, 101, 200);
        assert!(
            !p.taken,
            "single taken resolution must not flip a 2-bit counter"
        );
        assert!(p.from_btb, "but the BTB learns the target");
    }

    #[test]
    fn repeated_taken_trains_taken() {
        let mut b = bpu();
        for _ in 0..3 {
            b.resolve_cond(100, true, 200);
        }
        // GHR changed, so reset history influence by resolving with the
        // same history: predict directly.
        let p = b.predict_cond(100, 101, 200);
        // The counter at the *current* ghr index may differ; train across
        // histories to be sure.
        if !p.taken {
            for _ in 0..16 {
                b.resolve_cond(100, true, 200);
            }
            assert!(b.predict_cond(100, 101, 200).taken);
        }
    }

    #[test]
    fn not_taken_resolutions_decay() {
        let mut b = bpu();
        for _ in 0..8 {
            b.resolve_cond(100, true, 200);
        }
        for _ in 0..32 {
            b.resolve_cond(100, false, 200);
        }
        assert!(!b.predict_cond(100, 101, 200).taken);
    }

    #[test]
    fn rsb_predicts_last_call_site() {
        let mut b = bpu();
        b.predict_call(50, 11);
        b.predict_call(60, 21);
        assert_eq!(b.predict_ret(0).next_pc, 21);
        assert_eq!(b.predict_ret(0).next_pc, 11);
        // Underflow: fall through.
        let p = b.predict_ret(77);
        assert_eq!(p.next_pc, 77);
        assert!(!p.from_btb);
    }

    #[test]
    fn rsb_overflow_drops_oldest() {
        let mut b = Bpu::new(BpuConfig {
            rsb_entries: 2,
            ..BpuConfig::default()
        });
        b.predict_call(0, 1);
        b.predict_call(0, 2);
        b.predict_call(0, 3);
        assert_eq!(b.rsb_depth(), 2);
        assert_eq!(b.predict_ret(0).next_pc, 3);
        assert_eq!(b.predict_ret(0).next_pc, 2);
        assert_eq!(b.predict_ret(99).next_pc, 99);
    }

    #[test]
    fn indirect_uses_btb_after_resolution() {
        let mut b = bpu();
        assert_eq!(b.predict_indirect(5, 6).next_pc, 6);
        b.resolve_indirect(5, 123);
        let p = b.predict_indirect(5, 6);
        assert_eq!(p.next_pc, 123);
        assert!(p.from_btb);
    }

    #[test]
    fn btb_capacity_evicts_lru() {
        let mut b = Bpu::new(BpuConfig {
            btb_entries: 2,
            ..BpuConfig::default()
        });
        b.resolve_indirect(1, 10);
        b.resolve_indirect(2, 20);
        b.resolve_indirect(3, 30);
        assert!(!b.btb_probe(1));
        assert!(b.btb_probe(2) && b.btb_probe(3));
    }

    #[test]
    fn fingerprint_is_sorted_and_complete() {
        let mut b = bpu();
        b.resolve_indirect(9, 90);
        b.resolve_indirect(3, 30);
        assert_eq!(b.btb_fingerprint(), vec![(3, 30), (9, 90)]);
    }

    /// The original `VecDeque` BTB, kept verbatim as the equivalence
    /// oracle for the indexed representation. Driven through the public
    /// predict/resolve surface so the whole BTB-visible behaviour —
    /// targets, recency, eviction and fingerprints — is compared.
    struct RefBtb {
        list: std::collections::VecDeque<(usize, usize)>,
        capacity: usize,
    }

    impl RefBtb {
        fn lookup(&mut self, pc: usize) -> Option<usize> {
            let i = self.list.iter().position(|&(p, _)| p == pc)?;
            let e = self.list.remove(i).unwrap();
            self.list.push_front(e);
            Some(e.1)
        }

        fn insert(&mut self, pc: usize, target: usize) {
            if let Some(i) = self.list.iter().position(|&(p, _)| p == pc) {
                self.list.remove(i);
            } else if self.list.len() == self.capacity {
                self.list.pop_back();
            }
            self.list.push_front((pc, target));
        }
    }

    #[test]
    fn indexed_btb_matches_linear_reference() {
        let mut state = 0xa0761d6478bd642fu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for capacity in [1usize, 2, 16] {
            let mut b = Bpu::new(BpuConfig {
                btb_entries: capacity,
                ..BpuConfig::default()
            });
            let mut reference = RefBtb {
                list: std::collections::VecDeque::new(),
                capacity,
            };
            for step in 0..30_000 {
                let r = rng();
                let pc = (r >> 8) as usize % (capacity * 2 + 3);
                match r % 4 {
                    0 => {
                        // predict_indirect is a pure BTB lookup.
                        let p = b.predict_indirect(pc, pc + 1);
                        let want = reference.lookup(pc);
                        assert_eq!(
                            p.from_btb.then_some(p.next_pc),
                            want,
                            "step {step} cap {capacity}"
                        );
                    }
                    1 => {
                        let target = pc + 100 + (r >> 40) as usize % 4;
                        b.resolve_indirect(pc, target);
                        reference.insert(pc, target);
                    }
                    2 => {
                        // Taken conditional resolutions insert too.
                        b.resolve_cond(pc, true, pc + 7);
                        reference.insert(pc, pc + 7);
                    }
                    _ => assert_eq!(
                        b.btb_probe(pc),
                        reference.list.iter().any(|&(p, _)| p == pc)
                    ),
                }
            }
            let want: Vec<(usize, usize)> = {
                let mut v: Vec<_> = reference.list.iter().copied().collect();
                v.sort_unstable();
                v
            };
            assert_eq!(b.btb_fingerprint(), want, "cap {capacity}");
        }
    }

    /// Delta restore must reproduce the predictor state (PHT counters,
    /// BTB order, GHR, RSB) of an exhaustive restore exactly.
    #[test]
    fn delta_restore_matches_exhaustive_restore() {
        let mut state = 0xaf63bd4c8601b7efu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut warm = Bpu::new(BpuConfig {
            pht_bits: 6,
            ghr_bits: 6,
            btb_entries: 8,
            rsb_entries: 4,
        });
        for _ in 0..200 {
            let r = rng();
            warm.resolve_cond((r >> 8) as usize % 64, r & 1 == 0, (r >> 16) as usize % 64);
        }
        warm.seal();
        let snap = warm.clone();
        let mut delta = warm.clone();
        let mut full = warm;
        let churn = |b: &mut Bpu, r: u64| match r % 6 {
            0 => {
                b.resolve_cond((r >> 8) as usize % 64, r & 2 == 0, (r >> 16) as usize % 64);
            }
            1 => b.resolve_indirect((r >> 8) as usize % 64, (r >> 16) as usize % 64),
            2 => {
                b.predict_cond((r >> 8) as usize % 64, 1, 2);
            }
            3 => {
                b.predict_indirect((r >> 8) as usize % 64, 1);
            }
            4 => {
                b.predict_call((r >> 8) as usize % 64, (r >> 16) as usize % 64);
            }
            _ => {
                b.predict_ret(7);
            }
        };
        // Long enough that the PHT journal accumulates duplicates and
        // (at 64 PHT entries) overflows into the full-dirty fallback.
        for _ in 0..2_000 {
            let r = rng();
            churn(&mut delta, r);
            churn(&mut full, r);
        }
        assert!(delta.restore_delta(&snap), "shared seal must go delta");
        full.restore_from(&snap);
        assert_eq!(delta.pht, full.pht);
        assert_eq!(delta.ghr, full.ghr);
        assert_eq!(delta.rsb, full.rsb);
        assert_eq!(delta.btb_fingerprint(), full.btb_fingerprint());
        assert_eq!(delta.btb_fingerprint(), snap.btb_fingerprint());
        // Future behavior must agree (recency order fully restored).
        for _ in 0..500 {
            let r = rng();
            let pc = (r >> 8) as usize % 64;
            assert_eq!(delta.predict_cond(pc, 1, 2), full.predict_cond(pc, 1, 2));
            churn(&mut delta, r);
            churn(&mut full, r);
        }
        assert_eq!(delta.pht, full.pht);
        assert_eq!(delta.btb_fingerprint(), full.btb_fingerprint());
    }

    #[test]
    fn delta_restore_refuses_foreign_seals() {
        let mut a = Bpu::new(BpuConfig::default());
        a.resolve_cond(1, true, 2);
        a.seal();
        let mut b = Bpu::new(BpuConfig::default());
        b.resolve_cond(3, true, 4);
        b.seal();
        assert!(!a.restore_delta(&b), "foreign seal must be refused");
        assert!(a.btb_probe(1), "failed delta must not mutate");
        a.restore_from(&b);
        a.resolve_cond(5, true, 6);
        assert!(a.restore_delta(&b), "full restore adopts the seal");
        assert_eq!(a.btb_fingerprint(), b.btb_fingerprint());
    }
}
