//! [`Machine`]: a core plus its memory environment, with a simple run API.

use std::collections::HashMap;
use std::sync::Arc;

use tet_isa::reg::RegFile;
use tet_isa::{Flags, Program, Reg};
use tet_mem::{AddressSpace, FrameAlloc, MemorySystem, PhysMem, Pte, PAGE_SIZE};
use tet_metrics::{ProfHandle, Stage as ProfStage};
use tet_obs::{EventKind, FanoutSink, MemorySink, RunReport, SinkHandle, TraceEvent, TraceSink};
use tet_pmu::PmuSnapshot;

use crate::core::{Cpu, Env, ExceptionRecord, RunExit};
use crate::frontend::FrontendTraceEntry;
use crate::template::ProgramTemplate;
use crate::uop::{SquashReason, UopFate, UopTrace};
use crate::{code_vaddr, CpuConfig, ForwardPolicy};

/// Per-run options.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Instruction index control transfers to on a delivered signal
    /// (`transient_begin`'s signal-handler suppression path). `None`
    /// means faults terminate the run.
    pub handler_pc: Option<usize>,
    /// Cycle budget.
    pub max_cycles: u64,
    /// Initial register values.
    pub init_regs: Vec<(Reg, u64)>,
    /// Record the per-cycle frontend delivery trace (Figure 3).
    pub trace_frontend: bool,
    /// Record per-µop lifecycle traces (fetch → retire/squash) — the
    /// data for visualising transient execution.
    pub trace_uops: bool,
    /// Structured-event sink the run emits into (Chrome-trace export,
    /// flight recorders). Disabled by default; costs one branch per
    /// event site when disabled.
    pub sink: SinkHandle,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            handler_pc: None,
            max_cycles: 1_000_000,
            init_regs: Vec::new(),
            trace_frontend: false,
            trace_uops: false,
            sink: SinkHandle::disabled(),
        }
    }
}

/// The outcome of one program run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// How the run ended.
    pub exit: RunExit,
    /// Total cycles.
    pub cycles: u64,
    /// Final committed registers.
    pub regs: RegFile,
    /// Final committed flags.
    pub flags: Flags,
    /// Instructions retired.
    pub retired: u64,
    /// PMU deltas for this run.
    pub pmu: PmuSnapshot,
    /// Faults delivered during the run.
    pub exceptions: Vec<ExceptionRecord>,
    /// Frontend delivery trace, when requested.
    pub frontend_trace: Option<Vec<FrontendTraceEntry>>,
    /// Per-µop lifecycle trace, when requested.
    pub uop_trace: Option<Vec<UopTrace>>,
}

impl RunResult {
    /// Summarizes the run as a [`RunReport`]: exit/cycle/IPC scalars plus
    /// every non-zero PMU counter.
    pub fn report(&self, name: &str) -> RunReport {
        let mut rep = RunReport::new(name);
        rep.set_meta("exit", format!("{:?}", self.exit));
        rep.scalar("cycles", self.cycles as f64);
        rep.scalar("retired", self.retired as f64);
        if self.cycles > 0 {
            rep.scalar("ipc", self.retired as f64 / self.cycles as f64);
        }
        rep.counter("exceptions", self.exceptions.len() as u64);
        for (ev, n) in self.pmu.iter_nonzero() {
            rep.counter(ev.name(), n);
        }
        rep
    }
}

/// Builds the sink a run actually emits into: the caller's sink (if any)
/// fanned out with an internal recorder when legacy vector traces were
/// requested. Returns the handle plus the recorder to drain afterwards.
/// `reuse` supplies a previously drained recorder so repeated traced
/// runs recycle one event buffer instead of allocating per run.
pub(crate) fn compose_run_sink(
    cfg: &RunConfig,
    reuse: Option<&Arc<MemorySink>>,
) -> (SinkHandle, Option<Arc<MemorySink>>) {
    let recorder = (cfg.trace_frontend || cfg.trace_uops).then(|| {
        reuse
            .cloned()
            .unwrap_or_else(|| Arc::new(MemorySink::new()))
    });
    let handle = match (cfg.sink.sink_arc(), recorder.clone()) {
        (None, None) => SinkHandle::disabled(),
        (Some(user), None) => SinkHandle::attached(user),
        (None, Some(rec)) => SinkHandle::attached(rec),
        (Some(user), Some(rec)) => SinkHandle::attached(Arc::new(FanoutSink::new(vec![
            user,
            rec as Arc<dyn TraceSink + Send + Sync>,
        ]))),
    };
    (handle, recorder)
}

/// Rebuilds the legacy `Vec`-based traces from the structured event stream
/// of one thread — the adapter that keeps [`RunResult::frontend_trace`] and
/// [`RunResult::uop_trace`] stable while the emission side streams events.
pub(crate) fn rebuild_traces(
    program: &Program,
    events: &[TraceEvent],
    thread: u8,
    want_frontend: bool,
    want_uops: bool,
) -> (Option<Vec<FrontendTraceEntry>>, Option<Vec<UopTrace>>) {
    let mut frontend = want_frontend.then(Vec::new);
    let mut uops: Option<Vec<UopTrace>> = want_uops.then(Vec::new);
    let mut index: HashMap<u64, usize> = HashMap::new();
    for ev in events.iter().filter(|e| e.thread == thread) {
        match ev.kind {
            EventKind::FrontendCycle {
                dsb_uops,
                mite_uops,
                stalled,
            } => {
                if let Some(f) = &mut frontend {
                    f.push(FrontendTraceEntry {
                        cycle: ev.cycle,
                        dsb_uops: dsb_uops as usize,
                        mite_uops: mite_uops as usize,
                        stalled,
                    });
                }
            }
            EventKind::UopRenamed { id, pc, .. } => {
                if let Some(u) = &mut uops {
                    let Some(inst) = program.fetch(pc as usize) else {
                        continue;
                    };
                    index.insert(id, u.len());
                    u.push(UopTrace {
                        id,
                        pc: pc as usize,
                        inst,
                        renamed_at: ev.cycle,
                        started_at: None,
                        done_at: None,
                        fate: UopFate::InFlight,
                    });
                }
            }
            EventKind::UopExecuted {
                id,
                started_at,
                done_at,
            } => {
                if let Some(u) = &mut uops {
                    if let Some(&i) = index.get(&id) {
                        u[i].started_at = Some(started_at);
                        u[i].done_at = Some(done_at);
                    }
                }
            }
            EventKind::UopRetired { id } => {
                if let Some(u) = &mut uops {
                    if let Some(&i) = index.get(&id) {
                        if matches!(u[i].fate, UopFate::InFlight) {
                            u[i].fate = UopFate::Retired { at: ev.cycle };
                        }
                    }
                }
            }
            EventKind::UopSquashed { id, cause } => {
                if let Some(u) = &mut uops {
                    if let Some(&i) = index.get(&id) {
                        if matches!(u[i].fate, UopFate::InFlight) {
                            u[i].fate = UopFate::Squashed {
                                at: ev.cycle,
                                reason: SquashReason::from_obs(cause),
                            };
                        }
                    }
                }
            }
            _ => {}
        }
    }
    (frontend, uops)
}

/// A complete single-thread simulated machine: one core, its caches and
/// TLBs, physical memory and an address space.
///
/// Microarchitectural state (BPU, DSB, TLBs, caches, fill buffers)
/// persists across [`Machine::run`] calls — the paper's attacks rely on
/// training and probing across iterations.
///
/// # Examples
///
/// ```
/// use tet_isa::{Asm, Reg};
/// use tet_uarch::{CpuConfig, Machine, RunConfig};
///
/// # fn main() -> Result<(), tet_isa::AssembleError> {
/// let mut m = Machine::new(CpuConfig::skylake_i7_6700(), 1);
/// let mut a = Asm::new();
/// a.mov_imm(Reg::Rcx, 5).add(Reg::Rcx, 10u64).halt();
/// let r = m.run(&a.assemble()?, &RunConfig::default());
/// assert_eq!(r.regs.get(Reg::Rcx), 15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    cpu: Cpu,
    mem: MemorySystem,
    phys: PhysMem,
    /// The address space, behind an `Arc` so snapshot restores of an
    /// unmodified mapping tree are a pointer bump instead of a deep
    /// radix-tree clone. Mutations go through `Arc::make_mut`, which
    /// COW-forks only when the tree is actually shared.
    aspace: Arc<AddressSpace>,
    frames: FrameAlloc,
    code_pages_mapped: usize,
    check_mode: bool,
    /// Journal-driven delta restore (DESIGN.md §16). Defaults from
    /// `TET_DELTA` (`0` disables); restored state is identical either
    /// way — the exhaustive path is kept as the differential reference.
    delta_enabled: bool,
    /// Event-driven fast-forward across idle cycles (DESIGN.md §11).
    /// Defaults from `TET_FF` (`0` disables); cycle counts and PMU
    /// values are identical either way. Automatically bypassed for runs
    /// with a structured-event sink, which need per-cycle emission.
    ff_enabled: bool,
    /// Lifetime run count (diagnostic, survives snapshot restore).
    runs: u64,
    /// Lifetime simulated cycles across runs (diagnostic).
    cycles_total: u64,
    /// Lifetime snapshot restores applied to this machine (diagnostic).
    snap_restores: u64,
    /// Lifetime PMU totals: per-run deltas summed over every run, so
    /// the totals survive snapshot restores (which roll the live
    /// counter bank back). Deterministic like the rest of the PMU.
    pmu_lifetime: PmuSnapshot,
    /// Host wall-time profiler (host-side only; see
    /// [`Machine::set_profiler`]). Times whole runs and restores
    /// exactly, fast-forward attempts 1-in-N.
    prof: ProfHandle,
    /// Countdown to the next timed fast-forward attempt.
    prof_ff_tick: u32,
    ctx: RunCtx,
}

/// A point-in-time copy of a [`Machine`]'s complete state —
/// architectural (registers, physical memory, address space) and
/// microarchitectural (caches, TLBs, predictors, fill buffers, PMU,
/// interrupt phase).
///
/// Take one with [`Machine::snapshot`] **between** runs (the pipeline
/// is always drained then — `run` is synchronous), and rebuild runnable
/// machines from it with [`Machine::restore`] (in place, reusing the
/// destination's allocations) or [`Machine::from_snapshot`]. Trial
/// loops warm a machine up once, snapshot, and fork every trial from
/// the snapshot; a shared `Arc<MachineSnapshot>` serves parallel
/// workers.
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    state: Machine,
}

/// Lifetime diagnostics of one [`Machine`] (see [`Machine::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Completed [`Machine::run`] calls.
    pub runs: u64,
    /// Simulated cycles summed over those runs.
    pub sim_cycles: u64,
    /// Cycles skipped by event-driven fast-forward (included in
    /// `sim_cycles` — skipping changes wall time, not simulated time).
    pub ff_skipped_cycles: u64,
    /// Fast-forward sprints taken (each skips ≥ 1 cycle).
    pub ff_sprints: u64,
    /// Snapshot restores applied via [`Machine::restore`].
    pub snapshot_restores: u64,
}

/// An opaque marker of a machine's lifetime counters at one instant —
/// the "before" point of a [`RunDelta`] measurement. Take one with
/// [`Machine::delta_marker`] immediately before running a probe, and
/// turn it into the probe's recorded effects with
/// [`Machine::delta_since`].
#[derive(Debug, Clone)]
pub struct DeltaMarker {
    runs: u64,
    cycles: u64,
    ff_skipped: u64,
    ff_sprints: u64,
    restores: u64,
    jitter_draws: u64,
    jitter_sum: u64,
    pmu: PmuSnapshot,
}

/// Everything a span of [`Machine::run`] calls adds to the machine's
/// lifetime counters: run count, simulated cycles, fast-forward
/// diagnostics, snapshot restores and the full 51-event PMU delta.
///
/// This is the record behind divergence-aware trial batching: a trial
/// loop measures one probe live ([`Machine::delta_marker`] /
/// [`Machine::delta_since`]), proves the machine is at a fixed point
/// (consecutive probes return identical results *and* identical
/// `RunDelta`s), and then replays the record with
/// [`Machine::apply_replayed_run`] instead of simulating — every
/// lifetime counter advances exactly as the live run would have
/// advanced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunDelta {
    /// `run` calls completed in the span.
    pub runs: u64,
    /// Simulated cycles the span added (also the global-clock advance).
    pub cycles: u64,
    /// Cycles skipped by event-driven fast-forward in the span.
    pub ff_skipped: u64,
    /// Fast-forward sprints taken in the span.
    pub ff_sprints: u64,
    /// Snapshot restores applied in the span.
    pub restores: u64,
    /// DRAM-jitter RNG draws the span consumed. A replayed span must
    /// advance the stream by the same number of draws
    /// ([`Machine::replay_dram_jitter`]) or every later draw shifts.
    pub jitter_draws: u64,
    /// Summed jitter cycles of those draws. Probes whose only run-to-run
    /// variation is a single jitter draw are still fixed points *net of
    /// jitter*: their deltas differ by exactly the draw difference in
    /// `cycles`, `ff_skipped` and `jitter_sum`.
    pub jitter_sum: u64,
    /// PMU counter deltas accumulated over the span's runs.
    pub pmu: PmuSnapshot,
}

/// Process-wide fast-forward default: `TET_FF=0` (or `false`/`off`; see
/// [`tet_obs::env_flag`]) turns it off.
fn ff_default() -> bool {
    static FF: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FF.get_or_init(|| tet_obs::env_flag("TET_FF", true))
}

/// Process-wide µop-template *caching* default: `TET_PREDECODE=0` turns
/// the cross-run cache off (a fresh template is still built per run —
/// the pipeline always consumes templates, so results are identical by
/// construction; only the build work repeats).
fn predecode_default() -> bool {
    static PD: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *PD.get_or_init(|| tet_obs::env_flag("TET_PREDECODE", true))
}

/// Process-wide delta-restore default: `TET_DELTA=0` keeps snapshot
/// restores on the exhaustive field-by-field copy (the differential
/// reference for the journal-driven path; see DESIGN.md §16).
fn delta_default() -> bool {
    static DR: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *DR.get_or_init(|| tet_obs::env_flag("TET_DELTA", true))
}

/// Reusable per-run scratch state: everything [`Machine::run`] would
/// otherwise allocate afresh on every call. Attack loops call `run`
/// hundreds of thousands of times on the same machine, so the PMU
/// snapshot buffer, the check-mode program, and the trace recorder are
/// all kept and recycled here.
#[derive(Debug)]
struct RunCtx {
    /// PMU counter buffer reused for the before-run snapshot.
    pmu_before: PmuSnapshot,
    /// Check-mode program shared with the oracle, content-compared per
    /// run so only a *different* program pays a clone.
    check_program: Option<Arc<Program>>,
    /// Pre-decoded µop template, content-compared per run so only a
    /// *different* program pays a re-crack (see
    /// [`ProgramTemplate`]); disabled by `TET_PREDECODE=0`.
    template: Option<Arc<ProgramTemplate>>,
    /// Drained trace recorder recycled across trace-enabled runs.
    recorder: Option<Arc<MemorySink>>,
}

impl Clone for RunCtx {
    /// Cloned machines (e.g. one per worker thread) must not share the
    /// trace recorder buffer, so the clone starts with a fresh cache;
    /// the immutable program cache is shared safely.
    fn clone(&self) -> Self {
        RunCtx {
            pmu_before: self.pmu_before.clone(),
            check_program: self.check_program.clone(),
            template: self.template.clone(),
            recorder: None,
        }
    }
}

impl RunCtx {
    fn new() -> Self {
        RunCtx {
            pmu_before: PmuSnapshot::zero(),
            check_program: None,
            template: None,
            recorder: None,
        }
    }

    /// The cached check-mode program, refreshed when `program` differs
    /// from the cached contents.
    fn check_program(&mut self, program: &Program) -> Arc<Program> {
        match &self.check_program {
            Some(p) if **p == *program => p.clone(),
            _ => {
                let p = Arc::new(program.clone());
                self.check_program = Some(p.clone());
                p
            }
        }
    }

    /// The pre-decoded template for `program`, re-cracked only when the
    /// program contents differ from the cached one. With
    /// `TET_PREDECODE=0` the cache is bypassed and every run rebuilds —
    /// the same single code path the cached run takes, so behaviour is
    /// identical by construction.
    fn template(&mut self, program: &Program) -> Arc<ProgramTemplate> {
        if !predecode_default() {
            return Arc::new(ProgramTemplate::build(program));
        }
        match &self.template {
            Some(t) if *t.program() == *program => t.clone(),
            _ => {
                let t = Arc::new(ProgramTemplate::build(program));
                self.template = Some(t.clone());
                t
            }
        }
    }
}

impl Machine {
    /// Creates a machine; `seed` drives the DRAM jitter stream.
    pub fn new(cfg: CpuConfig, seed: u64) -> Self {
        let mem = MemorySystem::new(cfg.mem, seed);
        Machine {
            cpu: Cpu::new(cfg),
            mem,
            phys: PhysMem::new(),
            aspace: Arc::new(AddressSpace::new()),
            frames: FrameAlloc::starting_at(0x1000),
            code_pages_mapped: 0,
            check_mode: false,
            delta_enabled: delta_default(),
            ff_enabled: ff_default(),
            runs: 0,
            cycles_total: 0,
            snap_restores: 0,
            pmu_lifetime: PmuSnapshot::zero(),
            prof: ProfHandle::disabled(),
            prof_ff_tick: 0,
            ctx: RunCtx::new(),
        }
    }

    /// Installs a host-time profiler handle on this machine and its
    /// core. Strictly host-side observation: simulated results are
    /// byte-identical with a profiler installed or not (the determinism
    /// suite gates this). Pass [`ProfHandle::disabled`] to remove.
    pub fn set_profiler(&mut self, prof: ProfHandle) {
        self.cpu.set_profiler(prof.clone());
        self.prof = prof;
        self.prof_ff_tick = 0;
    }

    /// Forces event-driven fast-forward on or off for this machine,
    /// overriding the `TET_FF` process default — the hook differential
    /// tests use to prove skipping is cycle-exact.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.ff_enabled = on;
    }

    /// Whether this machine fast-forwards idle cycles.
    pub fn fast_forward(&self) -> bool {
        self.ff_enabled
    }

    /// Forces journal-driven delta restore on or off for this machine,
    /// overriding the `TET_DELTA` process default — the hook the
    /// differential tests use to prove both restore paths rebuild
    /// byte-identical state.
    pub fn set_delta_restore(&mut self, on: bool) {
        self.delta_enabled = on;
    }

    /// Whether this machine restores snapshots via touched-set journals.
    pub fn delta_restore(&self) -> bool {
        self.delta_enabled
    }

    /// Seals every journaled structure (predictor tables, µop cache,
    /// TLBs, the four cache levels, physical memory) so clones of this
    /// state restore by journal replay (DESIGN.md §16).
    fn seal(&mut self) {
        self.cpu.seal();
        self.mem.seal();
        self.phys.seal();
    }

    /// Captures the machine's complete state. Only valid between runs
    /// (`run` is synchronous, so any quiescent machine qualifies).
    ///
    /// Sealing for O(touched) delta restore happens here: the machine
    /// and the snapshot share a sealed image, and later
    /// [`Machine::restore`] calls repair only what the trial dirtied.
    pub fn snapshot(&mut self) -> MachineSnapshot {
        self.seal();
        MachineSnapshot {
            state: self.clone(),
        }
    }

    /// Rebuilds this machine into the snapshotted state **in place**,
    /// reusing this machine's existing heap allocations (ROB, caches,
    /// TLB arrays, PMU bank, page frames) — the hot path of
    /// fork-per-trial loops, which restore hundreds of thousands of
    /// times from one warmed-up snapshot.
    ///
    /// Lifetime diagnostics ([`Machine::stats`]) and the fast-forward
    /// setting are deliberately *not* rolled back: they describe this
    /// machine, not the snapshot.
    pub fn restore(&mut self, snap: &MachineSnapshot) {
        let Machine {
            cpu,
            mem,
            phys,
            aspace,
            frames,
            code_pages_mapped,
            check_mode,
            delta_enabled: _,
            ff_enabled: _,
            runs: _,
            cycles_total: _,
            snap_restores: _,
            pmu_lifetime: _,
            prof: _,
            prof_ff_tick: _,
            ctx: _,
        } = &snap.state;
        // Restores are rare relative to steps and bracket real work, so
        // they are always timed exactly (never sampled).
        let t = self.prof.enabled().then(std::time::Instant::now);
        if self.delta_enabled {
            // Journal-driven: each structure repairs only the slots it
            // journaled since the shared seal, falling back to the
            // exhaustive copy when no seal is shared (e.g. the first
            // restore from a foreign snapshot, which adopts its seal).
            self.cpu.restore_delta(cpu);
            self.mem.restore_delta(mem);
            if !self.phys.restore_delta(phys) {
                self.phys.restore_from(phys);
            }
        } else {
            self.cpu.restore_from(cpu);
            self.mem.restore_from(mem);
            self.phys.restore_from(phys);
        }
        // `Arc` bump when the mapping tree is unchanged since the
        // snapshot; a deep clone only when this machine COW-forked it.
        self.aspace.clone_from(aspace);
        self.frames = *frames;
        self.code_pages_mapped = *code_pages_mapped;
        self.check_mode = *check_mode;
        self.snap_restores += 1;
        if let Some(t) = t {
            self.prof
                .add_ns(ProfStage::SnapshotRestore, t.elapsed().as_nanos() as u64);
        }
    }

    /// Builds a fresh machine from a snapshot — how parallel workers
    /// materialize their private copy of a shared warmed-up snapshot.
    /// Lifetime diagnostics start at zero.
    pub fn from_snapshot(snap: &MachineSnapshot) -> Machine {
        let mut m = snap.state.clone();
        m.runs = 0;
        m.cycles_total = 0;
        m.snap_restores = 0;
        m.pmu_lifetime = PmuSnapshot::zero();
        m.cpu.reset_ff_stats();
        m
    }

    /// Lifetime diagnostics: run count, simulated cycles, fast-forward
    /// savings, snapshot restores.
    pub fn stats(&self) -> MachineStats {
        let (ff_skipped_cycles, ff_sprints) = self.cpu.ff_stats();
        MachineStats {
            runs: self.runs,
            sim_cycles: self.cycles_total,
            ff_skipped_cycles,
            ff_sprints,
            snapshot_restores: self.snap_restores,
        }
    }

    /// Lifetime PMU totals: every run's counter delta summed, surviving
    /// snapshot restores (the live [`Cpu`] bank rolls back with them).
    /// This is what campaign telemetry divides to get cache/TLB/BPU hit
    /// rates over a whole trial loop.
    pub fn pmu_lifetime(&self) -> &PmuSnapshot {
        &self.pmu_lifetime
    }

    /// Marks the current lifetime counters; pair with
    /// [`Machine::delta_since`] to record what a probe adds to them.
    pub fn delta_marker(&self) -> DeltaMarker {
        let (ff_skipped, ff_sprints) = self.cpu.ff_stats();
        let (jitter_draws, jitter_sum) = self.mem.jitter_stats();
        DeltaMarker {
            runs: self.runs,
            cycles: self.cycles_total,
            ff_skipped,
            ff_sprints,
            restores: self.snap_restores,
            jitter_draws,
            jitter_sum,
            pmu: self.pmu_lifetime.clone(),
        }
    }

    /// The lifetime-counter movement since `marker` was taken.
    pub fn delta_since(&self, marker: &DeltaMarker) -> RunDelta {
        let (ff_skipped, ff_sprints) = self.cpu.ff_stats();
        let (jitter_draws, jitter_sum) = self.mem.jitter_stats();
        RunDelta {
            runs: self.runs - marker.runs,
            cycles: self.cycles_total - marker.cycles,
            ff_skipped: ff_skipped - marker.ff_skipped,
            ff_sprints: ff_sprints - marker.ff_sprints,
            restores: self.snap_restores - marker.restores,
            jitter_draws: jitter_draws - marker.jitter_draws,
            jitter_sum: jitter_sum - marker.jitter_sum,
            pmu: self.pmu_lifetime.delta(&marker.pmu),
        }
    }

    /// Advances the DRAM-jitter stream by `draws` draws on behalf of
    /// runs that are being replayed rather than simulated, returning
    /// the summed jitter actually drawn — exactly what the live runs
    /// would have drawn from the same stream position. Call this
    /// *before* [`Machine::apply_replayed_run`] and shift the recorded
    /// delta's jittered fields by the difference.
    pub fn replay_dram_jitter(&mut self, draws: u64) -> u64 {
        self.mem.replay_jitter(draws)
    }

    /// Replays the recorded effects of runs this machine did *not*
    /// execute (divergence-aware trial batching): every lifetime
    /// counter — run count, simulated cycles, fast-forward diagnostics,
    /// restore count, PMU lifetime totals, the live PMU bank and the
    /// core's global cycle clock — advances exactly as executing the
    /// recorded runs would have advanced it. Only valid when the
    /// machine is provably at the fixed point the record was captured
    /// at, i.e. replaying must be state-equivalent to re-running.
    pub fn apply_replayed_run(&mut self, delta: &RunDelta) {
        self.runs += delta.runs;
        self.cycles_total += delta.cycles;
        self.snap_restores += delta.restores;
        self.pmu_lifetime.accumulate(&delta.pmu);
        self.cpu
            .absorb_replayed(delta.cycles, delta.ff_skipped, delta.ff_sprints, &delta.pmu);
    }

    /// The byte a faulting or architectural load of `vaddr` would make
    /// visible to transient dependents, computed without touching any
    /// machine state — the attacker-side oracle divergence-aware trial
    /// batching uses to predict which test value of a 0..=255 sweep
    /// will take the in-window branch.
    ///
    /// Mirrors the value (not the timing) semantics of the core's load
    /// path: user-mapped bytes read through; supervisor-mapped bytes
    /// forward under [`ForwardPolicy::Data`] when the line is cache
    /// resident (never on early-abort cores); unmapped addresses
    /// forward the stale fill-buffer byte when the core is
    /// MDS-vulnerable; everything else reads as zero.
    pub fn peek_transient_byte(&self, vaddr: u64) -> u8 {
        use tet_mem::WalkOutcome;
        match self.aspace.walk(vaddr).0 {
            WalkOutcome::Mapped(pte) => {
                let pa = pte.frame * PAGE_SIZE + (vaddr % PAGE_SIZE);
                let vuln = &self.cpu.config().vuln;
                let forwards = pte.user
                    || (!vuln.early_fault_abort
                        && vuln.meltdown_forward == ForwardPolicy::Data
                        && self.mem.probe_level(pa).is_some());
                if forwards {
                    self.phys.read_u8(pa)
                } else {
                    0
                }
            }
            _ => {
                if self.cpu.config().vuln.lfb_forward {
                    self.mem
                        .lfb()
                        .stale_byte((vaddr % tet_mem::LINE_SIZE) as usize)
                        .unwrap_or(0)
                } else {
                    0
                }
            }
        }
    }

    /// Turns the retirement differential oracle on or off for this
    /// machine only (DESIGN.md §9). Check mode is also forced globally
    /// by `TET_CHECK=1` or [`tet_check::enable`].
    pub fn set_check_mode(&mut self, on: bool) {
        self.check_mode = on;
    }

    /// Whether this machine runs programs under the retirement oracle.
    pub fn check_mode(&self) -> bool {
        self.check_mode
    }

    /// The CPU configuration.
    pub fn config(&self) -> &CpuConfig {
        self.cpu.config()
    }

    /// The core (PMU, BPU, TLBs).
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Mutable core access.
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    /// Physical memory contents.
    pub fn phys(&self) -> &PhysMem {
        &self.phys
    }

    /// Mutable physical memory.
    pub fn phys_mut(&mut self) -> &mut PhysMem {
        &mut self.phys
    }

    /// The cache hierarchy.
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable cache hierarchy (priming fill buffers, flushing lines).
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Split borrow of the hierarchy and physical memory — lets callers
    /// issue timed accesses (e.g. a simulated victim's loads) without
    /// cloning either.
    pub fn mem_and_phys_mut(&mut self) -> (&mut MemorySystem, &PhysMem) {
        (&mut self.mem, &self.phys)
    }

    /// The active address space.
    pub fn aspace(&self) -> &AddressSpace {
        &self.aspace
    }

    /// Mutable address space (the OS model edits mappings here). When
    /// the mapping tree is still shared with a snapshot this COW-forks
    /// it, so the snapshot's view never changes.
    pub fn aspace_mut(&mut self) -> &mut AddressSpace {
        Arc::make_mut(&mut self.aspace)
    }

    /// Allocates a fresh physical frame.
    pub fn alloc_frame(&mut self) -> u64 {
        self.frames.alloc()
    }

    /// Maps a user-accessible data page at `vaddr` (page-aligned) backed
    /// by a fresh frame; returns the page's physical base address.
    pub fn map_user_page(&mut self, vaddr: u64) -> u64 {
        let frame = self.frames.alloc();
        Arc::make_mut(&mut self.aspace).map_page(vaddr, Pte::user_data(frame));
        frame * PAGE_SIZE
    }

    /// Maps a kernel (supervisor-only) page at `vaddr`; returns the
    /// page's physical base address.
    pub fn map_kernel_page(&mut self, vaddr: u64) -> u64 {
        let frame = self.frames.alloc();
        Arc::make_mut(&mut self.aspace).map_page(vaddr, Pte::kernel(frame));
        frame * PAGE_SIZE
    }

    /// Writes bytes at a mapped virtual address.
    ///
    /// # Panics
    ///
    /// Panics if any touched page is unmapped.
    pub fn write_virt(&mut self, vaddr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            let pa = self
                .aspace
                .translate(vaddr + i as u64)
                .expect("write_virt requires a mapped page");
            self.phys.write_u8(pa, *b);
        }
    }

    /// Writes an 8-byte value at a mapped virtual address.
    ///
    /// # Panics
    ///
    /// Panics if the page is unmapped.
    pub fn write_virt_u64(&mut self, vaddr: u64, v: u64) {
        self.write_virt(vaddr, &v.to_le_bytes());
    }

    /// Reads a byte from a mapped virtual address (0 if unmapped).
    pub fn read_virt_u8(&self, vaddr: u64) -> u8 {
        self.aspace
            .translate(vaddr)
            .map(|pa| self.phys.read_u8(pa))
            .unwrap_or(0)
    }

    /// Flushes both TLBs (the attacker's eviction step).
    pub fn flush_tlbs(&mut self) {
        self.cpu.flush_tlbs(false);
    }

    /// Flushes the cache line holding `vaddr` (user-level `clflush`).
    pub fn clflush_virt(&mut self, vaddr: u64) {
        if let Some(pa) = self.aspace.translate(vaddr) {
            self.mem.clflush(pa);
        }
    }

    /// Ensures code pages for an `n`-instruction program are mapped
    /// (user-executable) so fetch can translate them.
    fn map_code(&mut self, n: usize) {
        let pages = (n as u64 * crate::INST_BYTES).div_ceil(PAGE_SIZE) as usize + 1;
        while self.code_pages_mapped < pages {
            let vaddr = code_vaddr(0) + self.code_pages_mapped as u64 * PAGE_SIZE;
            let frame = self.frames.alloc();
            Arc::make_mut(&mut self.aspace).map_page(vaddr, Pte::user_data(frame));
            self.code_pages_mapped += 1;
        }
    }

    /// Runs `program` to completion (halt, unhandled fault, run-off-end,
    /// or cycle limit) and reports the result.
    ///
    /// Pipeline state and architectural registers reset per run; BPU,
    /// DSB, TLBs, caches, fill buffers and the PMU persist.
    pub fn run(&mut self, program: &Program, cfg: &RunConfig) -> RunResult {
        // Whole runs are timed exactly (two clock reads per run — noise
        // next to a run's millions of steps).
        let prof_run_t = self.prof.enabled().then(std::time::Instant::now);
        self.map_code(program.len());
        let (handle, recorder) = compose_run_sink(cfg, self.ctx.recorder.as_ref());
        self.mem.set_sink(handle.clone());
        self.cpu.reset_run(&cfg.init_regs, cfg.handler_pc, handle);
        self.cpu.pmu.snapshot_into(&mut self.ctx.pmu_before);

        // Check mode: a reference interpreter follows the retirement
        // stream of this run and panics on the first architectural
        // divergence (DESIGN.md §9). The program is shared with the
        // cached copy in the run context — attack loops re-run the same
        // program, so only the first checked run clones it.
        let mut oracle = (self.check_mode || tet_check::enabled()).then(|| {
            tet_check::Oracle::new(
                self.ctx.check_program(program),
                tet_check::InterpConfig {
                    handler_pc: cfg.handler_pc,
                    has_tsx: self.cpu.config().vuln.has_tsx,
                },
                &cfg.init_regs,
            )
        });

        // Fast-forward requires per-cycle events to be off: skipped
        // cycles emit nothing, so trace-enabled runs step every cycle.
        let fast_forward = self.ff_enabled && !self.cpu.sink().enabled();

        // Resolve the pre-decoded µop template once per run; the
        // pipeline stages instantiate µops from it instead of
        // re-cracking instructions every fetch/rename.
        let template = self.ctx.template(program);

        let mut exit = RunExit::CycleLimit;
        while self.cpu.cycle() < cfg.max_cycles {
            if self.cpu.halted() {
                exit = match self.cpu.unhandled_fault() {
                    Some(r) => RunExit::UnhandledFault(*r),
                    None => RunExit::Halted,
                };
                break;
            }
            if self.cpu.ran_off_end(program) {
                exit = RunExit::RanOffEnd;
                break;
            }
            if fast_forward {
                // Fast-forward attempts run once per step, so they are
                // sampled 1-in-N like the pipeline stages.
                if self.prof.enabled() {
                    self.prof_ff_tick += 1;
                    if self.prof_ff_tick >= self.prof.sample_every() {
                        self.prof_ff_tick = 0;
                        let t = std::time::Instant::now();
                        self.cpu.try_fast_forward(cfg.max_cycles);
                        self.prof
                            .add_ns(ProfStage::FastForward, t.elapsed().as_nanos() as u64);
                    } else {
                        self.cpu.try_fast_forward(cfg.max_cycles);
                    }
                } else {
                    self.cpu.try_fast_forward(cfg.max_cycles);
                }
                if self.cpu.cycle() >= cfg.max_cycles {
                    break; // skipped to the budget: CycleLimit, like stepping would
                }
            }
            let mut env = Env {
                mem: &mut self.mem,
                phys: &mut self.phys,
                aspace: &self.aspace,
                check: oracle.as_mut(),
            };
            self.cpu.step(&template, &mut env);
        }

        if let Some(oracle) = oracle.as_mut() {
            let class = match &exit {
                RunExit::Halted => tet_check::ExitClass::Halted,
                RunExit::CycleLimit => tet_check::ExitClass::CycleLimit,
                RunExit::RanOffEnd => tet_check::ExitClass::RanOffEnd,
                RunExit::UnhandledFault(r) => tet_check::ExitClass::UnhandledFault {
                    pc: r.pc,
                    vaddr: r.vaddr,
                    kind: crate::core::check_fault_kind(r.kind),
                },
            };
            oracle.on_run_end(class, self.cpu.regs(), self.cpu.flags());
        }

        let (frontend_trace, uop_trace) = match recorder {
            Some(rec) => {
                let traces =
                    rebuild_traces(program, &rec.drain(), 0, cfg.trace_frontend, cfg.trace_uops);
                // Drained above: keep the (empty) buffer for the next
                // traced run.
                self.ctx.recorder = Some(rec);
                traces
            }
            None => (None, None),
        };
        self.runs += 1;
        self.cycles_total += self.cpu.cycle();
        if let Some(t) = prof_run_t {
            self.prof
                .add_ns(ProfStage::Run, t.elapsed().as_nanos() as u64);
        }
        let pmu_delta = self.cpu.pmu.snapshot().delta(&self.ctx.pmu_before);
        self.pmu_lifetime.accumulate(&pmu_delta);
        RunResult {
            exit,
            cycles: self.cpu.cycle(),
            regs: *self.cpu.regs(),
            flags: self.cpu.flags(),
            retired: self.cpu.retired_insts(),
            pmu: pmu_delta,
            exceptions: self.cpu.take_exceptions(),
            frontend_trace,
            uop_trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tet_isa::{Asm, Cond};

    fn machine() -> Machine {
        Machine::new(CpuConfig::kaby_lake_i7_7700(), 7)
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut m = machine();
        let mut a = Asm::new();
        a.mov_imm(Reg::Rax, 10)
            .mov_imm(Reg::Rbx, 32)
            .add(Reg::Rax, Reg::Rbx)
            .sub(Reg::Rbx, 2u64)
            .halt();
        let r = m.run(&a.assemble().unwrap(), &RunConfig::default());
        assert_eq!(r.exit, RunExit::Halted);
        assert_eq!(r.regs.get(Reg::Rax), 42);
        assert_eq!(r.regs.get(Reg::Rbx), 30);
        assert_eq!(r.retired, 5);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let mut m = machine();
        m.map_user_page(0x20_0000);
        let mut a = Asm::new();
        a.mov_imm(Reg::Rax, 0xfeed)
            .store_abs(Reg::Rax, 0x20_0008)
            .load_abs(Reg::Rbx, 0x20_0008)
            .halt();
        let r = m.run(&a.assemble().unwrap(), &RunConfig::default());
        assert_eq!(r.exit, RunExit::Halted);
        assert_eq!(r.regs.get(Reg::Rbx), 0xfeed);
        // And the value is architecturally visible afterwards.
        let pa = m.aspace().translate(0x20_0008).unwrap();
        assert_eq!(m.phys().read_u64(pa), 0xfeed);
    }

    #[test]
    fn profiler_never_perturbs_simulated_results() {
        // The same program on identical machines, profiled (timing every
        // step, restore and run — the most invasive setting) vs not:
        // every simulated output must match exactly.
        let build = || {
            let mut a = Asm::new();
            let top = a.fresh_label();
            a.mov_imm(Reg::Rcx, 50).mov_imm(Reg::Rax, 0);
            a.bind(top)
                .add(Reg::Rax, 7u64)
                .sub(Reg::Rcx, 1u64)
                .jcc(Cond::Ne, top)
                .halt();
            a.assemble().unwrap()
        };
        let prog = build();

        let mut plain = machine();
        let base = plain.run(&prog, &RunConfig::default());
        let snap_plain = plain.snapshot();
        let mut r_plain = plain;
        r_plain.restore(&snap_plain);
        let base2 = r_plain.run(&prog, &RunConfig::default());

        let profiler = tet_metrics::HostProfiler::new(1);
        let mut profiled = machine();
        profiled.set_profiler(profiler.handle());
        let got = profiled.run(&prog, &RunConfig::default());
        let snap_prof = profiled.snapshot();
        profiled.restore(&snap_prof);
        let got2 = profiled.run(&prog, &RunConfig::default());

        assert_eq!(base.cycles, got.cycles);
        assert_eq!(base.regs, got.regs);
        assert_eq!(base.pmu, got.pmu);
        assert_eq!(base2.cycles, got2.cycles);
        assert_eq!(base2.regs, got2.regs);
        assert_eq!(base2.pmu, got2.pmu);
        // And the profiler did observe the work.
        let est: std::collections::HashMap<_, _> = profiler.estimate_ns().into_iter().collect();
        assert!(est[&tet_metrics::Stage::Run] > 0, "runs were timed");
        assert!(
            profiler.hits(tet_metrics::Stage::SnapshotRestore) == 1,
            "the restore was timed"
        );
        assert!(
            profiler.hits(tet_metrics::Stage::Retire) > 0,
            "steps were sampled"
        );
    }

    #[test]
    fn taken_branch_skips_code() {
        let mut m = machine();
        let mut a = Asm::new();
        let skip = a.fresh_label();
        a.mov_imm(Reg::Rax, 1)
            .cmp_imm(Reg::Rax, 1)
            .jcc(Cond::E, skip)
            .mov_imm(Reg::Rbx, 99) // must be skipped
            .bind(skip)
            .halt();
        let r = m.run(&a.assemble().unwrap(), &RunConfig::default());
        assert_eq!(r.exit, RunExit::Halted);
        assert_eq!(r.regs.get(Reg::Rbx), 0);
    }

    #[test]
    fn loop_counts_down() {
        let mut m = machine();
        let mut a = Asm::new();
        let top = a.fresh_label();
        a.mov_imm(Reg::Rcx, 10).mov_imm(Reg::Rax, 0);
        a.bind(top)
            .add(Reg::Rax, 3u64)
            .sub(Reg::Rcx, 1u64)
            .jcc(Cond::Ne, top)
            .halt();
        let r = m.run(&a.assemble().unwrap(), &RunConfig::default());
        assert_eq!(r.exit, RunExit::Halted);
        assert_eq!(r.regs.get(Reg::Rax), 30);
        assert_eq!(r.regs.get(Reg::Rcx), 0);
    }

    #[test]
    fn call_and_ret() {
        let mut m = machine();
        // Give the program a stack.
        m.map_user_page(0x30_0000);
        let mut a = Asm::new();
        let f = a.fresh_label();
        let over = a.fresh_label();
        a.mov_imm(Reg::Rsp, 0x30_0800)
            .call(f)
            .add(Reg::Rax, 100u64)
            .jmp(over);
        a.bind(f).mov_imm(Reg::Rax, 1).ret();
        a.bind(over).halt();
        let r = m.run(&a.assemble().unwrap(), &RunConfig::default());
        assert_eq!(r.exit, RunExit::Halted);
        assert_eq!(r.regs.get(Reg::Rax), 101);
    }

    #[test]
    fn kernel_access_without_handler_terminates() {
        let mut m = machine();
        m.map_kernel_page(0xffff_ffff_8000_0000);
        let mut a = Asm::new();
        a.load_abs(Reg::Rax, 0xffff_ffff_8000_0000).halt();
        let r = m.run(&a.assemble().unwrap(), &RunConfig::default());
        match r.exit {
            RunExit::UnhandledFault(rec) => {
                assert_eq!(rec.kind, crate::FaultKind::Permission);
                assert_eq!(rec.vaddr, 0xffff_ffff_8000_0000);
            }
            other => panic!("expected unhandled fault, got {other:?}"),
        }
    }

    #[test]
    fn signal_handler_resumes_after_fault() {
        let mut m = machine();
        let mut a = Asm::new();
        let handler = a.fresh_label();
        a.load_abs(Reg::Rax, 0xdead_0000) // unmapped → fault
            .mov_imm(Reg::Rbx, 1) // transient only
            .bind(handler)
            .mov_imm(Reg::Rcx, 7)
            .halt();
        let prog = a.assemble().unwrap();
        let r = m.run(
            &prog,
            &RunConfig {
                handler_pc: Some(2),
                ..RunConfig::default()
            },
        );
        assert_eq!(r.exit, RunExit::Halted);
        assert_eq!(r.regs.get(Reg::Rcx), 7);
        // The faulting load and its shadow never commit.
        assert_eq!(r.regs.get(Reg::Rbx), 0);
        assert_eq!(r.exceptions.len(), 1);
    }

    #[test]
    fn rdtsc_monotonic() {
        let mut m = machine();
        let mut a = Asm::new();
        a.rdtsc()
            .mov_reg(Reg::R8, Reg::Rax)
            .lfence()
            .nops(20)
            .lfence()
            .rdtsc()
            .sub(Reg::Rax, Reg::R8)
            .halt();
        let r = m.run(&a.assemble().unwrap(), &RunConfig::default());
        assert_eq!(r.exit, RunExit::Halted);
        assert!(r.regs.get(Reg::Rax) > 0, "elapsed time must be positive");
    }

    #[test]
    fn run_off_end_detected() {
        let mut m = machine();
        let mut a = Asm::new();
        a.nop().nop();
        let r = m.run(&a.assemble().unwrap(), &RunConfig::default());
        assert_eq!(r.exit, RunExit::RanOffEnd);
    }

    #[test]
    fn init_regs_apply() {
        let mut m = machine();
        let mut a = Asm::new();
        a.add(Reg::Rax, Reg::Rbx).halt();
        let r = m.run(
            &a.assemble().unwrap(),
            &RunConfig {
                init_regs: vec![(Reg::Rax, 2), (Reg::Rbx, 3)],
                ..RunConfig::default()
            },
        );
        assert_eq!(r.regs.get(Reg::Rax), 5);
    }

    #[test]
    fn determinism_same_seed_same_cycles() {
        let mk = || {
            let mut m = Machine::new(CpuConfig::kaby_lake_i7_7700(), 99);
            m.map_user_page(0x20_0000);
            let mut a = Asm::new();
            a.load_abs(Reg::Rax, 0x20_0000)
                .load_abs(Reg::Rbx, 0x20_1000)
                .halt();
            m.run(&a.assemble().unwrap(), &RunConfig::default()).cycles
        };
        assert_eq!(mk(), mk());
    }
}
