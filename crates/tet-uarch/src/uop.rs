//! µop / reorder-buffer entry definitions and dataflow metadata.

use tet_isa::{Flags, Inst, Opcode, Reg, Src};

/// Does this instruction occupy a store-buffer-style slot (writes memory
/// at retire)?
pub fn is_store_kind(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Store { .. } | Inst::StoreByte { .. } | Inst::Push { .. } | Inst::Call { .. }
    )
}

/// Does this instruction read memory through the load path?
pub fn is_load_kind(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Load { .. } | Inst::LoadByte { .. } | Inst::Pop { .. } | Inst::Ret
    )
}

/// Packed µop classification bits, computed once per instruction when a
/// [`ProgramTemplate`](crate::template::ProgramTemplate) is built so the
/// per-cycle pipeline stages test a bit instead of re-matching on the
/// instruction shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UopKind(u16);

impl UopKind {
    const BRANCH: u16 = 1 << 0;
    const MEMORY: u16 = 1 << 1;
    const FENCE: u16 = 1 << 2;
    const STORE_KIND: u16 = 1 << 3;
    const LOAD_KIND: u16 = 1 << 4;
    const HALT: u16 = 1 << 5;
    const CLFLUSH: u16 = 1 << 6;
    const READS_FLAGS: u16 = 1 << 7;
    const WRITES_FLAGS: u16 = 1 << 8;

    /// Classifies an instruction into its µop kind bits.
    pub fn classify(inst: &Inst) -> UopKind {
        let mut bits = 0u16;
        if inst.is_branch() {
            bits |= Self::BRANCH;
        }
        if inst.is_memory() {
            bits |= Self::MEMORY;
        }
        if inst.is_fence() {
            bits |= Self::FENCE;
        }
        if is_store_kind(inst) {
            bits |= Self::STORE_KIND;
        }
        if is_load_kind(inst) {
            bits |= Self::LOAD_KIND;
        }
        if matches!(inst, Inst::Halt) {
            bits |= Self::HALT;
        }
        if matches!(inst, Inst::Clflush { .. }) {
            bits |= Self::CLFLUSH;
        }
        if inst.reads_flags() {
            bits |= Self::READS_FLAGS;
        }
        if inst.writes_flags() {
            bits |= Self::WRITES_FLAGS;
        }
        UopKind(bits)
    }

    /// Control-flow instruction (mirrors [`Inst::is_branch`]).
    #[inline]
    pub fn is_branch(self) -> bool {
        self.0 & Self::BRANCH != 0
    }

    /// Memory access (mirrors [`Inst::is_memory`]).
    #[inline]
    pub fn is_memory(self) -> bool {
        self.0 & Self::MEMORY != 0
    }

    /// Fence (mirrors [`Inst::is_fence`]).
    #[inline]
    pub fn is_fence(self) -> bool {
        self.0 & Self::FENCE != 0
    }

    /// Occupies a store-buffer slot (mirrors [`is_store_kind`]).
    #[inline]
    pub fn is_store_kind(self) -> bool {
        self.0 & Self::STORE_KIND != 0
    }

    /// Reads memory through the load path (mirrors [`is_load_kind`]).
    #[inline]
    pub fn is_load_kind(self) -> bool {
        self.0 & Self::LOAD_KIND != 0
    }

    /// The halt instruction.
    #[inline]
    pub fn is_halt(self) -> bool {
        self.0 & Self::HALT != 0
    }

    /// A cache-line flush.
    #[inline]
    pub fn is_clflush(self) -> bool {
        self.0 & Self::CLFLUSH != 0
    }

    /// Reads the arithmetic flags (mirrors [`Inst::reads_flags`]).
    #[inline]
    pub fn reads_flags(self) -> bool {
        self.0 & Self::READS_FLAGS != 0
    }

    /// Writes the arithmetic flags (mirrors [`Inst::writes_flags`]).
    #[inline]
    pub fn writes_flags(self) -> bool {
        self.0 & Self::WRITES_FLAGS != 0
    }
}

/// Why a memory access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Translation exists but the access mode is not permitted
    /// (user-mode access to a supervisor page) — the Meltdown path,
    /// handled by the exception microcode at retirement.
    Permission,
    /// No translation — the Zombieload / unmapped-probe path, handled by
    /// a microcode assist (machine clear) at retirement.
    NotPresent,
    /// A reserved-bit PTE terminated the walk (FLARE dummy pages);
    /// handled like [`FaultKind::NotPresent`].
    ReservedBit,
}

impl FaultKind {
    /// The observability-crate spelling of this fault class.
    pub fn to_obs(self) -> tet_obs::FaultClass {
        match self {
            FaultKind::Permission => tet_obs::FaultClass::Permission,
            FaultKind::NotPresent => tet_obs::FaultClass::NotPresent,
            FaultKind::ReservedBit => tet_obs::FaultClass::ReservedBit,
        }
    }
}

/// A fault recorded on a µop during execution, delivered at retirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The fault class.
    pub kind: FaultKind,
    /// Faulting virtual address.
    pub vaddr: u64,
}

/// How a fault left the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultRoute {
    /// Architectural exception → signal handler (or run termination).
    Exception,
    /// Microcode assist / machine clear, then the exception.
    MachineClear,
    /// TSX abort → transaction fallback path, no exception.
    TxnAbort,
}

impl FaultRoute {
    /// The observability-crate spelling of this delivery route.
    pub fn to_obs(self) -> tet_obs::DeliveryRoute {
        match self {
            FaultRoute::Exception => tet_obs::DeliveryRoute::Exception,
            FaultRoute::MachineClear => tet_obs::DeliveryRoute::MachineClear,
            FaultRoute::TxnAbort => tet_obs::DeliveryRoute::TxnAbort,
        }
    }
}

/// Why a µop was squashed instead of retiring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SquashReason {
    /// An older branch resolved against the prediction.
    BranchMispredict,
    /// An older µop's fault flushed the pipeline.
    Fault,
    /// The enclosing transaction aborted.
    TxnAbort,
}

impl SquashReason {
    /// The observability-crate spelling of this squash cause.
    pub fn to_obs(self) -> tet_obs::SquashCause {
        match self {
            SquashReason::BranchMispredict => tet_obs::SquashCause::BranchMispredict,
            SquashReason::Fault => tet_obs::SquashCause::Fault,
            SquashReason::TxnAbort => tet_obs::SquashCause::TxnAbort,
        }
    }

    /// The inverse of [`SquashReason::to_obs`] (used when rebuilding
    /// [`UopTrace`] records from a recorded event stream).
    pub fn from_obs(cause: tet_obs::SquashCause) -> SquashReason {
        match cause {
            tet_obs::SquashCause::BranchMispredict => SquashReason::BranchMispredict,
            tet_obs::SquashCause::Fault => SquashReason::Fault,
            tet_obs::SquashCause::TxnAbort => SquashReason::TxnAbort,
        }
    }
}

/// How a traced µop left the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UopFate {
    /// Still in flight when the run ended.
    InFlight,
    /// Retired architecturally.
    Retired {
        /// Retirement cycle.
        at: u64,
    },
    /// Squashed — executed transiently, results discarded.
    Squashed {
        /// Squash cycle.
        at: u64,
        /// What caused the squash.
        reason: SquashReason,
    },
}

/// One µop's lifecycle record, produced when
/// [`RunConfig::trace_uops`](crate::RunConfig) is set — the raw data for
/// visualising transient execution.
#[derive(Debug, Clone)]
pub struct UopTrace {
    /// Monotonic µop id.
    pub id: u64,
    /// Instruction index.
    pub pc: usize,
    /// The instruction.
    pub inst: Inst,
    /// Cycle the µop was renamed into the ROB.
    pub renamed_at: u64,
    /// Cycle execution started, if it did.
    pub started_at: Option<u64>,
    /// Cycle the result was ready, if execution finished.
    pub done_at: Option<u64>,
    /// How the µop ended.
    pub fate: UopFate,
}

impl UopTrace {
    /// Whether this µop executed but never retired — i.e. it was part of
    /// a transient execution.
    pub fn transient(&self) -> bool {
        matches!(self.fate, UopFate::Squashed { .. }) && self.started_at.is_some()
    }
}

/// One source operand dependency, resolved at rename time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Depends on an architectural register.
    Reg(Reg),
    /// Depends on the arithmetic flags.
    Flags,
}

/// A renamed dependency: which operand, and (if in flight at rename time)
/// the producing µop's id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dep {
    /// Operand kind.
    pub kind: DepKind,
    /// Producing µop id, or `None` if the committed state was current at
    /// rename time.
    pub producer: Option<u64>,
}

/// Inline, allocation-free dependency list. An instruction has at most
/// three register sources plus the flags, so four slots always suffice —
/// renaming a µop never touches the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepList {
    len: u8,
    items: [Dep; 4],
}

impl Default for DepList {
    fn default() -> Self {
        DepList {
            len: 0,
            items: [Dep {
                kind: DepKind::Flags,
                producer: None,
            }; 4],
        }
    }
}

impl DepList {
    /// Creates an empty list.
    pub fn new() -> DepList {
        DepList::default()
    }

    /// Appends a dependency.
    ///
    /// # Panics
    ///
    /// Panics if the fixed capacity (4) is exceeded — impossible for any
    /// instruction in the ISA.
    pub fn push(&mut self, d: Dep) {
        self.items[self.len as usize] = d;
        self.len += 1;
    }

    /// The dependencies as a slice.
    pub fn as_slice(&self) -> &[Dep] {
        &self.items[..self.len as usize]
    }

    /// Iterates over the dependencies.
    pub fn iter(&self) -> std::slice::Iter<'_, Dep> {
        self.as_slice().iter()
    }
}

impl<'a> IntoIterator for &'a DepList {
    type Item = &'a Dep;
    type IntoIter = std::slice::Iter<'a, Dep>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Inline, allocation-free register-result list. A µop writes at most
/// two registers (`pop` writes the destination and `rsp`), so two slots
/// suffice — recording execution results never touches the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResultList {
    len: u8,
    items: [(Reg, u64); 2],
}

impl Default for ResultList {
    fn default() -> Self {
        ResultList {
            len: 0,
            items: [(Reg::Rax, 0); 2],
        }
    }
}

impl ResultList {
    /// Creates an empty list.
    pub fn new() -> ResultList {
        ResultList::default()
    }

    /// Appends a `(register, value)` result.
    ///
    /// # Panics
    ///
    /// Panics if the fixed capacity (2) is exceeded — impossible for any
    /// instruction in the ISA.
    pub fn push(&mut self, reg: Reg, value: u64) {
        self.items[self.len as usize] = (reg, value);
        self.len += 1;
    }

    /// The results as a slice.
    pub fn as_slice(&self) -> &[(Reg, u64)] {
        &self.items[..self.len as usize]
    }

    /// Iterates over the results.
    pub fn iter(&self) -> std::slice::Iter<'_, (Reg, u64)> {
        self.as_slice().iter()
    }
}

impl<'a> IntoIterator for &'a ResultList {
    type Item = &'a (Reg, u64);
    type IntoIter = std::slice::Iter<'a, (Reg, u64)>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Inline, allocation-free register list returned by [`dest_regs`] and
/// [`src_regs`] (at most three: e.g. a store's data register plus a
/// base+index address).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegList {
    len: u8,
    regs: [Reg; 3],
}

impl Default for RegList {
    fn default() -> Self {
        RegList {
            len: 0,
            regs: [Reg::Rax; 3],
        }
    }
}

impl RegList {
    /// Creates an empty list.
    pub fn new() -> RegList {
        RegList::default()
    }

    /// Appends a register.
    ///
    /// # Panics
    ///
    /// Panics if the fixed capacity (3) is exceeded — impossible for any
    /// instruction in the ISA.
    pub fn push(&mut self, r: Reg) {
        self.regs[self.len as usize] = r;
        self.len += 1;
    }

    /// Appends every register yielded by `it`.
    pub fn extend(&mut self, it: impl IntoIterator<Item = Reg>) {
        for r in it {
            self.push(r);
        }
    }

    /// The registers as a slice.
    pub fn as_slice(&self) -> &[Reg] {
        &self.regs[..self.len as usize]
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl IntoIterator for RegList {
    type Item = Reg;
    type IntoIter = std::iter::Take<std::array::IntoIter<Reg, 3>>;
    fn into_iter(self) -> Self::IntoIter {
        self.regs.into_iter().take(self.len as usize)
    }
}

/// In-flight store bookkeeping (architectural write happens at retire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreInfo {
    /// Virtual address.
    pub vaddr: u64,
    /// Translated physical address (stores that fault have none).
    pub pa: Option<u64>,
    /// Value to write.
    pub value: u64,
    /// Whether this is a 1-byte store.
    pub byte: bool,
}

/// One reorder-buffer entry.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Monotonic µop id (age order).
    pub id: u64,
    /// Instruction index this µop came from.
    pub pc: usize,
    /// The decoded instruction.
    pub inst: Inst,
    /// Frontend-predicted next instruction index.
    pub pred_next: usize,
    /// Whether the frontend predicted taken.
    pub pred_taken: bool,
    /// Renamed source dependencies.
    pub deps: DepList,
    /// Cycle the µop was renamed into the ROB.
    pub issued_at: u64,
    /// Whether execution has started.
    pub started: bool,
    /// Cycle the result becomes available to dependents.
    pub forward_at: Option<u64>,
    /// Cycle the µop becomes retirement-eligible (later than
    /// `forward_at` for faulting loads — that gap *is* the transient
    /// window).
    pub done_at: Option<u64>,
    /// Register results `(reg, value)` (up to two: e.g. `pop` writes the
    /// destination and `rsp`).
    pub results: ResultList,
    /// Flags result, if the µop writes flags.
    pub flags_out: Option<Flags>,
    /// Fault recorded during execution, if any.
    pub fault: Option<Fault>,
    /// Resolved next pc (branches only).
    pub actual_next: Option<usize>,
    /// Whether branch resolution bookkeeping has run.
    pub resolved: bool,
    /// Whether the branch turned out mispredicted.
    pub mispredicted: bool,
    /// Pending store data.
    pub store: Option<StoreInfo>,
    /// Innermost TSX abort target covering this µop, if any.
    pub txn_abort: Option<usize>,
    /// Speculative transaction-stack snapshot *after* this µop renamed
    /// (used to rebuild rename state on partial squash). Shared: the
    /// stack only changes at XBegin/XEnd rename, so consecutive entries
    /// reference the same snapshot.
    pub txn_snapshot: std::sync::Arc<[usize]>,
    /// Template-derived classification bits (branch / memory / fence /
    /// store-kind / …), so pipeline stages never re-match on `inst`.
    pub kind: UopKind,
    /// Template-derived architectural destination registers.
    pub dests: RegList,
    /// Dense opcode — the index into the execute dispatch table.
    pub op: Opcode,
    /// Earliest cycle the scheduler needs to re-evaluate this µop
    /// (0 = evaluate immediately, `u64::MAX` = parked on a producer's
    /// waiter list until woken).
    pub wake_at: u64,
    /// Head of the intrusive list of µop ids parked on *this* entry's
    /// result (woken when this entry executes).
    pub waiter_head: Option<u64>,
    /// Next µop id in the waiter list *this* entry is parked on.
    pub next_waiter: Option<u64>,
}

impl RobEntry {
    /// Whether the µop has finished executing and may retire at `now`.
    pub fn retire_ready(&self, now: u64) -> bool {
        self.done_at.is_some_and(|d| d <= now)
    }

    /// Whether the result is available to dependents at `now`.
    pub fn forward_ready(&self, now: u64) -> bool {
        self.forward_at.is_some_and(|d| d <= now)
    }

    /// The value this µop produced for register `r`, if any.
    pub fn result_for(&self, r: Reg) -> Option<u64> {
        self.results
            .iter()
            .find(|(reg, _)| *reg == r)
            .map(|(_, v)| *v)
    }
}

/// Architectural destination registers of an instruction (including the
/// stack-pointer side effects of push/pop/call/ret).
pub fn dest_regs(inst: &Inst) -> RegList {
    let mut v = RegList::new();
    if let Some(d) = inst.dest_reg() {
        v.push(d);
    }
    match inst {
        Inst::Push { .. } | Inst::Call { .. } | Inst::Ret => v.push(Reg::Rsp),
        Inst::Pop { .. } => v.push(Reg::Rsp),
        _ => {}
    }
    v
}

/// Architectural source registers of an instruction.
pub fn src_regs(inst: &Inst) -> RegList {
    let mut v = RegList::new();
    match inst {
        Inst::MovReg { src, .. } => v.push(*src),
        Inst::Load { addr, .. }
        | Inst::LoadByte { addr, .. }
        | Inst::Lea { addr, .. }
        | Inst::Clflush { addr }
        | Inst::Prefetch { addr } => v.extend(addr.srcs()),
        Inst::Store { src, addr } | Inst::StoreByte { src, addr } => {
            v.push(*src);
            v.extend(addr.srcs());
        }
        Inst::Alu { dst, src, .. } => {
            v.push(*dst);
            if let Src::Reg(r) = src {
                v.push(*r);
            }
        }
        Inst::Cmp { a, b } | Inst::Test { a, b } => {
            v.push(*a);
            if let Src::Reg(r) = b {
                v.push(*r);
            }
        }
        Inst::JmpReg { reg } => v.push(*reg),
        Inst::Push { src } => {
            v.push(*src);
            v.push(Reg::Rsp);
        }
        Inst::Pop { .. } | Inst::Call { .. } | Inst::Ret => v.push(Reg::Rsp),
        _ => {}
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use tet_isa::{Addr, Cond};

    #[test]
    fn dest_regs_cover_stack_ops() {
        assert_eq!(
            dest_regs(&Inst::Push { src: Reg::Rax }).as_slice(),
            &[Reg::Rsp]
        );
        assert_eq!(
            dest_regs(&Inst::Pop { dst: Reg::Rbx }).as_slice(),
            &[Reg::Rbx, Reg::Rsp]
        );
        assert_eq!(dest_regs(&Inst::Call { target: 3 }).as_slice(), &[Reg::Rsp]);
        assert_eq!(dest_regs(&Inst::Ret).as_slice(), &[Reg::Rsp]);
        assert_eq!(dest_regs(&Inst::Rdtsc).as_slice(), &[Reg::Rax]);
        assert!(dest_regs(&Inst::Nop).is_empty());
    }

    #[test]
    fn src_regs_cover_memory_operands() {
        let addr = Addr::base_index(Reg::Rbx, Reg::Rcx, 8, 0);
        assert_eq!(
            src_regs(&Inst::Load {
                dst: Reg::Rax,
                addr
            })
            .as_slice(),
            &[Reg::Rbx, Reg::Rcx]
        );
        assert_eq!(
            src_regs(&Inst::Store {
                src: Reg::Rdx,
                addr
            })
            .as_slice(),
            &[Reg::Rdx, Reg::Rbx, Reg::Rcx]
        );
        assert_eq!(src_regs(&Inst::Ret).as_slice(), &[Reg::Rsp]);
        assert!(src_regs(&Inst::Jcc {
            cond: Cond::E,
            target: 0
        })
        .is_empty());
    }

    #[test]
    fn inline_lists_hold_their_capacity() {
        let mut d = DepList::new();
        for i in 0..4 {
            d.push(Dep {
                kind: DepKind::Reg(Reg::Rax),
                producer: Some(i),
            });
        }
        assert_eq!(d.as_slice().len(), 4);
        assert_eq!(d.iter().filter_map(|x| x.producer).sum::<u64>(), 6);

        let mut r = ResultList::new();
        r.push(Reg::Rbx, 1);
        r.push(Reg::Rsp, 2);
        assert_eq!(r.as_slice(), &[(Reg::Rbx, 1), (Reg::Rsp, 2)]);

        let mut l = RegList::new();
        l.extend([Reg::Rax, Reg::Rbx, Reg::Rcx]);
        assert_eq!(l.into_iter().collect::<Vec<_>>().len(), 3);
    }

    #[test]
    fn retire_and_forward_readiness() {
        let mut e = RobEntry {
            id: 0,
            pc: 0,
            inst: Inst::Nop,
            pred_next: 1,
            pred_taken: false,
            deps: DepList::new(),
            issued_at: 0,
            started: true,
            forward_at: Some(5),
            done_at: Some(9),
            results: {
                let mut r = ResultList::new();
                r.push(Reg::Rax, 7);
                r
            },
            flags_out: None,
            fault: None,
            actual_next: None,
            resolved: false,
            mispredicted: false,
            store: None,
            txn_abort: None,
            txn_snapshot: std::sync::Arc::from(Vec::new()),
            kind: UopKind::classify(&Inst::Nop),
            dests: RegList::new(),
            op: Opcode::Nop,
            wake_at: 0,
            waiter_head: None,
            next_waiter: None,
        };
        assert!(!e.forward_ready(4));
        assert!(e.forward_ready(5));
        assert!(!e.retire_ready(8));
        assert!(e.retire_ready(9));
        assert_eq!(e.result_for(Reg::Rax), Some(7));
        assert_eq!(e.result_for(Reg::Rbx), None);
        e.done_at = None;
        assert!(!e.retire_ready(100));
    }
}
