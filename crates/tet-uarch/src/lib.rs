//! Cycle-level out-of-order core model with explicit transient execution.
//!
//! This crate is the substrate that *produces* the Whisper (DAC 2024)
//! side channel. It models, per logical thread:
//!
//! * a **frontend** with a branch prediction unit (BTB + gshare
//!   conditional predictor + return stack buffer), a decoded stream
//!   buffer (DSB, the µop cache), the legacy MITE decode path and the
//!   instruction decode queue (IDQ) — [`frontend`], [`bpu`];
//! * an **out-of-order backend** with a reorder buffer, reservation
//!   stations, execution ports, in-order retirement, and full
//!   speculative-squash machinery — [`core`];
//! * **transient execution**: faulting loads forward data to dependents
//!   and are only handled at retirement; branch mispredictions inside a
//!   transient window trigger nested squashes and frontend resteers;
//!   TSX regions redirect faults to their abort handler;
//! * the three calibrated timing mechanisms behind the paper's results
//!   (see `DESIGN.md` §1): exception-entry serialization after a
//!   recovery (lengthens ToTE — TET-Meltdown), squash cost proportional
//!   to ROB occupancy (shortens ToTE — TET-Zombieload / TET-Spectre-RSB),
//!   and page-walk retry on failing translations (TET-KASLR).
//!
//! The easiest entry point is [`Machine`], which owns a core, a memory
//! hierarchy, physical memory and an address space:
//!
//! ```
//! use tet_isa::{Asm, Reg};
//! use tet_uarch::{CpuConfig, Machine, RunConfig};
//!
//! # fn main() -> Result<(), tet_isa::AssembleError> {
//! let mut machine = Machine::new(CpuConfig::kaby_lake_i7_7700(), 42);
//! let data = machine.map_user_page(0x10_0000);
//! machine.phys_mut().write_u64(data, 7);
//!
//! let mut a = Asm::new();
//! a.load_abs(Reg::Rax, 0x10_0000).halt();
//! let result = machine.run(&a.assemble()?, &RunConfig::default());
//! assert_eq!(result.regs.get(Reg::Rax), 7);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod bpu;
pub mod config;
pub mod core;
pub mod frontend;
mod lru;
pub mod machine;
pub mod smt;
pub mod template;
pub mod uop;

pub use crate::core::{Cpu, ExceptionRecord, RunExit};
pub use bpu::{Bpu, BpuConfig, Prediction};
pub use config::{CpuConfig, ForwardPolicy, TimingConfig, VulnProfile};
pub use frontend::FrontendTraceEntry;
pub use machine::{
    DeltaMarker, Machine, MachineSnapshot, MachineStats, RunConfig, RunDelta, RunResult,
};
pub use smt::{SmtMachine, SmtRunResult};
pub use template::{ProgramTemplate, UopMeta};
pub use uop::{Fault, FaultKind, SquashReason, UopFate, UopTrace};

/// Virtual base address where program code is mapped.
pub const CODE_BASE: u64 = 0x0040_0000;

/// Bytes per (modelled) instruction; used to map instruction indices to
/// code virtual addresses for I-cache and ITLB purposes.
pub const INST_BYTES: u64 = 4;

/// The code virtual address of instruction index `pc`.
#[inline]
pub fn code_vaddr(pc: usize) -> u64 {
    CODE_BASE + pc as u64 * INST_BYTES
}
