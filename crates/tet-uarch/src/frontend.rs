//! Frontend data structures: the decoded stream buffer (µop cache), the
//! fetched-µop record, and the per-cycle delivery trace behind Figure 3.

use tet_isa::Inst;

use crate::lru::LruIndex;

/// The decoded stream buffer (DSB, a.k.a. µop cache): an LRU set of
/// instruction indices whose decoded µops are available without engaging
/// the legacy MITE decoder.
///
/// The paper's frontend analysis (Table 3, Figure 3) shows DSB delivery
/// dropping and MITE delivery rising when the in-window Jcc triggers a
/// resteer; this structure plus the fetch logic reproduce that shift.
///
/// The DSB is consulted once per fetched instruction, so recency is kept
/// in an O(1) [`LruIndex`] rather than the original `VecDeque` position
/// scan; the recency/eviction order is exactly the same (see the
/// equivalence property test below).
#[derive(Debug, Clone)]
pub struct Dsb {
    lru: LruIndex<()>,
}

impl Dsb {
    /// Creates a DSB caching up to `capacity` decoded instructions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "DSB needs capacity");
        Dsb {
            lru: LruIndex::new(capacity),
        }
    }

    /// Looks up a decoded instruction, refreshing LRU on hit.
    pub fn lookup(&mut self, pc: usize) -> bool {
        self.lru.get_refresh(pc).is_some()
    }

    /// Inserts a freshly decoded instruction.
    pub fn insert(&mut self, pc: usize) {
        self.lru.insert(pc, ());
    }

    /// Number of cached decoded instructions.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether the DSB is empty.
    pub fn is_empty(&self) -> bool {
        self.lru.len() == 0
    }

    /// Seals the current state for delta restore (DESIGN.md §16).
    pub fn seal(&mut self) {
        self.lru.seal();
    }

    /// Journal-driven rollback to the sealed state shared with `src`.
    /// Returns `false` (self untouched) when no seal is shared.
    pub fn restore_delta(&mut self, src: &Dsb) -> bool {
        self.lru.restore_delta(&src.lru)
    }

    /// Overwrites this DSB with the state of `src`, reusing the index
    /// allocations (snapshot restore). Adopts the source's seal.
    pub fn restore_from(&mut self, src: &Dsb) {
        self.lru.restore_from(&src.lru);
    }
}

/// A µop sitting in the IDQ, as produced by fetch/decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchedUop {
    /// Instruction index.
    pub pc: usize,
    /// The instruction.
    pub inst: Inst,
    /// Predicted next instruction index.
    pub pred_next: usize,
    /// Whether the frontend predicted a taken branch.
    pub pred_taken: bool,
    /// Whether the µops came from the DSB (vs the MITE legacy path).
    pub from_dsb: bool,
}

/// One cycle of frontend delivery, recorded when tracing is enabled —
/// the raw data behind Figure 3's DSB/MITE switch around a resteer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontendTraceEntry {
    /// Cycle number.
    pub cycle: u64,
    /// µops delivered from the DSB this cycle.
    pub dsb_uops: usize,
    /// µops delivered from MITE this cycle.
    pub mite_uops: usize,
    /// Whether the frontend was stalled (resteer/ICache/ITLB) this cycle.
    pub stalled: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_rejected() {
        let _ = Dsb::new(0);
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let mut d = Dsb::new(4);
        assert!(!d.lookup(10));
        d.insert(10);
        assert!(d.lookup(10));
    }

    #[test]
    fn lru_eviction() {
        let mut d = Dsb::new(2);
        d.insert(1);
        d.insert(2);
        assert!(d.lookup(1)); // 2 becomes LRU
        d.insert(3);
        assert!(d.lookup(1));
        assert!(!d.lookup(2));
        assert!(d.lookup(3));
    }

    #[test]
    fn reinsert_does_not_grow() {
        let mut d = Dsb::new(2);
        d.insert(1);
        d.insert(1);
        assert_eq!(d.len(), 1);
    }

    /// The original `VecDeque` DSB, kept verbatim as the equivalence
    /// oracle for the indexed representation.
    struct RefDsb {
        lru: VecDeque<usize>,
        capacity: usize,
    }

    impl RefDsb {
        fn lookup(&mut self, pc: usize) -> bool {
            if let Some(i) = self.lru.iter().position(|&p| p == pc) {
                let p = self.lru.remove(i).expect("position was valid");
                self.lru.push_front(p);
                true
            } else {
                false
            }
        }

        fn insert(&mut self, pc: usize) {
            if let Some(i) = self.lru.iter().position(|&p| p == pc) {
                self.lru.remove(i);
            } else if self.lru.len() == self.capacity {
                self.lru.pop_back();
            }
            self.lru.push_front(pc);
        }
    }

    #[test]
    fn indexed_dsb_matches_linear_reference() {
        let mut state = 0xd1342543de82ef95u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for capacity in [1usize, 2, 8, 64] {
            let mut dsb = Dsb::new(capacity);
            let mut reference = RefDsb {
                lru: VecDeque::new(),
                capacity,
            };
            for step in 0..30_000 {
                let r = rng();
                let pc = (r >> 8) as usize % (capacity * 2 + 3);
                if r % 2 == 0 {
                    assert_eq!(
                        dsb.lookup(pc),
                        reference.lookup(pc),
                        "step {step} cap {capacity}"
                    );
                } else {
                    dsb.insert(pc);
                    reference.insert(pc);
                }
                assert_eq!(dsb.len(), reference.lru.len());
            }
        }
    }
}
