//! Two-thread SMT co-execution on one physical core.
//!
//! The paper's §4.4 covert channel works because an exception on one SMT
//! thread flushes the shared pipeline and the sibling observes the bubble
//! in its `nop`-loop timing. [`SmtMachine`] runs two [`Cpu`]s in lockstep
//! sharing one [`MemorySystem`] (so the line fill buffer leaks across
//! threads, the Zombieload substrate) and broadcasts each thread's
//! pipeline-flush horizons to its sibling.

use tet_isa::Program;
use tet_mem::{AddressSpace, FrameAlloc, MemorySystem, PhysMem, Pte, PAGE_SIZE};

use crate::core::{Cpu, Env, RunExit};
use crate::machine::{compose_run_sink, rebuild_traces, RunConfig, RunResult};
use crate::{code_vaddr, CpuConfig};

/// The outcome of an SMT co-run.
#[derive(Debug, Clone)]
pub struct SmtRunResult {
    /// Thread 0's result.
    pub t0: RunResult,
    /// Thread 1's result.
    pub t1: RunResult,
}

/// Two logical threads sharing one core's memory subsystem and pipeline
/// flushes.
///
/// # Examples
///
/// ```
/// use tet_isa::{Asm, Reg};
/// use tet_uarch::{CpuConfig, SmtMachine, RunConfig};
///
/// # fn main() -> Result<(), tet_isa::AssembleError> {
/// let mut smt = SmtMachine::new(CpuConfig::kaby_lake_i7_7700(), 3);
/// let mut a = Asm::new();
/// a.mov_imm(Reg::Rax, 1).halt();
/// let p = a.assemble()?;
/// let r = smt.run(&p, &p, &RunConfig::default(), &RunConfig::default());
/// assert_eq!(r.t0.regs.get(Reg::Rax), 1);
/// assert_eq!(r.t1.regs.get(Reg::Rax), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SmtMachine {
    cpu0: Cpu,
    cpu1: Cpu,
    mem: MemorySystem,
    phys: PhysMem,
    aspace0: AddressSpace,
    aspace1: AddressSpace,
    frames: FrameAlloc,
}

impl SmtMachine {
    /// Creates an SMT pair of the given CPU model.
    pub fn new(cfg: CpuConfig, seed: u64) -> Self {
        SmtMachine {
            cpu0: Cpu::new(cfg.clone()),
            cpu1: Cpu::new(cfg.clone()),
            mem: MemorySystem::new(cfg.mem, seed),
            phys: PhysMem::new(),
            aspace0: AddressSpace::new(),
            aspace1: AddressSpace::new(),
            frames: FrameAlloc::starting_at(0x2000),
        }
    }

    /// Thread 0's core.
    pub fn cpu0(&self) -> &Cpu {
        &self.cpu0
    }

    /// Thread 1's core.
    pub fn cpu1(&self) -> &Cpu {
        &self.cpu1
    }

    /// The shared memory hierarchy (and its line fill buffer).
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Mutable shared memory hierarchy.
    pub fn mem_mut(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Shared physical memory.
    pub fn phys_mut(&mut self) -> &mut PhysMem {
        &mut self.phys
    }

    /// One thread's address space (0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if `thread > 1`.
    pub fn aspace(&self, thread: usize) -> &AddressSpace {
        match thread {
            0 => &self.aspace0,
            1 => &self.aspace1,
            _ => panic!("SMT core has two threads"),
        }
    }

    /// Maps a user page in one thread's address space; returns the
    /// physical base.
    pub fn map_user_page(&mut self, thread: usize, vaddr: u64) -> u64 {
        let frame = self.frames.alloc();
        let aspace = if thread == 0 {
            &mut self.aspace0
        } else {
            &mut self.aspace1
        };
        aspace.map_page(vaddr, Pte::user_data(frame));
        frame * PAGE_SIZE
    }

    fn map_code(&mut self, thread: usize, n: usize) {
        let pages = (n as u64 * crate::INST_BYTES).div_ceil(PAGE_SIZE) as usize + 1;
        for p in 0..pages {
            let vaddr = code_vaddr(0) + p as u64 * PAGE_SIZE;
            let frame = self.frames.alloc();
            let aspace = if thread == 0 {
                &mut self.aspace0
            } else {
                &mut self.aspace1
            };
            aspace.map_page(vaddr, Pte::user_data(frame));
        }
    }

    /// Runs both programs to completion (or the max of both cycle
    /// budgets), broadcasting pipeline flushes between the threads.
    pub fn run(
        &mut self,
        prog0: &Program,
        prog1: &Program,
        cfg0: &RunConfig,
        cfg1: &RunConfig,
    ) -> SmtRunResult {
        self.map_code(0, prog0.len());
        self.map_code(1, prog1.len());
        // SMT runs are rare and long, so templates are built per run
        // rather than cached (the build is O(program length)).
        let tpl0 = crate::template::ProgramTemplate::build(prog0);
        let tpl1 = crate::template::ProgramTemplate::build(prog1);
        // Each thread gets its own handle (tagged 0 / 1); the shared
        // memory hierarchy is re-pointed at the stepping thread's handle
        // so cache events carry the right thread id.
        let (h0, rec0) = compose_run_sink(cfg0, None);
        let (h1, rec1) = compose_run_sink(cfg1, None);
        let h1 = h1.for_thread(1);
        let trace_mem = h0.enabled() || h1.enabled();
        self.mem.set_sink(h0.clone());
        self.cpu0
            .reset_run(&cfg0.init_regs, cfg0.handler_pc, h0.clone());
        self.cpu1
            .reset_run(&cfg1.init_regs, cfg1.handler_pc, h1.clone());
        let pmu0_before = self.cpu0.pmu.snapshot();
        let pmu1_before = self.cpu1.pmu.snapshot();
        let max_cycles = cfg0.max_cycles.max(cfg1.max_cycles);

        let mut exit0 = RunExit::CycleLimit;
        let mut exit1 = RunExit::CycleLimit;
        let mut cycle = 0u64;
        while cycle < max_cycles {
            let done0 = self.cpu0.halted() || self.cpu0.ran_off_end(prog0);
            let done1 = self.cpu1.halted() || self.cpu1.ran_off_end(prog1);
            if done0 && done1 {
                break;
            }
            if !done0 {
                if trace_mem {
                    self.mem.set_sink(h0.clone());
                }
                let mut env = Env {
                    mem: &mut self.mem,
                    phys: &mut self.phys,
                    aspace: &self.aspace0,
                    // SMT runs are not oracle-checked (DESIGN.md §9).
                    check: None,
                };
                let ev = self.cpu0.step(&tpl0, &mut env);
                if let Some(until) = ev.flush_until {
                    self.cpu1.impose_external_stall(until);
                }
            }
            if !done1 {
                if trace_mem {
                    self.mem.set_sink(h1.clone());
                }
                let mut env = Env {
                    mem: &mut self.mem,
                    phys: &mut self.phys,
                    aspace: &self.aspace1,
                    check: None,
                };
                let ev = self.cpu1.step(&tpl1, &mut env);
                if let Some(until) = ev.flush_until {
                    self.cpu0.impose_external_stall(until);
                }
            }
            cycle += 1;
        }

        if self.cpu0.halted() {
            exit0 = match self.cpu0.unhandled_fault() {
                Some(r) => RunExit::UnhandledFault(*r),
                None => RunExit::Halted,
            };
        } else if self.cpu0.ran_off_end(prog0) {
            exit0 = RunExit::RanOffEnd;
        }
        if self.cpu1.halted() {
            exit1 = match self.cpu1.unhandled_fault() {
                Some(r) => RunExit::UnhandledFault(*r),
                None => RunExit::Halted,
            };
        } else if self.cpu1.ran_off_end(prog1) {
            exit1 = RunExit::RanOffEnd;
        }

        let (frontend0, uops0) = match rec0 {
            Some(rec) => {
                rebuild_traces(prog0, &rec.drain(), 0, cfg0.trace_frontend, cfg0.trace_uops)
            }
            None => (None, None),
        };
        let (frontend1, uops1) = match rec1 {
            Some(rec) => {
                rebuild_traces(prog1, &rec.drain(), 1, cfg1.trace_frontend, cfg1.trace_uops)
            }
            None => (None, None),
        };
        let t0 = RunResult {
            exit: exit0,
            cycles: self.cpu0.cycle(),
            regs: *self.cpu0.regs(),
            flags: self.cpu0.flags(),
            retired: self.cpu0.retired_insts(),
            pmu: self.cpu0.pmu.snapshot().delta(&pmu0_before),
            exceptions: self.cpu0.take_exceptions(),
            frontend_trace: frontend0,
            uop_trace: uops0,
        };
        let t1 = RunResult {
            exit: exit1,
            cycles: self.cpu1.cycle(),
            regs: *self.cpu1.regs(),
            flags: self.cpu1.flags(),
            retired: self.cpu1.retired_insts(),
            pmu: self.cpu1.pmu.snapshot().delta(&pmu1_before),
            exceptions: self.cpu1.take_exceptions(),
            frontend_trace: frontend1,
            uop_trace: uops1,
        };
        SmtRunResult { t0, t1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tet_isa::{Asm, Reg};

    fn nop_loop(iters: u64) -> Program {
        let mut a = Asm::new();
        let top = a.fresh_label();
        a.mov_imm(Reg::Rcx, iters);
        a.bind(top)
            .nops(8)
            .sub(Reg::Rcx, 1u64)
            .jcc(tet_isa::Cond::Ne, top)
            .halt();
        a.assemble().unwrap()
    }

    #[test]
    fn independent_threads_complete() {
        let mut smt = SmtMachine::new(CpuConfig::kaby_lake_i7_7700(), 5);
        let p = nop_loop(20);
        let r = smt.run(&p, &p, &RunConfig::default(), &RunConfig::default());
        assert_eq!(r.t0.exit, RunExit::Halted);
        assert_eq!(r.t1.exit, RunExit::Halted);
    }

    #[test]
    fn sibling_fault_slows_the_spy() {
        let cfg = CpuConfig::kaby_lake_i7_7700();
        let spy = nop_loop(200);

        // Trojan A: tight loop of faulting loads, suppressed by handler.
        let mut a = Asm::new();
        let top = a.fresh_label();
        a.mov_imm(Reg::Rcx, 40);
        let topi = a.here();
        a.bind(top)
            .load_abs(Reg::Rax, 0xdead_0000)
            .sub(Reg::Rcx, 1u64)
            .jcc(tet_isa::Cond::Ne, top)
            .halt();
        let trojan = a.assemble().unwrap();
        let trojan_cfg = RunConfig {
            // Faults resume at the decrement (skip the faulting load).
            handler_pc: Some(topi + 1),
            ..RunConfig::default()
        };

        // Trojan B: same structure, harmless loads.
        let mut b = Asm::new();
        let topb = b.fresh_label();
        b.mov_imm(Reg::Rcx, 40);
        b.bind(topb)
            .mov_imm(Reg::Rax, 0)
            .sub(Reg::Rcx, 1u64)
            .jcc(tet_isa::Cond::Ne, topb)
            .halt();
        let quiet = b.assemble().unwrap();

        let spy_cycles_with_faults = {
            let mut smt = SmtMachine::new(cfg.clone(), 5);
            let r = smt.run(&trojan, &spy, &trojan_cfg, &RunConfig::default());
            assert_eq!(r.t1.exit, RunExit::Halted);
            r.t1.cycles
        };
        let spy_cycles_quiet = {
            let mut smt = SmtMachine::new(cfg, 5);
            let r = smt.run(&quiet, &spy, &RunConfig::default(), &RunConfig::default());
            assert_eq!(r.t1.exit, RunExit::Halted);
            r.t1.cycles
        };
        assert!(
            spy_cycles_with_faults > spy_cycles_quiet,
            "sibling faults must slow the spy: {spy_cycles_with_faults} vs {spy_cycles_quiet}"
        );
    }

    #[test]
    fn lfb_leaks_across_threads() {
        // Thread 0 (victim) loads its secret; thread 1 sees it in the LFB.
        let mut smt = SmtMachine::new(CpuConfig::kaby_lake_i7_7700(), 9);
        let secret_va = 0x40_0000_0000u64;
        let pa = smt.map_user_page(0, secret_va);
        smt.phys_mut().write_u8(pa, b'K');

        let mut v = Asm::new();
        v.load_byte_abs(Reg::Rax, secret_va).halt();
        let victim = v.assemble().unwrap();
        let mut s = Asm::new();
        s.nops(4).halt();
        let spy = s.assemble().unwrap();
        let r = smt.run(&victim, &spy, &RunConfig::default(), &RunConfig::default());
        assert_eq!(r.t0.regs.get(Reg::Rax), b'K' as u64);
        assert_eq!(smt.mem().lfb().stale_byte(0), Some(b'K'));
    }
}
