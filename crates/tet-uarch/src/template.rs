//! Pre-decoded µop templates.
//!
//! A [`ProgramTemplate`] cracks every instruction of a [`Program`] once —
//! source/destination register lists, classification bits, the dense
//! opcode used by the execute dispatch table, the code virtual address
//! and its page — so the per-cycle fetch and rename stages instantiate
//! µops by indexing an immutable table instead of re-matching on the
//! instruction shape every trial. Only the *work* of cracking moves out
//! of the hot path: the DSB/MITE front-end still models delivery
//! *timing* (hit/miss latency, DSB↔MITE switches) exactly as before, so
//! cycle-level behaviour is unchanged.
//!
//! Templates are pure functions of the program, so they are safely
//! shared across runs and threads behind an `Arc` (see
//! `RunCtx::template`).

use tet_isa::{Inst, Opcode, Program};

use crate::code_vaddr;
use crate::uop::{dest_regs, src_regs, RegList, UopKind};

/// One instruction's pre-cracked µop metadata.
#[derive(Debug, Clone)]
pub struct UopMeta {
    /// The decoded instruction.
    pub inst: Inst,
    /// Dense opcode — the execute dispatch-table index.
    pub op: Opcode,
    /// Classification bits (branch / memory / fence / …).
    pub kind: UopKind,
    /// Architectural source registers.
    pub srcs: RegList,
    /// Architectural destination registers.
    pub dests: RegList,
    /// Static mnemonic (for observability sinks).
    pub mnemonic: &'static str,
    /// Code virtual address of this instruction.
    pub vaddr: u64,
    /// Code page (`vaddr / PAGE_SIZE`) for ITLB/DSB indexing.
    pub page: u64,
}

/// An immutable pre-decoded program: the program itself plus one
/// [`UopMeta`] per instruction, indexed by pc.
#[derive(Debug)]
pub struct ProgramTemplate {
    program: Program,
    uops: Box<[UopMeta]>,
}

impl ProgramTemplate {
    /// Cracks `program` into a template.
    pub fn build(program: &Program) -> ProgramTemplate {
        let uops = (0..program.len())
            .map(|pc| {
                let inst = program.fetch(pc).expect("pc < program.len()");
                let vaddr = code_vaddr(pc);
                UopMeta {
                    inst,
                    op: inst.opcode(),
                    kind: UopKind::classify(&inst),
                    srcs: src_regs(&inst),
                    dests: dest_regs(&inst),
                    mnemonic: inst.mnemonic(),
                    vaddr,
                    page: vaddr / tet_mem::PAGE_SIZE,
                }
            })
            .collect();
        ProgramTemplate {
            program: program.clone(),
            uops,
        }
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// The pre-cracked metadata for `pc`, if within the program.
    #[inline]
    pub fn meta(&self, pc: usize) -> Option<&UopMeta> {
        self.uops.get(pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tet_isa::{Asm, Reg};

    #[test]
    fn template_matches_legacy_cracking() {
        let mut a = Asm::new();
        a.mov_imm(Reg::Rax, 1);
        a.push(Reg::Rax);
        a.pop(Reg::Rbx);
        a.halt();
        let p = a.assemble().unwrap();
        let tpl = ProgramTemplate::build(&p);
        assert_eq!(tpl.len(), p.len());
        for pc in 0..p.len() {
            let inst = p.fetch(pc).unwrap();
            let m = tpl.meta(pc).unwrap();
            assert_eq!(m.inst, inst);
            assert_eq!(m.op, inst.opcode());
            assert_eq!(m.kind, UopKind::classify(&inst));
            assert_eq!(m.srcs.as_slice(), src_regs(&inst).as_slice());
            assert_eq!(m.dests.as_slice(), dest_regs(&inst).as_slice());
            assert_eq!(m.mnemonic, inst.mnemonic());
            assert_eq!(m.vaddr, code_vaddr(pc));
            assert_eq!(m.page, code_vaddr(pc) / tet_mem::PAGE_SIZE);
        }
        assert!(tpl.meta(p.len()).is_none());
    }
}
