//! A minimal, dependency-free JSON layer.
//!
//! The build environment is fully offline (no `serde`/`serde_json`), so the
//! observability crate carries its own small JSON value type with a writer
//! and a recursive-descent parser. The parser exists so the exporter tests
//! can validate schema properties (and so [`crate::report::RunReport`] can
//! round-trip), not to be a general-purpose JSON library.
//!
//! Objects preserve insertion order (they are backed by a `Vec` of pairs),
//! which keeps serialized output deterministic — important for golden-file
//! tests and for diffing run reports across commits.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integral values print without a
    /// fractional part).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an empty object.
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Inserts (or replaces) a key in an object; panics on non-objects.
    pub fn set(&mut self, key: &str, val: Value) -> &mut Self {
        match self {
            Value::Obj(pairs) => {
                if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = val;
                } else {
                    pairs.push((key.to_string(), val));
                }
            }
            _ => panic!("Value::set on non-object"),
        }
        self
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes compactly (no insignificant whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline(out, indent, depth);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    newline(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}
impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Num(n as f64)
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Num(n as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the least-surprising encoding.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` on f64 is shortest-round-trip formatting.
        let _ = write!(out, "{n:?}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Returns a descriptive error on malformed input.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs are not needed for our own output.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let mut doc = Value::obj();
        doc.set("name", Value::from("fig1_tote"));
        doc.set("cycles", Value::from(123456u64));
        doc.set("ratio", Value::Num(0.375));
        doc.set("ok", Value::Bool(true));
        doc.set("none", Value::Null);
        doc.set(
            "hist",
            Value::Arr(vec![
                Value::from(1u64),
                Value::from(2u64),
                Value::from(3u64),
            ]),
        );
        let text = doc.to_json();
        let back = parse(&text).expect("parses");
        assert_eq!(back, doc);
        // Pretty output parses to the same value too.
        assert_eq!(parse(&doc.to_json_pretty()).expect("parses"), doc);
    }

    #[test]
    fn escapes_strings() {
        let v = Value::from("a\"b\\c\nd\te\u{1}");
        let text = v.to_json();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(parse(&text).expect("parses"), v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::from(42u64).to_json(), "42");
        assert_eq!(Value::Num(-3.0).to_json(), "-3");
        assert_eq!(Value::Num(0.5).to_json(), "0.5");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("{}x").is_err());
    }

    #[test]
    fn object_get_and_set_replace() {
        let mut o = Value::obj();
        o.set("k", Value::from(1u64));
        o.set("k", Value::from(2u64));
        assert_eq!(o.get("k").and_then(Value::as_u64), Some(2));
        assert!(o.get("missing").is_none());
    }
}
